//! E8/E9: the unifying results of §6 — one-sided recursions (Theorem 6.2), separable
//! recursions (Theorem 6.3), the Counting comparison (Theorem 6.4 and the
//! non-termination caveat), and the left-/right-linear programs of [9] (§6.3).

use factorlog::core::counting::{counting, delete_index_fields};
use factorlog::core::one_sided::analyze_one_sided;
use factorlog::core::separable::analyze_separable;
use factorlog::prelude::*;
use factorlog::workloads::layered::right_linear_edb;
use factorlog::workloads::{graphs, programs};

#[test]
fn section_6_3_left_and_right_linear_programs_are_subsumed() {
    // The single-rule left-linear and right-linear transitive closures (the programs
    // of [9]) are both selection-pushing, hence covered by Theorem 4.1.
    for src in [programs::LEFT_LINEAR_TC, programs::RIGHT_LINEAR_TC] {
        let program = parse_program(src).unwrap().program;
        let query = parse_query("t(0, Y)").unwrap();
        let optimized = optimize_query(&program, &query, &PipelineOptions::default()).unwrap();
        assert_eq!(optimized.strategy, Strategy::FactoredMagic);
        assert!(optimized
            .factorability
            .as_ref()
            .unwrap()
            .classes
            .contains(&FactorableClass::SelectionPushing));
        // Both end up as the same final unary program (up to rule order).
        assert_eq!(optimized.program.len(), 3);
    }
}

#[test]
fn theorem_6_2_one_sided_recursion_factors_for_both_full_selections() {
    let src = "p(A1, A2, B) :- p(A1, A2, C), c(C, D), d(D, B).\n\
               p(A1, A2, B) :- exit(A1, A2, B).";
    let program = parse_program(src).unwrap().program;
    let analysis = analyze_one_sided(&program, Symbol::intern("p")).unwrap();
    assert!(analysis.is_simple_one_sided);

    // Binding the static group Ā: the rule reads left-linear.
    let query = parse_query("p(1, 2, B)").unwrap();
    let optimized = optimize_query(&program, &query, &PipelineOptions::default()).unwrap();
    assert_eq!(optimized.strategy, Strategy::FactoredMagic);

    // Binding the dynamic group B̄ requires the right-linear reading (recursive call
    // after the literals that bind it).
    let src_rl = "p(A1, A2, B) :- c(C, D), d(D, B), p(A1, A2, C).\n\
                  p(A1, A2, B) :- exit(A1, A2, B).";
    let program_rl = parse_program(src_rl).unwrap().program;
    let query_rl = parse_query("p(A1, A2, 3)").unwrap();
    let optimized_rl = optimize_query(&program_rl, &query_rl, &PipelineOptions::default()).unwrap();
    assert_eq!(optimized_rl.strategy, Strategy::FactoredMagic);
}

#[test]
fn theorem_6_3_reducible_separable_recursions_factor() {
    // Both the left-linear TC and the disjoint two-rule separable recursion are
    // reducible separable; a full selection factors.
    for (src, query_text) in [
        (programs::LEFT_LINEAR_TC, "t(0, Y)"),
        (
            "t(X, Y) :- t(X, W), e(W, Y).\nt(X, Y) :- f(X, W), t(W, Y).\nt(X, Y) :- g(X, Y).",
            "t(0, Y)",
        ),
    ] {
        let program = parse_program(src).unwrap().program;
        let analysis = analyze_separable(&program, Symbol::intern("t")).unwrap();
        assert!(analysis.is_separable, "{:?}", analysis.reason);
        assert!(analysis.is_reducible, "{:?}", analysis.reason);
        let query = parse_query(query_text).unwrap();
        let optimized = optimize_query(&program, &query, &PipelineOptions::default()).unwrap();
        assert_eq!(optimized.strategy, Strategy::FactoredMagic, "{src}");
    }
}

#[test]
fn same_generation_is_neither_one_sided_nor_separable_nor_factorable() {
    let program = parse_program(programs::SAME_GENERATION).unwrap().program;
    let sg = Symbol::intern("sg");
    assert!(!analyze_one_sided(&program, sg).unwrap().is_simple_one_sided);
    assert!(!analyze_separable(&program, sg).unwrap().is_separable);
    let query = parse_query("sg(0, Y)").unwrap();
    let optimized = optimize_query(&program, &query, &PipelineOptions::default()).unwrap();
    assert_eq!(optimized.strategy, Strategy::MagicOnly);

    // The magic fallback still answers correctly on the tree workload.
    let edb = graphs::same_generation_tree(6);
    let expected = evaluate_default(&program, &edb).unwrap().answers(&query);
    assert_eq!(optimized.answers(&edb).unwrap(), expected);
    assert!(!expected.is_empty());
}

#[test]
fn theorem_6_4_counting_equals_factored_magic_up_to_indices() {
    // For the right-linear two-rule program: Counting, the factored Magic program, and
    // Counting-with-indices-deleted all compute the same answers; the indexed program
    // derives at least as many facts (the index fields are pure overhead).
    let program = parse_program(programs::RIGHT_LINEAR_TWO_RULES)
        .unwrap()
        .program;
    let query = parse_query("p(0, Y)").unwrap();
    let adorned = adorn(&program, &query).unwrap();
    let classification = classify(&adorned).unwrap();
    let counting_program = counting(&adorned, &classification).unwrap();
    let stripped = delete_index_fields(&counting_program);
    let optimized = optimize_query(&program, &query, &PipelineOptions::default()).unwrap();
    assert_eq!(optimized.strategy, Strategy::FactoredMagic);

    let edb = right_linear_edb(60, 17);
    let expected = evaluate_default(&program, &edb).unwrap().answers(&query);

    let counted = evaluate_default(&counting_program.program, &edb).unwrap();
    assert_eq!(counted.answers(&counting_program.query), expected);

    let stripped_query = Query::new(Atom::new(
        counting_program.answer_predicate,
        vec![Term::var("Y")],
    ));
    let stripped_result = evaluate_default(&stripped, &edb).unwrap();
    assert_eq!(stripped_result.answers(&stripped_query), expected);

    let factored_result = optimized.evaluate(&edb).unwrap();
    assert_eq!(factored_result.answers(&optimized.query), expected);

    // Index overhead: the Counting program carries a depth field on every goal and
    // answer fact, so it derives strictly more facts than the factored program.
    assert!(
        counted.stats.facts_derived > factored_result.stats.facts_derived,
        "counting ({}) should carry index overhead over factoring ({})",
        counted.stats.facts_derived,
        factored_result.stats.facts_derived
    );
}

#[test]
fn counting_is_refused_for_left_linear_programs_but_factoring_applies() {
    // §6.4: "If a program contains left-linear or combined rules, the Counting program
    // will not terminate"; factoring handles them fine.
    let program = parse_program(programs::LEFT_LINEAR_TC).unwrap().program;
    let query = parse_query("t(0, Y)").unwrap();
    let adorned = adorn(&program, &query).unwrap();
    let classification = classify(&adorned).unwrap();
    assert!(counting(&adorned, &classification).is_err());

    let optimized = optimize_query(&program, &query, &PipelineOptions::default()).unwrap();
    assert_eq!(optimized.strategy, Strategy::FactoredMagic);
    let edb = graphs::chain(50);
    assert_eq!(optimized.answers(&edb).unwrap().len(), 50);
}
