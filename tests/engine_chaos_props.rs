//! Engine-wide chaos harness: random fault injection and resource limits at
//! every named [`FaultSite`], fired during mixed query/mutation workloads, at
//! 1, 2 and 4 worker threads.
//!
//! The properties under test are the PR's containment invariants:
//!
//! * **Clean completion-or-failure** — every operation either succeeds or
//!   returns a *structured* [`EngineError`]; no panic escapes the engine, no
//!   operation hangs, no batch half-applies.
//! * **Store is the source of truth** — after any failed evaluation (tripped
//!   limit, caught worker panic, injected fault at any site), the next query on
//!   the *same* session returns exactly what a fresh engine evaluating the
//!   surviving base facts from scratch returns, at every thread count.
//! * **Prompt deadlines** — a wall-clock deadline on an unbounded recursive
//!   query aborts within 2x the deadline, and the engine stays reusable.
//!
//! CI runs this file under `FACTORLOG_THREADS=1` and `=4` (the env var is the
//! default for [`EvalOptions::threads`]), so both the sequential join loop and
//! the parallel partition/merge driver face every fault.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use factorlog::prelude::*;
use factorlog::workloads::programs;
use proptest::prelude::*;

fn c(i: i64) -> Const {
    Const::Int(i)
}

/// Every injection site the engine exposes, in one indexable list.
const SITES: [FaultSite; 6] = [
    FaultSite::JoinOuterLoop,
    FaultSite::RoundMerge,
    FaultSite::DeleteOverdelete,
    FaultSite::DeleteRederive,
    FaultSite::WalAppend,
    FaultSite::Compaction,
];

const ACTIONS: [FaultAction; 2] = [FaultAction::Error, FaultAction::Panic];

fn eval_opts(threads: usize) -> EvalOptions {
    EvalOptions {
        threads,
        // Partition every round regardless of size so multi-thread runs
        // actually exercise the parallel driver (and its panic isolation).
        parallel_threshold: 0,
        ..EvalOptions::default()
    }
}

/// The session thread count under test: `FACTORLOG_THREADS` when CI pins it,
/// [`EvalOptions`]'s default otherwise.
fn session_threads() -> usize {
    EvalOptions::default().threads
}

/// A scratch data directory, unique per test case and cleaned before use.
fn fresh_dir(tag: &str) -> PathBuf {
    static COUNTER: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
    let n = COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let dir =
        std::env::temp_dir().join(format!("factorlog_chaos_{tag}_{}_{n}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// The base-fact store as a comparable set of (predicate, tuple) strings.
fn edb_facts(db: &Database) -> Vec<(String, Vec<String>)> {
    let mut facts: Vec<_> = db
        .iter()
        .flat_map(|(predicate, relation)| {
            relation.iter().map(move |row| {
                (
                    predicate.to_string(),
                    row.iter().map(|value| value.to_string()).collect(),
                )
            })
        })
        .collect();
    facts.sort();
    facts
}

/// The convergence oracle: a session that went through faults, limits and
/// partial evaluations must — once disarmed — answer exactly like a fresh
/// engine evaluating its program over its surviving base facts from scratch,
/// at 1, 2 and 4 worker threads.
fn assert_converges(survivor: &mut Engine, query: &Query) -> Result<(), TestCaseError> {
    survivor.set_fault_injector(None);
    survivor.set_limits(None, None, None);
    survivor.cancel_token().reset();
    let answers = match survivor.query(query) {
        Ok(answers) => answers,
        Err(e) => {
            return Err(TestCaseError::fail(format!(
                "disarmed survivor must answer cleanly: {e}"
            )))
        }
    };
    for threads in [1usize, 2, 4] {
        let mut fresh = Engine::with_options(eval_opts(threads));
        fresh
            .add_rules(survivor.program().clone())
            .expect("program transplants");
        for (predicate, relation) in survivor.facts().iter() {
            for tuple in relation.iter() {
                fresh.insert(predicate, tuple).expect("fact transplants");
            }
        }
        prop_assert_eq!(
            &fresh.query(query).expect("fresh query"),
            &answers,
            "survivor diverges from scratch evaluation at {} thread(s)",
            threads
        );
    }
    Ok(())
}

/// Is this error one of the structured failures a contained fault may surface?
fn is_structured_failure(error: &EngineError) -> bool {
    matches!(
        error,
        EngineError::Eval(
            EvalError::LimitExceeded { .. }
                | EvalError::WorkerPanic { .. }
                | EvalError::Injected { .. }
        ) | EngineError::Durability(_)
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// The tentpole property: a mixed insert/retract/transaction/query workload
    /// with a random fault (any site, error or panic action, random arming
    /// delay) and a random derived-fact limit never panics out of the engine,
    /// never hangs, only ever fails structurally — and the session converges
    /// to the from-scratch evaluation of whatever base facts survived.
    #[test]
    fn random_faults_during_mixed_workloads_stay_contained_and_convergent(
        ops in prop::collection::vec((0usize..5, 0i64..12, 0i64..12), 8..32),
        site_idx in 0usize..6,
        action_idx in 0usize..2,
        countdown in 0u64..8,
        limit_sel in 0usize..3,
        durable_sel in 0usize..2,
    ) {
        let site = SITES[site_idx];
        let action = ACTIONS[action_idx];
        // The WAL sites only exist on durable sessions; force one there.
        let durable = durable_sel == 1
            || matches!(site, FaultSite::WalAppend | FaultSite::Compaction);
        let dir = fresh_dir("mixed");
        let mut engine = if durable {
            let dopts = DurabilityOptions {
                fsync: false,
                // Compact every few records so the Compaction site is reachable.
                compact_threshold: 256,
            };
            Engine::open_durable_with_options(&dir, dopts, eval_opts(session_threads()))
                .expect("durable open")
        } else {
            Engine::with_options(eval_opts(session_threads()))
        };
        engine.load_source(programs::THREE_RULE_TC).expect("program loads");
        for i in 0..10i64 {
            engine.insert("e", &[c(i), c(i + 1)]).expect("seed edge");
        }
        match limit_sel {
            1 => engine.set_limits(None, Some(40), None),
            2 => engine.set_limits(None, None, Some(4096)),
            _ => {}
        }
        engine.set_fault_injector(Some(FaultInjector::armed(site, action, countdown as u32)));

        let query = parse_query("t(0, Y)").unwrap();
        let mut failures = 0usize;
        for &(kind, a, b) in &ops {
            let result: Result<(), EngineError> = match kind {
                0 => engine.insert("e", &[c(a), c(b)]).map(|_| ()),
                1 => engine.retract("e", &[c(a), c(b)]).map(|_| ()),
                2 => {
                    let mut txn = engine.transaction();
                    txn.assert("e", &[c(a), c(b)]);
                    txn.retract("e", &[c(b), c(a)]);
                    txn.commit().map(|_| ())
                }
                3 => engine.query(&query).map(|_| ()),
                _ => engine
                    .query(&parse_query(&format!("t({a}, Y)")).unwrap())
                    .map(|_| ()),
            };
            if let Err(error) = result {
                prop_assert!(
                    is_structured_failure(&error),
                    "op {kind}({a},{b}) failed unstructurally: {error}"
                );
                failures += 1;
            }
        }
        // Tripped or not, armed or spent: the session must converge.
        assert_converges(&mut engine, &query)?;
        // Bookkeeping: every abort the workload saw is on the session counters.
        prop_assert!(
            engine.stats().limit_aborts + engine.stats().worker_panics <= failures + 1,
            "more aborts than failures: {} aborts, {} panics, {} failures",
            engine.stats().limit_aborts, engine.stats().worker_panics, failures
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    /// The session-reusability satellite, isolated: force exactly one failure
    /// (fault, limit, or cancellation) on a session whose workload is big
    /// enough to reach every poll point, then check the next query equals a
    /// fresh engine's — the materialized view may die, the session must not.
    #[test]
    fn after_any_eval_error_the_next_query_matches_a_fresh_engine(
        // Only the query-path sites: a pure query never reaches the
        // delete-propagation sites (those have their own deterministic test).
        site_idx in 0usize..2,
        action_idx in 0usize..2,
        failure_mode in 0usize..4,
        start in 0i64..50,
    ) {
        let mut engine = Engine::with_options(eval_opts(session_threads()));
        engine.load_source(programs::THREE_RULE_TC).expect("program loads");
        // A 120-edge chain: ~7k derived transitive facts, thousands of join
        // rows — deep enough for the join-loop poll and multiple rounds.
        for i in 0..120i64 {
            engine.insert("e", &[c(i), c(i + 1)]).expect("seed edge");
        }
        match failure_mode {
            // An injected fault at an evaluation site (error or panic action).
            0 => engine.set_fault_injector(Some(FaultInjector::armed(
                SITES[site_idx],
                ACTIONS[action_idx],
                1,
            ))),
            // A derived-fact cap the workload is guaranteed to blow through.
            1 => engine.set_limits(None, Some(100), None),
            // A memory budget below the EDB's own footprint.
            2 => engine.set_limits(None, None, Some(1024)),
            // A pre-cancelled token: aborts at the very first poll.
            _ => {
                let token = engine.cancel_token();
                token.cancel();
            }
        }
        let query = parse_query(&format!("t({start}, Y)")).unwrap();
        let error = engine.query(&query).expect_err("the forced failure fires");
        prop_assert!(
            is_structured_failure(&error),
            "failure must be structured: {error}"
        );
        assert_converges(&mut engine, &query)?;
    }
}

/// Delete-propagation faults: armed at the over-delete and re-derivation
/// phases, a retraction on a live materialized view fails structurally and the
/// session converges (covers both [`FaultSite::DeleteOverdelete`] and
/// [`FaultSite::DeleteRederive`], error and panic actions).
#[test]
fn delete_propagation_faults_stay_contained() {
    for site in [FaultSite::DeleteOverdelete, FaultSite::DeleteRederive] {
        for action in ACTIONS {
            let mut engine = Engine::with_options(eval_opts(session_threads()));
            engine
                .load_source(programs::THREE_RULE_TC)
                .expect("program");
            // Parallel paths so retraction needs genuine over-delete + rederive.
            for i in 0..40i64 {
                engine.insert("e", &[c(i), c(i + 1)]).unwrap();
                engine.insert("e", &[c(i), c(100 + i)]).unwrap();
                engine.insert("e", &[c(100 + i), c(i + 1)]).unwrap();
            }
            let query = parse_query("t(0, Y)").unwrap();
            engine.query(&query).expect("materializes");
            // Countdown 0: fire on the *first* hit — the re-derivation site is
            // reached exactly once per retraction.
            engine.set_fault_injector(Some(FaultInjector::armed(site, action, 0)));
            let error = engine
                .retract("e", &[c(5), c(6)])
                .map(|_| ())
                .expect_err("the armed delete fault fires");
            assert!(
                matches!(
                    error,
                    EngineError::Eval(EvalError::Injected { .. } | EvalError::WorkerPanic { .. })
                ),
                "unexpected error for {site:?}/{action:?}: {error}"
            );
            engine.set_fault_injector(None);
            // The retraction itself committed (store is source of truth); the
            // next query rebuilds the view from scratch and agrees with a
            // fresh engine.
            let mut fresh = Engine::with_options(eval_opts(1));
            fresh.add_rules(engine.program().clone()).unwrap();
            for (predicate, relation) in engine.facts().iter() {
                for tuple in relation.iter() {
                    fresh.insert(predicate, tuple).unwrap();
                }
            }
            assert_eq!(
                engine.query(&query).expect("session recovered"),
                fresh.query(&query).expect("fresh evaluation"),
                "{site:?}/{action:?}"
            );
            assert_eq!(edb_facts(engine.facts()), edb_facts(fresh.facts()));
        }
    }
}

/// The deadline acceptance bound, end to end: an unbounded recursive query
/// (`counter` over the `succ` builtin never converges) with a wall-clock
/// deadline aborts within 2x the deadline, reports the deadline reason, and
/// leaves the engine fully reusable.
#[test]
fn deadline_on_unbounded_recursion_aborts_within_twice_the_deadline() {
    let mut engine = Engine::with_options(eval_opts(session_threads()));
    engine
        .load_source("counter(N) :- seed(N).\ncounter(M) :- counter(N), succ(N, M).")
        .expect("program loads");
    engine.insert("seed", &[c(0)]).expect("seed");
    let deadline = Duration::from_millis(250);
    engine.set_limits(Some(deadline), None, None);
    let query = parse_query("counter(X)").unwrap();

    let started = Instant::now();
    let error = engine.query(&query).expect_err("deadline fires");
    let took = started.elapsed();
    let EngineError::Eval(EvalError::LimitExceeded {
        reason: LimitReason::Deadline { .. },
        elapsed,
        partial_stats,
    }) = error
    else {
        panic!("expected a deadline abort, got {error}");
    };
    assert!(
        partial_stats.facts_derived > 0,
        "the query was really running"
    );
    assert!(
        elapsed >= deadline && elapsed <= took,
        "the error's own elapsed ({elapsed:?}) brackets the deadline without exceeding the wall clock ({took:?})"
    );
    assert!(
        took < deadline * 2,
        "acceptance bound: abort within 2x the deadline, took {took:?} of {deadline:?}"
    );

    // Reusable: lift the limit, remove the divergent seed, query again.
    engine.set_limits(None, None, None);
    engine.retract("seed", &[c(0)]).expect("retract seed");
    assert_eq!(engine.query(&query).expect("reusable").len(), 0);
    // And a bounded program evaluates normally on the same session.
    engine
        .load_source("t(X, Y) :- e(X, Y).\ne(1, 2).")
        .expect("bounded program");
    assert_eq!(
        engine
            .query(&parse_query("t(1, Y)").unwrap())
            .expect("bounded query")
            .len(),
        1
    );
}

/// A cancellation mid-flight from another thread (the Ctrl-C path without a
/// terminal): the evaluation aborts at the next poll with the structured
/// cancellation reason, and resetting the token restores the session.
#[test]
fn cross_thread_cancellation_aborts_and_the_token_resets() {
    let mut engine = Engine::with_options(eval_opts(session_threads()));
    engine
        .load_source("counter(N) :- seed(N).\ncounter(M) :- counter(N), succ(N, M).")
        .expect("program loads");
    engine.insert("seed", &[c(0)]).expect("seed");
    let token = engine.cancel_token();
    let canceller = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(40));
        token.cancel();
    });
    let query = parse_query("counter(X)").unwrap();
    let error = engine.query(&query).expect_err("cancellation fires");
    canceller.join().unwrap();
    assert!(
        matches!(
            error,
            EngineError::Eval(EvalError::LimitExceeded {
                reason: LimitReason::Cancelled,
                ..
            })
        ),
        "expected a cancellation, got {error}"
    );
    assert!(engine.stats().limit_aborts >= 1);
    engine.cancel_token().reset();
    engine.retract("seed", &[c(0)]).expect("retract seed");
    assert_eq!(engine.query(&query).expect("session recovered").len(), 0);
}
