//! E7: static-argument reduction (Examples 5.1 and 5.2, Lemmas 5.1–5.2) through the
//! public pipeline, with randomized answer-preservation checks.

use factorlog::core::equivalence::{check_equivalence, EdbSpec};
use factorlog::prelude::*;
use factorlog::workloads::programs;

#[test]
fn example_5_1_pipeline_reduces_then_factors() {
    let program = parse_program(programs::EXAMPLE_5_1).unwrap().program;
    let query = parse_query("p(5, 6, U)").unwrap();
    let optimized = optimize_query(&program, &query, &PipelineOptions::default()).unwrap();
    let reduced = optimized.reduced.as_ref().expect("reduction applies");
    assert_eq!(reduced.removed_positions, vec![0]);
    assert_eq!(optimized.strategy, Strategy::FactoredMagic);

    // Answer preservation on random EDBs: the end-to-end program vs the original.
    let specs = [
        EdbSpec::new("a", 1, 4),
        EdbSpec::new("d", 2, 10),
        EdbSpec::new("exit", 3, 10),
    ];
    let counterexample = check_equivalence(
        &program,
        &query,
        &optimized.program,
        &optimized.query,
        &specs,
        7,
        30,
        555,
    )
    .unwrap();
    assert!(counterexample.is_none(), "{counterexample:?}");
}

#[test]
fn example_5_2_pipeline_reduces_the_pseudo_left_linear_program() {
    // The pipeline reduces *both* static bound arguments (the paper's Example 5.2
    // reduces only the first); with both gone the query has no bound argument left and
    // the reduced program is already unary — factoring has nothing further to split,
    // so the strategy is Magic-only on the reduced program. Every derived predicate in
    // the final program is unary, which is the arity reduction the section is after.
    let program = parse_program(programs::EXAMPLE_5_2).unwrap().program;
    let query = parse_query("p(5, 6, U)").unwrap();
    let optimized = optimize_query(&program, &query, &PipelineOptions::default()).unwrap();
    let reduced = optimized.reduced.as_ref().expect("reduction applies");
    assert_eq!(reduced.removed_positions, vec![0, 1]);
    for rule in &optimized.program.rules {
        for atom in std::iter::once(&rule.head).chain(rule.body.iter()) {
            if atom.predicate != Symbol::intern("d") && atom.predicate != Symbol::intern("exit") {
                assert!(
                    atom.arity() <= 1,
                    "derived predicates must be unary: {atom}"
                );
            }
        }
    }

    let specs = [EdbSpec::new("d", 3, 12), EdbSpec::new("exit", 3, 10)];
    let counterexample = check_equivalence(
        &program,
        &query,
        &optimized.program,
        &optimized.query,
        &specs,
        7,
        30,
        556,
    )
    .unwrap();
    assert!(counterexample.is_none(), "{counterexample:?}");
}

#[test]
fn without_reduction_the_examples_do_not_factor() {
    for src in [programs::EXAMPLE_5_1, programs::EXAMPLE_5_2] {
        let program = parse_program(src).unwrap().program;
        let query = parse_query("p(5, 6, U)").unwrap();
        let options = PipelineOptions {
            try_reduction: false,
            ..PipelineOptions::default()
        };
        let optimized = optimize_query(&program, &query, &options).unwrap();
        assert_eq!(optimized.strategy, Strategy::MagicOnly);
    }
}

#[test]
fn reduction_lowers_the_recursive_arity_in_the_final_program() {
    // Example 5.1: the original predicate is ternary; after reduction + factoring the
    // final program mentions no predicate of arity three or more except the EDB exit.
    let program = parse_program(programs::EXAMPLE_5_1).unwrap().program;
    let query = parse_query("p(5, 6, U)").unwrap();
    let optimized = optimize_query(&program, &query, &PipelineOptions::default()).unwrap();
    for rule in &optimized.program.rules {
        for atom in std::iter::once(&rule.head).chain(rule.body.iter()) {
            if atom.predicate != Symbol::intern("exit") && atom.predicate != Symbol::intern("d") {
                assert!(
                    atom.arity() <= 1,
                    "derived predicates must be unary after reduction + factoring, found {atom}"
                );
            }
        }
    }
}
