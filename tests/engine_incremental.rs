//! Incremental-correctness property tests for the persistent engine: any interleaving
//! of `insert` and `query` must yield exactly the answers of batch evaluation of the
//! final (or prefix) EDB — on the transitive-closure, same-generation and
//! list-membership workloads — and the prepared-query path must agree while hitting
//! its plan cache.

use factorlog::prelude::*;
use factorlog::workloads::{lists, programs};
use proptest::prelude::*;

/// A random edge list over a small domain.
fn edges(
    max_nodes: i64,
    max_edges: usize,
) -> impl proptest::strategy::Strategy<Value = Vec<(i64, i64)>> {
    prop::collection::vec((0..max_nodes, 0..max_nodes), 0..max_edges)
}

fn c(i: i64) -> Const {
    Const::Int(i)
}

/// Compare an engine's materialized answers against from-scratch evaluation of the
/// same program over the engine's current facts.
fn batch_answers(engine: &Engine, query: &Query) -> Vec<Vec<Const>> {
    evaluate_default(engine.program(), engine.facts())
        .expect("batch evaluation succeeds")
        .answers(query)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn tc_interleavings_match_batch(edge_list in edges(10, 35), start in 0i64..10) {
        let query = parse_query(&format!("t({start}, Y)")).unwrap();
        let mut engine = Engine::new();
        engine.load_source(programs::THREE_RULE_TC).unwrap();
        for (i, &(a, b)) in edge_list.iter().enumerate() {
            engine.insert("e", &[c(a), c(b)]).unwrap();
            // Query at varying points of the stream: each query forces an incremental
            // resume of whatever is pending.
            if i % 3 == 0 {
                let batch = batch_answers(&engine, &query);
                prop_assert_eq!(engine.query(&query).unwrap(), batch, "after {} inserts", i + 1);
            }
        }
        let batch = batch_answers(&engine, &query);
        prop_assert_eq!(engine.query(&query).unwrap(), batch);
    }

    #[test]
    fn sg_interleavings_match_batch(
        fact_list in prop::collection::vec((0usize..3, 0i64..8, 0i64..8), 0..30),
        probe in 0i64..8,
    ) {
        let query = parse_query(&format!("sg({probe}, Y)")).unwrap();
        let mut engine = Engine::new();
        engine.load_source(programs::SAME_GENERATION).unwrap();
        for (i, &(kind, a, b)) in fact_list.iter().enumerate() {
            let predicate = ["up", "flat", "down"][kind];
            engine.insert(predicate, &[c(a), c(b)]).unwrap();
            if i % 4 == 0 {
                let batch = batch_answers(&engine, &query);
                prop_assert_eq!(engine.query(&query).unwrap(), batch);
            }
        }
        let batch = batch_answers(&engine, &query);
        prop_assert_eq!(engine.query(&query).unwrap(), batch);
    }

    #[test]
    fn pmem_interleavings_match_batch(n in 2usize..25, extra in prop::collection::vec(1i64..25, 0..10)) {
        // Start from the standard list workload (every 3rd element satisfies `p`),
        // then assert additional `p` facts one at a time.
        let workload = lists::pmem_list(n, 3);
        let query = parse_query(&format!("pmem(X, {})", lists::LIST_ID_BASE + 1)).unwrap();
        let mut engine = Engine::new();
        engine.load_source(programs::PMEM).unwrap();
        for (pred, rel) in workload.edb.iter() {
            for tuple in rel.iter() {
                engine.insert(pred, tuple).unwrap();
            }
        }
        let batch = batch_answers(&engine, &query);
        prop_assert_eq!(engine.query(&query).unwrap(), batch);
        for &x in &extra {
            engine.insert("p", &[c(x)]).unwrap();
            let batch = batch_answers(&engine, &query);
            prop_assert_eq!(engine.query(&query).unwrap(), batch);
        }
    }

    #[test]
    fn prepared_path_matches_batch_and_hits_cache(edge_list in edges(10, 30), start in 0i64..10) {
        let query = parse_query(&format!("t({start}, Y)")).unwrap();
        let mut engine = Engine::new();
        engine.load_source(programs::RIGHT_LINEAR_TC).unwrap();
        for &(a, b) in &edge_list {
            engine.insert("e", &[c(a), c(b)]).unwrap();
        }
        let batch = batch_answers(&engine, &query);
        prop_assert_eq!(engine.query_prepared(&query).unwrap(), batch.clone());
        // The same adorned query again: must be answered from the plan cache.
        prop_assert_eq!(engine.query_prepared(&query).unwrap(), batch.clone());
        prop_assert!(
            engine.stats().plan_cache_hits >= 1,
            "second prepared call must hit the cache (hits = {})",
            engine.stats().plan_cache_hits
        );
        prop_assert_eq!(engine.stats().plan_cache_misses, 1);
        // And the prepared path agrees with the materialized-model path.
        prop_assert_eq!(engine.query(&query).unwrap(), batch);
    }
}

#[test]
fn interleaved_inserts_queries_and_prepares_across_predicates() {
    // A deterministic end-to-end interleaving mixing every operation the engine
    // offers, checked against batch evaluation at each step.
    let mut engine = Engine::new();
    engine.load_source(programs::THREE_RULE_TC).unwrap();
    let query0 = parse_query("t(0, Y)").unwrap();
    let query3 = parse_query("t(3, Y)").unwrap();
    for i in 0..12i64 {
        engine.insert("e", &[c(i), c(i + 1)]).unwrap();
        if i % 2 == 0 {
            assert_eq!(
                engine.query(&query0).unwrap(),
                batch_answers(&engine, &query0)
            );
        }
        if i % 5 == 0 {
            assert_eq!(
                engine.query_prepared(&query3).unwrap(),
                batch_answers(&engine, &query3)
            );
        }
        if i == 6 {
            // A mid-stream shortcut edge.
            engine.insert("e", &[c(0), c(6)]).unwrap();
        }
    }
    assert_eq!(
        engine.query(&query0).unwrap(),
        batch_answers(&engine, &query0)
    );
    assert!(engine.stats().plan_cache_hits >= 1);
}
