//! Property-based tests (proptest): the transformation invariants over randomly
//! generated EDBs and, for the evaluator, over randomly generated safe programs.
//!
//! * semi-naive ≡ naive on random graph EDBs;
//! * Magic ≡ original on random EDBs for several programs;
//! * factored ≡ original on random EDBs for every program the analysis declares
//!   factorable (Theorems 4.1–4.3 instantiated);
//! * the §5 optimizer preserves answers;
//! * conjunctive-query containment is sound with respect to evaluation.

use factorlog::core::optimize::{optimize, OptimizeOptions};
use factorlog::core::pipeline::Strategy as PipelineStrategy;
use factorlog::datalog::cq::ConjunctiveQuery;
use factorlog::datalog::eval::{evaluate, naive_evaluate, EvalOptions, Strategy as EvalStrategy};
use factorlog::prelude::*;
use factorlog::workloads::programs;
use proptest::prelude::*;

/// A random edge list over a small domain.
fn edges(
    max_nodes: i64,
    max_edges: usize,
) -> impl proptest::strategy::Strategy<Value = Vec<(i64, i64)>> {
    prop::collection::vec((0..max_nodes, 0..max_nodes), 0..max_edges)
}

fn edge_db(edges: &[(i64, i64)]) -> Database {
    let mut db = Database::new();
    db.ensure_relation(Symbol::intern("e"), 2);
    for &(a, b) in edges {
        db.add_fact("e", &[Const::Int(a), Const::Int(b)]);
    }
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn seminaive_matches_naive_on_random_graphs(edge_list in edges(12, 40)) {
        let program = parse_program(programs::NONLINEAR_TC).unwrap().program;
        let edb = edge_db(&edge_list);
        let options = EvalOptions::default();
        let naive = naive_evaluate(&program, &edb, &options).unwrap();
        let semi = evaluate(&program, &edb, EvalStrategy::SemiNaive, &options).unwrap();
        let t = Symbol::intern("t");
        prop_assert_eq!(
            naive.database.relation(t).unwrap().to_sorted_vec(),
            semi.database.relation(t).unwrap().to_sorted_vec()
        );
    }

    #[test]
    fn magic_preserves_answers_on_random_graphs(edge_list in edges(10, 35), start in 0i64..10) {
        let program = parse_program(programs::THREE_RULE_TC).unwrap().program;
        let query = parse_query(&format!("t({start}, Y)")).unwrap();
        let edb = edge_db(&edge_list);
        let adorned = adorn(&program, &query).unwrap();
        let magicp = magic(&adorned).unwrap();
        let expected = evaluate_default(&program, &edb).unwrap().answers(&query);
        let got = evaluate_default(&magicp.program, &edb).unwrap().answers(&adorned.query);
        prop_assert_eq!(expected, got);
    }

    #[test]
    fn factoring_preserves_answers_when_declared_factorable(
        edge_list in edges(10, 30),
        start in 0i64..10,
    ) {
        // Theorems 4.1-4.3 instantiated on the three transitive-closure variants.
        for src in [programs::THREE_RULE_TC, programs::LEFT_LINEAR_TC, programs::RIGHT_LINEAR_TC] {
            let program = parse_program(src).unwrap().program;
            let query = parse_query(&format!("t({start}, Y)")).unwrap();
            let optimized = optimize_query(&program, &query, &PipelineOptions::default()).unwrap();
            prop_assert_eq!(optimized.strategy, PipelineStrategy::FactoredMagic);
            let edb = edge_db(&edge_list);
            let expected = evaluate_default(&program, &edb).unwrap().answers(&query);
            let got = optimized.answers(&edb).unwrap();
            prop_assert_eq!(expected, got, "program {}", src);
        }
    }

    #[test]
    fn optimizer_passes_preserve_answers(edge_list in edges(10, 30), start in 0i64..10) {
        // Run the generic §5 passes over the *magic* program (no factoring context) and
        // check answers are unchanged.
        let program = parse_program(programs::THREE_RULE_TC).unwrap().program;
        let query = parse_query(&format!("t({start}, Y)")).unwrap();
        let adorned = adorn(&program, &query).unwrap();
        let magicp = magic(&adorned).unwrap();
        let (optimized, _) = optimize(&magicp.program, &adorned.query, None, &OptimizeOptions::default());
        let edb = edge_db(&edge_list);
        let expected = evaluate_default(&magicp.program, &edb).unwrap().answers(&adorned.query);
        let got = evaluate_default(&optimized, &edb).unwrap().answers(&adorned.query);
        prop_assert_eq!(expected, got);
    }

    #[test]
    fn pmem_factoring_is_linear_and_correct(n in 1usize..40, keep in 1usize..4) {
        let workload = factorlog::workloads::lists::pmem_list(n, keep);
        let program = parse_program(programs::PMEM).unwrap().program;
        let query = parse_query(&format!("pmem(X, {})", factorlog::workloads::lists::LIST_ID_BASE + 1)).unwrap();
        let optimized = optimize_query(&program, &query, &PipelineOptions::default()).unwrap();
        prop_assert_eq!(optimized.strategy, PipelineStrategy::FactoredMagic);
        let expected = evaluate_default(&program, &workload.edb).unwrap().answers(&query);
        let result = optimized.evaluate(&workload.edb).unwrap();
        prop_assert_eq!(result.answers(&optimized.query), expected);
        // Linearity: the factored evaluation derives O(n) facts (goal per suffix plus
        // one answer per satisfying member), never the quadratic pmem relation.
        prop_assert!(result.stats.facts_derived <= 2 * n + workload.satisfying + 2);
    }

    #[test]
    fn cq_containment_is_sound_wrt_evaluation(edge_list in edges(8, 25)) {
        // Q1(X,Y) :- e(X,Z), e(Z,Y)  ⊆  Q2(X,Y) :- e(X,U), e(V,Y): containment of the
        // queries implies containment of their answers on every EDB.
        let q1 = ConjunctiveQuery::new(
            vec![Term::var("X"), Term::var("Y")],
            vec![parse_atom("e(X, Z)").unwrap(), parse_atom("e(Z, Y)").unwrap()],
        );
        let q2 = ConjunctiveQuery::new(
            vec![Term::var("X"), Term::var("Y")],
            vec![parse_atom("e(X, U)").unwrap(), parse_atom("e(V, Y)").unwrap()],
        );
        prop_assert!(q1.is_contained_in(&q2));
        let edb = edge_db(&edge_list);
        let p1 = parse_program("q1(X, Y) :- e(X, Z), e(Z, Y).").unwrap().program;
        let p2 = parse_program("q2(X, Y) :- e(X, U), e(V, Y).").unwrap().program;
        let a1 = evaluate_default(&p1, &edb).unwrap().answers(&parse_query("q1(X, Y)").unwrap());
        let a2 = evaluate_default(&p2, &edb).unwrap().answers(&parse_query("q2(X, Y)").unwrap());
        for row in &a1 {
            prop_assert!(a2.contains(row), "containment violated for {row:?}");
        }
    }
}
