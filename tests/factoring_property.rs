//! E3: the factoring property itself (§3) — Proposition 3.1's two equivalent
//! formulations and the counterexample construction from the proof of Theorem 3.1.

use factorlog::core::equivalence::{check_equivalence, EdbSpec};
use factorlog::core::factor_predicate;
use factorlog::prelude::*;

/// The program from the proof of Theorem 3.1.
const THEOREM_3_1: &str = "t(X, Y, Z) :- a1(X), q1(Y, Z).\nt(X, Y, Z) :- a2(X), q2(Y, Z).";

#[test]
fn proposition_3_1_transformation_shape() {
    // Factoring replaces every rule with head p by two rules with the same body, and
    // every body occurrence of p by the pair of projections.
    let program = parse_program("p(X, Y) :- e(X, Y).\nq(Z) :- p(5, Z), g(Z).")
        .unwrap()
        .program;
    let factored = factor_predicate(
        &program,
        Symbol::intern("p"),
        &[0],
        &[1],
        Symbol::intern("p1_prop31"),
        Symbol::intern("p2_prop31"),
    )
    .unwrap();
    let text = format!("{factored}");
    assert!(text.contains("p1_prop31(X) :- e(X, Y)."));
    assert!(text.contains("p2_prop31(Y) :- e(X, Y)."));
    assert!(text.contains("q(Z) :- p1_prop31(5), p2_prop31(Z), g(Z)."));
    assert_eq!(factored.len(), 3);
}

#[test]
fn theorem_3_1_edb_from_the_proof_refutes_factoring_into_t1_t2() {
    // The proof's first EDB: a2 empty, a1 = {1}, q2 empty, q1 = {(2,3), (4,5)}.
    // Factoring t into t1(X) / t2(Y, Z) happens to be harmless on THIS instance (both
    // rules' a/q pairs coincide), but factoring into t'(X, Y) / t''(Z) recombines
    // (1, 2) with 5 and (1, 4) with 3, exactly as the paper argues.
    let program = parse_program(THEOREM_3_1).unwrap().program;
    let query = parse_query("t(X, Y, Z)").unwrap();
    let mut with_recombination = factor_predicate(
        &program,
        Symbol::intern("t"),
        &[0, 1],
        &[2],
        Symbol::intern("tp_thm31"),
        Symbol::intern("tpp_thm31"),
    )
    .unwrap();
    with_recombination.push(parse_rule("t(X, Y, Z) :- tp_thm31(X, Y), tpp_thm31(Z).").unwrap());

    let mut edb = Database::new();
    edb.add_fact("a1", &[Const::Int(1)]);
    edb.add_fact("q1", &[Const::Int(2), Const::Int(3)]);
    edb.add_fact("q1", &[Const::Int(4), Const::Int(5)]);
    edb.ensure_relation(Symbol::intern("a2"), 1);
    edb.ensure_relation(Symbol::intern("q2"), 2);

    let original = evaluate_default(&program, &edb).unwrap().answers(&query);
    let factored = evaluate_default(&with_recombination, &edb)
        .unwrap()
        .answers(&query);
    assert_eq!(
        original,
        vec![
            vec![Const::Int(1), Const::Int(2), Const::Int(3)],
            vec![Const::Int(1), Const::Int(4), Const::Int(5)],
        ]
    );
    assert!(factored.contains(&vec![Const::Int(1), Const::Int(2), Const::Int(5)]));
    assert!(factored.contains(&vec![Const::Int(1), Const::Int(4), Const::Int(3)]));
    assert!(factored.len() > original.len());
}

#[test]
fn theorem_3_1_t1_t2_factoring_fails_when_a1_and_a2_differ() {
    // The second half of the proof: factoring into t1(X) / t2(Y, Z) preserves answers
    // iff q1 and q2 compute the same relation whenever a1 and a2 differ. With
    // different a's and different q's, random EDBs find a counterexample quickly.
    let program = parse_program(THEOREM_3_1).unwrap().program;
    let query = parse_query("t(X, Y, Z)").unwrap();
    let mut factored = factor_predicate(
        &program,
        Symbol::intern("t"),
        &[0],
        &[1, 2],
        Symbol::intern("t1_thm31"),
        Symbol::intern("t2_thm31"),
    )
    .unwrap();
    factored.push(parse_rule("t(X, Y, Z) :- t1_thm31(X), t2_thm31(Y, Z).").unwrap());

    let specs = [
        EdbSpec::new("a1", 1, 3),
        EdbSpec::new("a2", 1, 3),
        EdbSpec::new("q1", 2, 4),
        EdbSpec::new("q2", 2, 4),
    ];
    let counterexample =
        check_equivalence(&program, &query, &factored, &query, &specs, 8, 40, 1234).unwrap();
    assert!(
        counterexample.is_some(),
        "factoring t into t1/t2 must be refutable when a1, a2, q1, q2 are unrelated"
    );
}

#[test]
fn factoring_is_sound_when_the_two_rules_coincide() {
    // If a1 = a2 and q1 = q2 syntactically (a single rule), t is a cartesian product
    // and the factoring is exact on every EDB we try.
    let program = parse_program("t(X, Y, Z) :- a1(X), q1(Y, Z).")
        .unwrap()
        .program;
    let query = parse_query("t(X, Y, Z)").unwrap();
    let mut factored = factor_predicate(
        &program,
        Symbol::intern("t"),
        &[0],
        &[1, 2],
        Symbol::intern("t1_cart"),
        Symbol::intern("t2_cart"),
    )
    .unwrap();
    factored.push(parse_rule("t(X, Y, Z) :- t1_cart(X), t2_cart(Y, Z).").unwrap());
    let specs = [EdbSpec::new("a1", 1, 4), EdbSpec::new("q1", 2, 6)];
    let counterexample =
        check_equivalence(&program, &query, &factored, &query, &specs, 8, 30, 99).unwrap();
    assert!(counterexample.is_none(), "{counterexample:?}");
}
