//! Property tests for the hash-keyed secondary indexes of the storage layer: the
//! indexed access paths of the compiled join pipeline must be *observationally
//! identical* to the scan fallback, no matter how relations, patterns, and index sets
//! are chosen, and no matter how `insert` / `ensure_index` / `clear` interleave.

use factorlog::datalog::ast::Const;
use factorlog::datalog::storage::{hash_key, Relation, RowId};
use proptest::prelude::*;

fn c(i: i64) -> Const {
    Const::Int(i)
}

fn build(arity: usize, rows: &[Vec<i64>]) -> Relation {
    let mut r = Relation::new(arity);
    for row in rows {
        let tuple: Vec<Const> = row.iter().map(|&v| c(v)).collect();
        r.insert(&tuple);
    }
    r
}

/// Reference implementation: scan the relation for rows matching the pattern.
fn scan_select(r: &Relation, pattern: &[Option<Const>]) -> Vec<RowId> {
    let mut out = Vec::new();
    for id in 0..r.len() as RowId {
        let row = r.row(id);
        if pattern
            .iter()
            .enumerate()
            .all(|(i, p)| p.is_none() || *p == Some(row[i]))
        {
            out.push(id);
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `Relation::select` answers identically with and without a covering index, for
    /// every bound-column mask and probe-value combination. The tuple domain is small
    /// on purpose, so duplicate keys (multi-row buckets) occur constantly.
    #[test]
    fn indexed_select_matches_scan(
        raw_rows in prop::collection::vec((0i64..6, 0i64..6, 0i64..6), 0..40),
        mask in 0usize..8,
        p0 in 0i64..6,
        p1 in 0i64..6,
        p2 in 0i64..6,
    ) {
        let rows: Vec<Vec<i64>> = raw_rows.iter().map(|&(a, b, x)| vec![a, b, x]).collect();
        let unindexed = build(3, &rows);
        let mut indexed = build(3, &rows);
        let bound: Vec<usize> = (0..3).filter(|i| mask & (1 << i) != 0).collect();
        indexed.ensure_index(&bound);
        let probe = [p0, p1, p2];
        let pattern: Vec<Option<Const>> = (0..3)
            .map(|i| (mask & (1 << i) != 0).then(|| c(probe[i])))
            .collect();

        let reference = scan_select(&unindexed, &pattern);
        let mut via_plain = Vec::new();
        unindexed.select(&pattern, &mut via_plain);
        let mut via_index = Vec::new();
        indexed.select(&pattern, &mut via_index);

        via_plain.sort_unstable();
        via_index.sort_unstable();
        prop_assert_eq!(&via_plain, &reference);
        prop_assert_eq!(&via_index, &reference);

        // The raw probe API agrees too (when the mask names a nontrivial index).
        if !bound.is_empty() && bound.len() < 3 {
            let key: Vec<Const> = bound.iter().map(|&i| pattern[i].unwrap()).collect();
            let mut probed = indexed.probe(&bound, &key).expect("index exists");
            probed.sort_unstable();
            prop_assert_eq!(&probed, &reference);
        }
    }

    /// Hash-bucket candidates, verified against the flat store, equal the scan result
    /// — the invariant the join pipeline's binding-loop verification relies on.
    #[test]
    fn probe_candidates_contain_exactly_the_matches_after_verification(
        raw_rows in prop::collection::vec((0i64..6, 0i64..6), 0..50),
        key in 0i64..6,
    ) {
        let rows: Vec<Vec<i64>> = raw_rows.iter().map(|&(a, b)| vec![a, b]).collect();
        let mut r = build(2, &rows);
        let id = r.ensure_index(&[0]).expect("nontrivial index on arity 2");
        let key_consts = [c(key)];
        let mut verified: Vec<RowId> = r
            .probe_candidates(id, hash_key(&key_consts))
            .iter()
            .copied()
            .filter(|&row| r.row(row)[0] == c(key))
            .collect();
        verified.sort_unstable();
        let pattern = vec![Some(c(key)), None];
        let reference = scan_select(&r, &pattern);
        prop_assert_eq!(verified, reference);
    }

    /// Index contents survive arbitrary interleavings of insert, ensure_index and
    /// clear: after the dust settles, every built index answers exactly like a scan,
    /// and duplicate detection is still intact.
    #[test]
    fn indexes_survive_interleaved_mutation(
        ops in prop::collection::vec((0usize..10, 0i64..6, 0i64..6), 1..60),
        probe in 0i64..6,
    ) {
        let mut r = Relation::new(2);
        let mut built: Vec<Vec<usize>> = Vec::new();
        for &(op, a, b) in &ops {
            match op {
                // Clears are rare (index definitions must survive them).
                0 => r.clear(),
                // Occasionally build an index mid-stream, on either column.
                1 | 2 => {
                    let cols = vec![op - 1];
                    r.ensure_index(&cols);
                    if !built.contains(&cols) {
                        built.push(cols);
                    }
                }
                _ => {
                    r.insert(&[c(a), c(b)]);
                }
            }
        }
        for cols in &built {
            let key = [c(probe)];
            let mut probed = r.probe(cols, &key).expect("built index exists");
            probed.sort_unstable();
            let pattern: Vec<Option<Const>> = (0..2)
                .map(|i| cols.contains(&i).then(|| c(probe)))
                .collect();
            let reference = scan_select(&r, &pattern);
            prop_assert_eq!(probed, reference, "index on {:?} diverged from scan", cols);
        }
        // Duplicate detection stays intact after clears and re-inserts.
        let before = r.len();
        for id in 0..r.len() as RowId {
            let row = r.row(id).to_vec();
            prop_assert!(!r.insert(&row), "existing row re-inserted as new");
        }
        prop_assert_eq!(r.len(), before);
    }
}
