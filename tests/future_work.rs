//! E11: the future-work examples of §7 — Example 7.1 (the factored Magic program can
//! itself be factored again, down to unary predicates) and Example 7.2 (non-unit
//! programs where the recursive predicate is not the query predicate).

use factorlog::core::equivalence::{check_equivalence, EdbSpec};
use factorlog::core::factor_predicate;
use factorlog::prelude::*;
use factorlog::workloads::programs;

#[test]
fn example_7_1_factored_magic_program_and_the_second_factoring() {
    // t(X, Y, Z) :- t(X, U, W), b(U, Y), d(Z).  with query t(5, Y, Z): the pipeline
    // factors t into bt(X) / ft(Y, Z) and the §5 optimizations leave exactly the
    // program Example 7.1 displays (a unary magic predicate plus the binary ft).
    let program = parse_program(programs::EXAMPLE_7_1).unwrap().program;
    let query = parse_query("t(5, Y, Z)").unwrap();
    let optimized = optimize_query(&program, &query, &PipelineOptions::default()).unwrap();
    assert_eq!(optimized.strategy, Strategy::FactoredMagic);
    let factored = optimized.factored.as_ref().unwrap();
    assert_eq!(factored.free_positions.len(), 2, "ft is binary");
    let text = format!("{}", optimized.program);
    assert!(text.contains("m_t_bff(5)."), "{text}");
    assert!(
        text.contains("f_t_bff(Y, Z) :- f_t_bff(U, W), b(U, Y), d(Z)."),
        "{text}"
    );
    assert!(
        text.contains("f_t_bff(Y, Z) :- m_t_bff(X), e(X, Y, Z)."),
        "{text}"
    );

    // The answers are preserved by the first factoring on random EDBs.
    let specs = [
        EdbSpec::new("e", 3, 12),
        EdbSpec::new("b", 2, 10),
        EdbSpec::new("d", 1, 5),
    ];
    let counterexample = check_equivalence(
        &program,
        &query,
        &optimized.program,
        &optimized.query,
        &specs,
        7,
        30,
        776,
    )
    .unwrap();
    assert!(counterexample.is_none(), "{counterexample:?}");

    // The paper then suggests (as future work, beyond its own theorems) factoring ft
    // again into ft1(Y) / ft2(Z). Applying Proposition 3.1 literally produces the
    // program the example displays — but the randomized check shows the second
    // factoring is *not* answer-preserving for arbitrary EDBs: the exit rule
    // correlates Y and Z through e(X, Y, Z), and the recombination ft1 × ft2 loses
    // that correlation. We record this as a reproduction finding (see EXPERIMENTS.md,
    // E11): Example 7.1's second factoring needs additional conditions on the EDB.
    let ft = factored.free_predicate;
    let ft1 = Symbol::intern("ft1_ex71");
    let ft2 = Symbol::intern("ft2_ex71");
    let mut twice = factor_predicate(&optimized.program, ft, &[0], &[1], ft1, ft2).unwrap();
    twice.push(Rule::new(
        Atom::new(ft, vec![Term::var("Y"), Term::var("Z")]),
        vec![
            Atom::new(ft1, vec![Term::var("Y")]),
            Atom::new(ft2, vec![Term::var("Z")]),
        ],
    ));
    // All derived predicates of the twice-factored program are unary (the arity
    // reduction the example is after)...
    for rule in &twice.rules {
        for atom in std::iter::once(&rule.head).chain(rule.body.iter()) {
            let name = atom.predicate.as_str();
            if name.starts_with("ft1_") || name.starts_with("ft2_") || name.starts_with("m_") {
                assert!(atom.arity() <= 1, "{atom}");
            }
        }
    }
    // ...but equivalence fails in general.
    let counterexample = check_equivalence(
        &program,
        &query,
        &twice,
        &optimized.query,
        &specs,
        7,
        30,
        777,
    )
    .unwrap();
    assert!(
        counterexample.is_some(),
        "the unconditional second factoring of Example 7.1 should be refutable"
    );
}

#[test]
fn example_7_2_non_unit_program_is_rejected_by_the_unit_analysis() {
    // q(Y) :- a(X, Z), p(Z, Y) on top of the right-linear p: the recursion is not the
    // query predicate, so the unit-program analysis declines (classification is None)
    // and the pipeline falls back to Magic only — the open problem the paper states.
    let src = "q(Y) :- a(X, Z), p(Z, Y).\n\
               p(X, Y) :- b(X, U), p(U, Y).\n\
               p(X, Y) :- e(X, Y).";
    let program = parse_program(src).unwrap().program;
    let query = parse_query("q(Y)").unwrap();
    let optimized = optimize_query(&program, &query, &PipelineOptions::default()).unwrap();
    assert!(optimized.classification.is_none());
    assert_eq!(optimized.strategy, Strategy::MagicOnly);

    // The magic fallback is still correct.
    let mut edb = Database::new();
    edb.add_fact("a", &[Const::Int(1), Const::Int(2)]);
    edb.add_fact("b", &[Const::Int(2), Const::Int(3)]);
    edb.add_fact("e", &[Const::Int(3), Const::Int(4)]);
    edb.add_fact("e", &[Const::Int(2), Const::Int(9)]);
    let expected = evaluate_default(&program, &edb).unwrap().answers(&query);
    assert_eq!(optimized.answers(&edb).unwrap(), expected);
    assert_eq!(expected, vec![vec![Const::Int(4)], vec![Const::Int(9)]]);
}
