//! Line-protocol robustness harness for the event-driven front end: requests
//! arriving split at ARBITRARY byte boundaries (with stalls between chunks)
//! and requests arriving back-to-back in one packet must both produce exactly
//! the replies the same requests produce when sent one at a time — same bytes,
//! same order.
//!
//! This pins the two failure modes a readiness-loop front end can regress
//! into: truncating a request whose bytes straddle a readiness event (the bug
//! this PR's first commit fixed in the old polling loop), and reordering or
//! dropping replies when several complete requests are drained from one read.
//!
//! Also here: the reactor's scalability contract — hundreds of idle
//! connections cost pollfd entries, not threads.
//!
//! CI runs this file under `FACTORLOG_THREADS=1` and `=4`.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use factorlog::prelude::*;
use proptest::prelude::*;

const TC: &str = "t(X, Y) :- e(X, Y).\nt(X, Y) :- e(X, W), t(W, Y).";

fn tc_engine(edges: i64) -> Engine {
    let mut engine = Engine::new();
    engine.load_source(TC).expect("program loads");
    for i in 0..edges {
        engine
            .insert("e", &[Const::Int(i), Const::Int(i + 1)])
            .expect("edge inserts");
    }
    engine
}

fn server_opts() -> ServerOptions {
    ServerOptions {
        group_window: Duration::from_millis(2),
        drain_timeout: Duration::from_secs(3),
        ..ServerOptions::default()
    }
}

/// The request pool the generators draw from. All are read-only or invalid,
/// so replies are deterministic for a fixed database (epoch never moves).
const REQUESTS: &[&str] = &[
    "PING",
    "EPOCH",
    "QUERY t(0, Y)",
    "QUERY t(2, Y)",
    "QUERY t(9, Y)",
    "QUERY e(X, Y)",
    "QUERY t(0, Y",  // parse error: structured ERR, connection survives
    "FROBNICATE 12", // unknown verb: structured ERR, connection survives
    "STATS",
];

/// Does this reply line end a request's reply (vs. being a streamed row)?
fn is_verdict(line: &str) -> bool {
    line.starts_with("OK") || line.starts_with("ERR")
}

/// Send `request` alone and collect its full reply (one verdict line, any
/// `ROW` lines before it).
fn reply_of(
    stream: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    request: &str,
) -> Vec<String> {
    writeln!(stream, "{request}").expect("request writes");
    stream.flush().expect("request flushes");
    read_one_reply(reader)
}

fn read_one_reply(reader: &mut BufReader<TcpStream>) -> Vec<String> {
    let mut lines = Vec::new();
    loop {
        let mut line = String::new();
        let n = reader.read_line(&mut line).expect("reply line reads");
        assert!(n > 0, "server closed the connection mid-reply");
        let line = line.trim_end().to_string();
        let done = is_verdict(&line);
        lines.push(line);
        if done {
            return lines;
        }
    }
}

/// `STATS` replies contain live counters (in-flight, wakeups) that legally
/// differ between two observations; normalize them down to their shape.
fn normalized(lines: Vec<String>) -> Vec<String> {
    lines
        .into_iter()
        .map(|line| {
            if line.starts_with("OK epoch=") && line.contains("reactor_wakeups=") {
                line.split_whitespace()
                    .map(|field| field.split('=').next().unwrap_or(field))
                    .collect::<Vec<_>>()
                    .join(" ")
            } else {
                line
            }
        })
        .collect()
}

fn connect(addr: std::net::SocketAddr) -> (TcpStream, BufReader<TcpStream>) {
    let stream = TcpStream::connect(addr).expect("connects");
    stream.set_nodelay(true).expect("nodelay");
    stream
        .set_read_timeout(Some(Duration::from_secs(20)))
        .expect("read timeout");
    let reader = BufReader::new(stream.try_clone().expect("clone"));
    (stream, reader)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Packetization invariance: a request stream cut at arbitrary byte
    /// boundaries — including mid-verb, mid-atom, and right before a
    /// newline, with stalls between chunks — produces byte-identical,
    /// in-order replies to the same requests sent whole, one at a time.
    #[test]
    fn arbitrary_byte_splits_never_change_the_replies(
        picks in proptest::collection::vec(0usize..REQUESTS.len(), 2..12),
        cuts in proptest::collection::vec(1usize..200, 0..6),
        stall_every in 1usize..4,
    ) {
        let handle = serve(tc_engine(10), "127.0.0.1:0", server_opts()).expect("serve");
        let addr = handle.addr();

        // Reference: each request alone on its own flush, replies collected.
        let (mut ref_stream, mut ref_reader) = connect(addr);
        let expected: Vec<Vec<String>> = picks
            .iter()
            .map(|&i| normalized(reply_of(&mut ref_stream, &mut ref_reader, REQUESTS[i])))
            .collect();

        // Candidate: the same requests as ONE byte stream, cut at the
        // generated offsets, with stalls after every `stall_every`-th chunk
        // so cuts land on separate reactor reads, not one socket buffer.
        let mut bytes = Vec::new();
        for &i in &picks {
            bytes.extend_from_slice(REQUESTS[i].as_bytes());
            bytes.push(b'\n');
        }
        let mut offsets: Vec<usize> = cuts
            .iter()
            .map(|&c| c % bytes.len().max(1))
            .filter(|&c| c > 0 && c < bytes.len())
            .collect();
        offsets.sort_unstable();
        offsets.dedup();
        offsets.push(bytes.len());

        let (mut stream, mut reader) = connect(addr);
        let mut start = 0usize;
        for (chunk_idx, &end) in offsets.iter().enumerate() {
            stream.write_all(&bytes[start..end]).expect("chunk writes");
            stream.flush().expect("chunk flushes");
            start = end;
            if chunk_idx % stall_every == 0 && end < bytes.len() {
                std::thread::sleep(Duration::from_millis(15));
            }
        }
        let got: Vec<Vec<String>> = picks
            .iter()
            .map(|_| normalized(read_one_reply(&mut reader)))
            .collect();

        prop_assert_eq!(&got, &expected, "split stream diverged from whole requests");
        handle.shutdown();
    }
}

/// Back-to-back pipelining with a write in the middle: the reply order must
/// match the request order even though the `TXN` detours through the
/// group-commit pipeline while the queries are answered inline. The reactor
/// must pause draining behind the in-flight transaction, not run the later
/// queries early (they must see the committed write).
#[test]
fn pipelined_txn_then_query_replies_in_request_order() {
    let handle = serve(tc_engine(3), "127.0.0.1:0", server_opts()).expect("serve");
    let (mut stream, mut reader) = connect(handle.addr());
    stream
        .write_all(b"QUERY e(90, Y)\nTXN +e(90, 91)\nQUERY e(90, Y)\nPING\n")
        .expect("pipelined batch writes");
    stream.flush().expect("flushes");

    let before = read_one_reply(&mut reader);
    assert_eq!(
        before,
        vec!["OK rows=0 epoch=0"],
        "pre-txn query runs first"
    );
    let txn = read_one_reply(&mut reader);
    assert_eq!(txn, vec!["OK asserted=1 retracted=0 epoch=1"]);
    let after = read_one_reply(&mut reader);
    assert_eq!(
        after,
        vec!["ROW 91", "OK rows=1 epoch=1"],
        "post-txn query must observe the commit it queued behind"
    );
    assert_eq!(read_one_reply(&mut reader), vec!["OK pong"]);
    let report = handle.shutdown();
    assert!(report.drained_cleanly);
    assert!(
        report.server_metrics.pipelined_requests >= 4,
        "all four requests counted as pipelined work: {:?}",
        report.server_metrics
    );
}

/// A >1 MiB burst of small pipelined requests is load, not a protocol
/// violation: every request must be answered, with backpressure while the
/// backlog drains — never a "line limit" close. The leading TXN (plus a wide
/// group window) pauses draining behind the commit pipeline, forcing the
/// backlog to genuinely accumulate past the cap in the connection's buffer.
#[test]
fn megabyte_of_pipelined_requests_is_backpressured_not_killed() {
    let opts = ServerOptions {
        group_window: Duration::from_millis(150),
        drain_timeout: Duration::from_secs(5),
        ..ServerOptions::default()
    };
    let handle = serve(tc_engine(3), "127.0.0.1:0", opts).expect("serve");
    let (mut stream, mut reader) = connect(handle.addr());

    const PINGS: usize = 250_000; // "PING\n" is 5 bytes: 1.25 MiB, past the 1 MiB line cap
    let mut bytes = Vec::with_capacity(PINGS * 5 + 32);
    bytes.extend_from_slice(b"TXN +e(700, 701)\n");
    for _ in 0..PINGS {
        bytes.extend_from_slice(b"PING\n");
    }
    stream.write_all(&bytes).expect("burst writes");
    stream.flush().expect("burst flushes");

    assert_eq!(
        read_one_reply(&mut reader),
        vec!["OK asserted=1 retracted=0 epoch=1"]
    );
    for i in 0..PINGS {
        let reply = read_one_reply(&mut reader);
        assert_eq!(reply, vec!["OK pong"], "ping {i} of {PINGS} lost or mangled");
    }
    handle.shutdown();
}

/// The per-LINE cap still holds: a single request line longer than 1 MiB is
/// a protocol violation answered with a structured parse error and a close.
#[test]
fn oversized_single_line_still_closes_the_connection() {
    let handle = serve(tc_engine(3), "127.0.0.1:0", server_opts()).expect("serve");
    let (mut stream, mut reader) = connect(handle.addr());
    // One byte past the cap, no terminator: the server consumes every byte
    // before deciding, so the error reply is delivered before the close.
    let line = vec![b'x'; (1 << 20) + 1];
    stream.write_all(&line).expect("oversized line writes");
    stream.flush().expect("flushes");

    let mut reply = String::new();
    reader.read_line(&mut reply).expect("error line reads");
    assert!(
        reply.starts_with("ERR parse"),
        "oversized line must get a structured parse error, got {reply:?}"
    );
    let mut rest = String::new();
    let n = reader.read_line(&mut rest).unwrap_or(0);
    assert_eq!(n, 0, "connection must be closed after the violation");
    handle.shutdown();
}

/// The reactor's scalability contract: hundreds of connections are pollfd
/// entries in ONE thread, not a thread each. 256+ idle connections must leave
/// the process thread count untouched and the server responsive.
#[test]
fn idle_connections_cost_no_threads() {
    let handle = serve(tc_engine(3), "127.0.0.1:0", server_opts()).expect("serve");
    let addr = handle.addr();
    let threads_before = process_threads();

    let mut idle = Vec::new();
    for i in 0..260 {
        match TcpStream::connect(addr) {
            Ok(stream) => idle.push(stream),
            Err(e) => panic!("connection {i} refused: {e}"),
        }
    }
    // Every connection is live, not just accepted: probe a sample end to end.
    for stream in idle.iter_mut().step_by(64) {
        stream.set_nodelay(true).expect("nodelay");
        stream
            .set_read_timeout(Some(Duration::from_secs(20)))
            .expect("read timeout");
        writeln!(stream, "PING").expect("ping writes");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut line = String::new();
        reader.read_line(&mut line).expect("pong reads");
        assert_eq!(line.trim_end(), "OK pong");
    }
    // A fresh client still gets in and out while the 260 sit idle.
    let mut client = Client::connect(addr).expect("fresh client connects");
    assert_eq!(client.query("t(0, Y)").expect("query").rows.len(), 3);

    if let (Some(before), Some(during)) = (threads_before, process_threads()) {
        assert!(
            during <= before + 2,
            "{} idle connections grew the thread count {before} -> {during}: \
             the front end is spawning per connection again",
            idle.len()
        );
    }
    drop(idle);
    let report = handle.shutdown();
    assert!(report.drained_cleanly);
}

/// Thread count of this process from `/proc/self/status` (Linux only; `None`
/// elsewhere, which skips the thread-growth assertion but not the smoke).
fn process_threads() -> Option<usize> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
}
