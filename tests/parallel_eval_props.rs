//! Property tests for the hash-partitioned parallel evaluator: for random programs
//! and databases, evaluation at 2/4/8 worker threads must be *bit-identical* to the
//! single-thread evaluation — the same fact set, the same relation insertion order
//! (the deterministic-merge guarantee), and the same machine-independent counters —
//! for both batch evaluation and `seminaive_resume`. A companion property pins the
//! ordering-invariance contract of the join-ordering heuristic: permuting rule bodies
//! never changes the computed model.

use factorlog::datalog::ast::Const;
use factorlog::datalog::eval::{
    seminaive_evaluate, seminaive_resume, CompiledProgram, EvalOptions,
};
use factorlog::datalog::fx::FxHashMap;
use factorlog::datalog::parser::parse_program;
use factorlog::datalog::storage::{Database, Relation};
use factorlog::datalog::symbol::Symbol;
use proptest::prelude::*;

fn c(i: i64) -> Const {
    Const::Int(i)
}

/// The program pool random cases draw from: linear, nonlinear, and multi-rule
/// recursion plus a two-relation join — the body shapes that stress delta
/// substitution at every literal position.
const PROGRAMS: &[&str] = &[
    "t(X, Y) :- e(X, Y).\nt(X, Y) :- e(X, W), t(W, Y).",
    "t(X, Y) :- e(X, Y).\nt(X, Y) :- t(X, W), t(W, Y).",
    "t(X, Y) :- t(X, W), t(W, Y).\nt(X, Y) :- e(X, W), t(W, Y).\n\
     t(X, Y) :- t(X, W), e(W, Y).\nt(X, Y) :- e(X, Y).",
    "p(X, Y) :- e(X, W), f(W, Y).\np(X, Y) :- e(X, W), p(W, Y).",
];

/// Evaluation options forcing the partitioned path at any size.
fn options(threads: usize) -> EvalOptions {
    EvalOptions {
        threads,
        parallel_threshold: 0,
        ..EvalOptions::default()
    }
}

fn build_db(edges: &[(i64, i64)], extra_pred: Option<&str>) -> Database {
    let mut db = Database::new();
    for &(a, b) in edges {
        db.add_fact("e", &[c(a), c(b)]);
        if let Some(pred) = extra_pred {
            // A second relation derived from the same pairs (shifted) so two-relation
            // joins have matches.
            db.add_fact(pred, &[c(b), c(a + 1)]);
        }
    }
    db
}

/// Snapshot of a database: per-predicate tuple lists in insertion order, predicates
/// sorted by name — equality means identical content AND identical insertion order.
fn snapshot(db: &Database) -> Vec<(String, Vec<Vec<Const>>)> {
    let mut out: Vec<(String, Vec<Vec<Const>>)> = db
        .iter()
        .map(|(p, rel)| (p.as_str().to_string(), rel.to_vec()))
        .collect();
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Batch evaluation at 2/4/8 threads reproduces the single-thread run exactly.
    #[test]
    fn parallel_batch_is_bit_identical(
        raw_edges in prop::collection::vec((0i64..12, 0i64..12), 1..50),
        prog_idx in 0usize..4,
    ) {
        let program = parse_program(PROGRAMS[prog_idx]).unwrap().program;
        let needs_f = prog_idx == 3;
        let db = build_db(&raw_edges, needs_f.then_some("f"));
        let baseline = seminaive_evaluate(&program, &db, &options(1)).unwrap();
        let reference = snapshot(&baseline.database);
        for threads in [2usize, 4, 8] {
            let parallel = seminaive_evaluate(&program, &db, &options(threads)).unwrap();
            prop_assert_eq!(&snapshot(&parallel.database), &reference,
                "model must be bit-identical at {} threads", threads);
            prop_assert_eq!(parallel.stats.inferences, baseline.stats.inferences);
            prop_assert_eq!(parallel.stats.duplicates, baseline.stats.duplicates);
            prop_assert_eq!(parallel.stats.facts_derived, baseline.stats.facts_derived);
            prop_assert_eq!(parallel.stats.index_probes, baseline.stats.index_probes);
            prop_assert_eq!(parallel.stats.full_scans, baseline.stats.full_scans);
        }
    }

    /// Incremental resume at 2/4/8 threads reproduces the single-thread resume
    /// exactly: same final model (order included), same counters.
    #[test]
    fn parallel_resume_is_bit_identical(
        base_edges in prop::collection::vec((0i64..10, 0i64..10), 1..30),
        extra_edges in prop::collection::vec((0i64..10, 0i64..10), 1..10),
        prog_idx in 0usize..3,
    ) {
        let program = parse_program(PROGRAMS[prog_idx]).unwrap().program;
        let run = |threads: usize| {
            let opts = options(threads);
            let compiled = CompiledProgram::compile(&program, &opts).unwrap();
            let base_db = build_db(&base_edges, None);
            let mut model = seminaive_evaluate(&program, &base_db, &opts).unwrap().database;
            let mut seed_rel = Relation::new(2);
            for &(a, b) in &extra_edges {
                if model.add_fact("e", &[c(a), c(b)]) {
                    seed_rel.insert(&[c(a), c(b)]);
                }
            }
            let mut seeds: FxHashMap<Symbol, Relation> = FxHashMap::default();
            seeds.insert(Symbol::intern("e"), seed_rel);
            let stats = seminaive_resume(&compiled, &mut model, &seeds, &opts).unwrap();
            (snapshot(&model), stats)
        };
        let (reference, base_stats) = run(1);
        for threads in [2usize, 4, 8] {
            let (model, stats) = run(threads);
            prop_assert_eq!(&model, &reference,
                "resumed model must be bit-identical at {} threads", threads);
            prop_assert_eq!(stats.inferences, base_stats.inferences);
            prop_assert_eq!(stats.facts_derived, base_stats.facts_derived);
        }
    }

    /// Ordering invariance: reversing every rule body changes neither the computed
    /// model (sorted comparison — execution order legitimately differs) nor the
    /// inference count, with the reorder heuristic on or off.
    #[test]
    fn body_order_never_changes_the_model(
        raw_edges in prop::collection::vec((0i64..10, 0i64..10), 1..40),
        prog_idx in 0usize..4,
    ) {
        let program = parse_program(PROGRAMS[prog_idx]).unwrap().program;
        let mut reversed = program.clone();
        for rule in &mut reversed.rules {
            rule.body.reverse();
        }
        let needs_f = prog_idx == 3;
        let db = build_db(&raw_edges, needs_f.then_some("f"));
        let sorted_model = |db: &Database| {
            let mut out: Vec<(String, Vec<Vec<Const>>)> = db
                .iter()
                .map(|(p, rel)| (p.as_str().to_string(), rel.to_sorted_vec()))
                .collect();
            out.sort_by(|a, b| a.0.cmp(&b.0));
            out
        };
        let mut results = Vec::new();
        for reorder in [true, false] {
            let opts = EvalOptions {
                threads: 1,
                reorder_literals: reorder,
                ..EvalOptions::default()
            };
            for p in [&program, &reversed] {
                let result = seminaive_evaluate(p, &db, &opts).unwrap();
                results.push(sorted_model(&result.database));
            }
        }
        for other in &results[1..] {
            prop_assert_eq!(other, &results[0], "all orders and both heuristic settings agree");
        }
    }
}

/// The observability contract, as a deterministic companion to the bit-identity
/// properties above: tracing the same program over the same data must yield an
/// identical profile *shape* — phase span counts (`parallel.*` phases excluded)
/// and per-rule firings / rows in / rows out — at 1, 2, and 4 worker threads.
/// Rows are counted at the shared staging sink and firings once per rule per
/// round, so partitioning changes only the wall-clock times, which the shape
/// deliberately drops.
#[test]
fn profile_shape_is_identical_across_thread_counts() {
    let program = parse_program(PROGRAMS[2]).unwrap().program;
    let edges: Vec<(i64, i64)> = (0..12i64)
        .flat_map(|a| [(a, (a + 1) % 12), (a, (a + 5) % 12)])
        .collect();
    let db = build_db(&edges, None);
    let traced = |threads: usize| {
        let opts = EvalOptions {
            trace: true,
            ..options(threads)
        };
        let result = seminaive_evaluate(&program, &db, &opts).unwrap();
        result
            .stats
            .profile
            .expect("tracing collects a profile")
            .shape()
    };
    let baseline = traced(1);
    assert!(!baseline.0.is_empty(), "phase counts recorded");
    assert!(
        baseline.1.iter().any(|&(firings, _, _)| firings > 0),
        "rule firings recorded"
    );
    assert!(
        baseline.1.iter().any(|&(_, _, rows_out)| rows_out > 0),
        "rows out recorded"
    );
    for threads in [2usize, 4] {
        assert_eq!(
            traced(threads),
            baseline,
            "profile shape differs at {threads} threads"
        );
    }
}
