//! Mutation-correctness property tests for the transactional engine API: any
//! interleaving of assert/retract batches must converge to exactly the from-scratch
//! evaluation of the surviving EDB — at 1, 2 and 4 worker threads, with the parallel
//! threshold forced to zero so delete propagation exercises the partitioned executor —
//! and a snapshot→restore round-trip must preserve a session mid-stream.

use std::collections::BTreeSet;

use factorlog::prelude::*;
use factorlog::workloads::programs;
use proptest::prelude::*;

fn c(i: i64) -> Const {
    Const::Int(i)
}

/// Engines under test: one per thread count, threshold zero so even tiny rounds run
/// partitioned. Results must be identical across the whole list.
fn engines_at_thread_counts(source: &str) -> Vec<Engine> {
    [1usize, 2, 4]
        .iter()
        .map(|&threads| {
            let mut engine = Engine::with_options(EvalOptions {
                threads,
                parallel_threshold: 0,
                ..EvalOptions::default()
            });
            engine.load_source(source).unwrap();
            engine
        })
        .collect()
}

/// From-scratch evaluation of the engine's current program over its current base
/// facts — the reference every maintained model must match.
fn batch_answers(engine: &Engine, query: &Query) -> Vec<Vec<Const>> {
    evaluate_default(engine.program(), engine.facts())
        .expect("batch evaluation succeeds")
        .answers(query)
}

/// One generated mutation: `kind == 0` retracts, otherwise asserts (two-thirds
/// asserts keeps the databases non-trivial).
type Op = (usize, i64, i64);

/// Apply one batch of edge mutations through the transactional API; returns the
/// summary of the first engine (all engines must agree on it).
fn apply_edge_batch(engines: &mut [Engine], predicate: &str, batch: &[Op]) -> TxnSummary {
    let mut first: Option<TxnSummary> = None;
    for engine in engines.iter_mut() {
        let mut txn = engine.transaction();
        for &(kind, a, b) in batch {
            if kind == 0 {
                txn.retract(predicate, &[c(a), c(b)]);
            } else {
                txn.assert(predicate, &[c(a), c(b)]);
            }
        }
        let summary = txn.commit().expect("commit succeeds");
        match first {
            None => first = Some(summary),
            Some(expected) => assert_eq!(expected, summary, "summaries agree across threads"),
        }
    }
    first.expect("at least one engine")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn tc_mutation_batches_converge_to_scratch(
        ops in prop::collection::vec((0usize..3, 0i64..8, 0i64..8), 1..36),
        batch_size in 1usize..5,
        start in 0i64..8,
    ) {
        let query = parse_query(&format!("t({start}, Y)")).unwrap();
        let mut engines = engines_at_thread_counts(programs::THREE_RULE_TC);
        // Independent ledger of what the base relation must contain (last op wins
        // within a batch is modeled by sequential application).
        let mut ledger: BTreeSet<(i64, i64)> = BTreeSet::new();
        for batch in ops.chunks(batch_size) {
            for &(kind, a, b) in batch {
                if kind == 0 {
                    ledger.remove(&(a, b));
                } else {
                    ledger.insert((a, b));
                }
            }
            apply_edge_batch(&mut engines, "e", batch);
            // The fact store matches the ledger exactly.
            let stored: BTreeSet<(i64, i64)> = engines[0]
                .facts()
                .relation(Symbol::intern("e"))
                .map(|rel| {
                    rel.iter()
                        .map(|row| (row[0].as_int().unwrap(), row[1].as_int().unwrap()))
                        .collect()
                })
                .unwrap_or_default();
            prop_assert_eq!(&stored, &ledger);
            // Every engine's maintained answers equal from-scratch evaluation.
            let reference = batch_answers(&engines[0], &query);
            for engine in engines.iter_mut() {
                prop_assert_eq!(engine.query(&query).unwrap(), reference.clone());
            }
        }
    }

    #[test]
    fn sg_mutation_batches_converge_to_scratch(
        ops in prop::collection::vec((0usize..3, 0i64..7, 0i64..7), 1..30),
        probe in 0i64..7,
    ) {
        // Rotate mutations across the three EDB predicates of same-generation; the
        // op kind doubles as the predicate selector (asserts on all three, retracts
        // of whatever is hit).
        let query = parse_query(&format!("sg({probe}, Y)")).unwrap();
        let mut engines = engines_at_thread_counts(programs::SAME_GENERATION);
        for (i, chunk) in ops.chunks(3).enumerate() {
            for engine in engines.iter_mut() {
                let mut txn = engine.transaction();
                for (j, &(kind, a, b)) in chunk.iter().enumerate() {
                    let predicate = ["up", "flat", "down"][(i + j) % 3];
                    if kind == 0 {
                        txn.retract(predicate, &[c(a), c(b)]);
                    } else {
                        txn.assert(predicate, &[c(a), c(b)]);
                    }
                }
                txn.commit().expect("commit succeeds");
            }
            let reference = batch_answers(&engines[0], &query);
            for engine in engines.iter_mut() {
                prop_assert_eq!(engine.query(&query).unwrap(), reference.clone());
            }
        }
    }

    #[test]
    fn idb_assert_retract_batches_converge_to_scratch(
        edges in prop::collection::vec((0usize..3, 0i64..6, 0i64..6), 1..24),
        idb_ops in prop::collection::vec((0usize..2, 0i64..6, 0i64..6), 1..8),
        start in 0i64..6,
    ) {
        // Mix base-edge mutations with asserts/retracts of the *derived* predicate
        // `t` (routed through the `t__asserted` exit-rule scheme).
        let query = parse_query(&format!("t({start}, Y)")).unwrap();
        let mut engines = engines_at_thread_counts(programs::RIGHT_LINEAR_TC);
        apply_edge_batch(&mut engines, "e", &edges);
        for engine in engines.iter_mut() {
            let mut txn = engine.transaction();
            for &(kind, a, b) in &idb_ops {
                if kind == 0 {
                    txn.retract("t", &[c(a), c(b)]);
                } else {
                    txn.assert("t", &[c(a), c(b)]);
                }
            }
            txn.commit().expect("commit succeeds");
        }
        let reference = batch_answers(&engines[0], &query);
        for engine in engines.iter_mut() {
            prop_assert_eq!(engine.query(&query).unwrap(), reference.clone());
        }
        // Retract every asserted t fact again: derived-only facts must survive
        // exactly as from-scratch evaluation says.
        for engine in engines.iter_mut() {
            let mut txn = engine.transaction();
            for &(_, a, b) in &idb_ops {
                txn.retract("t", &[c(a), c(b)]);
            }
            txn.commit().expect("commit succeeds");
        }
        let reference = batch_answers(&engines[0], &query);
        for engine in engines.iter_mut() {
            prop_assert_eq!(engine.query(&query).unwrap(), reference.clone());
        }
    }

    #[test]
    fn snapshot_restore_preserves_sessions_mid_stream(
        ops in prop::collection::vec((0usize..3, 0i64..8, 0i64..8), 1..25),
        more in prop::collection::vec((0usize..3, 0i64..8, 0i64..8), 1..10),
        start in 0i64..8,
    ) {
        let query = parse_query(&format!("t({start}, Y)")).unwrap();
        let mut engine = Engine::new();
        engine.load_source(programs::THREE_RULE_TC).unwrap();
        let mut txn = engine.transaction();
        for &(kind, a, b) in &ops {
            if kind == 0 {
                txn.retract("e", &[c(a), c(b)]);
            } else {
                txn.assert("e", &[c(a), c(b)]);
            }
        }
        txn.commit().unwrap();
        let answers = engine.query(&query).unwrap();

        // Round-trip through the textual snapshot.
        let snapshot = engine.snapshot();
        let reparsed = Snapshot::from_text(snapshot.as_str()).unwrap();
        let mut restored = Engine::from_snapshot(&reparsed).unwrap();
        prop_assert_eq!(restored.query(&query).unwrap(), answers.clone());
        // Prepared plans rebuild and agree after the restore.
        prop_assert_eq!(restored.query_prepared(&query).unwrap(), answers.clone());

        // Both sessions keep evolving identically.
        for session in [&mut engine, &mut restored] {
            let mut txn = session.transaction();
            for &(kind, a, b) in &more {
                if kind == 0 {
                    txn.retract("e", &[c(a), c(b)]);
                } else {
                    txn.assert("e", &[c(a), c(b)]);
                }
            }
            txn.commit().unwrap();
        }
        let expected = engine.query(&query).unwrap();
        prop_assert_eq!(restored.query(&query).unwrap(), expected.clone());
        prop_assert_eq!(batch_answers(&restored, &query), expected);
    }
}

#[test]
fn deterministic_mixed_workload_with_transactions() {
    // A deterministic end-to-end interleaving: inserts, transactional rewires,
    // retracts of asserted IDB facts, prepared queries, and a snapshot round-trip,
    // each step checked against from-scratch evaluation.
    let mut engine = Engine::new();
    engine.load_source(programs::THREE_RULE_TC).unwrap();
    let query = parse_query("t(0, Y)").unwrap();
    for i in 0..10i64 {
        engine.insert("e", &[c(i), c(i + 1)]).unwrap();
    }
    assert_eq!(engine.query(&query).unwrap().len(), 10);

    // Rewire the middle of the chain through a detour in one atomic batch.
    let mut txn = engine.transaction();
    txn.retract("e", &[c(5), c(6)])
        .assert("e", &[c(5), c(50)])
        .assert("e", &[c(50), c(6)]);
    let summary = txn.commit().unwrap();
    assert_eq!(summary.retracted, 1);
    assert_eq!(summary.asserted, 2);
    assert_eq!(
        engine.query(&query).unwrap(),
        batch_answers(&engine, &query)
    );
    assert_eq!(engine.query(&query).unwrap().len(), 11);

    // Assert and later retract a derived-predicate fact.
    engine.insert("t", &[c(10), c(100)]).unwrap();
    assert!(engine.query(&query).unwrap().contains(&vec![c(100)]));
    assert!(engine.retract("t", &[c(10), c(100)]).unwrap());
    assert_eq!(
        engine.query(&query).unwrap(),
        batch_answers(&engine, &query)
    );
    assert!(!engine.query(&query).unwrap().contains(&vec![c(100)]));

    // Snapshot, restore, and diverge-check.
    let snapshot = engine.snapshot();
    let mut restored = Engine::from_snapshot(&snapshot).unwrap();
    assert_eq!(
        restored.query(&query).unwrap(),
        engine.query(&query).unwrap()
    );
    restored.retract("e", &[c(0), c(1)]).unwrap();
    assert!(restored.query(&query).unwrap().is_empty());
    assert_eq!(
        engine.query(&query).unwrap().len(),
        11,
        "original untouched"
    );
    assert!(engine.stats().retractions > 0);
}
