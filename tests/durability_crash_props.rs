//! Crash-injection tests for the durable engine: whatever byte the crash lands on
//! — a kill between commits, a torn write inside a record, a flipped bit in the
//! tail, an interrupted compaction — recovery must converge to *exactly* the
//! from-scratch evaluation of the last fully committed transaction's EDB, at 1, 2
//! and 4 worker threads.
//!
//! The harness drives three fault models:
//!
//! * **log truncation** — the on-disk log is cut at every byte offset (the state a
//!   crashed kernel/device leaves after losing its tail);
//! * **writer kills** — the WAL writer's [`FaultPoint`] drops every byte past a
//!   budget and poisons the writer, emulating a process killed mid-`write(2)`;
//! * **tail corruption** — a byte of the log is flipped, emulating media damage
//!   caught by the per-record CRC.
//!
//! Plus the satellite scenarios: snapshot→txns→crash→recover equals the no-crash
//! session (prepared-plan rebuild and evaluation-stats checksums included), and
//! readers opening a directory mid-compaction see the old or the new image, never
//! a torn one.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

use factorlog::engine::wal::FaultPoint;
use factorlog::prelude::*;
use factorlog::workloads::programs;
use proptest::prelude::*;

fn c(i: i64) -> Const {
    Const::Int(i)
}

/// A scratch data directory, unique per test case and cleaned before use.
fn fresh_dir(tag: &str) -> PathBuf {
    static COUNTER: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
    let n = COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let dir =
        std::env::temp_dir().join(format!("factorlog_crash_{tag}_{}_{n}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn copy_dir(src: &Path, dst: &Path) {
    std::fs::remove_dir_all(dst).ok();
    std::fs::create_dir_all(dst).unwrap();
    for entry in std::fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        std::fs::copy(entry.path(), dst.join(entry.file_name())).unwrap();
    }
}

/// Durability options for crash tests: manual compaction only (each scenario
/// controls its own snapshot points) and no fsync (the tests model crash *points*,
/// not device write-back order; framing and recovery are fsync-independent).
fn test_dopts() -> DurabilityOptions {
    DurabilityOptions {
        fsync: false,
        compact_threshold: u64::MAX,
    }
}

fn eval_opts(threads: usize) -> EvalOptions {
    EvalOptions {
        threads,
        parallel_threshold: 0,
        ..EvalOptions::default()
    }
}

fn open_durable(dir: &Path, threads: usize) -> Engine {
    Engine::open_durable_with_options(dir, test_dopts(), eval_opts(threads))
        .expect("durable open succeeds")
}

/// One logged event of a session history: each applies as exactly one WAL record.
#[derive(Clone, Debug)]
enum Event {
    /// Absorbed source text (rules and/or bulk facts) — one `Source` record.
    Source(String),
    /// A committed batch — one `Txn` record. `kind == 0` retracts, else asserts.
    Batch(Vec<(usize, &'static str, i64, i64)>),
}

/// Apply one event to an engine (in-memory reference and durable sessions share
/// this path, so both see identical histories).
fn apply_event(engine: &mut Engine, event: &Event) {
    match event {
        Event::Source(text) => {
            engine.load_source(text).expect("source event applies");
        }
        Event::Batch(ops) => {
            let mut txn = engine.transaction();
            for &(kind, predicate, a, b) in ops {
                if kind == 0 {
                    txn.retract(predicate, &[c(a), c(b)]);
                } else {
                    txn.assert(predicate, &[c(a), c(b)]);
                }
            }
            txn.commit().expect("batch event commits");
        }
    }
}

/// The base-fact store as a comparable set of (predicate, tuple) strings.
fn edb_facts(db: &Database) -> BTreeSet<(String, Vec<String>)> {
    db.iter()
        .flat_map(|(predicate, relation)| {
            relation.iter().map(move |row| {
                (
                    predicate.to_string(),
                    row.iter().map(|value| value.to_string()).collect(),
                )
            })
        })
        .collect()
}

/// The machine-independent checksum of a from-scratch evaluation over an engine's
/// surviving EDB: identical EDBs (and programs) must yield identical counters.
fn scratch_checksum(engine: &Engine) -> (usize, usize, usize, usize) {
    let result = evaluate_default(engine.program(), engine.facts()).expect("scratch eval");
    (
        result.stats.inferences,
        result.stats.facts_derived,
        result.stats.duplicates,
        result.stats.iterations,
    )
}

/// The acceptance assertion: recovery of `dir` converges to `expected` (an
/// in-memory session that applied exactly the surviving history) at 1, 2 and 4
/// worker threads — same base facts, same program, same materialized answers as
/// from-scratch evaluation, same prepared answers, same evaluation-stat checksums.
fn assert_recovers_to(dir: &Path, expected: &mut Engine, query: &Query) {
    let reference_answers = expected.query(query).expect("reference query");
    let reference_facts = edb_facts(expected.facts());
    let reference_checksum = scratch_checksum(expected);
    // The prepared pipeline rejects queries over predicates the (possibly still
    // empty) program does not define; the recovered sessions must mirror that too.
    let reference_prepared = expected.query_prepared(query).ok();
    let mut inference_counts = Vec::new();
    for threads in [1usize, 2, 4] {
        let mut recovered = open_durable(dir, threads);
        assert_eq!(
            edb_facts(recovered.facts()),
            reference_facts,
            "EDB diverges at {threads} thread(s)"
        );
        assert_eq!(
            recovered.program().len(),
            expected.program().len(),
            "program diverges at {threads} thread(s)"
        );
        assert_eq!(
            scratch_checksum(&recovered),
            reference_checksum,
            "from-scratch stats checksum diverges at {threads} thread(s)"
        );
        let answers = recovered.query(query).expect("recovered query");
        assert_eq!(
            answers, reference_answers,
            "materialized answers diverge at {threads} thread(s)"
        );
        // Prepared plans rebuild from nothing after recovery and agree.
        match &reference_prepared {
            Some(answers) => assert_eq!(
                &recovered.query_prepared(query).expect("prepared query"),
                answers,
                "prepared answers diverge at {threads} thread(s)"
            ),
            None => assert!(
                recovered.query_prepared(query).is_err(),
                "prepared query unexpectedly succeeds at {threads} thread(s)"
            ),
        }
        inference_counts.push(recovered.stats().inferences);
    }
    assert!(
        inference_counts.windows(2).all(|w| w[0] == w[1]),
        "recovered materialization must be thread-invariant: {inference_counts:?}"
    );
}

/// A deterministic, reasonably rich history: bulk loads, single-edge commits,
/// rewire batches, IDB assertions (routed via `t__asserted`), and retractions.
fn scripted_history() -> Vec<Event> {
    vec![
        Event::Source(programs::THREE_RULE_TC.to_string()),
        Event::Source("e(0, 1).\ne(1, 2).\ne(2, 3).\ne(3, 4).".to_string()),
        Event::Batch(vec![(1, "e", 4, 5), (1, "e", 5, 6)]),
        Event::Batch(vec![(0, "e", 2, 3), (1, "e", 2, 30), (1, "e", 30, 3)]),
        Event::Batch(vec![(1, "t", 6, 100)]), // asserted IDB fact
        Event::Source("s(X, Y) :- t(Y, X).".to_string()), // rules added mid-log
        Event::Batch(vec![(0, "t", 6, 100), (0, "e", 30, 3), (1, "e", 6, 7)]),
    ]
}

/// Build a durable session at `dir` from `history`, returning the log's record
/// boundaries (byte offsets after the header and after each event's record).
fn build_durable_history(dir: &Path, history: &[Event]) -> Vec<u64> {
    let mut engine = open_durable(dir, 1);
    let mut boundaries = vec![engine.wal_len().expect("durable")];
    for event in history {
        apply_event(&mut engine, event);
        boundaries.push(engine.wal_len().expect("durable"));
    }
    boundaries
}

/// The in-memory session that applied only `history[..k]`.
fn reference_after(history: &[Event], k: usize) -> Engine {
    let mut engine = Engine::with_options(eval_opts(1));
    for event in &history[..k] {
        apply_event(&mut engine, event);
    }
    engine
}

#[test]
fn log_truncation_at_every_byte_offset_recovers_the_committed_prefix() {
    let history = scripted_history();
    let dir = fresh_dir("cut");
    let boundaries = build_durable_history(&dir, &history);
    let wal_path = dir.join(factorlog::engine::WAL_FILE);
    let full = std::fs::read(&wal_path).unwrap();
    assert_eq!(*boundaries.last().unwrap(), full.len() as u64);
    let query = parse_query("t(0, Y)").unwrap();

    for cut in boundaries[0]..=full.len() as u64 {
        // The crash: everything past `cut` is lost.
        std::fs::write(&wal_path, &full[..cut as usize]).unwrap();
        let survivors = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
        let at_boundary = boundaries.contains(&cut);
        let mut expected = reference_after(&history, survivors);
        if at_boundary {
            // Record boundaries are the commit points: check the full thread matrix.
            assert_recovers_to(&dir, &mut expected, &query);
        } else {
            // Mid-record tears: the torn record must vanish, cheaply checked at one
            // thread (the boundary sweep above covers the matrix).
            let mut recovered = open_durable(&dir, 1);
            assert_eq!(
                edb_facts(recovered.facts()),
                edb_facts(expected.facts()),
                "EDB diverges at cut {cut}"
            );
            assert_eq!(
                recovered.query(&query).unwrap(),
                expected.query(&query).unwrap(),
                "answers diverge at cut {cut}"
            );
            let report = recovered.recovery_report().unwrap();
            assert_eq!(report.records_replayed, survivors);
            assert!(report.torn_bytes_truncated > 0, "cut {cut} tore a record");
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn killed_writers_lose_only_the_in_flight_commit(
        ops in prop::collection::vec((0usize..3, 0i64..8, 0i64..8), 4..32),
        batch_size in 1usize..5,
        fault_budget in 0u64..900,
        start in 0i64..8,
    ) {
        let query = parse_query(&format!("t({start}, Y)")).unwrap();
        let dir = fresh_dir("kill");
        let mut durable = open_durable(&dir, 1);
        let mut reference = Engine::with_options(eval_opts(1));
        let program = Event::Source(programs::THREE_RULE_TC.to_string());
        apply_event(&mut durable, &program);
        apply_event(&mut reference, &program);

        // Arm the fault after the program record: the writer will persist exactly
        // `fault_budget` more bytes, then "crash" — possibly mid-record.
        let armed = durable.set_wal_fault(Some(FaultPoint { budget: fault_budget }));
        prop_assert!(armed, "fault arms on a durable session");
        let mut crashed = false;
        for batch in ops.chunks(batch_size) {
            let mut txn = durable.transaction();
            for &(kind, a, b) in batch {
                if kind == 0 {
                    txn.retract("e", &[c(a), c(b)]);
                } else {
                    txn.assert("e", &[c(a), c(b)]);
                }
            }
            match txn.commit() {
                Ok(_) => {
                    // The commit is on disk: mirror it in the reference.
                    let mut txn = reference.transaction();
                    for &(kind, a, b) in batch {
                        if kind == 0 {
                            txn.retract("e", &[c(a), c(b)]);
                        } else {
                            txn.assert("e", &[c(a), c(b)]);
                        }
                    }
                    txn.commit().unwrap();
                }
                Err(EngineError::Durability(_)) => {
                    crashed = true;
                    break;
                }
                Err(other) => prop_assert!(false, "unexpected commit error: {other}"),
            }
        }
        if crashed {
            // The failed commit must not have half-applied in memory…
            prop_assert_eq!(edb_facts(durable.facts()), edb_facts(reference.facts()));
            // …and the poisoned writer refuses everything afterwards.
            prop_assert!(matches!(
                durable.insert("e", &[c(90), c(91)]),
                Err(EngineError::Durability(_))
            ));
        }
        drop(durable);

        // Recovery converges to the last successful commit, at 1/2/4 threads.
        assert_recovers_to(&dir, &mut reference, &query);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupted_tail_bytes_drop_the_damaged_record_and_its_suffix(
        ops in prop::collection::vec((0usize..3, 0i64..8, 0i64..8), 3..24),
        batch_size in 1usize..4,
        corrupt_at in 0u64..2000,
        start in 0i64..8,
    ) {
        let query = parse_query(&format!("t({start}, Y)")).unwrap();
        let mut history = vec![Event::Source(programs::THREE_RULE_TC.to_string())];
        history.extend(
            ops.chunks(batch_size)
                .map(|chunk| Event::Batch(chunk.iter().map(|&(k, a, b)| (k, "e", a, b)).collect())),
        );
        let dir = fresh_dir("flip");
        let boundaries = build_durable_history(&dir, &history);
        let wal_path = dir.join(factorlog::engine::WAL_FILE);
        let mut bytes = std::fs::read(&wal_path).unwrap();

        // Flip one byte somewhere past the header (wrapped into range): the record
        // containing it — and everything after, which can no longer be trusted —
        // must be dropped by recovery.
        let header = boundaries[0];
        let offset = header + corrupt_at % (bytes.len() as u64 - header);
        bytes[offset as usize] ^= 0x41;
        std::fs::write(&wal_path, &bytes).unwrap();
        let survivors = boundaries.iter().filter(|&&b| b <= offset).count() - 1;
        prop_assert!(survivors < history.len(), "corruption must damage a record");

        let mut expected = reference_after(&history, survivors);
        assert_recovers_to(&dir, &mut expected, &query);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_then_txns_then_crash_equals_the_uncrashed_session(
        before in prop::collection::vec((0usize..3, 0i64..8, 0i64..8), 1..20),
        after in prop::collection::vec((0usize..3, 0i64..8, 0i64..8), 1..16),
        batch_size in 1usize..4,
        start in 0i64..8,
    ) {
        let query = parse_query(&format!("t({start}, Y)")).unwrap();
        let dir = fresh_dir("interleave");
        let mut durable = open_durable(&dir, 1);
        let mut reference = Engine::with_options(eval_opts(1));

        let mut history = vec![Event::Source(programs::THREE_RULE_TC.to_string())];
        history.extend(
            before
                .chunks(batch_size)
                .map(|chunk| Event::Batch(chunk.iter().map(|&(k, a, b)| (k, "e", a, b)).collect())),
        );
        for event in &history {
            apply_event(&mut durable, event);
            apply_event(&mut reference, event);
        }

        // Compact: the pre-snapshot history now lives in snapshot.fl, the log resets.
        let report = durable.compact().expect("compaction succeeds");
        prop_assert!(report.log_bytes_after < report.log_bytes_before);

        // k more transactions land in the fresh log…
        let tail: Vec<Event> = after
            .chunks(batch_size)
            .map(|chunk| Event::Batch(chunk.iter().map(|&(k, a, b)| (k, "e", a, b)).collect()))
            .collect();
        for event in &tail {
            apply_event(&mut durable, event);
            apply_event(&mut reference, event);
        }
        let live_answers = durable.query(&query).expect("live query");
        prop_assert_eq!(&live_answers, &reference.query(&query).expect("reference query"));

        // …then the crash. Recovery must replay snapshot + log tail into exactly
        // the no-crash session: same EDB, same answers, same prepared-plan cache
        // rebuild, same from-scratch stats checksums — at 1/2/4 threads.
        drop(durable);
        assert_recovers_to(&dir, &mut reference, &query);
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn readers_mid_compaction_see_the_old_or_new_image_never_a_torn_one() {
    // Deterministic walk of every compaction crash window: a "reader" opening the
    // directory as a crashed compactor left it must see the full committed state —
    // served by the old snapshot + full log before the rename, and by the new
    // snapshot (with the stale log sequence-skipped) after it.
    let history = scripted_history();
    let base = fresh_dir("compaction_base");
    build_durable_history(&base, &history);
    let query = parse_query("t(0, Y)").unwrap();

    for fault in [
        CompactionFault::AfterTempWrite,
        CompactionFault::AfterRename,
    ] {
        let work = fresh_dir("compaction_work");
        copy_dir(&base, &work);
        let mut engine = open_durable(&work, 1);
        assert!(engine.set_compaction_fault(Some(fault)));
        let err = engine.compact().expect_err("injected fault fires");
        assert!(
            format!("{err}").contains("injected"),
            "unexpected error for {fault:?}: {err}"
        );
        drop(engine); // the crash

        // A concurrent reader's view of the interrupted directory (copied so the
        // reader's own recovery bookkeeping cannot disturb the crashed writer's
        // files): old or new image, identical content either way.
        let reader_view = fresh_dir("compaction_reader");
        copy_dir(&work, &reader_view);
        let mut expected = reference_after(&history, history.len());
        assert_recovers_to(&reader_view, &mut expected, &query);

        // The writer's own restart also recovers, exactly once (no double-apply of
        // records the new snapshot already contains), and keeps committing.
        let mut reopened = open_durable(&work, 1);
        assert_eq!(
            edb_facts(reopened.facts()),
            edb_facts(expected.facts()),
            "{fault:?}"
        );
        if fault == CompactionFault::AfterRename {
            let report = reopened.recovery_report().unwrap();
            assert!(
                report.snapshot_loaded && report.records_replayed == 0,
                "after the rename every log record is stale: {report:?}"
            );
            assert_eq!(report.records_skipped, history.len());
        }
        reopened.insert("e", &[c(70), c(71)]).unwrap();
        expected.insert("e", &[c(70), c(71)]).unwrap();
        assert_eq!(
            reopened.query(&query).unwrap(),
            expected.query(&query).unwrap(),
            "{fault:?}"
        );
        std::fs::remove_dir_all(&work).ok();
        std::fs::remove_dir_all(&reader_view).ok();
    }
    std::fs::remove_dir_all(&base).ok();
}

#[test]
fn threshold_compactions_under_churn_stay_recoverable() {
    // Automatic compaction interleaved with commits: whatever mix of snapshot and
    // log the churn leaves behind, a crash-reopen converges.
    let dir = fresh_dir("churn");
    let options = DurabilityOptions {
        fsync: false,
        compact_threshold: 192,
    };
    let mut durable = Engine::open_durable_with_options(&dir, options, eval_opts(1)).expect("open");
    let mut reference = Engine::with_options(eval_opts(1));
    let program = Event::Source(programs::THREE_RULE_TC.to_string());
    apply_event(&mut durable, &program);
    apply_event(&mut reference, &program);
    for i in 0..40i64 {
        let event = if i % 7 == 3 {
            Event::Batch(vec![(0, "e", i - 3, i - 2), (1, "e", i - 3, 200 + i)])
        } else {
            Event::Batch(vec![(1, "e", i, i + 1)])
        };
        apply_event(&mut durable, &event);
        apply_event(&mut reference, &event);
    }
    assert!(
        durable.stats().wal_compactions >= 2,
        "the 192-byte threshold must compact repeatedly: {}",
        durable.stats().wal_compactions
    );
    drop(durable);
    let query = parse_query("t(0, Y)").unwrap();
    assert_recovers_to(&dir, &mut reference, &query);
    std::fs::remove_dir_all(&dir).ok();
}
