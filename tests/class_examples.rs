//! E4–E6: the three sufficient-condition classes on the paper's Examples 4.3–4.5.
//!
//! * The *exact* program of Example 4.3 is not factorable, and the two EDB instances
//!   the paper gives produce exactly the spurious answers it describes when factoring
//!   is forced.
//! * The repaired selection-pushing variant, the symmetric program (Example 4.4 shape)
//!   and the answer-propagating program (Example 4.5 shape) all factor, and the
//!   factored programs agree with the Magic programs on randomized EDBs.

use factorlog::core::equivalence::{check_equivalence, EdbSpec};
use factorlog::prelude::*;
use factorlog::workloads::layered::{combined_rule_edb, LayeredParams};
use factorlog::workloads::programs;

fn pipeline(src: &str, query: &str, force: bool) -> (Program, Query, Optimized) {
    let program = parse_program(src).unwrap().program;
    let query = parse_query(query).unwrap();
    let options = PipelineOptions {
        force_factoring: force,
        ..PipelineOptions::default()
    };
    let optimized = optimize_query(&program, &query, &options).unwrap();
    (program, query, optimized)
}

fn combined_specs() -> Vec<EdbSpec> {
    vec![
        EdbSpec::new("e", 2, 14),
        EdbSpec::new("f", 2, 8),
        EdbSpec::new("c1", 2, 8),
        EdbSpec::new("c2", 2, 8),
        EdbSpec::new("c", 3, 10),
        EdbSpec::new("l", 1, 6),
        EdbSpec::new("l1", 1, 6),
        EdbSpec::new("l2", 1, 6),
        EdbSpec::new("r1", 1, 6),
        EdbSpec::new("r2", 1, 6),
        EdbSpec::new("r3", 1, 6),
    ]
}

#[test]
fn example_4_3_exact_program_is_not_factorable_and_first_edb_breaks_it() {
    // "Because the condition that bound_first should be a subset of l1 is violated by
    // this EDB, 8 is incorrectly derived."
    let (program, query, optimized) = pipeline(programs::EXAMPLE_4_3_EXACT, "p(5, Y)", true);
    assert!(!optimized.factorability.as_ref().unwrap().is_factorable());

    let mut edb = Database::new();
    edb.add_fact("f", &[Const::Int(5), Const::Int(1)]);
    edb.add_fact("e", &[Const::Int(5), Const::Int(6)]);
    edb.add_fact("e", &[Const::Int(1), Const::Int(7)]);
    edb.add_fact("e", &[Const::Int(2), Const::Int(8)]);
    edb.add_fact("l1", &[Const::Int(1)]);
    edb.add_fact("c1", &[Const::Int(6), Const::Int(2)]);
    edb.add_fact("r1", &[Const::Int(7)]);
    edb.add_fact("r1", &[Const::Int(8)]);

    let correct = evaluate_default(&program, &edb).unwrap().answers(&query);
    let factored = optimized.answers(&edb).unwrap();
    assert!(!correct.contains(&vec![Const::Int(8)]));
    assert!(
        factored.contains(&vec![Const::Int(8)]),
        "the factored program must (incorrectly) derive 8: {factored:?}"
    );

    // The paper adds: "(8) is a valid answer if l1(5) is added to the EDB."
    let mut edb_with_l1_5 = edb.clone();
    edb_with_l1_5.add_fact("l1", &[Const::Int(5)]);
    edb_with_l1_5.add_fact("r1", &[Const::Int(6)]);
    let now_correct = evaluate_default(&program, &edb_with_l1_5)
        .unwrap()
        .answers(&query);
    assert!(now_correct.contains(&vec![Const::Int(8)]));
}

#[test]
fn example_4_3_second_edb_generates_a_spurious_answer_through_free_exit() {
    // "The EDB instance violates the condition that free-exit should be contained in
    // r1 ... The fact fp(7) is incorrectly generated."
    let (program, query, optimized) = pipeline(programs::EXAMPLE_4_3_EXACT, "p(5, Y)", true);
    let mut edb = Database::new();
    edb.add_fact("f", &[Const::Int(5), Const::Int(1)]);
    edb.add_fact("e", &[Const::Int(5), Const::Int(6)]);
    edb.add_fact("e", &[Const::Int(1), Const::Int(7)]);
    edb.add_fact("l1", &[Const::Int(5)]);
    edb.add_fact("c1", &[Const::Int(6), Const::Int(1)]);

    let correct = evaluate_default(&program, &edb).unwrap().answers(&query);
    let factored = optimized.answers(&edb).unwrap();
    assert!(!correct.contains(&vec![Const::Int(7)]), "{correct:?}");
    assert!(
        factored.contains(&vec![Const::Int(7)]),
        "fp(7) must be incorrectly generated: {factored:?}"
    );
}

#[test]
fn selection_pushing_variant_factors_and_matches_magic() {
    let (_, _, optimized) = pipeline(programs::SELECTION_PUSHING, "p(0, Y)", false);
    assert_eq!(optimized.strategy, Strategy::FactoredMagic);
    let report = optimized.factorability.as_ref().unwrap();
    assert!(report.classes.contains(&FactorableClass::SelectionPushing));

    // Randomized cross-check: factored+optimized vs the (always sound) magic program.
    let counterexample = check_equivalence(
        &optimized.magic.program,
        &optimized.adorned.query,
        &optimized.program,
        &optimized.query,
        &combined_specs(),
        7,
        25,
        42,
    )
    .unwrap();
    assert!(counterexample.is_none(), "{counterexample:?}");
}

#[test]
fn symmetric_program_factors_and_matches_original() {
    let (program, query, optimized) = pipeline(programs::SYMMETRIC, "p(0, Y)", false);
    assert_eq!(optimized.strategy, Strategy::FactoredMagic);
    let report = optimized.factorability.as_ref().unwrap();
    assert!(report.classes.contains(&FactorableClass::Symmetric));
    assert!(!report.classes.contains(&FactorableClass::SelectionPushing));

    let counterexample = check_equivalence(
        &program,
        &query,
        &optimized.program,
        &optimized.query,
        &combined_specs(),
        7,
        25,
        43,
    )
    .unwrap();
    assert!(counterexample.is_none(), "{counterexample:?}");
}

#[test]
fn answer_propagating_program_factors_and_matches_original() {
    let (program, query, optimized) = pipeline(programs::ANSWER_PROPAGATING, "p(0, Y)", false);
    assert_eq!(optimized.strategy, Strategy::FactoredMagic);
    let report = optimized.factorability.as_ref().unwrap();
    assert!(report.classes.contains(&FactorableClass::AnswerPropagating));
    assert!(!report.classes.contains(&FactorableClass::SelectionPushing));
    assert!(!report.classes.contains(&FactorableClass::Symmetric));

    let counterexample = check_equivalence(
        &program,
        &query,
        &optimized.program,
        &optimized.query,
        &combined_specs(),
        7,
        25,
        44,
    )
    .unwrap();
    assert!(counterexample.is_none(), "{counterexample:?}");
}

#[test]
fn factored_programs_agree_with_originals_on_the_benchmark_workload() {
    // The structured (non-random) workload the benchmarks use must also agree, and the
    // factored program must not do more inferences than the magic program on it.
    for (name, src) in [
        ("selection-pushing", programs::SELECTION_PUSHING),
        ("symmetric", programs::SYMMETRIC),
        ("answer-propagating", programs::ANSWER_PROPAGATING),
    ] {
        let (program, query, optimized) = pipeline(src, "p(0, Y)", false);
        let edb = combined_rule_edb(&LayeredParams::scaled(24, 5));
        let expected = evaluate_default(&program, &edb).unwrap().answers(&query);
        let magic_result = evaluate_default(&optimized.magic.program, &edb).unwrap();
        let factored_result = optimized.evaluate(&edb).unwrap();
        assert_eq!(
            expected,
            factored_result.answers(&optimized.query),
            "{name}"
        );
        assert_eq!(
            expected,
            magic_result.answers(&optimized.adorned.query),
            "{name}"
        );
        // Note: the arity-reduction win (unary bp/fp instead of the binary recursive
        // predicate) only shows on instances where the binary relation is large; the
        // benchmarks in `crates/bench` measure that gap on scaled workloads. Here we
        // only require agreement of the answers.
        let _ = (
            factored_result.stats.facts_derived,
            magic_result.stats.facts_derived,
        );
    }
}
