//! Replication crash harness: leaders and followers killed at arbitrary frame
//! boundaries, disconnect/reconnect churn, and log compaction racing a lagging
//! follower.
//!
//! The properties under test are the replication subsystem's contract:
//!
//! * **Convergence** — after any interleaving of leader restarts, follower
//!   crashes (the replica process dies between frame batches and reopens from
//!   its own WAL), disconnect churn, and leader-side compaction, every
//!   follower that catches up holds a checksum-identical copy of the leader's
//!   committed EDB, and the replicated store answers exactly like a fresh
//!   engine evaluating those facts from scratch at 1, 2 and 4 eval threads.
//! * **Bootstrap** — a follower whose position the leader compacted away
//!   re-seeds itself from the shipped snapshot (at least one bootstrap is
//!   observed) and still converges.
//! * **Failover** — a follower refuses promotion while the leader's lease is
//!   valid, promotes after it expires, accepts writes as the new leader, and
//!   a revived ex-leader that observes the higher term fences itself: it
//!   refuses transactions while the promoted node keeps committing.
//!
//! CI runs this file under `FACTORLOG_THREADS=1` and `=4`.

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::time::Duration;

use factorlog::prelude::*;
use factorlog::workloads::programs;
use proptest::prelude::*;

fn c(i: i64) -> Const {
    Const::Int(i)
}

fn eval_opts(threads: usize) -> EvalOptions {
    EvalOptions {
        threads,
        parallel_threshold: 0,
        ..EvalOptions::default()
    }
}

/// The session thread count under test: `FACTORLOG_THREADS` when CI pins it.
fn session_threads() -> usize {
    EvalOptions::default().threads
}

fn fresh_dir(tag: &str) -> PathBuf {
    static COUNTER: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
    let n = COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "factorlog_repl_crash_{tag}_{}_{n}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn server_opts() -> ServerOptions {
    ServerOptions {
        group_window: Duration::from_millis(2),
        drain_timeout: Duration::from_secs(3),
        ..ServerOptions::default()
    }
}

fn dopts(compact_threshold: u64) -> DurabilityOptions {
    DurabilityOptions {
        fsync: false,
        compact_threshold,
    }
}

/// Fast-polling replication options with a bounded frame batch, so follower
/// kills between `sync_once` calls land at arbitrary frame boundaries.
fn ropts(batch_frames: usize, lease: Duration) -> ReplicationOptions {
    ReplicationOptions {
        poll_interval: Duration::from_millis(5),
        lease_timeout: lease,
        batch_frames,
    }
}

/// The canonical content checksum: the sorted set of rendered base facts.
/// Identical sets mean byte-identical EDBs regardless of arrival order.
fn fact_set(engine: &Engine) -> BTreeSet<String> {
    let mut set = BTreeSet::new();
    for (predicate, relation) in engine.facts().iter() {
        for tuple in relation.iter() {
            let rendered: Vec<String> = tuple.iter().map(|c| c.to_string()).collect();
            set.insert(format!("{predicate}({})", rendered.join(", ")));
        }
    }
    set
}

/// The convergence oracle: a replicated store must answer exactly like a
/// fresh engine evaluating its base facts from scratch, at 1, 2 and 4 worker
/// threads.
fn assert_store_converges(store: &mut Engine, query: &Query) -> Result<(), TestCaseError> {
    let answers = store.query(query).expect("replicated store answers");
    for threads in [1usize, 2, 4] {
        let mut fresh = Engine::with_options(eval_opts(threads));
        fresh
            .add_rules(store.program().clone())
            .expect("program transplants");
        for (predicate, relation) in store.facts().iter() {
            for tuple in relation.iter() {
                fresh.insert(predicate, tuple).expect("fact transplants");
            }
        }
        prop_assert_eq!(
            &fresh.query(query).expect("fresh query"),
            &answers,
            "replicated store diverges from scratch evaluation at {} thread(s)",
            threads
        );
    }
    Ok(())
}

fn open_follower(dir: &PathBuf, leader: &str, batch: usize) -> Replica {
    let engine =
        Engine::open_durable_with_options(dir, dopts(u64::MAX), eval_opts(session_threads()))
            .expect("follower opens durably");
    Replica::from_engine(engine, leader, ropts(batch, Duration::from_secs(3600)))
        .expect("durable engine wraps as a replica")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Tentpole chaos: a durable leader with an aggressively small compaction
    /// threshold serves two followers while a random phase script interleaves
    /// writes with follower kills (drop + reopen from the replica's own WAL,
    /// landing between arbitrary frame batches), disconnect churn, and full
    /// leader restarts (shutdown + re-serve on the same port). Both followers
    /// must converge to a checksum-identical copy of the leader's committed
    /// EDB, matching from-scratch evaluation at 1/2/4 threads.
    #[test]
    fn followers_converge_under_kills_churn_and_compaction(
        phases in proptest::collection::vec((1usize..6, 0u64..4), 3..7),
        batch in 1usize..5,
    ) {
        let leader_dir = fresh_dir("lead");
        let f1_dir = fresh_dir("f1");
        let f2_dir = fresh_dir("f2");

        // A tiny compaction threshold: the leader's log compacts repeatedly
        // mid-run, so a lagging follower's position routinely falls behind the
        // snapshot and forces a bootstrap.
        let mut engine = Engine::open_durable_with_options(
            &leader_dir,
            dopts(256),
            eval_opts(session_threads()),
        )
        .expect("leader opens durably");
        engine
            .load_source(programs::THREE_RULE_TC)
            .expect("program loads");
        let mut handle = serve(engine, "127.0.0.1:0", server_opts()).expect("serve");
        let addr = handle.addr();
        let leader = addr.to_string();

        let mut f1 = open_follower(&f1_dir, &leader, batch);
        let mut f2 = open_follower(&f2_dir, &leader, batch);

        let mut next_edge = 0i64;
        for &(txns, action) in &phases {
            let mut writer = Client::connect_with_retry(addr, 10).expect("writer connects");
            for _ in 0..txns {
                let (x, y) = (next_edge, next_edge + 1);
                next_edge += 1;
                writer
                    .txn_with_retry(&format!("+e({x}, {y})"), 8)
                    .expect("txn commits");
            }
            drop(writer);
            // The steady follower polls every phase; the churned one suffers
            // the scripted fault.
            let _ = f2.sync_once().expect("steady follower syncs");
            match action {
                // Partial catch-up: apply at most one bounded batch.
                0 => {
                    let _ = f1.sync_once().expect("follower syncs");
                }
                // Disconnect churn: drop the connection, lag builds.
                1 => f1.disconnect(),
                // Follower killed at an arbitrary frame boundary: the replica
                // dies between frame batches and reopens from its own WAL.
                2 => {
                    let _ = f1.sync_once().expect("follower syncs");
                    drop(f1);
                    f1 = open_follower(&f1_dir, &leader, batch);
                }
                // Leader killed and revived on the same address: followers
                // reconnect and resume from their last applied seq.
                _ => {
                    let report = handle.shutdown();
                    handle = serve(report.engine, addr, server_opts()).expect("re-serve");
                }
            }
        }

        // Quiesce: both followers drain the backlog.
        prop_assert!(f1.catch_up(500).expect("f1 catches up"), "f1 lag {} after churn", f1.lag_frames());
        prop_assert!(f2.catch_up(500).expect("f2 catches up"), "f2 lag {} after churn", f2.lag_frames());

        let leader_engine = handle.shutdown().engine;
        let leader_facts = fact_set(&leader_engine);
        prop_assert_eq!(
            leader_facts.len(),
            next_edge as usize,
            "every committed edge is in the leader's EDB"
        );
        prop_assert_eq!(&fact_set(f1.engine()), &leader_facts, "f1 checksum-identical");
        prop_assert_eq!(&fact_set(f2.engine()), &leader_facts, "f2 checksum-identical");

        let query = parse_query("t(0, Y)").unwrap();
        let mut f1_engine = f1.into_engine();
        assert_store_converges(&mut f1_engine, &query)?;
        let mut f2_engine = f2.into_engine();
        assert_store_converges(&mut f2_engine, &query)?;

        drop((leader_engine, f1_engine, f2_engine));
        for dir in [&leader_dir, &f1_dir, &f2_dir] {
            std::fs::remove_dir_all(dir).ok();
        }
    }
}

/// Compaction racing a lagging follower, deterministically: the follower syncs
/// an early prefix, disconnects, the leader commits and compacts far past that
/// position, and the reconnecting follower must re-seed itself from the
/// shipped snapshot (an observed bootstrap) and still converge.
#[test]
fn a_lagging_follower_bootstraps_past_a_compacted_log() {
    let leader_dir = fresh_dir("compact_lead");
    let follower_dir = fresh_dir("compact_follow");
    let mut engine =
        Engine::open_durable_with_options(&leader_dir, dopts(64), eval_opts(session_threads()))
            .expect("leader opens durably");
    engine
        .load_source(programs::THREE_RULE_TC)
        .expect("program loads");
    let handle = serve(engine, "127.0.0.1:0", server_opts()).expect("serve");
    let addr = handle.addr().to_string();

    let mut writer = Client::connect(handle.addr()).expect("writer connects");
    writer.txn("+e(0, 1)").expect("first txn");
    let mut follower = open_follower(&follower_dir, &addr, 512);
    assert!(follower.catch_up(200).expect("initial catch-up"));
    follower.disconnect();

    // 40 single-fact commits against a 64-byte threshold: the log compacts
    // many times over, discarding the follower's resume position.
    for i in 1..40i64 {
        writer
            .txn_with_retry(&format!("+e({i}, {})", i + 1), 8)
            .expect("txn commits");
    }
    assert!(follower.catch_up(500).expect("post-compaction catch-up"));
    assert!(
        follower.status().bootstraps >= 1,
        "the follower must have re-seeded from the shipped snapshot, status {:?}",
        follower.status()
    );

    let leader_engine = handle.shutdown().engine;
    assert_eq!(
        fact_set(follower.engine()),
        fact_set(&leader_engine),
        "bootstrapped follower is checksum-identical"
    );
    drop((leader_engine, follower));
    std::fs::remove_dir_all(&leader_dir).ok();
    std::fs::remove_dir_all(&follower_dir).ok();
}

/// Failover: promotion is refused while the lease is valid, succeeds once it
/// expires, the promoted follower accepts writes — and a revived ex-leader
/// that observes the higher term fences itself and refuses writes.
#[test]
fn a_promoted_follower_writes_while_a_fenced_ex_leader_cannot() {
    let leader_dir = fresh_dir("fence_lead");
    let follower_dir = fresh_dir("fence_follow");
    let mut engine = Engine::open_durable_with_options(
        &leader_dir,
        dopts(u64::MAX),
        eval_opts(session_threads()),
    )
    .expect("leader opens durably");
    engine
        .load_source(programs::THREE_RULE_TC)
        .expect("program loads");
    let handle = serve(engine, "127.0.0.1:0", server_opts()).expect("serve");
    let addr = handle.addr().to_string();

    let mut writer = Client::connect(handle.addr()).expect("writer connects");
    writer.txn("+e(1, 2)").expect("txn commits");

    let engine = Engine::open_durable_with_options(
        &follower_dir,
        dopts(u64::MAX),
        eval_opts(session_threads()),
    )
    .expect("follower opens durably");
    let mut follower = Replica::from_engine(
        engine,
        addr.as_str(),
        ropts(512, Duration::from_millis(200)),
    )
    .expect("replica wraps");
    assert!(follower.catch_up(200).expect("catch-up"));

    // The lease was just renewed by the catch-up: promotion must refuse.
    let refused = follower.promote().unwrap_err().to_string();
    assert!(refused.contains("lease"), "{refused}");
    // Follower writes are refused while following.
    let readonly = follower.insert("e", &[c(9), c(9)]).unwrap_err().to_string();
    assert!(readonly.contains("read-only"), "{readonly}");

    // The leader dies; once the lease expires the follower takes over.
    let ex_leader = handle.shutdown().engine;
    std::thread::sleep(Duration::from_millis(300));
    let term = follower.promote().expect("promotes after lease expiry");
    assert!(term >= 1, "promotion bumps the term, got {term}");
    assert_eq!(follower.role(), ReplicaRole::Leader);
    assert!(follower
        .insert("e", &[c(2), c(3)])
        .expect("new leader writes"));

    // The ex-leader revives — and the promoted node's higher term fences it.
    let handle = serve(ex_leader, "127.0.0.1:0", server_opts()).expect("ex-leader revives");
    let mut probe = Client::connect(handle.addr()).expect("probe connects");
    match probe.subscribe(1, follower.term(), 42) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, "fenced"),
        other => panic!("a higher-term subscribe must fence the ex-leader, got {other:?}"),
    }
    match probe.txn("+e(8, 8)") {
        Err(ClientError::Server { code, message }) => {
            assert_eq!(code, "fenced", "{message}");
        }
        other => panic!("a fenced ex-leader must refuse writes, got {other:?}"),
    }
    // …while the promoted follower keeps committing.
    assert!(follower
        .insert("e", &[c(3), c(4)])
        .expect("promoted node writes"));

    drop(handle.shutdown());
    drop(follower);
    std::fs::remove_dir_all(&leader_dir).ok();
    std::fs::remove_dir_all(&follower_dir).ok();
}

/// The served form of failover, over the wire: a `serve_follower` node answers
/// replicated queries, refuses `TXN` with `ERR readonly`, accepts `PROMOTE`
/// once the dead leader's lease expires, and commits transactions afterwards.
#[test]
fn a_served_follower_promotes_over_the_wire_and_resumes_writes() {
    let leader_dir = fresh_dir("wire_lead");
    let follower_dir = fresh_dir("wire_follow");
    let mut engine = Engine::open_durable_with_options(
        &leader_dir,
        dopts(u64::MAX),
        eval_opts(session_threads()),
    )
    .expect("leader opens durably");
    engine
        .load_source(programs::THREE_RULE_TC)
        .expect("program loads");
    let leader = serve(engine, "127.0.0.1:0", server_opts()).expect("leader serves");
    let mut writer = Client::connect(leader.addr()).expect("writer connects");
    writer.txn("+e(1, 2)").expect("txn commits");

    let engine = Engine::open_durable_with_options(
        &follower_dir,
        dopts(u64::MAX),
        eval_opts(session_threads()),
    )
    .expect("follower opens durably");
    let follower = serve_follower(
        engine,
        leader.addr().to_string(),
        "127.0.0.1:0",
        server_opts(),
        ropts(512, Duration::from_millis(250)),
    )
    .expect("follower serves");
    let mut client = Client::connect(follower.addr()).expect("client connects");

    // The replicated view appears on the follower (stale-bounded, so poll).
    let mut rows = Vec::new();
    for _ in 0..400 {
        rows = client.query("t(1, Y)").expect("follower answers").rows;
        if !rows.is_empty() {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(rows, vec!["2".to_string()], "replicated derivation visible");
    let stats = client.stats().expect("stats");
    assert_eq!(stats.role, ReplicaRole::Follower);

    // Writes are refused while following…
    match client.txn("+e(7, 7)") {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, "readonly"),
        other => panic!("a follower must refuse TXN, got {other:?}"),
    }
    // …and premature promotion is refused while the lease is valid.
    match client.promote() {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, "lease"),
        other => panic!("promotion during a valid lease must refuse, got {other:?}"),
    }

    // The leader dies; after the lease expires PROMOTE succeeds and the node
    // commits transactions like any leader.
    drop(leader.shutdown());
    let mut promoted = None;
    for _ in 0..400 {
        match client.promote() {
            Ok(result) => {
                promoted = Some(result);
                break;
            }
            Err(ClientError::Server { code, .. }) if code == "lease" => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) => panic!("unexpected promote failure: {e:?}"),
        }
    }
    let (role, term) = promoted.expect("PROMOTE succeeds after the lease expires");
    assert_eq!(role, ReplicaRole::Leader);
    assert!(term >= 1);
    client.txn("+e(2, 3)").expect("promoted node commits");
    let reply = client.query("t(1, Y)").expect("post-failover query");
    let rows: BTreeSet<String> = reply.rows.into_iter().collect();
    assert!(
        rows.contains("3"),
        "the write after failover derives, rows {rows:?}"
    );

    drop(follower.shutdown());
    std::fs::remove_dir_all(&leader_dir).ok();
    std::fs::remove_dir_all(&follower_dir).ok();
}
