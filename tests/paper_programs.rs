//! E1: the paper's running example end to end — Example 1.1, Fig. 1 (Magic program),
//! Fig. 2 (factored program), Example 4.2 and Example 5.3 (the final unary program) —
//! checked both textually (program shape) and semantically (answer equality across all
//! stages on several EDBs).

use factorlog::core::optimize::{optimize, FactoringContext, OptimizeOptions};
use factorlog::prelude::*;
use factorlog::workloads::{graphs, programs};

fn stage_programs() -> (Program, Query, Program, Query, Program, Query, Program) {
    let program = parse_program(programs::THREE_RULE_TC).unwrap().program;
    let query = parse_query("t(5, Y)").unwrap();
    let adorned = adorn(&program, &query).unwrap();
    let magicp = magic(&adorned).unwrap();
    let factored = factor_magic(&adorned, &magicp).unwrap();
    let ctx = FactoringContext::from_factored(&factored);
    let (optimized, _) = optimize(
        &factored.program,
        &factored.query,
        Some(&ctx),
        &OptimizeOptions::default(),
    );
    (
        program,
        query,
        magicp.program,
        adorned.query,
        factored.program.clone(),
        factored.query,
        optimized,
    )
}

#[test]
fn figure_1_magic_program_shape() {
    let (_, _, magic_program, _, _, _, _) = stage_programs();
    let text = format!("{magic_program}");
    // The nine rules of Fig. 1 (modulo the `m_t_bf` / `t_bf` naming convention).
    let expected = [
        "m_t_bf(5).",
        "m_t_bf(W) :- m_t_bf(X), t_bf(X, W).",
        "m_t_bf(W) :- m_t_bf(X), e(X, W).",
        "t_bf(X, Y) :- m_t_bf(X), t_bf(X, W), t_bf(W, Y).",
        "t_bf(X, Y) :- m_t_bf(X), e(X, W), t_bf(W, Y).",
        "t_bf(X, Y) :- m_t_bf(X), t_bf(X, W), e(W, Y).",
        "t_bf(X, Y) :- m_t_bf(X), e(X, Y).",
    ];
    for rule in expected {
        assert!(text.contains(rule), "missing rule `{rule}` in:\n{text}");
    }
    assert_eq!(magic_program.len(), 9);
}

#[test]
fn figure_2_factored_program_shape() {
    let (_, _, _, _, factored, _, _) = stage_programs();
    let text = format!("{factored}");
    // Every guarded rule splits into a b_ head and an f_ head with the same body, and
    // occurrences of t_bf are replaced by the bp/fp pair.
    for rule in [
        "b_t_bf(X) :- m_t_bf(X), e(X, Y).",
        "f_t_bf(Y) :- m_t_bf(X), e(X, Y).",
        "m_t_bf(W) :- m_t_bf(X), b_t_bf(X), f_t_bf(W).",
        "f_t_bf(Y) :- m_t_bf(X), b_t_bf(X), f_t_bf(W), b_t_bf(W), f_t_bf(Y).",
    ] {
        assert!(text.contains(rule), "missing rule `{rule}` in:\n{text}");
    }
    assert!(
        !text.contains("t_bf(X, Y) :-"),
        "no binary t_bf rule may remain"
    );
}

#[test]
fn example_5_3_final_unary_program() {
    let (_, _, _, _, _, _, final_program) = stage_programs();
    let text = format!("{final_program}");
    assert_eq!(final_program.len(), 3, "{text}");
    assert!(text.contains("m_t_bf(5)."));
    assert!(text.contains("m_t_bf(W) :- f_t_bf(W)."));
    assert!(text.contains("f_t_bf(Y) :- m_t_bf(X), e(X, Y)."));
}

#[test]
fn all_stages_agree_on_chains_cycles_trees_and_random_graphs() {
    let (program, query, magic_program, magic_query, factored, factored_query, final_program) =
        stage_programs();
    let edbs = vec![
        ("chain", shift(graphs::chain(40), 5)),
        ("cycle", shift(graphs::cycle(30), 5)),
        ("tree", shift(graphs::tree(2, 6), 5)),
        ("random", shift(graphs::random_graph(40, 120, 11), 5)),
        ("empty", Database::new()),
    ];
    for (name, edb) in edbs {
        let expected = evaluate_default(&program, &edb).unwrap().answers(&query);
        let got_magic = evaluate_default(&magic_program, &edb)
            .unwrap()
            .answers(&magic_query);
        let got_factored = evaluate_default(&factored, &edb)
            .unwrap()
            .answers(&factored_query);
        let got_final = evaluate_default(&final_program, &edb)
            .unwrap()
            .answers(&factored_query);
        assert_eq!(expected, got_magic, "magic differs on {name}");
        assert_eq!(expected, got_factored, "factored differs on {name}");
        assert_eq!(expected, got_final, "final program differs on {name}");
    }
}

/// Shift every node id of the `e` relation by `delta` so that node 5 (the query
/// constant) lies inside the graph.
fn shift(db: Database, delta: i64) -> Database {
    let mut out = Database::new();
    if let Some(rel) = db.relation(Symbol::intern("e")) {
        for row in rel.iter() {
            let a = row[0].as_int().unwrap() + delta;
            let b = row[1].as_int().unwrap() + delta;
            out.add_fact("e", &[Const::Int(a), Const::Int(b)]);
        }
    }
    out
}

#[test]
fn factored_program_is_never_less_efficient_than_magic() {
    // The paper's headline: "never less efficient than the Magic Sets program and
    // often dramatically more efficient". Compare inference counts on a chain.
    let (_, _, magic_program, magic_query, _, factored_query, final_program) = stage_programs();
    let edb = shift(graphs::chain(120), 5);
    let magic_result = evaluate_default(&magic_program, &edb).unwrap();
    let final_result = evaluate_default(&final_program, &edb).unwrap();
    assert_eq!(
        magic_result.answers(&magic_query),
        final_result.answers(&factored_query)
    );
    assert!(
        final_result.stats.inferences <= magic_result.stats.inferences,
        "factored ({}) must not exceed magic ({})",
        final_result.stats.inferences,
        magic_result.stats.inferences
    );
    assert!(
        final_result.stats.inferences * 10 < magic_result.stats.inferences,
        "on a chain the factored program should be dramatically cheaper ({} vs {})",
        final_result.stats.inferences,
        magic_result.stats.inferences
    );
}

#[test]
fn example_4_2_pipeline_matches_the_manual_stages() {
    let program = parse_program(programs::THREE_RULE_TC).unwrap().program;
    let query = parse_query("t(5, Y)").unwrap();
    let optimized = optimize_query(&program, &query, &PipelineOptions::default()).unwrap();
    assert_eq!(optimized.strategy, Strategy::FactoredMagic);
    let report = optimized.factorability.as_ref().unwrap();
    assert!(report.classes.contains(&FactorableClass::SelectionPushing));
    let (_, _, _, _, _, _, final_program) = stage_programs();
    assert_eq!(format!("{}", optimized.program), format!("{final_program}"));
}
