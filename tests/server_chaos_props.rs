//! Server chaos harness: the concurrent front end under concurrent readers and
//! writers, injected WAL/merge faults during group commit, connections killed
//! mid-request, and shutdown mid-load.
//!
//! The properties under test are the served engine's contract:
//!
//! * **Snapshot isolation** — a reader never observes a partially applied
//!   transaction batch, and the epoch its reply carries always equals a
//!   committed prefix of the transaction stream (at 1, 2 and 4 eval threads).
//! * **Committed or structured error** — under injected `WalAppend` /
//!   `RoundMerge` faults (error and panic actions), every transaction reply is
//!   either `OK` (and the write survives restart) or a structured `ERR`; no
//!   hang, no torn state.
//! * **Recovery convergence** — after any chaos run, reopening the data
//!   directory yields exactly what a fresh engine evaluating the surviving
//!   base facts from scratch yields, at every thread count.
//!
//! CI runs this file under `FACTORLOG_THREADS=1` and `=4`.

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use factorlog::prelude::*;
use factorlog::workloads::programs;
use proptest::prelude::*;

fn c(i: i64) -> Const {
    Const::Int(i)
}

/// Is the base fact `e(x, y)` present in the store?
fn has_edge(db: &Database, x: i64, y: i64) -> bool {
    db.relation(Symbol::from("e"))
        .is_some_and(|rel| rel.contains(&[c(x), c(y)]))
}

fn eval_opts(threads: usize) -> EvalOptions {
    EvalOptions {
        threads,
        parallel_threshold: 0,
        ..EvalOptions::default()
    }
}

/// The session thread count under test: `FACTORLOG_THREADS` when CI pins it.
fn session_threads() -> usize {
    EvalOptions::default().threads
}

fn fresh_dir(tag: &str) -> PathBuf {
    static COUNTER: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
    let n = COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "factorlog_server_chaos_{tag}_{}_{n}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn server_opts() -> ServerOptions {
    ServerOptions {
        group_window: Duration::from_millis(2),
        drain_timeout: Duration::from_secs(3),
        ..ServerOptions::default()
    }
}

/// The recovery-convergence oracle: a reopened store must answer exactly like
/// a fresh engine evaluating its surviving base facts from scratch, at 1, 2
/// and 4 worker threads.
fn assert_reopened_converges(reopened: &mut Engine, query: &Query) -> Result<(), TestCaseError> {
    let answers = reopened.query(query).expect("reopened store answers");
    for threads in [1usize, 2, 4] {
        let mut fresh = Engine::with_options(eval_opts(threads));
        fresh
            .add_rules(reopened.program().clone())
            .expect("program transplants");
        for (predicate, relation) in reopened.facts().iter() {
            for tuple in relation.iter() {
                fresh.insert(predicate, tuple).expect("fact transplants");
            }
        }
        prop_assert_eq!(
            &fresh.query(query).expect("fresh query"),
            &answers,
            "reopened store diverges from scratch evaluation at {} thread(s)",
            threads
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Satellite: concurrent snapshot isolation. A writer streams transactions
    /// that assert `a(i)` and `b(i)` in ONE batch while reader threads query
    /// the derived `pair(X) :- a(X), b(X).` view. Because a batch is atomic
    /// and the epoch counts committed batches, every reply must satisfy
    /// `rows == {0, 1, …, epoch-1}` exactly — a half-applied batch or an epoch
    /// that is not a committed prefix would break the equality. Checked at
    /// 1, 2 and 4 eval threads.
    #[test]
    fn readers_never_observe_a_partial_batch_and_epochs_are_committed_prefixes(
        txns in 6usize..18,
        readers in 2usize..5,
        queries_per_reader in 5usize..25,
    ) {
        for threads in [1usize, 2, 4] {
            let mut engine = Engine::with_options(eval_opts(threads));
            engine
                .load_source("pair(X) :- a(X), b(X).")
                .expect("program loads");
            let handle = serve(engine, "127.0.0.1:0", server_opts()).expect("serve");
            let addr = handle.addr();

            let done = Arc::new(AtomicBool::new(false));
            let reader_threads: Vec<_> = (0..readers)
                .map(|_| {
                    let done = done.clone();
                    std::thread::spawn(move || -> Result<usize, String> {
                        let mut client =
                            Client::connect_with_retry(addr, 5).map_err(|e| e.to_string())?;
                        let mut observed = 0usize;
                        for _ in 0..queries_per_reader {
                            let reply = client
                                .query_with_retry("pair(X)", 8)
                                .map_err(|e| e.to_string())?;
                            let rows: Vec<i64> = reply
                                .rows
                                .iter()
                                .map(|r| r.parse().map_err(|e| format!("row `{r}`: {e}")))
                                .collect::<Result<_, _>>()?;
                            let expect: Vec<i64> = (0..reply.epoch as i64).collect();
                            if rows != expect {
                                return Err(format!(
                                    "epoch {} is not a committed prefix: rows {rows:?}",
                                    reply.epoch
                                ));
                            }
                            observed += 1;
                            if done.load(Ordering::Relaxed) {
                                break;
                            }
                        }
                        Ok(observed)
                    })
                })
                .collect();

            let mut writer = Client::connect(addr).expect("writer connects");
            let mut last_epoch = 0u64;
            for i in 0..txns {
                let reply = writer
                    .txn_with_retry(&format!("+a({i}); +b({i})"), 8)
                    .expect("txn commits");
                prop_assert!(
                    reply.epoch > last_epoch,
                    "epochs advance monotonically per client"
                );
                last_epoch = reply.epoch;
            }
            done.store(true, Ordering::Relaxed);
            for reader in reader_threads {
                let observed = reader.join().expect("reader thread");
                prop_assert!(observed.is_ok(), "reader failed: {:?}", observed);
            }
            let report = handle.shutdown();
            prop_assert_eq!(report.epoch, txns as u64, "all batches committed");
            let mut engine = report.engine;
            prop_assert_eq!(
                engine
                    .query(&parse_query("pair(X)").unwrap())
                    .expect("returned engine answers")
                    .len(),
                txns
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Tentpole chaos: a durable served engine with a fault armed at the
    /// group-commit WAL append or the view-refresh merge (error or panic
    /// action, random countdown), under concurrent writer clients. Every
    /// transaction reply must be `OK` or a structured `ERR`; every `OK`d
    /// fact must survive restart; and the reopened store must converge to
    /// the from-scratch evaluation at 1/2/4 threads.
    #[test]
    fn wal_and_merge_faults_during_group_commit_stay_contained(
        site_sel in 0usize..2,
        action_sel in 0usize..2,
        countdown in 0u64..6,
        writers in 2usize..5,
        txns_per_writer in 2usize..6,
    ) {
        let site = [FaultSite::WalAppend, FaultSite::RoundMerge][site_sel];
        let action = [FaultAction::Error, FaultAction::Panic][action_sel];
        let dir = fresh_dir("faults");
        let dopts = DurabilityOptions { fsync: false, ..DurabilityOptions::default() };
        let mut engine =
            Engine::open_durable_with_options(&dir, dopts, eval_opts(session_threads()))
                .expect("durable open");
        engine.load_source(programs::THREE_RULE_TC).expect("program loads");
        engine.set_fault_injector(Some(FaultInjector::armed(site, action, countdown as u32)));

        // The armed fault can fire during serve()'s initial refresh: that is a
        // structured refusal with the engine handed back, not a chaos failure.
        let handle = match serve(engine, "127.0.0.1:0", server_opts()) {
            Ok(handle) => handle,
            Err(e) => {
                drop(e); // engine drops, releasing the LOCK
                let mut reopened = Engine::open_durable(&dir).expect("reopen after refusal");
                reopened.load_source(programs::THREE_RULE_TC).expect("program");
                assert_reopened_converges(&mut reopened, &parse_query("t(0, Y)").unwrap())?;
                drop(reopened);
                std::fs::remove_dir_all(&dir).ok();
                return Ok(());
            }
        };
        let addr = handle.addr();

        // Writer clients: disjoint edges, so each acked fact is attributable.
        let worker_threads: Vec<_> = (0..writers)
            .map(|w| {
                std::thread::spawn(move || {
                    let mut acked: Vec<(i64, i64)> = Vec::new();
                    let mut structured = 0usize;
                    let mut client = match Client::connect_with_retry(addr, 5) {
                        Ok(client) => client,
                        Err(_) => return (acked, structured, 0usize),
                    };
                    let mut unstructured = 0usize;
                    for k in 0..txns_per_writer {
                        let (x, y) = (1000 * (w as i64 + 1) + k as i64, k as i64);
                        match client.txn_with_retry(&format!("+e({x}, {y})"), 8) {
                            Ok(_) => acked.push((x, y)),
                            Err(ClientError::Server { .. }) => structured += 1,
                            Err(_) => unstructured += 1,
                        }
                    }
                    (acked, structured, unstructured)
                })
            })
            .collect();
        let mut acked: Vec<(i64, i64)> = Vec::new();
        for worker in worker_threads {
            let (worker_acked, _structured, unstructured) = worker.join().expect("writer thread");
            // No connection was killed in this scenario, so socket-level
            // failures would mean the server wedged or died: forbidden.
            prop_assert_eq!(unstructured, 0, "only OK or structured ERR is allowed");
            acked.extend(worker_acked);
        }

        // The server survives the chaos: a fresh client gets answers.
        let mut probe = Client::connect(addr).expect("probe connects");
        probe.ping().expect("server alive after faults");
        let report = handle.shutdown();
        drop(report); // engine drops: WAL flushed, LOCK released

        // Every acknowledged write is durable across restart…
        let mut reopened = Engine::open_durable(&dir).expect("reopen");
        reopened.load_source(programs::THREE_RULE_TC).expect("program");
        for &(x, y) in &acked {
            prop_assert!(
                has_edge(reopened.facts(), x, y),
                "acked e({x}, {y}) lost across restart"
            );
        }
        // …and the store converges to from-scratch evaluation.
        assert_reopened_converges(&mut reopened, &parse_query("t(1000, Y)").unwrap())?;
        drop(reopened);
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Connections killed mid-request (the client vanishes after sending, without
/// ever reading its reply) must not wedge the server, leak its in-flight
/// budget, or tear state: surviving clients keep getting consistent answers
/// and the final store matches what was committed.
#[test]
fn connections_killed_mid_request_leave_the_server_consistent() {
    let mut engine = Engine::with_options(eval_opts(session_threads()));
    engine
        .load_source("pair(X) :- a(X), b(X).")
        .expect("program loads");
    let handle = serve(engine, "127.0.0.1:0", server_opts()).expect("serve");
    let addr = handle.addr();

    // Waves of clients that submit work and hang up immediately.
    for i in 0..12i64 {
        let mut victim = Client::connect(addr).expect("victim connects");
        // A transaction whose reply nobody will read…
        let spec = format!("+a({i}); +b({i})");
        let killed = std::thread::spawn(move || {
            use std::io::Write as _;
            let mut raw = std::net::TcpStream::connect(addr).expect("raw connect");
            // …and a raw socket torn down mid-line (no terminating newline).
            let _ = raw.write_all(b"QUERY pair(");
            drop(raw);
        });
        // The victim's own submission also goes unread: drop the client right
        // after the request hits the wire.
        std::thread::spawn(move || {
            let _ = victim.txn(&spec);
            // victim dropped here without QUIT
        })
        .join()
        .expect("victim thread");
        killed.join().expect("killer thread");
    }

    // A well-behaved client still sees a consistent committed prefix.
    let mut client = Client::connect(addr).expect("survivor connects");
    let reply = client.query("pair(X)").expect("query answers");
    let rows: BTreeSet<i64> = reply.rows.iter().map(|r| r.parse().unwrap()).collect();
    let expect: BTreeSet<i64> = (0..reply.epoch as i64).collect();
    assert_eq!(rows, expect, "killed connections must not tear batches");
    let stats = client.stats().expect("stats");
    assert_eq!(
        stats.in_flight, 0,
        "killed requests must not leak admission"
    );

    let report = handle.shutdown();
    assert!(report.drained_cleanly);
    let mut engine = report.engine;
    assert_eq!(
        engine
            .query(&parse_query("pair(X)").unwrap())
            .expect("returned engine answers")
            .len() as u64,
        report.epoch,
        "the returned engine holds exactly the committed prefix"
    );
}

/// Shutdown mid-load: with readers and writers still streaming, a graceful
/// shutdown must terminate promptly, give every still-connected client either
/// a result or a structured/socket-level refusal (never a hang), flush the
/// WAL, and leave a store that recovers to from-scratch evaluation.
#[test]
fn shutdown_mid_load_drains_and_recovers() {
    let dir = fresh_dir("drain");
    let dopts = DurabilityOptions {
        fsync: false,
        ..DurabilityOptions::default()
    };
    let mut engine = Engine::open_durable_with_options(&dir, dopts, eval_opts(session_threads()))
        .expect("durable open");
    engine
        .load_source(programs::THREE_RULE_TC)
        .expect("program loads");
    let handle = serve(engine, "127.0.0.1:0", server_opts()).expect("serve");
    let addr = handle.addr();

    let stop = Arc::new(AtomicBool::new(false));
    let workers: Vec<_> = (0..4)
        .map(|w| {
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut acked: Vec<(i64, i64)> = Vec::new();
                let Ok(mut client) = Client::connect_with_retry(addr, 5) else {
                    return acked;
                };
                for k in 0..200i64 {
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    let (x, y) = (100 * (w as i64 + 1) + k, k);
                    // Ok = committed; Server err = structured refusal
                    // (overloaded/shutdown); Io = the socket died under
                    // shutdown. All are acceptable outcomes — hanging is not.
                    match client.txn(&format!("+e({x}, {y})")) {
                        Ok(_) => acked.push((x, y)),
                        Err(ClientError::Server { .. }) => {}
                        Err(_) => break,
                    }
                    let _ = client.query("t(0, Y)");
                }
                acked
            })
        })
        .collect();

    // Let the load build, then pull the plug mid-stream.
    std::thread::sleep(Duration::from_millis(150));
    let report = handle.shutdown();
    stop.store(true, Ordering::Relaxed);
    let mut acked: Vec<(i64, i64)> = Vec::new();
    for worker in workers {
        acked.extend(worker.join().expect("worker thread"));
    }
    assert!(
        !acked.is_empty(),
        "some transactions committed before drain"
    );
    drop(report);

    let mut reopened = Engine::open_durable(&dir).expect("reopen");
    reopened
        .load_source(programs::THREE_RULE_TC)
        .expect("program");
    for &(x, y) in &acked {
        assert!(
            has_edge(reopened.facts(), x, y),
            "acked e({x}, {y}) lost across shutdown + restart"
        );
    }
    let answers = reopened
        .query(&parse_query("t(100, Y)").unwrap())
        .expect("reopened store answers");
    let mut fresh = Engine::with_options(eval_opts(1));
    fresh.add_rules(reopened.program().clone()).unwrap();
    for (predicate, relation) in reopened.facts().iter() {
        for tuple in relation.iter() {
            fresh.insert(predicate, tuple).unwrap();
        }
    }
    assert_eq!(
        fresh.query(&parse_query("t(100, Y)").unwrap()).unwrap(),
        answers,
        "post-shutdown store diverges from scratch evaluation"
    );
    drop(reopened);
    std::fs::remove_dir_all(&dir).ok();
}
