//! Example 1.1 / 4.2 / 5.3 of the paper, end to end and stage by stage: the three-rule
//! transitive closure, its Magic program (Fig. 1), the factored program (Fig. 2), and
//! the final unary program, with an evaluation comparison of the strategies.
//!
//! Run with: `cargo run --release --example transitive_closure`

use factorlog::core::optimize::{optimize, FactoringContext, OptimizeOptions};
use factorlog::prelude::*;
use factorlog::workloads::{graphs, programs};

fn main() {
    let program = parse_program(programs::THREE_RULE_TC).unwrap().program;
    let query = parse_query("t(5, Y)").unwrap();

    println!("== original program (Example 1.1) ==\n{program}");
    println!("query: {query}\n");

    // Stage 1: adornment.
    let adorned = adorn(&program, &query).unwrap();
    println!("== adorned program ==\n{}", adorned.program);

    // Stage 2: Magic Sets (Fig. 1 of the paper).
    let magic_program = magic(&adorned).unwrap();
    println!("== magic program (Fig. 1) ==\n{}", magic_program.program);

    // Stage 3: classification and factorability analysis.
    let classification = classify(&adorned).unwrap();
    println!("== classification ==\n{}", classification.summary());
    let report = analyze(&classification);
    println!("== factorability ==\n{report}");

    // Stage 4: factoring (Fig. 2 of the paper).
    let factored = factor_magic(&adorned, &magic_program).unwrap();
    println!(
        "== factored magic program (Fig. 2) ==\n{}",
        factored.program
    );

    // Stage 5: the §5 optimizations (Example 5.3's final unary program).
    let ctx = FactoringContext::from_factored(&factored);
    let (final_program, trace) = optimize(
        &factored.program,
        &factored.query,
        Some(&ctx),
        &OptimizeOptions::default(),
    );
    println!("== final program (Example 5.3) ==\n{final_program}");
    println!("final query: {}\n", factored.query);
    println!("simplifications applied:");
    for step in &trace.steps {
        println!("  - {step}");
    }

    // Evaluation comparison on a chain starting at node 5. The original program's
    // nonlinear rule is cubic in the chain length, so the baseline instance is modest.
    println!("\n== evaluation comparison (chain of 300 edges starting at node 5, plus an irrelevant 300-edge chain) ==");
    let mut edb = Database::new();
    for i in 0..300i64 {
        edb.add_fact("e", &[Const::Int(5 + i), Const::Int(5 + i + 1)]);
    }
    // Also add an irrelevant component that Magic Sets should never touch.
    let irrelevant = graphs::chain(300);
    let mut edb_with_noise = edb.clone();
    for row in irrelevant.relation(Symbol::intern("e")).unwrap().iter() {
        edb_with_noise.add_fact(
            "e",
            &[
                Const::Int(row[0].as_int().unwrap() + 1_000_000),
                Const::Int(row[1].as_int().unwrap() + 1_000_000),
            ],
        );
    }

    let strategies: Vec<(&str, Program, Query)> = vec![
        ("original (semi-naive)", program.clone(), query.clone()),
        (
            "magic",
            magic_program.program.clone(),
            adorned.query.clone(),
        ),
        (
            "magic + factoring + §5",
            final_program.clone(),
            factored.query.clone(),
        ),
    ];
    println!(
        "{:<28} {:>12} {:>12} {:>10}",
        "strategy", "inferences", "facts", "answers"
    );
    for (name, prog, q) in strategies {
        let result = evaluate_default(&prog, &edb_with_noise).unwrap();
        println!(
            "{:<28} {:>12} {:>12} {:>10}",
            name,
            result.stats.inferences,
            result.stats.facts_derived,
            result.answers(&q).len()
        );
    }
    println!("\n(the factored program derives one unary fact per reachable node instead of a binary relation)");
}
