//! A persistent engine session: materialize once, absorb inserts incrementally,
//! replay prepared query plans, and read the cumulative session statistics.
//!
//! Run with: `cargo run --example engine_session`

use factorlog::prelude::*;

fn main() {
    let mut engine = Engine::new();

    // Register the right-linear transitive closure and an initial chain 0 -> ... -> 5.
    engine
        .load_source(factorlog::workloads::programs::RIGHT_LINEAR_TC)
        .expect("program loads");
    for i in 0..5i64 {
        engine
            .insert("e", &[Const::Int(i), Const::Int(i + 1)])
            .expect("insert");
    }

    // First query materializes the least model.
    let query = parse_query("t(0, Y)").expect("query parses");
    let answers = engine.query(&query).expect("query evaluates");
    println!(
        "after materialization: {} nodes reachable from 0",
        answers.len()
    );

    // New facts are absorbed by delta-seeded resumes — the model is never rebuilt.
    for i in 5..10i64 {
        engine
            .insert("e", &[Const::Int(i), Const::Int(i + 1)])
            .expect("insert");
        let answers = engine.query(&query).expect("incremental query");
        println!(
            "after inserting e({i}, {}): {} reachable",
            i + 1,
            answers.len()
        );
    }

    // Prepared queries: the optimization pipeline (magic sets + factoring + §5) runs
    // once; the compiled plan is replayed afterwards, and rebinding covers other
    // constants with the same adornment.
    let report = engine.prepare(&query).expect("prepare");
    println!(
        "prepared t(0, Y): strategy = {}, cached = {}",
        report.strategy, report.cached
    );
    for start in [0i64, 3, 7] {
        let q = parse_query(&format!("t({start}, Y)")).expect("query parses");
        let answers = engine.query_prepared(&q).expect("prepared query");
        println!("prepared t({start}, Y): {} answers", answers.len());
    }

    // Cumulative per-session counters, including the plan cache.
    let stats = engine.stats();
    println!(
        "session totals: {} inferences, {} facts derived, plan cache {} hit(s) / {} miss(es)",
        stats.inferences, stats.facts_derived, stats.plan_cache_hits, stats.plan_cache_misses
    );
    assert!(
        stats.plan_cache_hits >= 2,
        "rebinding replays count as hits"
    );

    // The incremental session agrees with batch evaluation of the final EDB.
    let batch = evaluate_default(engine.program(), engine.facts())
        .expect("batch evaluation")
        .answers(&query);
    assert_eq!(engine.query(&query).expect("query"), batch);
    println!("incremental session == batch evaluation: ok");
}
