//! Quickstart: parse a program, optimize the query with Magic Sets + factoring, and
//! evaluate it.
//!
//! Run with: `cargo run --release --example quickstart`

use factorlog::prelude::*;

fn main() {
    // The transitive closure written with all three forms of the recursive rule
    // (Example 1.1 of the paper), querying the nodes reachable from 0.
    let source = "
        t(X, Y) :- t(X, W), t(W, Y).
        t(X, Y) :- e(X, W), t(W, Y).
        t(X, Y) :- t(X, W), e(W, Y).
        t(X, Y) :- e(X, Y).
        ?- t(0, Y).
    ";
    let parsed = parse_program(source).expect("the program parses");
    let query = parsed.query().expect("the source contains a query").clone();

    // Optimize: adornment -> Magic Sets -> factorability analysis -> factoring -> §5
    // simplifications.
    let optimized = optimize_query(&parsed.program, &query, &PipelineOptions::default())
        .expect("the pipeline succeeds");

    println!("strategy: {}", optimized.strategy);
    println!("\nfinal program:\n{}", optimized.program);
    println!("final query:  {}\n", optimized.query);

    // Evaluate over a 300-edge chain. (The unoptimized baseline below evaluates the
    // nonlinear rule over the full closure, which is cubic in the chain length — the
    // very cost the optimization removes — so keep the baseline instance modest.)
    let edb = factorlog::workloads::graphs::chain(300);
    let result = optimized.evaluate(&edb).expect("evaluation succeeds");
    let answers = result.answers(&optimized.query);
    println!("answers: {} nodes reachable from 0", answers.len());
    println!(
        "evaluation: {} inferences, {} facts derived, {} iterations",
        result.stats.inferences, result.stats.facts_derived, result.stats.iterations
    );

    // For comparison, evaluate the original program directly (no optimization).
    let baseline = evaluate_default(&parsed.program, &edb).expect("baseline evaluation");
    println!(
        "unoptimized baseline: {} inferences, {} facts derived",
        baseline.stats.inferences, baseline.stats.facts_derived
    );
    assert_eq!(baseline.answers(&query), answers);
    println!("\nboth programs return the same {} answers", answers.len());
}
