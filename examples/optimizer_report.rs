//! Classify a suite of recursions and report, for each, its rule classes, whether it
//! is RLC-stable, which factorability condition (if any) applies, and what the final
//! optimized program looks like.
//!
//! Run with: `cargo run --release --example optimizer_report`

use factorlog::core::one_sided::analyze_one_sided;
use factorlog::core::separable::analyze_separable;
use factorlog::prelude::*;
use factorlog::workloads::programs;

fn main() {
    let suite: Vec<(&str, &str, &str)> = vec![
        (
            "three-rule TC (Ex. 1.1)",
            programs::THREE_RULE_TC,
            "t(0, Y)",
        ),
        ("right-linear TC", programs::RIGHT_LINEAR_TC, "t(0, Y)"),
        ("left-linear TC", programs::LEFT_LINEAR_TC, "t(0, Y)"),
        ("nonlinear TC", programs::NONLINEAR_TC, "t(0, Y)"),
        ("pmem (Ex. 4.6)", programs::PMEM, "pmem(X, 10000001)"),
        (
            "Example 4.3 (as printed)",
            programs::EXAMPLE_4_3_EXACT,
            "p(0, Y)",
        ),
        (
            "selection-pushing variant",
            programs::SELECTION_PUSHING,
            "p(0, Y)",
        ),
        ("symmetric (Ex. 4.4 shape)", programs::SYMMETRIC, "p(0, Y)"),
        (
            "answer-propagating (Ex. 4.5 shape)",
            programs::ANSWER_PROPAGATING,
            "p(0, Y)",
        ),
        (
            "Example 5.1 (needs reduction)",
            programs::EXAMPLE_5_1,
            "p(0, 1, Z)",
        ),
        (
            "Example 5.2 (pseudo-left-linear)",
            programs::EXAMPLE_5_2,
            "p(0, 1, Z)",
        ),
        ("same generation", programs::SAME_GENERATION, "sg(0, Y)"),
    ];

    println!(
        "{:<36} {:>10} {:>12} {:>24} {:>8}",
        "program", "reduced?", "RLC-stable", "factorable (class)", "rules"
    );
    for (name, source, query_text) in &suite {
        let program = parse_program(source).unwrap().program;
        let query = parse_query(query_text).unwrap();
        let optimized = match optimize_query(&program, &query, &PipelineOptions::default()) {
            Ok(o) => o,
            Err(e) => {
                println!("{name:<36} pipeline error: {e}");
                continue;
            }
        };
        let rlc = optimized
            .classification
            .as_ref()
            .map(|c| c.is_rlc_stable().to_string())
            .unwrap_or_else(|| "n/a".to_string());
        let factorable = match &optimized.factorability {
            Some(report) if report.is_factorable() => report
                .classes
                .iter()
                .map(|c| c.to_string())
                .collect::<Vec<_>>()
                .join("+"),
            Some(_) => "no".to_string(),
            None => "n/a".to_string(),
        };
        println!(
            "{:<36} {:>10} {:>12} {:>24} {:>8}",
            name,
            if optimized.reduced.is_some() {
                "yes"
            } else {
                "no"
            },
            rlc,
            factorable,
            optimized.program.len()
        );
    }

    println!("\n== §6 class analyses on the transitive closure ==");
    let tc = parse_program(programs::LEFT_LINEAR_TC).unwrap().program;
    let one_sided = analyze_one_sided(&tc, Symbol::intern("t")).unwrap();
    println!(
        "one-sided: {} (static positions {:?}, dynamic {:?})",
        one_sided.is_simple_one_sided, one_sided.static_positions, one_sided.dynamic_positions
    );
    let separable = analyze_separable(&tc, Symbol::intern("t")).unwrap();
    println!(
        "separable: {}, reducible: {}",
        separable.is_separable, separable.is_reducible
    );

    println!("\n== full pipeline report for the three-rule transitive closure ==\n");
    let program = parse_program(programs::THREE_RULE_TC).unwrap().program;
    let query = parse_query("t(5, Y)").unwrap();
    let optimized = optimize_query(&program, &query, &PipelineOptions::default()).unwrap();
    println!("{}", optimized.report());
}
