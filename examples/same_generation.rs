//! The same-generation query: the paper's canonical recursion that is *not*
//! factorable (§6.4). The pipeline falls back to the Magic program, which is still a
//! large improvement over evaluating the whole recursion, and the factorability report
//! explains exactly why factoring does not apply.
//!
//! Run with: `cargo run --release --example same_generation`

use factorlog::prelude::*;
use factorlog::workloads::{graphs, programs};

fn main() {
    let program = parse_program(programs::SAME_GENERATION).unwrap().program;
    let query = parse_query("sg(0, Y)").unwrap();
    println!("== same-generation program ==\n{program}");
    println!("query: {query}\n");

    let optimized = optimize_query(&program, &query, &PipelineOptions::default()).unwrap();
    println!("strategy chosen by the pipeline: {}", optimized.strategy);
    if let Some(report) = &optimized.factorability {
        println!("\nfactorability analysis:\n{report}");
    }
    println!("final (magic) program:\n{}", optimized.program);

    // Evaluate on a balanced binary tree of depth 10 (1024 leaves).
    let edb = graphs::same_generation_tree(10);
    println!(
        "EDB: {} up, {} down, {} flat facts",
        edb.count("up"),
        edb.count("down"),
        edb.count("flat")
    );

    let baseline = evaluate_default(&program, &edb).unwrap();
    let magic = optimized.evaluate(&edb).unwrap();
    let baseline_answers = baseline.answers(&query);
    let magic_answers = magic.answers(&optimized.query);
    assert_eq!(baseline_answers, magic_answers);

    println!(
        "\n{:<24} {:>12} {:>12} {:>10}",
        "strategy", "inferences", "facts", "answers"
    );
    println!(
        "{:<24} {:>12} {:>12} {:>10}",
        "original (semi-naive)",
        baseline.stats.inferences,
        baseline.stats.facts_derived,
        baseline_answers.len()
    );
    println!(
        "{:<24} {:>12} {:>12} {:>10}",
        "magic (no factoring)",
        magic.stats.inferences,
        magic.stats.facts_derived,
        magic_answers.len()
    );
    println!("\nMagic Sets restricts the computation to the query's cone; factoring is not sound here because an answer to a subgoal is not necessarily an answer to the query goal.");
}
