//! Example 1.2 / 4.6 of the paper: filtering the members of a list with `pmem`.
//!
//! The unfactored program materializes O(n²) `pmem` facts (every satisfying member
//! paired with every suffix containing it); after Magic Sets + factoring the program
//! derives O(n) facts and runs in linear time. The list is encoded as the EDB relation
//! `list(Head, TailId, ListId)` with shared tails — the standard-form encoding the
//! paper itself uses for the factorability test.
//!
//! Run with: `cargo run --release --example list_membership`

use factorlog::prelude::*;
use factorlog::workloads::lists::{pmem_list, LIST_ID_BASE};
use factorlog::workloads::programs::PMEM;
use std::time::Instant;

fn main() {
    let program = parse_program(PMEM).unwrap().program;
    println!("== pmem program (standard form) ==\n{program}");

    println!(
        "{:>8} {:>16} {:>12} {:>16} {:>12} {:>10}",
        "n", "plain inf.", "plain facts", "factored inf.", "fact. facts", "speedup"
    );
    for &n in &[100usize, 200, 400, 800, 1600] {
        let workload = pmem_list(n, 1); // every member satisfies p
        let query = parse_query(&format!("pmem(X, {})", LIST_ID_BASE + 1)).unwrap();

        // Plain bottom-up evaluation of the original program: O(n²) pmem facts.
        let start = Instant::now();
        let plain = evaluate_default(&program, &workload.edb).unwrap();
        let plain_time = start.elapsed();

        // Magic + factoring via the pipeline: O(n) facts.
        let optimized = optimize_query(&program, &query, &PipelineOptions::default()).unwrap();
        assert_eq!(optimized.strategy, Strategy::FactoredMagic);
        let start = Instant::now();
        let factored = optimized.evaluate(&workload.edb).unwrap();
        let factored_time = start.elapsed();

        assert_eq!(
            plain.answers(&query),
            factored.answers(&optimized.query),
            "both strategies must return the same members"
        );

        let speedup = plain_time.as_secs_f64() / factored_time.as_secs_f64().max(1e-9);
        println!(
            "{:>8} {:>16} {:>12} {:>16} {:>12} {:>9.1}x",
            n,
            plain.stats.inferences,
            plain.stats.facts_derived,
            factored.stats.inferences,
            factored.stats.facts_derived,
            speedup
        );
    }
    println!("\nplain facts grow quadratically with n; factored facts grow linearly (the paper's Example 4.6 claim)");
}
