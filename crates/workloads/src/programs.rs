//! The paper's programs (and the variants used in the evaluation), as source text,
//! shared by the examples, integration tests and benchmarks.

/// Example 1.1 / 4.2: transitive closure with all three forms of the recursive rule.
pub const THREE_RULE_TC: &str = "\
t(X, Y) :- t(X, W), t(W, Y).
t(X, Y) :- e(X, W), t(W, Y).
t(X, Y) :- t(X, W), e(W, Y).
t(X, Y) :- e(X, Y).";

/// The right-linear transitive closure.
pub const RIGHT_LINEAR_TC: &str = "\
t(X, Y) :- e(X, W), t(W, Y).
t(X, Y) :- e(X, Y).";

/// The left-linear transitive closure.
pub const LEFT_LINEAR_TC: &str = "\
t(X, Y) :- t(X, W), e(W, Y).
t(X, Y) :- e(X, Y).";

/// The nonlinear (doubling) transitive closure.
pub const NONLINEAR_TC: &str = "\
t(X, Y) :- t(X, W), t(W, Y).
t(X, Y) :- e(X, Y).";

/// The canonical query for the transitive-closure programs: `t(0, Y)`.
pub const TC_QUERY: &str = "t(0, Y)";

/// Same generation: the paper's canonical example of a recursion that cannot be
/// factored (§6.4) and for which the Counting indices are genuinely needed.
pub const SAME_GENERATION: &str = "\
sg(X, Y) :- flat(X, Y).
sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).";

/// Query for [`SAME_GENERATION`].
pub const SG_QUERY: &str = "sg(0, Y)";

/// Example 1.2 / 4.6: the `pmem` list-membership program in the paper's standard form,
/// with the list represented by the EDB relation `list(Head, TailId, ListId)` and the
/// body ordered so the left-to-right SIP binds the tail before the recursive call.
pub const PMEM: &str = "\
pmem(X, L) :- list(X, T, L), p(X).
pmem(X, L) :- list(H, T, L), pmem(X, T).";

/// Example 4.3 exactly as printed in the paper. This program is **not** factorable;
/// the paper uses it to show which EDBs break each condition.
pub const EXAMPLE_4_3_EXACT: &str = "\
p(X, Y) :- l1(X), p(X, U), c1(U, V), p(V, Y), r1(Y).
p(X, Y) :- l2(X), p(X, U), c2(U, V), p(V, Y), r2(Y).
p(X, Y) :- f(X, V), p(V, Y), r3(Y).
p(X, Y) :- e(X, Y).";

/// A selection-pushing variant of Example 4.3: one shared left conjunction, the right
/// restrictions repeated in the exit rule, and the right-linear rule's first
/// conjunction contained in the left conjunction (Definition 4.6 holds syntactically).
pub const SELECTION_PUSHING: &str = "\
p(X, Y) :- l(X), p(X, U), c1(U, V), p(V, Y), r1(Y).
p(X, Y) :- l(X), p(X, U), c2(U, V), p(V, Y), r2(Y).
p(X, Y) :- l(X), f(X, V), p(V, Y), r3(Y).
p(X, Y) :- e(X, Y), r1(Y), r2(Y), r3(Y).";

/// A symmetric program in the shape of Example 4.4 (Definition 4.7 holds: identical
/// middle conjunctions, free-exit contained in every right restriction). It is not
/// selection-pushing because the two left conjunctions differ.
pub const SYMMETRIC: &str = "\
p(X, Y) :- l1(X), p(X, U), p(X, V), c(U, V, W), p(W, Y), r1(Y).
p(X, Y) :- l2(X), p(X, U), p(X, V), c(U, V, W), p(W, Y), r2(Y).
p(X, Y) :- e(X, Y), r1(Y), r2(Y).";

/// An answer-propagating program in the shape of Example 4.5 (Definition 4.8 holds).
/// It is neither selection-pushing (different left conjunctions) nor symmetric (it has
/// a right-linear rule).
pub const ANSWER_PROPAGATING: &str = "\
p(X, Y) :- l1(X), p(X, U), p(X, V), c(U, V, W), p(W, Y), r1(Y).
p(X, Y) :- l2(X), p(X, U), p(X, V), c(U, V, W), p(W, Y), r2(Y).
p(X, Y) :- l1(X), l2(X), f(X, V), p(V, Y), r3(Y).
p(X, Y) :- e(X, Y), r1(Y), r2(Y), r3(Y).";

/// The query used with the combined-rule programs above.
pub const P_QUERY: &str = "p(0, Y)";

/// Example 5.1: a program to which the factoring theorems do not apply directly but
/// which becomes factorable after static-argument reduction.
pub const EXAMPLE_5_1: &str = "\
p(X, Y, Z) :- a(X), p(X, Y, W), d(W, U), p(X, U, Z).
p(X, Y, Z) :- exit(X, Y, Z).";

/// Example 5.2: a pseudo-left-linear program (the left and last conjunctions share the
/// static variable X); reduction makes it left-linear.
pub const EXAMPLE_5_2: &str = "\
p(X, Y, Z) :- p(X, Y, W), d(W, X, Z).
p(X, Y, Z) :- exit(X, Y, Z).";

/// Example 7.1: the first future-work example — a recursion whose *factored Magic
/// program* can itself be factored again, down to unary predicates.
pub const EXAMPLE_7_1: &str = "\
t(X, Y, Z) :- t(X, U, W), b(U, Y), d(Z).
t(X, Y, Z) :- e(X, Y, Z).";

/// A family of right-linear programs used for the Counting-vs-factoring comparison
/// (§6.4): two alternative `first` relations and right restrictions. The exit rule
/// repeats the right restrictions so that `free-exit ⊆ free` holds and the program is
/// selection-pushing (Definition 4.6) — the setting of Theorem 6.4.
pub const RIGHT_LINEAR_TWO_RULES: &str = "\
p(X, Y) :- first1(X, U), p(U, Y), right1(Y).
p(X, Y) :- first2(X, U), p(U, Y), right2(Y).
p(X, Y) :- exit(X, Y), right1(Y), right2(Y).";

/// An arity-3 factorable recursion used by the arity-scaling experiment: the bound
/// argument selects a chain, and two free arguments are produced by the exit relation.
pub const ARITY_3_TC: &str = "\
t(X, Y, Z) :- e(X, W), t(W, Y, Z).
t(X, Y, Z) :- exit(X, Y, Z).";

#[cfg(test)]
mod tests {
    use super::*;
    use factorlog_datalog::parser::{parse_program, parse_query};

    #[test]
    fn all_programs_parse() {
        for (name, src) in [
            ("THREE_RULE_TC", THREE_RULE_TC),
            ("RIGHT_LINEAR_TC", RIGHT_LINEAR_TC),
            ("LEFT_LINEAR_TC", LEFT_LINEAR_TC),
            ("NONLINEAR_TC", NONLINEAR_TC),
            ("SAME_GENERATION", SAME_GENERATION),
            ("PMEM", PMEM),
            ("EXAMPLE_4_3_EXACT", EXAMPLE_4_3_EXACT),
            ("SELECTION_PUSHING", SELECTION_PUSHING),
            ("SYMMETRIC", SYMMETRIC),
            ("ANSWER_PROPAGATING", ANSWER_PROPAGATING),
            ("EXAMPLE_5_1", EXAMPLE_5_1),
            ("EXAMPLE_5_2", EXAMPLE_5_2),
            ("EXAMPLE_7_1", EXAMPLE_7_1),
            ("RIGHT_LINEAR_TWO_RULES", RIGHT_LINEAR_TWO_RULES),
            ("ARITY_3_TC", ARITY_3_TC),
        ] {
            let parsed = parse_program(src).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(!parsed.program.is_empty(), "{name} is empty");
        }
        for q in [TC_QUERY, SG_QUERY, P_QUERY] {
            parse_query(q).unwrap();
        }
    }
}
