//! EDB encoding of cons-lists for the `pmem` experiment (Examples 1.2 and 4.6).
//!
//! The paper's program works over Prolog lists; its standard-form encoding represents
//! the list by an EDB relation `list(Head, TailId, ListId)` where list identifiers
//! stand for (shared) suffixes. This module generates that encoding: the suffix
//! `[x_i, ..., x_n]` gets identifier `LIST_ID_BASE + i`, so each cons cell is a single
//! tuple and tails are shared by identifier — the same cost model as a
//! structure-sharing list implementation, which is what the paper's linear-time claim
//! relies on.

use factorlog_datalog::ast::Const;
use factorlog_datalog::storage::Database;

/// Identifiers for list suffixes start here so they never collide with element values.
pub const LIST_ID_BASE: i64 = 10_000_000;

/// The generated list workload.
#[derive(Clone, Debug)]
pub struct ListWorkload {
    /// The EDB: `list/3` plus the unary `p` relation of elements satisfying the filter.
    pub edb: Database,
    /// The identifier of the full list (the query constant).
    pub list_id: Const,
    /// Number of elements.
    pub length: usize,
    /// Number of elements satisfying `p`.
    pub satisfying: usize,
}

/// Build the EDB for a list `[1, 2, ..., n]` where every `keep_every`-th element
/// satisfies the predicate `p` (use `keep_every = 1` for the paper's "all members
/// satisfy p" case).
pub fn pmem_list(n: usize, keep_every: usize) -> ListWorkload {
    let keep_every = keep_every.max(1);
    let mut edb = Database::new();
    let suffix_id = |i: usize| Const::Int(LIST_ID_BASE + i as i64);
    // suffix i denotes [x_i, ..., x_n] (1-based); suffix n+1 is the empty list.
    for i in 1..=n {
        edb.add_fact(
            "list",
            &[Const::Int(i as i64), suffix_id(i + 1), suffix_id(i)],
        );
    }
    let mut satisfying = 0;
    for i in 1..=n {
        if i % keep_every == 0 {
            edb.add_fact("p", &[Const::Int(i as i64)]);
            satisfying += 1;
        }
    }
    ListWorkload {
        edb,
        list_id: suffix_id(1),
        length: n,
        satisfying,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use factorlog_datalog::parser::{parse_program, parse_query};
    use factorlog_datalog::Symbol;

    #[test]
    fn encodes_one_cons_cell_per_element() {
        let w = pmem_list(10, 1);
        assert_eq!(w.edb.count("list"), 10);
        assert_eq!(w.edb.count("p"), 10);
        assert_eq!(w.length, 10);
        assert_eq!(w.satisfying, 10);
        assert_eq!(w.list_id, Const::Int(LIST_ID_BASE + 1));
    }

    #[test]
    fn keep_every_controls_the_filter() {
        let w = pmem_list(10, 3);
        assert_eq!(w.edb.count("p"), 3); // elements 3, 6, 9
        assert_eq!(w.satisfying, 3);
    }

    #[test]
    fn pmem_program_finds_exactly_the_satisfying_members() {
        let w = pmem_list(12, 2);
        let program = parse_program(crate::programs::PMEM).unwrap().program;
        let query_text = format!("pmem(X, {})", LIST_ID_BASE + 1);
        let query = parse_query(&query_text).unwrap();
        let result = factorlog_datalog::eval::evaluate_default(&program, &w.edb).unwrap();
        let answers = result.answers(&query);
        assert_eq!(answers.len(), 6, "elements 2,4,6,8,10,12 satisfy p");
        // The unfactored program materializes O(n^2) pmem facts when many elements
        // satisfy p: every member is paired with every suffix that contains it.
        let pmem_facts = result.database.count(Symbol::intern("pmem"));
        assert!(
            pmem_facts > w.length,
            "quadratic blow-up expected: {pmem_facts}"
        );
    }
}
