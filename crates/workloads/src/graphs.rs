//! Graph EDB generators for the transitive-closure and same-generation experiments.
//!
//! All generators populate a binary edge relation (named `e` unless stated otherwise)
//! over the integer domain, matching the paper's evaluation setting of selections over
//! graph recursions.

use factorlog_datalog::ast::Const;
use factorlog_datalog::storage::Database;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn c(i: i64) -> Const {
    Const::Int(i)
}

/// A chain `0 -> 1 -> ... -> n`.
pub fn chain(n: usize) -> Database {
    let mut db = Database::new();
    for i in 0..n {
        db.add_fact("e", &[c(i as i64), c(i as i64 + 1)]);
    }
    db
}

/// A cycle over `n` nodes.
pub fn cycle(n: usize) -> Database {
    let mut db = Database::new();
    for i in 0..n {
        db.add_fact("e", &[c(i as i64), c(((i + 1) % n) as i64)]);
    }
    db
}

/// Two disjoint chains of `n` edges each; the second starts at node `offset`. Only the
/// chain containing the query node is relevant to a single-source query, which is what
/// Magic Sets exploits.
pub fn two_chains(n: usize, offset: i64) -> Database {
    let mut db = chain(n);
    for i in 0..n {
        db.add_fact("e", &[c(offset + i as i64), c(offset + i as i64 + 1)]);
    }
    db
}

/// A random graph with `nodes` nodes and `edges` directed edges (duplicates merged).
pub fn random_graph(nodes: usize, edges: usize, seed: u64) -> Database {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut db = Database::new();
    db.ensure_relation(factorlog_datalog::Symbol::intern("e"), 2);
    for _ in 0..edges {
        let a = rng.gen_range(0..nodes) as i64;
        let b = rng.gen_range(0..nodes) as i64;
        db.add_fact("e", &[c(a), c(b)]);
    }
    db
}

/// A complete `width`-ary tree of the given `depth`, edges pointing from parent to
/// child; node 0 is the root.
pub fn tree(width: usize, depth: usize) -> Database {
    let mut db = Database::new();
    let mut next = 1i64;
    let mut frontier = vec![0i64];
    for _ in 0..depth {
        let mut new_frontier = Vec::new();
        for &parent in &frontier {
            for _ in 0..width {
                db.add_fact("e", &[c(parent), c(next)]);
                new_frontier.push(next);
                next += 1;
            }
        }
        frontier = new_frontier;
    }
    db
}

/// A rectangular grid of `width` x `height` nodes with edges right and down. Node
/// `(r, col)` is numbered `r * width + col`.
pub fn grid(width: usize, height: usize) -> Database {
    let mut db = Database::new();
    let id = |r: usize, col: usize| (r * width + col) as i64;
    for r in 0..height {
        for col in 0..width {
            if col + 1 < width {
                db.add_fact("e", &[c(id(r, col)), c(id(r, col + 1))]);
            }
            if r + 1 < height {
                db.add_fact("e", &[c(id(r, col)), c(id(r + 1, col))]);
            }
        }
    }
    db
}

/// An EDB for the same-generation program: a balanced binary tree of the given depth
/// expressed as `up(child, parent)` / `down(parent, child)` plus `flat` edges between
/// sibling leaves. The query constant 0 is the leftmost leaf.
pub fn same_generation_tree(depth: usize) -> Database {
    let mut db = Database::new();
    // Nodes numbered level by level: the root is the single node of level `depth`.
    // Leaves are level 0 and numbered 0..2^depth.
    let leaves = 1usize << depth;
    let mut level_start = 0usize;
    let mut level_size = leaves;
    let mut next_id = leaves;
    let mut current: Vec<usize> = (0..leaves).collect();
    for _ in 0..depth {
        let mut parents = Vec::new();
        for pair in current.chunks(2) {
            let parent = next_id;
            next_id += 1;
            for &child in pair {
                db.add_fact("up", &[c(child as i64), c(parent as i64)]);
                db.add_fact("down", &[c(parent as i64), c(child as i64)]);
            }
            parents.push(parent);
        }
        level_start += level_size;
        level_size /= 2;
        current = parents;
    }
    let _ = level_start;
    // Flat edges between adjacent leaves.
    for i in 0..leaves.saturating_sub(1) {
        db.add_fact("flat", &[c(i as i64), c(i as i64 + 1)]);
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_has_n_edges() {
        assert_eq!(chain(10).count("e"), 10);
        assert_eq!(chain(0).count("e"), 0);
    }

    #[test]
    fn cycle_wraps_around() {
        let db = cycle(5);
        assert_eq!(db.count("e"), 5);
        assert!(db
            .relation(factorlog_datalog::Symbol::intern("e"))
            .unwrap()
            .contains(&[c(4), c(0)]));
    }

    #[test]
    fn two_chains_are_disjoint() {
        let db = two_chains(10, 1000);
        assert_eq!(db.count("e"), 20);
    }

    #[test]
    fn random_graph_is_seeded() {
        let a = random_graph(50, 200, 1);
        let b = random_graph(50, 200, 1);
        let c = random_graph(50, 200, 2);
        assert_eq!(format!("{a}"), format!("{b}"));
        assert_ne!(format!("{a}"), format!("{c}"));
        assert!(a.count("e") <= 200);
    }

    #[test]
    fn tree_node_and_edge_counts() {
        let db = tree(2, 3);
        // A binary tree of depth 3 has 2 + 4 + 8 = 14 edges.
        assert_eq!(db.count("e"), 14);
    }

    #[test]
    fn grid_edge_count() {
        let db = grid(3, 3);
        // 3x3 grid: 2*3 horizontal + 2*3 vertical = 12 edges.
        assert_eq!(db.count("e"), 12);
    }

    #[test]
    fn same_generation_tree_shape() {
        let db = same_generation_tree(3);
        // 8 leaves, 14 up edges (one per non-root node), 14 down edges, 7 flat edges.
        assert_eq!(db.count("up"), 14);
        assert_eq!(db.count("down"), 14);
        assert_eq!(db.count("flat"), 7);
    }
}
