//! EDB generators for the combined-rule programs of §4 (Examples 4.3–4.5 and the
//! factorable variants used by the benchmarks).
//!
//! These programs use a base relation `e/2`, guard relations `l`, `l1`, `l2`, `r1`,
//! `r2`, `r3` (unary), connection relations `c1`, `c2`, `f` (binary) and `c` (ternary).
//! The generator produces a chain-plus-random-edges instance over an integer domain
//! with all guards satisfied, so rule applicability is governed by the structural
//! relations rather than by accidental guard misses.

use factorlog_datalog::ast::Const;
use factorlog_datalog::storage::Database;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn c(i: i64) -> Const {
    Const::Int(i)
}

/// Parameters for [`combined_rule_edb`].
#[derive(Clone, Debug)]
pub struct LayeredParams {
    /// Domain size (nodes are `0..nodes`).
    pub nodes: usize,
    /// Extra random `e` edges on top of the chain.
    pub extra_edges: usize,
    /// Number of tuples in each of `c1`, `c2`, `f`.
    pub binary_tuples: usize,
    /// Number of tuples in the ternary `c`.
    pub ternary_tuples: usize,
    /// PRNG seed.
    pub seed: u64,
}

impl LayeredParams {
    /// A default parameterization scaled by `nodes`.
    pub fn scaled(nodes: usize, seed: u64) -> LayeredParams {
        LayeredParams {
            nodes,
            extra_edges: nodes / 2,
            binary_tuples: nodes,
            ternary_tuples: nodes,
            seed,
        }
    }
}

/// Generate an EDB for the combined-rule programs
/// ([`crate::programs::SELECTION_PUSHING`], [`crate::programs::SYMMETRIC`],
/// [`crate::programs::ANSWER_PROPAGATING`], [`crate::programs::EXAMPLE_4_3_EXACT`]).
pub fn combined_rule_edb(params: &LayeredParams) -> Database {
    let mut rng = SmallRng::seed_from_u64(params.seed);
    let mut db = Database::new();
    let n = params.nodes.max(2);
    let pick = |rng: &mut SmallRng| rng.gen_range(0..n) as i64;

    // Base chain plus random extra edges.
    for i in 0..n - 1 {
        db.add_fact("e", &[c(i as i64), c(i as i64 + 1)]);
    }
    for _ in 0..params.extra_edges {
        let (a, b) = (pick(&mut rng), pick(&mut rng));
        db.add_fact("e", &[c(a), c(b)]);
    }

    // Guards: every node satisfies every unary guard.
    for i in 0..n as i64 {
        for guard in ["l", "l1", "l2", "r1", "r2", "r3"] {
            db.add_fact(guard, &[c(i)]);
        }
    }

    // Connection relations. A deterministic chain backbone guarantees that the
    // combined rules actually recurse to meaningful depth (purely random tuples over a
    // growing domain almost never chain), and random extras add fan-out.
    for i in 0..n as i64 - 1 {
        db.add_fact("c1", &[c(i), c(i + 1)]);
        db.add_fact("c2", &[c(i + 1), c(i)]);
        db.add_fact("f", &[c(i), c(i + 1)]);
        db.add_fact("c", &[c(i), c(i), c(i + 1)]);
        db.add_fact("c", &[c(i), c(i + 1), c(i + 1)]);
    }
    for _ in 0..params.binary_tuples {
        db.add_fact("c1", &[pick(&mut rng).into(), pick(&mut rng).into()]);
        db.add_fact("c2", &[pick(&mut rng).into(), pick(&mut rng).into()]);
        db.add_fact("f", &[pick(&mut rng).into(), pick(&mut rng).into()]);
    }
    for _ in 0..params.ternary_tuples {
        db.add_fact(
            "c",
            &[
                pick(&mut rng).into(),
                pick(&mut rng).into(),
                pick(&mut rng).into(),
            ],
        );
    }
    db
}

/// Generate an EDB for the arity-scaling experiment ([`crate::programs::ARITY_3_TC`]):
/// a chain for `e/2` plus an `exit/3` relation associating each node with `fanout`
/// random (Y, Z) pairs.
pub fn arity3_edb(nodes: usize, fanout: usize, seed: u64) -> Database {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut db = Database::new();
    for i in 0..nodes.saturating_sub(1) {
        db.add_fact("e", &[c(i as i64), c(i as i64 + 1)]);
    }
    for i in 0..nodes as i64 {
        for _ in 0..fanout {
            let y = rng.gen_range(0..nodes) as i64;
            let z = rng.gen_range(0..nodes) as i64;
            db.add_fact("exit", &[c(i), c(y), c(z)]);
        }
    }
    db
}

/// Generate an EDB for the right-linear two-rule program used by the Counting
/// comparison ([`crate::programs::RIGHT_LINEAR_TWO_RULES`]): two interleaved chains of
/// goals plus exits at every node, with all right restrictions satisfied.
pub fn right_linear_edb(nodes: usize, seed: u64) -> Database {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut db = Database::new();
    let n = nodes.max(2) as i64;
    for i in 0..n - 1 {
        if rng.gen_bool(0.5) {
            db.add_fact("first1", &[c(i), c(i + 1)]);
        } else {
            db.add_fact("first2", &[c(i), c(i + 1)]);
        }
    }
    for i in 0..n {
        db.add_fact("exit", &[c(i), c(1000 + i)]);
        db.add_fact("right1", &[c(1000 + i)]);
        db.add_fact("right2", &[c(1000 + i)]);
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::programs;
    use factorlog_datalog::eval::evaluate_default;
    use factorlog_datalog::parser::{parse_program, parse_query};

    #[test]
    fn combined_rule_edb_is_seeded_and_populated() {
        let params = LayeredParams::scaled(30, 7);
        let a = combined_rule_edb(&params);
        let b = combined_rule_edb(&params);
        assert_eq!(format!("{a}"), format!("{b}"));
        assert!(a.count("e") >= 29);
        assert_eq!(a.count("l"), 30);
        // Chain backbone (2 per node) plus at most `ternary_tuples` random extras.
        assert!(a.count("c") >= 58 && a.count("c") <= 88);
    }

    #[test]
    fn selection_pushing_program_runs_on_the_generated_edb() {
        let params = LayeredParams::scaled(20, 3);
        let edb = combined_rule_edb(&params);
        let program = parse_program(programs::SELECTION_PUSHING).unwrap().program;
        let query = parse_query(programs::P_QUERY).unwrap();
        let result = evaluate_default(&program, &edb).unwrap();
        assert!(
            !result.answers(&query).is_empty(),
            "the workload must produce answers for the benchmark to be meaningful"
        );
    }

    #[test]
    fn right_linear_edb_produces_answers() {
        let edb = right_linear_edb(25, 11);
        let program = parse_program(programs::RIGHT_LINEAR_TWO_RULES)
            .unwrap()
            .program;
        let query = parse_query(programs::P_QUERY).unwrap();
        let result = evaluate_default(&program, &edb).unwrap();
        assert!(result.answers(&query).len() >= 25);
    }

    #[test]
    fn arity3_edb_counts() {
        let edb = arity3_edb(10, 3, 5);
        assert_eq!(edb.count("e"), 9);
        assert!(edb.count("exit") <= 30);
    }
}
