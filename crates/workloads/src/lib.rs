//! `factorlog-workloads`: synthetic EDB generators and the paper's example programs,
//! shared by the integration tests, the runnable examples and the benchmark harness.
//!
//! * [`programs`] — the paper's programs (Examples 1.1, 1.2, 4.3–4.6, 5.1, 5.2, 7.1,
//!   same-generation, …) as source text;
//! * [`graphs`] — chains, cycles, random graphs, trees, grids, and the
//!   same-generation tree;
//! * [`lists`] — the EDB encoding of cons-lists for the `pmem` experiment;
//! * [`layered`] — EDBs for the combined-rule programs of §4 and the right-linear
//!   programs of §6.4.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod graphs;
pub mod layered;
pub mod lists;
pub mod programs;
