//! Minimal, API-compatible stand-in for the subset of `proptest` this workspace uses.
//! The build environment has no access to crates.io, so the property tests run on this
//! in-repo shim instead.
//!
//! Implemented surface: the [`proptest!`] macro (with the `#![proptest_config(...)]`
//! attribute and `pattern in strategy` bindings), [`prop_assert!`] /
//! [`prop_assert_eq!`] / [`prop_assert_ne!`], integer-range and tuple strategies, and
//! `prop::collection::vec`. Inputs are generated from a deterministic PRNG; there is
//! no shrinking — a failing case panics with the generated values' debug output, which
//! is reproducible because the seed is fixed.

#![warn(missing_docs)]

/// Strategies: recipes for generating random values.
pub mod strategy {
    use rand::rngs::SmallRng;
    use rand::Rng as _;
    use std::ops::Range;

    /// A recipe for generating values of type `Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut SmallRng) -> Self::Value;
    }

    /// Ranges of integers are strategies producing a uniform value in the range.
    impl Strategy for Range<i64> {
        type Value = i64;

        fn generate(&self, rng: &mut SmallRng) -> i64 {
            rng.gen_range(self.clone())
        }
    }

    impl Strategy for Range<usize> {
        type Value = usize;

        fn generate(&self, rng: &mut SmallRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl Strategy for Range<u64> {
        type Value = u64;

        fn generate(&self, rng: &mut SmallRng) -> u64 {
            rng.gen_range(self.clone())
        }
    }

    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);

        fn generate(&self, rng: &mut SmallRng) -> Self::Value {
            (self.0.generate(rng), self.1.generate(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);

        fn generate(&self, rng: &mut SmallRng) -> Self::Value {
            (
                self.0.generate(rng),
                self.1.generate(rng),
                self.2.generate(rng),
            )
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut SmallRng) -> T {
            self.0.clone()
        }
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::SmallRng;
    use rand::Rng as _;
    use std::ops::Range;

    /// Strategy for vectors with a random length and random elements.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut SmallRng) -> Self::Value {
            let len = if self.size.start < self.size.end {
                rng.gen_range(self.size.clone())
            } else {
                self.size.start
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A vector strategy: `len` is drawn from `size`, elements from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

/// Test-runner plumbing used by the [`proptest!`] macro expansion.
pub mod test_runner {
    use rand::rngs::SmallRng;
    use rand::SeedableRng as _;
    use std::fmt;

    /// Configuration for a property test.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` random cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// A failed test case (produced by the `prop_assert*` macros).
    #[derive(Clone, Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Record a failure with the given message.
        pub fn fail(message: impl Into<String>) -> TestCaseError {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "{}", self.message)
        }
    }

    /// Drives the random cases of one property test.
    pub struct TestRunner {
        config: ProptestConfig,
        rng: SmallRng,
    }

    impl TestRunner {
        /// Create a runner with a fixed seed (reproducible runs).
        pub fn new(config: ProptestConfig) -> TestRunner {
            TestRunner {
                config,
                rng: SmallRng::seed_from_u64(0x9E37_79B9_7F4A_7C15),
            }
        }

        /// Number of cases to run.
        pub fn cases(&self) -> u32 {
            self.config.cases
        }

        /// The runner's PRNG.
        pub fn rng(&mut self) -> &mut SmallRng {
            &mut self.rng
        }
    }
}

/// Define property tests: each function runs `cases` times with freshly generated
/// inputs bound by `name in strategy` parameters.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut runner = $crate::test_runner::TestRunner::new(config);
                for case in 0..runner.cases() {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), runner.rng());)+
                    let values = format!(concat!($(stringify!($arg), " = {:?}; "),+), $(&$arg),+);
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(err) = outcome {
                        panic!("proptest case {} failed: {}\n  inputs: {}", case, err, values);
                    }
                }
            }
        )*
    };
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "{} (`{:?}` != `{:?}`)",
                    format!($($fmt)*),
                    left,
                    right
                ),
            ));
        }
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
}

/// The usual imports for property tests.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Namespaced strategy constructors (`prop::collection::vec`).
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn generated_vectors_respect_bounds(
            v in prop::collection::vec((0i64..10, 0i64..10), 0..20),
            n in 1usize..5,
        ) {
            prop_assert!(v.len() < 20);
            prop_assert!((1..5).contains(&n));
            for &(a, b) in &v {
                prop_assert!((0..10).contains(&a), "a out of range: {}", a);
                prop_assert!((0..10).contains(&b));
            }
        }

        #[test]
        fn eq_and_ne_assertions_pass(x in 0i64..100) {
            prop_assert_eq!(x, x);
            prop_assert_ne!(x, x + 1);
            prop_assert_eq!(x, x, "with message {}", x);
        }
    }

    #[test]
    fn failing_assertion_panics_with_inputs() {
        let result = std::panic::catch_unwind(|| {
            proptest! {
                #![proptest_config(ProptestConfig::with_cases(1))]

                #[allow(unused)]
                fn always_fails(x in 0i64..10) {
                    prop_assert!(false, "doomed {}", x);
                }
            }
            always_fails();
        });
        let err = result.unwrap_err();
        let message = err
            .downcast_ref::<String>()
            .expect("panic carries a String");
        assert!(message.contains("doomed"));
        assert!(message.contains("inputs"));
    }
}
