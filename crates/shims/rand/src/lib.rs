//! Minimal, API-compatible stand-in for the subset of the `rand` crate this workspace
//! uses. The build environment has no access to crates.io, so the workload generators'
//! dependency is satisfied by this in-repo shim instead.
//!
//! Implemented surface: `rngs::SmallRng`, `SeedableRng::seed_from_u64`,
//! `Rng::gen_range` over half-open integer ranges, and `Rng::gen_bool`. The generator
//! is `splitmix64` — deterministic for a given seed, which is all the workloads need
//! (they pass explicit seeds for reproducibility).

#![warn(missing_docs)]

use std::ops::Range;

/// Seedable random number generators (the one constructor the workspace uses).
pub trait SeedableRng: Sized {
    /// Create a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Integer types that [`Rng::gen_range`] can sample uniformly from a half-open range.
pub trait SampleUniform: Copy {
    /// Sample uniformly from `[low, high)` using `next` as the word source.
    fn sample(range: Range<Self>, next: u64) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($ty:ty),*) => {
        $(impl SampleUniform for $ty {
            fn sample(range: Range<Self>, next: u64) -> Self {
                assert!(range.start < range.end, "gen_range called with empty range");
                let span = range.end.wrapping_sub(range.start) as u128;
                range.start + (next as u128 % span) as Self
            }
        })*
    };
}
impl_sample_uniform!(usize, u64, u32);

impl SampleUniform for i64 {
    fn sample(range: Range<Self>, next: u64) -> Self {
        assert!(range.start < range.end, "gen_range called with empty range");
        let span = (range.end as i128 - range.start as i128) as u128;
        (range.start as i128 + (next as u128 % span) as i128) as i64
    }
}

/// The subset of `rand::Rng` the workspace uses.
pub trait Rng {
    /// The next raw 64-bit word from the generator.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from a half-open range.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample(range, self.next_u64())
    }

    /// Bernoulli sample with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        // 53 bits of the word give a uniform float in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// A small, fast, deterministic generator (`splitmix64`).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng { state: seed }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            // splitmix64: passes basic statistical tests, more than enough for
            // generating benchmark EDBs.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(0..10usize);
            assert!(x < 10);
            let y = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&y));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(7);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        // p = 0.5 produces both values over enough draws.
        let draws: Vec<bool> = (0..64).map(|_| rng.gen_bool(0.5)).collect();
        assert!(draws.iter().any(|&b| b) && draws.iter().any(|&b| !b));
    }
}
