//! Minimal, API-compatible stand-in for the subset of `criterion` this workspace's
//! benches use. The build environment has no access to crates.io, so the benches link
//! against this in-repo shim instead.
//!
//! Implemented surface: `Criterion::benchmark_group`, `BenchmarkGroup` knobs
//! (`sample_size`, `measurement_time`, `warm_up_time`), `bench_with_input` /
//! `bench_function`, `BenchmarkId`, `Bencher::iter`, [`black_box`], and the
//! `criterion_group!` / `criterion_main!` macros. Each benchmark runs a short warm-up
//! followed by `sample_size` timed samples and prints median / mean wall-clock times
//! as plain text. Pass `--test` (as `cargo test --benches` does) to run every
//! benchmark exactly once for a smoke check instead of timing it.

#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export of the standard black box, used to defeat optimization of benched values.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for one benchmark within a group: a function name plus a parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendered as `function/parameter`.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// An id with no parameter part.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// Passed to the benchmark closure; runs and times the measured routine.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    test_mode: bool,
}

impl Bencher {
    /// Run `routine` repeatedly, recording one wall-clock sample per run.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let runs = if self.test_mode { 1 } else { self.sample_size };
        for _ in 0..runs {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

/// A named group of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Wall-clock budget for warm-up (approximate; the shim runs a single warm-up
    /// pass capped by this duration).
    pub fn warm_up_time(&mut self, t: Duration) -> &mut Self {
        self.warm_up_time = t;
        self
    }

    /// Wall-clock budget for measurement (accepted for API compatibility; the shim
    /// always takes exactly `sample_size` samples).
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Benchmark `f`, passing it `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
            test_mode: self.criterion.test_mode,
        };
        if !self.criterion.test_mode {
            // One untimed warm-up pass.
            f(&mut bencher, input);
            bencher.samples.clear();
        }
        f(&mut bencher, input);
        self.report(&id, &bencher.samples);
        self
    }

    /// Benchmark `f` with no input.
    pub fn bench_function<F>(&mut self, id: BenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.bench_with_input(id, &(), |b, ()| f(b))
    }

    fn report(&self, id: &BenchmarkId, samples: &[Duration]) {
        if samples.is_empty() {
            println!("{}/{id}: no samples", self.name);
            return;
        }
        let mut sorted: Vec<Duration> = samples.to_vec();
        sorted.sort_unstable();
        let median = sorted[sorted.len() / 2];
        let total: Duration = sorted.iter().sum();
        let mean = total / sorted.len() as u32;
        if self.criterion.test_mode {
            println!("{}/{id}: ok (test mode, 1 iteration)", self.name);
        } else {
            println!(
                "{}/{id}: median {:>12.3?}  mean {:>12.3?}  ({} samples)",
                self.name,
                median,
                mean,
                sorted.len()
            );
        }
    }

    /// Finish the group (prints a trailing newline to separate groups).
    pub fn finish(&mut self) {
        println!();
    }
}

/// Entry point handed to benchmark functions.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo test --benches` (and `cargo bench -- --test`) pass `--test`: run each
        // benchmark once as a smoke check instead of timing it.
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("## {name}");
        BenchmarkGroup {
            criterion: self,
            name,
            sample_size: 10,
            warm_up_time: Duration::from_millis(100),
            measurement_time: Duration::from_millis(500),
        }
    }
}

/// Group benchmark functions under one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Produce a `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_runs_and_reports() {
        let mut criterion = Criterion { test_mode: true };
        let mut group = criterion.benchmark_group("shim_smoke");
        group.sample_size(3);
        group.measurement_time(Duration::from_millis(10));
        group.warm_up_time(Duration::from_millis(1));
        let mut runs = 0usize;
        let input = 21u64;
        group.bench_with_input(BenchmarkId::new("double", input), &input, |b, &n| {
            b.iter(|| {
                runs += 1;
                n * 2
            })
        });
        group.finish();
        // Test mode: exactly one iteration, no warm-up.
        assert_eq!(runs, 1);
    }

    #[test]
    fn timed_mode_takes_sample_size_samples() {
        let mut criterion = Criterion { test_mode: false };
        let mut group = criterion.benchmark_group("shim_timed");
        group.sample_size(4);
        let mut runs = 0usize;
        group.bench_function(BenchmarkId::from_parameter("noop"), |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        group.finish();
        // One warm-up pass (4 runs) plus one measured pass (4 runs).
        assert_eq!(runs, 8);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(
            BenchmarkId::new("chain/magic", 100).to_string(),
            "chain/magic/100"
        );
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }
}
