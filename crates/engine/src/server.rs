//! A concurrent multi-session TCP front end for the [`Engine`]: many reader
//! connections querying an immutable, atomically swappable materialized view,
//! one writer thread owning the engine and group-committing concurrently
//! submitted transactions under a single WAL fsync.
//!
//! # Architecture
//!
//! ```text
//!                    ┌────────────────────────────────────────────┐
//!   conn threads ──▶ │  Arc<View { epoch, model: Arc<Database> }> │  lock-free reads
//!     QUERY          │  (RwLock'd Arc swap; readers clone the Arc │  (Database::answers
//!                    │   and answer without touching the engine)  │   on the full model)
//!                    └────────────────▲───────────────────────────┘
//!                                     │ publish after each group
//!   conn threads ──▶ bounded queue ──▶ writer thread (owns Engine)
//!     TXN             (try_send;        · drains the queue into a batch
//!                      Full = shed)     · Engine::commit_group → ONE fsync
//!                                       · refresh + publish the next view
//! ```
//!
//! # Protocol
//!
//! One request per line; every response ends with exactly one `OK …` or
//! `ERR <code>: <message>` line (rows precede it):
//!
//! ```text
//! QUERY t(0, Y)        →  ROW 1 ⏎ ROW 2 ⏎ OK rows=2 epoch=7
//! TXN +e(1, 2); -e(0, 1)  →  OK asserted=1 retracted=1 epoch=8
//! EPOCH                →  OK epoch=8
//! STATS                →  OK epoch=8 in_flight=1 shed=0 group_commits=3 group_txns=7
//!                            txns_per_fsync=2.33 role=leader term=0
//!                            repl_followers=0 repl_lag_frames=0 repl_lag_ms=0
//!                         (one line on the wire)
//! PING                 →  OK pong
//! REPL SUBSCRIBE 12 term=0 id=7  →  FRAME <hex>* (or SNAP <hex>) ⏎
//!                                   OK frames=2 last_seq=13 term=0
//! PROMOTE              →  OK role=leader term=3
//! QUIT                 →  OK bye (server closes the connection)
//! ```
//!
//! Error codes: `parse`, `overloaded` (retryable — the message carries a
//! `retry after N ms` hint), `deadline`, `cancelled`, `limit`, `shutdown`,
//! `txn`, `internal`, and for replication `readonly` (TXN on a follower),
//! `fenced` (a superseded ex-leader refuses writes and polls), `lease`
//! (PROMOTE while the leader's lease is still valid), `repl` (subscription
//! against a non-durable server, or a log/snapshot read failure).
//!
//! Replication (`REPL SUBSCRIBE`, `PROMOTE`, follower mode via
//! [`serve_follower`](crate::replication::serve_follower)) is documented in
//! [`crate::replication`].
//!
//! # Guarantees
//!
//! * **Snapshot isolation for readers.** A query is answered entirely from one
//!   `Arc`'d view: it can never observe a partially applied batch, and the
//!   epoch it reports always equals a committed prefix of the transaction
//!   stream.
//! * **Admission control sheds, never queues unboundedly.** A request beyond
//!   `max_in_flight` (or a transaction finding the commit queue full) is
//!   rejected immediately with `ERR overloaded: … retry after N ms` — the
//!   client backs off and retries ([`Client::txn_with_retry`]).
//! * **Committed or structured error.** Every transaction either reports
//!   `OK … epoch=E` (durable on the log before the reply is sent) or a
//!   structured `ERR`; a connection killed mid-request loses only its reply,
//!   never the store's consistency.
//! * **Graceful shutdown.** [`ServerHandle::shutdown`] stops admitting, drains
//!   in-flight requests (bounded by `drain_timeout`), cancels stragglers via
//!   the engine's [`CancelToken`], flushes the WAL, and hands the engine back.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::fd::AsRawFd;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use factorlog_datalog::ast::{Const, Query, Term};
use factorlog_datalog::eval::{EvalError, LimitReason};
use factorlog_datalog::fault::CancelToken;
use factorlog_datalog::parser::parse_query;
use factorlog_datalog::storage::Database;
use factorlog_datalog::symbol::Symbol;

use crate::engine::{write_const, Engine, EngineError, TxnOp, TxnSummary};
use crate::reactor::{poll_fds, PollFd, WakePipe, POLL_FAIL, POLL_IN, POLL_OUT};
use crate::replication::{self, Replica, ReplicaRole, ReplicationOptions, StreamStep};

/// Cap on how many queued transactions one group commit will absorb.
const MAX_GROUP: usize = 128;

/// Safety-net poll timeout of the reactor (ms): readiness events and the wake
/// pipe drive the loop; this only bounds how stale a missed wake can go.
const REACTOR_POLL_MS: i32 = 100;

/// Bytes the reactor reads per `read(2)` on a ready connection.
const READ_CHUNK: usize = 16 * 1024;

/// Hard cap on a single request line. An unterminated (or terminated) line
/// longer than this is a protocol violation; a *backlog* of complete
/// pipelined requests larger than this is load, answered with backpressure
/// (stop reading until the backlog drains), never with a close.
const MAX_REQUEST_BYTES: usize = 1 << 20;

/// How long the reactor leaves the listener out of the poll set after a
/// persistent `accept` error (e.g. `EMFILE`).
const ACCEPT_BACKOFF_MS: u64 = 50;

/// Most prepared statements one connection may hold at once.
const MAX_PREPARED_PER_CONN: usize = 64;

/// Bound on the epoch-keyed rendered-reply cache (entries and bytes per entry).
const REPLY_CACHE_MAX_ENTRIES: usize = 256;
const REPLY_CACHE_MAX_REPLY_BYTES: usize = 64 * 1024;

/// How often reader-side row streaming re-checks the deadline and cancel token.
const ROW_CHECK_INTERVAL: usize = 256;

/// Most WAL frames the leader ships per `REPL SUBSCRIBE` poll (bounds both the
/// reply size and how long the handler holds the connection thread).
const REPL_BATCH_FRAMES: usize = 512;

/// Followers absent from `REPL SUBSCRIBE` for this long drop out of the
/// leader's lag accounting (they are likely gone, not lagging).
const FOLLOWER_PRUNE: Duration = Duration::from_secs(60);

/// Tuning knobs of a served engine.
#[derive(Clone, Debug)]
pub struct ServerOptions {
    /// Requests allowed in service at once (readers and writers together).
    /// The one past the cap is shed with `ERR overloaded`, never queued.
    pub max_in_flight: usize,
    /// Bound of the commit pipeline between connection threads and the writer;
    /// a transaction finding it full is shed with `ERR overloaded`.
    pub write_queue_depth: usize,
    /// Per-request wall-clock deadline: applied to the writer's evaluations
    /// (via the engine governor) and to reader-side row streaming. `None`
    /// disables it.
    pub request_deadline: Option<Duration>,
    /// Memory budget for the writer's evaluations (see
    /// [`EvalOptions::memory_budget_bytes`](factorlog_datalog::eval::EvalOptions)).
    pub memory_budget_bytes: Option<usize>,
    /// The `retry after` hint shed requests carry.
    pub retry_after: Duration,
    /// How long the committer lingers after the first queued transaction to
    /// let concurrent submitters join its group.
    pub group_window: Duration,
    /// How long [`ServerHandle::shutdown`] waits for in-flight requests before
    /// cancelling the stragglers.
    pub drain_timeout: Duration,
}

impl Default for ServerOptions {
    fn default() -> Self {
        ServerOptions {
            max_in_flight: 64,
            write_queue_depth: 64,
            request_deadline: Some(Duration::from_secs(5)),
            memory_budget_bytes: None,
            retry_after: Duration::from_millis(25),
            group_window: Duration::from_millis(1),
            drain_timeout: Duration::from_secs(5),
        }
    }
}

/// The immutable unit readers work against: one epoch, one fully materialized
/// model. Swapped atomically (as an `Arc`) after every committed group, so a
/// reader holding a view can never observe a half-applied batch.
struct View {
    /// Number of committed transaction batches this model includes — always a
    /// prefix of the commit order.
    epoch: u64,
    /// The materialized model ([`Database::answers`] serves any atom query).
    model: Arc<Database>,
}

/// Outcome of one committed (or refused) transaction, as the writer reports it.
type TxnOutcome = Result<(TxnSummary, u64), EngineError>;

/// The writer→reactor completion channel: outcomes queue here and the wake
/// pipe interrupts the reactor's `poll` so replies go out immediately. The
/// pipe lives *inside* this Arc'd struct so a writer draining the queue after
/// the reactor exited still holds a valid (if unread) descriptor — never a
/// recycled one.
struct Completions {
    queue: Mutex<Vec<(u64, TxnOutcome)>>,
    pipe: WakePipe,
}

impl Completions {
    fn new() -> std::io::Result<Completions> {
        Ok(Completions {
            queue: Mutex::new(Vec::new()),
            pipe: WakePipe::new()?,
        })
    }

    fn push(&self, conn_id: u64, outcome: TxnOutcome) {
        self.queue
            .lock()
            .expect("completion queue poisoned")
            .push((conn_id, outcome));
        self.pipe.handle().wake();
    }

    fn take(&self) -> Vec<(u64, TxnOutcome)> {
        std::mem::take(&mut *self.queue.lock().expect("completion queue poisoned"))
    }

    fn wake(&self) {
        self.pipe.handle().wake();
    }
}

/// Where a transaction's outcome goes: back to the reactor, addressed to the
/// submitting connection. Dropping an unsent ticket (a request discarded
/// without a verdict — only possible mid-shutdown) delivers a structured
/// shutdown error so the connection's admission slot is always released.
struct TxnTicket {
    conn_id: u64,
    completions: Arc<Completions>,
    sent: bool,
}

impl TxnTicket {
    fn send(mut self, outcome: TxnOutcome) {
        self.sent = true;
        self.completions.push(self.conn_id, outcome);
    }
}

impl Drop for TxnTicket {
    fn drop(&mut self) {
        if !self.sent {
            self.completions.push(
                self.conn_id,
                Err(EngineError::Durability(
                    "server is shutting down".to_string(),
                )),
            );
        }
    }
}

/// A transaction submitted to the commit pipeline.
struct WriteReq {
    ops: Vec<(TxnOp, Symbol, Vec<Const>)>,
    reply: TxnTicket,
}

/// Reactor-side counters surfaced by `STATS` and the metrics v3 `server`
/// object. All incremented from the reactor thread with relaxed ordering.
#[derive(Default)]
struct ServerCounters {
    reactor_wakeups: AtomicU64,
    pipelined_batches: AtomicU64,
    pipelined_requests: AtomicU64,
    max_batch_depth: AtomicU64,
    prepared_execs: AtomicU64,
    reply_cache_hits: AtomicU64,
}

/// A point-in-time snapshot of the reactor's counters (see
/// [`ServerHandle::server_metrics`] and the metrics v3 `server` object).
#[derive(Clone, Copy, Debug, Default)]
pub struct ServerMetrics {
    /// Times the reactor's `poll` returned (readiness events + wakes +
    /// safety-net timeouts).
    pub reactor_wakeups: u64,
    /// Readiness batches that served at least one request.
    pub pipelined_batches: u64,
    /// Requests served across those batches (`pipelined_requests /
    /// pipelined_batches` is the mean pipeline depth).
    pub pipelined_requests: u64,
    /// Most requests one readiness batch drained from a single connection's
    /// buffer before re-arming.
    pub max_batch_depth: u64,
    /// `EXEC` requests answered from a prepared statement (no query re-parse).
    pub prepared_execs: u64,
    /// Replies served byte-for-byte from the epoch-keyed rendered-reply cache.
    pub reply_cache_hits: u64,
}

/// One follower's drain position, as observed from its `REPL SUBSCRIBE` polls
/// (leader-side lag accounting for `STATS`).
struct FollowerLag {
    /// The last sequence number the follower holds (its poll asked for the
    /// next one).
    seq: u64,
    last_poll: Instant,
}

/// Replication facet of the shared state. Present on every server — a plain
/// [`serve`]d node is simply a leader (possibly of term 0, with no followers).
struct ReplState {
    /// [`ReplicaRole`] as a `u8` (`as_u8`/`from_u8`), atomically readable from
    /// connection threads and the apply loop.
    role: AtomicU8,
    term: AtomicU64,
    /// This node's committed log position: the leader's writer advances it
    /// after each group commit, a follower sets it to its applied position.
    last_seq: AtomicU64,
    /// Follower only: the leader's position as of the last successful poll.
    leader_seq: AtomicU64,
    /// Follower only: ms since `started` of the last successful leader
    /// contact. The lease clock for `PROMOTE`.
    last_contact_ms: AtomicU64,
    started: Instant,
    lease_timeout: Duration,
    /// Leader only: per-follower drain positions from recent polls.
    followers: Mutex<HashMap<u64, FollowerLag>>,
    /// The durable data directory frames are streamed from (`None` disables
    /// `REPL SUBSCRIBE` — there is no committed log to ship).
    data_dir: Option<PathBuf>,
    /// `Some` iff this server started as a follower.
    leader_addr: Option<String>,
}

/// State shared by the reactor thread and the writer.
struct Shared {
    view: RwLock<Arc<View>>,
    epoch: AtomicU64,
    in_flight: AtomicUsize,
    shed: AtomicU64,
    group_commits: AtomicU64,
    group_txns: AtomicU64,
    stopping: AtomicBool,
    cancel: CancelToken,
    options: ServerOptions,
    counters: ServerCounters,
    repl: ReplState,
}

impl Shared {
    fn current_view(&self) -> Arc<View> {
        self.view.read().expect("view lock poisoned").clone()
    }

    fn publish(&self, view: View) {
        // View first, epoch second: the epoch atomic must never run ahead of
        // the view a reader can observe, or a reply rendered from the old
        // view could be filed under the new epoch (stale-reply poisoning).
        let epoch = view.epoch;
        *self.view.write().expect("view lock poisoned") = Arc::new(view);
        self.epoch.store(epoch, Ordering::Release);
    }

    /// Admission control: take one in-flight slot if under the cap; count the
    /// shed otherwise. Never blocks, never queues.
    fn try_acquire_slot(&self) -> bool {
        let prev = self.in_flight.fetch_add(1, Ordering::AcqRel);
        if prev >= self.options.max_in_flight {
            self.in_flight.fetch_sub(1, Ordering::AcqRel);
            self.shed.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        true
    }

    /// Release a slot taken by [`Shared::try_acquire_slot`]. Reads release in
    /// [`Reactor::serve_cached`] once the reply is rendered; transactions hold
    /// their slot across the commit pipeline and release it when the outcome
    /// is delivered (or the submitter is found dead).
    fn release_slot(&self) {
        self.in_flight.fetch_sub(1, Ordering::AcqRel);
    }

    fn server_metrics(&self) -> ServerMetrics {
        let c = &self.counters;
        ServerMetrics {
            reactor_wakeups: c.reactor_wakeups.load(Ordering::Relaxed),
            pipelined_batches: c.pipelined_batches.load(Ordering::Relaxed),
            pipelined_requests: c.pipelined_requests.load(Ordering::Relaxed),
            max_batch_depth: c.max_batch_depth.load(Ordering::Relaxed),
            prepared_execs: c.prepared_execs.load(Ordering::Relaxed),
            reply_cache_hits: c.reply_cache_hits.load(Ordering::Relaxed),
        }
    }
}

/// What [`ServerHandle::shutdown`] did, with the engine handed back.
pub struct ShutdownReport {
    /// The engine, drained and WAL-flushed, ready for further single-owner use
    /// (or to be dropped, releasing the data-directory lock).
    pub engine: Engine,
    /// Epoch at shutdown: committed transaction batches over the server's life.
    pub epoch: u64,
    /// Requests shed by admission control over the server's life.
    pub shed: u64,
    /// Did the drain finish inside `drain_timeout` (`false` = stragglers were
    /// cancelled via the engine's [`CancelToken`])?
    pub drained_cleanly: bool,
    /// Final reactor counters (wakeups, pipeline depth, prepared execs).
    pub server_metrics: ServerMetrics,
}

/// A running server: the listener address plus the join handles needed to shut
/// it down. Obtain one from [`serve`].
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    write_tx: mpsc::SyncSender<WriteReq>,
    completions: Arc<Completions>,
    reactor_thread: Option<JoinHandle<bool>>,
    writer_thread: Option<JoinHandle<Engine>>,
}

impl ServerHandle {
    /// The address the server is listening on (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The currently published epoch (committed transaction batches).
    pub fn epoch(&self) -> u64 {
        self.shared.epoch.load(Ordering::Acquire)
    }

    /// Requests shed by admission control so far.
    pub fn shed(&self) -> u64 {
        self.shared.shed.load(Ordering::Relaxed)
    }

    /// The server's current replication role (a plain [`serve`]d node is a
    /// leader; a [`serve_follower`](crate::replication::serve_follower)'d one
    /// starts as a follower and may be promoted or fenced while running).
    pub fn role(&self) -> ReplicaRole {
        ReplicaRole::from_u8(self.shared.repl.role.load(Ordering::Acquire))
    }

    /// The server's current replication term.
    pub fn term(&self) -> u64 {
        self.shared.repl.term.load(Ordering::Acquire)
    }

    /// A snapshot of the reactor's counters (wakeups, pipelined batch depth,
    /// prepared-exec hits, reply-cache hits) — live, any time.
    pub fn server_metrics(&self) -> ServerMetrics {
        self.shared.server_metrics()
    }

    /// Gracefully shut down: stop admitting (new requests get `ERR shutdown`),
    /// drain in-flight requests for up to `drain_timeout`, cancel stragglers
    /// via the engine's [`CancelToken`], flush the WAL, and return the engine.
    pub fn shutdown(mut self) -> ShutdownReport {
        self.shared.stopping.store(true, Ordering::Release);
        // The reactor owns the drain: it wakes on the pipe, stops accepting,
        // refuses buffered requests with `ERR shutdown`, waits out in-flight
        // transactions (cancelling stragglers at the drain deadline), flushes
        // reply buffers, and reports whether it finished inside the timeout.
        self.completions.wake();
        let drained_cleanly = self
            .reactor_thread
            .take()
            .expect("reactor thread present until shutdown")
            .join()
            .unwrap_or(false);
        // Senders are all gone once the reactor is joined and our own clone is
        // dropped: the writer drains what is queued, flushes the WAL, and
        // returns the engine.
        drop(self.write_tx);
        let mut engine = self
            .writer_thread
            .take()
            .expect("writer thread present until shutdown")
            .join()
            .expect("writer thread never panics (engine-contained)");
        // A cancellation fired during drain must not outlive the server: the
        // returned engine is immediately reusable.
        self.shared.cancel.reset();
        engine.sync_wal().ok();
        ShutdownReport {
            engine,
            epoch: self.shared.epoch.load(Ordering::Acquire),
            shed: self.shared.shed.load(Ordering::Relaxed),
            drained_cleanly,
            server_metrics: self.shared.server_metrics(),
        }
    }
}

/// [`serve`] failed before any thread started: the engine comes back unchanged
/// so a front end (e.g. the REPL's `:serve`) does not lose session state to a
/// typo'd address.
pub struct ServeError {
    /// The engine, exactly as it was passed in.
    pub engine: Box<Engine>,
    /// Why serving did not start.
    pub error: EngineError,
}

impl std::fmt::Debug for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ServeError({})", self.error)
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.error.fmt(f)
    }
}

impl std::error::Error for ServeError {}

/// Serve `engine` on `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port).
/// The engine moves into the server's writer thread; [`ServerHandle::shutdown`]
/// hands it back. Durable engines keep their data-directory `LOCK` for the
/// server's lifetime (single writer).
///
/// # Panics
///
/// If the accept or writer OS thread cannot be spawned (resource exhaustion).
pub fn serve(
    engine: Engine,
    addr: impl ToSocketAddrs,
    options: ServerOptions,
) -> Result<ServerHandle, ServeError> {
    serve_inner(engine, addr, options, None)
}

/// What [`serve_follower`](crate::replication::serve_follower) adds on top of
/// [`serve`]: a leader to subscribe to and the polling/lease knobs.
pub(crate) struct FollowerConfig {
    pub(crate) leader: String,
    pub(crate) replication: ReplicationOptions,
}

pub(crate) fn serve_inner(
    mut engine: Engine,
    addr: impl ToSocketAddrs,
    options: ServerOptions,
    follow: Option<FollowerConfig>,
) -> Result<ServerHandle, ServeError> {
    let fail = |engine: Engine, error: EngineError| ServeError {
        engine: Box::new(engine),
        error,
    };
    if follow.is_some() && !engine.is_durable() {
        return Err(fail(
            engine,
            EngineError::Durability(
                "a follower must be durable (open the engine with open_durable)".to_string(),
            ),
        ));
    }
    let listener = match TcpListener::bind(addr) {
        Ok(listener) => listener,
        Err(e) => {
            return Err(fail(
                engine,
                EngineError::Io(format!("cannot bind server socket: {e}")),
            ))
        }
    };
    if let Err(e) = listener.set_nonblocking(true) {
        return Err(fail(
            engine,
            EngineError::Io(format!("cannot configure listener: {e}")),
        ));
    }
    let addr = match listener.local_addr() {
        Ok(addr) => addr,
        Err(e) => {
            return Err(fail(
                engine,
                EngineError::Io(format!("cannot resolve listener address: {e}")),
            ))
        }
    };

    // Per-request governance rides on the engine's own governor.
    engine.set_limits(
        options.request_deadline,
        engine.options().max_derived_facts,
        options.memory_budget_bytes,
    );
    let cancel = engine.cancel_token();
    cancel.reset();

    // The initial view: epoch 0 is the committed prefix "everything recovered
    // or loaded before serving".
    let model = match engine.refreshed_model() {
        Ok(model) => model,
        Err(error) => return Err(fail(engine, error)),
    };
    let data_dir = engine.data_dir().map(|dir| dir.to_path_buf());
    let term = data_dir.as_deref().map(replication::read_term).unwrap_or(0);
    let initial_role = if follow.is_some() {
        ReplicaRole::Follower
    } else {
        ReplicaRole::Leader
    };
    let shared = Arc::new(Shared {
        view: RwLock::new(Arc::new(View {
            epoch: 0,
            model: Arc::new(model),
        })),
        epoch: AtomicU64::new(0),
        in_flight: AtomicUsize::new(0),
        shed: AtomicU64::new(0),
        group_commits: AtomicU64::new(engine.stats().wal_group_commits as u64),
        group_txns: AtomicU64::new(engine.stats().wal_group_txns as u64),
        stopping: AtomicBool::new(false),
        cancel,
        options: options.clone(),
        counters: ServerCounters::default(),
        repl: ReplState {
            role: AtomicU8::new(initial_role.as_u8()),
            term: AtomicU64::new(term),
            last_seq: AtomicU64::new(engine.wal_last_seq().unwrap_or(0)),
            leader_seq: AtomicU64::new(0),
            // The lease clock starts "contacted at startup": a fresh follower
            // must wait out one full lease before it can promote.
            last_contact_ms: AtomicU64::new(0),
            started: Instant::now(),
            lease_timeout: follow
                .as_ref()
                .map(|f| f.replication.lease_timeout)
                .unwrap_or_else(|| ReplicationOptions::default().lease_timeout),
            followers: Mutex::new(HashMap::new()),
            data_dir,
            leader_addr: follow.as_ref().map(|f| f.leader.clone()),
        },
    });

    let completions = match Completions::new() {
        Ok(completions) => Arc::new(completions),
        Err(e) => {
            return Err(fail(
                engine,
                EngineError::Io(format!("cannot open reactor wake pipe: {e}")),
            ))
        }
    };

    let (write_tx, write_rx) = mpsc::sync_channel::<WriteReq>(options.write_queue_depth);

    let writer_shared = shared.clone();
    let writer_thread = match follow {
        None => std::thread::Builder::new()
            .name("factorlog-writer".to_string())
            .spawn(move || writer_loop(engine, write_rx, &writer_shared))
            .expect("cannot spawn writer thread"),
        Some(config) => std::thread::Builder::new()
            .name("factorlog-follower".to_string())
            .spawn(move || follower_loop(engine, write_rx, &writer_shared, config))
            .expect("cannot spawn follower thread"),
    };

    let reactor_shared = shared.clone();
    let reactor_tx = write_tx.clone();
    let reactor_completions = completions.clone();
    let reactor_thread = std::thread::Builder::new()
        .name("factorlog-reactor".to_string())
        .spawn(move || {
            Reactor::new(listener, reactor_shared, reactor_tx, reactor_completions).run()
        })
        .expect("cannot spawn reactor thread");

    Ok(ServerHandle {
        addr,
        shared,
        write_tx,
        completions,
        reactor_thread: Some(reactor_thread),
        writer_thread: Some(writer_thread),
    })
}

/// The commit pipeline: block for a first transaction, linger `group_window`
/// to let concurrent submitters pile on, commit the whole batch under one
/// fsync, publish the next view, then reply to every submitter.
fn writer_loop(engine: Engine, rx: mpsc::Receiver<WriteReq>, shared: &Shared) -> Engine {
    writer_core(engine, rx, shared, None)
}

/// [`writer_loop`] with an optional already-received first request — a
/// follower promoted mid-`recv` hands the raced request over instead of
/// bouncing it.
fn writer_core(
    mut engine: Engine,
    rx: mpsc::Receiver<WriteReq>,
    shared: &Shared,
    mut pending: Option<WriteReq>,
) -> Engine {
    let mut epoch = shared.epoch.load(Ordering::Acquire);
    loop {
        let first = match pending.take() {
            Some(req) => req,
            None => match rx.recv_timeout(Duration::from_millis(50)) {
                Ok(req) => req,
                Err(mpsc::RecvTimeoutError::Timeout) => continue,
                // Every sender gone: the server is shutting down and the queue
                // is fully drained (recv yields buffered requests before
                // reporting disconnection).
                Err(mpsc::RecvTimeoutError::Disconnected) => break,
            },
        };
        let mut batch = vec![first];
        while batch.len() < MAX_GROUP {
            match rx.recv_timeout(shared.options.group_window) {
                Ok(req) => batch.push(req),
                Err(_) => break,
            }
        }

        let (ops, replies): (Vec<_>, Vec<_>) = batch.into_iter().map(|r| (r.ops, r.reply)).unzip();
        let results = engine.commit_group(ops);

        // Assign each committed batch the epoch that first includes it; the
        // view published below carries the last of them, so a client holding
        // `OK … epoch=E` observes its write in every view with epoch >= E.
        let mut outcomes = Vec::with_capacity(results.len());
        for result in results {
            outcomes.push(result.map(|summary| {
                epoch += 1;
                (summary, epoch)
            }));
        }
        // Publish before replying: a reply in hand means the write is visible.
        // A failed refresh (injected fault, tripped limit) keeps the previous
        // view — still a committed prefix — and retries on the next group; the
        // commits themselves are already durable either way.
        if let Ok(model) = engine.refreshed_model() {
            shared.publish(View {
                epoch,
                model: Arc::new(model),
            });
        }
        shared
            .group_commits
            .store(engine.stats().wal_group_commits as u64, Ordering::Relaxed);
        shared
            .group_txns
            .store(engine.stats().wal_group_txns as u64, Ordering::Relaxed);
        // Publish our committed log position for subscribers' lag accounting.
        shared
            .repl
            .last_seq
            .store(engine.wal_last_seq().unwrap_or(0), Ordering::Release);
        for (outcome, reply) in outcomes.into_iter().zip(replies) {
            // A submitter that died (connection killed mid-request) simply
            // never reads its reply; the commit stands.
            reply.send(outcome);
        }
    }
    engine
}

/// The follower's apply loop, standing where a leader's [`writer_loop`]
/// stands: instead of committing submitted transactions (those are refused
/// with `ERR readonly` before they reach the queue), it polls the leader,
/// applies shipped frames, and publishes each applied prefix as a fresh view —
/// readers on this node see the leader's history, stale-bounded by one poll.
/// When `PROMOTE` flips the shared role, the loop hands the engine to
/// [`writer_core`] and the node starts committing writes as a leader.
fn follower_loop(
    engine: Engine,
    rx: mpsc::Receiver<WriteReq>,
    shared: &Shared,
    config: FollowerConfig,
) -> Engine {
    let poll_interval = config.replication.poll_interval;
    let mut replica = Replica::from_engine(engine, config.leader, config.replication)
        .expect("serve_inner verified the engine is durable");
    shared.repl.term.store(replica.term(), Ordering::Release);
    loop {
        // A PROMOTE handled by a connection thread flips the shared role; sync
        // the replica object and become the writer.
        if shared.repl.role.load(Ordering::Acquire) == ReplicaRole::Leader.as_u8() {
            replica.adopt_promotion(shared.repl.term.load(Ordering::Acquire));
            return writer_core(replica.into_engine(), rx, shared, None);
        }
        match rx.recv_timeout(poll_interval) {
            Ok(req) => {
                if shared.repl.role.load(Ordering::Acquire) == ReplicaRole::Leader.as_u8() {
                    // Promoted while we were blocked in recv: this request is
                    // valid — carry it into the writer loop.
                    replica.adopt_promotion(shared.repl.term.load(Ordering::Acquire));
                    return writer_core(replica.into_engine(), rx, shared, Some(req));
                }
                req.reply.send(Err(EngineError::Durability(
                    "replica is read-only: write to the leader or promote it".to_string(),
                )));
                continue;
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            Err(mpsc::RecvTimeoutError::Disconnected) => return replica.into_engine(),
        }
        // Local durability failures (our own log or snapshot) leave the
        // current view serving; the next poll retries.
        let Ok(report) = replica.sync_once() else {
            continue;
        };
        if report.contacted {
            shared.repl.last_contact_ms.store(
                shared.repl.started.elapsed().as_millis() as u64,
                Ordering::Relaxed,
            );
        }
        shared.repl.term.store(replica.term(), Ordering::Release);
        shared
            .repl
            .leader_seq
            .store(replica.leader_seq(), Ordering::Relaxed);
        let applied = replica.applied_seq();
        let progressed = applied > shared.repl.last_seq.load(Ordering::Acquire);
        if progressed || report.bootstrapped {
            shared.repl.last_seq.store(applied, Ordering::Release);
            // Publish the applied prefix — the epoch is the leader's log
            // position, so a reader can relate replies across the fleet.
            if let Ok(model) = replica.engine_mut().refreshed_model() {
                shared.publish(View {
                    epoch: applied,
                    model: Arc::new(model),
                });
            }
        }
    }
}

/// One connection's reactor-side state: the nonblocking socket plus the
/// incremental read and write buffers that make partial requests survive
/// readiness boundaries (the bug class the old polling read loop had) and let
/// a whole pipelined batch of replies leave in one write.
struct Conn {
    stream: TcpStream,
    /// Bytes received but not yet consumed; a request is complete once it has
    /// a terminating `\n`. Partial tails persist across readiness events.
    inbuf: Vec<u8>,
    /// Rendered replies not yet written to the socket (`outpos` marks the
    /// already-written prefix).
    outbuf: Vec<u8>,
    outpos: usize,
    /// A transaction is in the commit pipeline: request draining is paused so
    /// replies stay in request order, and one admission slot is held.
    awaiting_txn: bool,
    /// Flush the remaining `outbuf`, then close (set by `QUIT`, protocol
    /// violations, and shutdown).
    closing: bool,
    /// Drop the connection now (peer gone, socket error).
    dead: bool,
    /// `PREPARE`d statements, addressed by the id `EXEC` carries.
    prepared: HashMap<u64, PreparedStmt>,
    next_prepared: u64,
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            inbuf: Vec::new(),
            outbuf: Vec::new(),
            outpos: 0,
            awaiting_txn: false,
            closing: false,
            dead: false,
            prepared: HashMap::new(),
            next_prepared: 1,
        }
    }

    /// Write as much of `outbuf` as the socket accepts without blocking.
    fn flush_out(&mut self) {
        while self.outpos < self.outbuf.len() {
            match self.stream.write(&self.outbuf[self.outpos..]) {
                Ok(0) => {
                    self.dead = true;
                    return;
                }
                Ok(n) => self.outpos += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    return;
                }
            }
        }
        if self.outpos == self.outbuf.len() {
            self.outbuf.clear();
            self.outpos = 0;
            if self.closing {
                self.dead = true;
            }
        } else if self.outpos > READ_CHUNK {
            // Reclaim the written prefix of a large, partially flushed reply.
            self.outbuf.drain(..self.outpos);
            self.outpos = 0;
        }
    }
}

/// A `PREPARE`d query: parsed once, its `?` placeholders recorded as term
/// positions so `EXEC` only parses the constants it binds.
struct PreparedStmt {
    /// Normalized source text — the reply-cache fingerprint, so two
    /// connections preparing the same text share cached replies.
    src: String,
    query: Query,
    /// Term positions of the `?` placeholders, in placeholder order.
    params: Vec<usize>,
}

/// Rendered replies keyed by request fingerprint, valid for exactly one
/// epoch: any published view invalidates the whole cache. Lives on the
/// reactor thread — no locks.
struct ReplyCache {
    epoch: u64,
    map: HashMap<String, Vec<u8>>,
}

impl ReplyCache {
    fn new() -> ReplyCache {
        ReplyCache {
            epoch: u64::MAX,
            map: HashMap::new(),
        }
    }

    fn lookup(&mut self, epoch: u64, key: &str) -> Option<&Vec<u8>> {
        if self.epoch != epoch {
            self.epoch = epoch;
            self.map.clear();
            return None;
        }
        self.map.get(key)
    }

    fn insert(&mut self, epoch: u64, key: String, reply: Vec<u8>) {
        if self.epoch != epoch || reply.len() > REPLY_CACHE_MAX_REPLY_BYTES {
            return;
        }
        if self.map.len() >= REPLY_CACHE_MAX_ENTRIES {
            self.map.clear();
        }
        self.map.insert(key, reply);
    }
}

/// The event-driven front end: ONE thread drives the listener and every
/// connection through a `poll(2)` readiness loop over nonblocking sockets.
/// Idle connections cost one pollfd entry, not a thread; every complete
/// request already buffered is served before re-arming (pipelining), and the
/// batch's replies leave in one write.
struct Reactor {
    listener: TcpListener,
    shared: Arc<Shared>,
    write_tx: mpsc::SyncSender<WriteReq>,
    completions: Arc<Completions>,
    conns: HashMap<u64, Conn>,
    next_conn: u64,
    cache: ReplyCache,
    /// Scratch: rendered reply of the request being served (moved to the
    /// conn's outbuf, optionally copied into the cache).
    scratch: Vec<u8>,
    /// Set after a persistent `accept` error (e.g. `EMFILE`): the listener is
    /// left out of the poll set until this instant, so a readable listener we
    /// cannot accept from does not spin the reactor.
    accept_backoff_until: Option<Instant>,
}

impl Reactor {
    fn new(
        listener: TcpListener,
        shared: Arc<Shared>,
        write_tx: mpsc::SyncSender<WriteReq>,
        completions: Arc<Completions>,
    ) -> Reactor {
        Reactor {
            listener,
            shared,
            write_tx,
            completions,
            conns: HashMap::new(),
            next_conn: 1,
            cache: ReplyCache::new(),
            scratch: Vec::new(),
            accept_backoff_until: None,
        }
    }

    /// Run until shutdown; returns whether the drain finished inside
    /// `drain_timeout` (`false` = straggling transactions were cancelled).
    fn run(mut self) -> bool {
        let mut fds: Vec<PollFd> = Vec::new();
        let mut fd_conns: Vec<u64> = Vec::new();
        loop {
            let stopping = self.shared.stopping.load(Ordering::Acquire);
            fds.clear();
            fd_conns.clear();
            fds.push(PollFd::new(self.completions.pipe.poll_fd(), POLL_IN));
            let accepting = !stopping
                && match self.accept_backoff_until {
                    Some(until) if Instant::now() < until => false,
                    _ => {
                        self.accept_backoff_until = None;
                        true
                    }
                };
            let listener_slot = if accepting {
                fds.push(PollFd::new(self.listener.as_raw_fd(), POLL_IN));
                1
            } else {
                usize::MAX
            };
            for (&id, conn) in &self.conns {
                // No POLL_IN for a closing conn (unread inbound bytes would
                // make every poll return instantly while we wait out a slow
                // reader's flush) or while the inbuf backlog is over the cap
                // (backpressure: drain before reading more). Error/hangup
                // conditions are reported even with no requested events.
                let mut events = 0;
                if !conn.closing && conn.inbuf.len() <= MAX_REQUEST_BYTES {
                    events |= POLL_IN;
                }
                if conn.outpos < conn.outbuf.len() {
                    events |= POLL_OUT;
                }
                fds.push(PollFd::new(conn.stream.as_raw_fd(), events));
                fd_conns.push(id);
            }
            if poll_fds(&mut fds, REACTOR_POLL_MS).is_err() {
                // Only EINVAL-class failures reach here (EINTR is absorbed);
                // back off instead of spinning.
                std::thread::sleep(Duration::from_millis(5));
            }
            self.shared
                .counters
                .reactor_wakeups
                .fetch_add(1, Ordering::Relaxed);
            if fds[0].ready(POLL_IN) {
                self.completions.pipe.drain();
            }
            self.deliver_completions();
            if self.shared.stopping.load(Ordering::Acquire) {
                return self.drain();
            }
            if listener_slot != usize::MAX && fds[listener_slot].ready(POLL_IN | POLL_FAIL) {
                self.accept_ready();
            }
            let conn_fds_base = if listener_slot == usize::MAX { 1 } else { 2 };
            for (slot, &id) in fd_conns.iter().enumerate() {
                let pollfd = fds[conn_fds_base + slot];
                let Some(conn) = self.conns.get_mut(&id) else {
                    continue;
                };
                if pollfd.ready(POLL_IN | POLL_FAIL) && !conn.closing {
                    self.read_and_serve(id);
                }
                if let Some(conn) = self.conns.get_mut(&id) {
                    if pollfd.ready(POLL_OUT | POLL_FAIL) || !conn.outbuf.is_empty() {
                        conn.flush_out();
                    }
                }
            }
            self.reap_dead();
        }
    }

    /// Deliver queued transaction outcomes to their connections. Each outcome
    /// releases the admission slot its submission took — whether or not the
    /// submitter is still alive — and resumes the connection's paused request
    /// draining (pipelined requests behind a TXN).
    fn deliver_completions(&mut self) {
        for (conn_id, outcome) in self.completions.take() {
            self.shared.release_slot();
            let Some(conn) = self.conns.get_mut(&conn_id) else {
                continue; // submitter died mid-commit; the commit stands
            };
            conn.awaiting_txn = false;
            let _ = match outcome {
                Ok((summary, epoch)) => writeln!(
                    conn.outbuf,
                    "OK asserted={} retracted={} epoch={epoch}",
                    summary.asserted, summary.retracted
                ),
                Err(error) => respond_engine_error(&mut conn.outbuf, &error),
            };
            self.serve_buffered(conn_id);
            if let Some(conn) = self.conns.get_mut(&conn_id) {
                conn.flush_out();
            }
        }
    }

    /// Accept every pending connection (the listener is nonblocking).
    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    stream.set_nodelay(true).ok();
                    let id = self.next_conn;
                    self.next_conn += 1;
                    self.conns.insert(id, Conn::new(stream));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    // Persistent failure (EMFILE and kin): the listener stays
                    // readable, so back off briefly instead of re-polling it
                    // into a busy loop.
                    self.accept_backoff_until =
                        Some(Instant::now() + Duration::from_millis(ACCEPT_BACKOFF_MS));
                    break;
                }
            }
        }
    }

    /// Pull every byte the socket has, then serve every complete request.
    fn read_and_serve(&mut self, conn_id: u64) {
        let Some(conn) = self.conns.get_mut(&conn_id) else {
            return;
        };
        let mut buf = [0u8; READ_CHUNK];
        loop {
            match conn.stream.read(&mut buf) {
                Ok(0) => {
                    conn.dead = true;
                    break;
                }
                Ok(n) => {
                    conn.inbuf.extend_from_slice(&buf[..n]);
                    // The limit is per LINE, not per buffer: only an
                    // unterminated line longer than the cap is a protocol
                    // violation. A backlog of complete pipelined requests is
                    // load, not a violation — stop reading and let
                    // `serve_buffered` drain it (backpressure), then resume.
                    let partial = match conn.inbuf.iter().rposition(|&b| b == b'\n') {
                        Some(nl) => conn.inbuf.len() - nl - 1,
                        None => conn.inbuf.len(),
                    };
                    if partial > MAX_REQUEST_BYTES {
                        let _ = respond_err(
                            &mut conn.outbuf,
                            "parse",
                            "request exceeds the 1 MiB line limit",
                        );
                        conn.closing = true;
                        conn.inbuf.clear();
                        break;
                    }
                    if conn.inbuf.len() > MAX_REQUEST_BYTES {
                        break;
                    }
                    if n < buf.len() {
                        break;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    conn.dead = true;
                    break;
                }
            }
        }
        self.serve_buffered(conn_id);
        if let Some(conn) = self.conns.get_mut(&conn_id) {
            // One write carries the whole batch's replies.
            conn.flush_out();
        }
    }

    /// Serve every complete request in the connection's buffer — the
    /// pipelining core. Draining pauses at a submitted transaction (replies
    /// must stay in request order) and resumes when its outcome is delivered.
    fn serve_buffered(&mut self, conn_id: u64) {
        let mut served = 0u64;
        let mut consumed = 0usize;
        let mut line = String::new();
        while let Some(conn) = self.conns.get_mut(&conn_id) {
            if conn.awaiting_txn || conn.closing || conn.dead {
                break;
            }
            let Some(nl) = conn.inbuf[consumed..].iter().position(|&b| b == b'\n') else {
                break;
            };
            if nl > MAX_REQUEST_BYTES {
                // A terminated line can slip past the partial-line check in
                // `read_and_serve` when its newline lands in the same read
                // chunk that pushes it over the cap.
                let _ = respond_err(
                    &mut conn.outbuf,
                    "parse",
                    "request exceeds the 1 MiB line limit",
                );
                conn.closing = true;
                consumed = conn.inbuf.len();
                break;
            }
            let raw = &conn.inbuf[consumed..consumed + nl];
            consumed += nl + 1;
            line.clear();
            match std::str::from_utf8(raw) {
                Ok(text) => line.push_str(text.trim()),
                Err(_) => {
                    let _ = respond_err(&mut conn.outbuf, "parse", "request is not valid UTF-8");
                    continue;
                }
            }
            if line.is_empty() {
                continue;
            }
            served += 1;
            self.serve_request(conn_id, &line);
        }
        if let Some(conn) = self.conns.get_mut(&conn_id) {
            conn.inbuf.drain(..consumed);
        }
        if served > 0 {
            let counters = &self.shared.counters;
            counters.pipelined_batches.fetch_add(1, Ordering::Relaxed);
            counters
                .pipelined_requests
                .fetch_add(served, Ordering::Relaxed);
            counters
                .max_batch_depth
                .fetch_max(served, Ordering::Relaxed);
        }
    }

    /// Dispatch one request line for `conn_id`, appending the reply (or
    /// submitting the transaction) as a side effect.
    fn serve_request(&mut self, conn_id: u64, request: &str) {
        let shared = self.shared.clone();
        let Some(conn) = self.conns.get_mut(&conn_id) else {
            return;
        };
        if shared.stopping.load(Ordering::Acquire) {
            let _ = respond_err(&mut conn.outbuf, "shutdown", "server is shutting down");
            conn.closing = true;
            return;
        }
        if request.eq_ignore_ascii_case("QUIT") {
            let _ = writeln!(conn.outbuf, "OK bye");
            conn.closing = true;
            return;
        }
        let (verb, rest) = match request.split_once(char::is_whitespace) {
            Some((verb, rest)) => (verb, rest.trim()),
            None => (request, ""),
        };
        if verb.eq_ignore_ascii_case("QUERY") {
            // Manual slot accounting (not the RAII guard): the slot must stay
            // held across `serve_cached`, which releases it.
            if !shared.try_acquire_slot() {
                let _ = respond_overloaded(&mut conn.outbuf, &shared);
                return;
            }
            let text = rest.trim().trim_end_matches('.');
            self.serve_cached(conn_id, &format!("QUERY\u{1}{text}"), |shared, view, out| {
                handle_query(text, shared, view, out)
            });
            return;
        }
        if verb.eq_ignore_ascii_case("PREPARE") {
            handle_prepare(conn, rest);
            return;
        }
        if verb.eq_ignore_ascii_case("EXEC") {
            self.serve_exec(conn_id, rest, &shared);
            return;
        }
        if verb.eq_ignore_ascii_case("TXN") {
            self.submit_txn(conn_id, rest, &shared);
            return;
        }
        let _ = handle_misc(request, &shared, &mut conn.outbuf);
    }

    /// Serve a read through the epoch-keyed rendered-reply cache: a hit is a
    /// byte copy; a miss renders via `render`, then caches successful replies.
    /// The caller has already taken (and here releases) the admission slot.
    fn serve_cached(
        &mut self,
        conn_id: u64,
        key: &str,
        render: impl FnOnce(&Shared, &View, &mut Vec<u8>) -> std::io::Result<()>,
    ) {
        // Snapshot the view ONCE and key the cache by ITS epoch. Loading the
        // epoch atomic separately races with `publish`: a reply rendered from
        // the old view could be cached under the new epoch and served stale
        // for the rest of that epoch, breaking read-your-writes after a TXN
        // ack (`OK … epoch=E` promises the write is visible at every epoch
        // >= E).
        let view = self.shared.current_view();
        let epoch = view.epoch;
        if let Some(reply) = self.cache.lookup(epoch, key) {
            self.shared
                .counters
                .reply_cache_hits
                .fetch_add(1, Ordering::Relaxed);
            if let Some(conn) = self.conns.get_mut(&conn_id) {
                conn.outbuf.extend_from_slice(reply);
            }
            self.shared.release_slot();
            return;
        }
        self.scratch.clear();
        let mut scratch = std::mem::take(&mut self.scratch);
        let _ = render(&self.shared, &view, &mut scratch);
        if let Some(conn) = self.conns.get_mut(&conn_id) {
            conn.outbuf.extend_from_slice(&scratch);
        }
        if reply_is_ok(&scratch) {
            self.cache.insert(epoch, key.to_string(), scratch.clone());
        }
        self.scratch = scratch;
        self.shared.release_slot();
    }

    /// Answer `EXEC <id> [consts]`: bind the prepared statement's placeholders
    /// and answer from the current view without re-parsing the query.
    fn serve_exec(&mut self, conn_id: u64, rest: &str, shared: &Arc<Shared>) {
        let Some(conn) = self.conns.get_mut(&conn_id) else {
            return;
        };
        let (id_text, args) = match rest.split_once(char::is_whitespace) {
            Some((id, args)) => (id, args.trim()),
            None => (rest, ""),
        };
        let Ok(id) = id_text.parse::<u64>() else {
            let _ = respond_err(&mut conn.outbuf, "parse", "usage: EXEC <id> [consts]");
            return;
        };
        // Bind before admitting: the statement borrow (of the connection map)
        // must end before `serve_cached` re-borrows it, and a bad id is a
        // protocol error, not load.
        let (key, bound) = match conn.prepared.get(&id) {
            Some(stmt) => (
                format!("EXEC\u{1}{}\u{1}{args}", stmt.src),
                bind_prepared(stmt, args),
            ),
            None => {
                let _ = respond_err(
                    &mut conn.outbuf,
                    "parse",
                    &format!("no prepared statement with id {id} on this connection"),
                );
                return;
            }
        };
        if !shared.try_acquire_slot() {
            if let Some(conn) = self.conns.get_mut(&conn_id) {
                let _ = respond_overloaded(&mut conn.outbuf, shared);
            }
            return;
        }
        shared
            .counters
            .prepared_execs
            .fetch_add(1, Ordering::Relaxed);
        self.serve_cached(conn_id, &key, move |shared, view, out| match bound {
            Ok(query) => answer_query(&query, shared, view, out),
            Err(message) => respond_err(out, "parse", &message),
        });
    }

    /// Parse, admit, and submit a transaction; the reply is delivered by
    /// [`Reactor::deliver_completions`] when the writer reports the outcome.
    fn submit_txn(&mut self, conn_id: u64, spec: &str, shared: &Arc<Shared>) {
        let Some(conn) = self.conns.get_mut(&conn_id) else {
            return;
        };
        match ReplicaRole::from_u8(shared.repl.role.load(Ordering::Acquire)) {
            ReplicaRole::Leader => {}
            ReplicaRole::Follower => {
                let _ = respond_err(
                    &mut conn.outbuf,
                    "readonly",
                    "this node is a replica: write to the leader or PROMOTE it",
                );
                return;
            }
            ReplicaRole::Fenced => {
                let _ = respond_err(
                    &mut conn.outbuf,
                    "fenced",
                    &format!(
                        "superseded by term {}; this ex-leader refuses writes",
                        shared.repl.term.load(Ordering::Acquire)
                    ),
                );
                return;
            }
        }
        let ops = match parse_txn_ops(spec) {
            Ok(ops) => ops,
            Err(message) => {
                let _ = respond_err(&mut conn.outbuf, "parse", &message);
                return;
            }
        };
        if !shared.try_acquire_slot() {
            let _ = respond_overloaded(&mut conn.outbuf, shared);
            return;
        }
        let req = WriteReq {
            ops,
            reply: TxnTicket {
                conn_id,
                completions: self.completions.clone(),
                sent: false,
            },
        };
        // A full queue is overload, not a reason to block the reactor. The
        // refused ticket's Drop would release the slot via a completion; do it
        // directly so the shed is synchronous like every other shed.
        match self.write_tx.try_send(req) {
            Ok(()) => conn.awaiting_txn = true,
            Err(e) => {
                let req = match e {
                    mpsc::TrySendError::Full(req) => {
                        let _ = respond_overloaded(&mut conn.outbuf, shared);
                        req
                    }
                    mpsc::TrySendError::Disconnected(req) => {
                        let _ =
                            respond_err(&mut conn.outbuf, "shutdown", "server is shutting down");
                        req
                    }
                };
                let mut ticket = req.reply;
                ticket.sent = true; // suppress the Drop completion
                drop(ticket);
                shared.release_slot();
            }
        }
    }

    /// Drain mode, entered once `stopping` is observed: refuse buffered
    /// requests, deliver outstanding transaction outcomes, flush reply
    /// buffers — all bounded by `drain_timeout`, after which stragglers are
    /// cancelled via the engine's [`CancelToken`] and given one grace period.
    fn drain(&mut self) -> bool {
        let deadline = Instant::now() + self.shared.options.drain_timeout;
        // Refuse whatever is already buffered (`ERR shutdown`), then flush.
        let ids: Vec<u64> = self.conns.keys().copied().collect();
        for id in ids {
            self.serve_buffered(id);
            if let Some(conn) = self.conns.get_mut(&id) {
                if !conn.awaiting_txn {
                    conn.closing = true;
                }
                conn.flush_out();
            }
        }
        self.reap_dead();
        let mut cancelled = false;
        loop {
            let outstanding = self.conns.values().any(|c| c.awaiting_txn);
            let unflushed = self.conns.values().any(|c| c.outpos < c.outbuf.len());
            if !outstanding && !unflushed {
                return !cancelled;
            }
            let now = Instant::now();
            if now >= deadline {
                if !cancelled {
                    cancelled = true;
                    // Stragglers: abort their evaluations cooperatively. They
                    // surface as structured `ERR cancelled` replies.
                    self.shared.cancel.cancel();
                } else if now >= deadline + self.shared.options.drain_timeout {
                    // The grace period is over; the writer will still drain
                    // the queue after we exit, but clients get EOF.
                    return false;
                }
            }
            let mut fds = vec![PollFd::new(self.completions.pipe.poll_fd(), POLL_IN)];
            let mut fd_conns = Vec::new();
            for (&id, conn) in &self.conns {
                if conn.outpos < conn.outbuf.len() {
                    fds.push(PollFd::new(conn.stream.as_raw_fd(), POLL_OUT));
                    fd_conns.push(id);
                }
            }
            if poll_fds(&mut fds, 20).is_err() {
                std::thread::sleep(Duration::from_millis(5));
            }
            if fds[0].ready(POLL_IN) {
                self.completions.pipe.drain();
            }
            self.deliver_completions();
            for (slot, &id) in fd_conns.iter().enumerate() {
                if fds[1 + slot].ready(POLL_OUT | POLL_FAIL) {
                    if let Some(conn) = self.conns.get_mut(&id) {
                        conn.flush_out();
                    }
                }
            }
            self.reap_dead();
        }
    }

    /// Drop dead connections. A dead submitter's admission slot is NOT
    /// released here — its outcome is still coming and releases the slot in
    /// [`Reactor::deliver_completions`].
    fn reap_dead(&mut self) {
        self.conns.retain(|_, conn| !conn.dead);
    }
}

/// Does a rendered reply end in an `OK …` verdict line (cacheable)?
fn reply_is_ok(reply: &[u8]) -> bool {
    if !reply.ends_with(b"\n") {
        return false;
    }
    let body = &reply[..reply.len() - 1];
    let start = body
        .iter()
        .rposition(|&b| b == b'\n')
        .map(|p| p + 1)
        .unwrap_or(0);
    body[start..].starts_with(b"OK ")
}

/// Dispatch one request line. `Err` means the *socket* failed (disconnect);
/// protocol-level failures are reported in-band as `ERR` lines.
/// Dispatch the verbs that need no connection state and no admission slot:
/// `PING`, `EPOCH`, `STATS`, `REPL …`, `PROMOTE`, and the unknown-verb error.
/// (`QUERY`/`EXEC`/`TXN`/`PREPARE`/`QUIT` live on [`Reactor::serve_request`].)
fn handle_misc(request: &str, shared: &Shared, out: &mut impl Write) -> std::io::Result<()> {
    let (verb, rest) = match request.split_once(char::is_whitespace) {
        Some((verb, rest)) => (verb, rest.trim()),
        None => (request, ""),
    };
    if verb.eq_ignore_ascii_case("PING") {
        writeln!(out, "OK pong")?;
        return out.flush();
    }
    if verb.eq_ignore_ascii_case("EPOCH") {
        writeln!(out, "OK epoch={}", shared.epoch.load(Ordering::Acquire))?;
        return out.flush();
    }
    if verb.eq_ignore_ascii_case("STATS") {
        return handle_stats(shared, out);
    }
    if verb.eq_ignore_ascii_case("REPL") {
        // Ungoverned, like STATS: replication must stay alive under reader
        // load, or a shed storm would starve every follower into failover.
        return handle_repl(rest, shared, out);
    }
    if verb.eq_ignore_ascii_case("PROMOTE") {
        return handle_promote(shared, out);
    }
    respond_err(out, "parse", &format!("unknown request `{verb}`"))
}

/// Milliseconds since the follower last heard from its leader.
///
/// The contact stamp is loaded FIRST: `started.elapsed()` taken after the
/// load is ≥ every stamp recorded before it, so the subtraction cannot
/// underflow. (The old code captured `elapsed` first, so a sync landing
/// between the two reads made `contact > elapsed` and the saturating_sub
/// reported a spurious 0 — or, without saturation, would have underflowed.)
/// A sync landing after the load only makes the result an overestimate
/// bounded by the load-to-elapsed gap, which is the safe direction for both
/// the lease gate and the lag stat.
fn ms_since_leader_contact(repl: &ReplState) -> u64 {
    let contact = repl.last_contact_ms.load(Ordering::Acquire);
    (repl.started.elapsed().as_millis() as u64).saturating_sub(contact)
}

/// Answer `STATS`: admission/commit counters plus the replication facet
/// (role, term, and lag — follower lag against its leader, or the leader's
/// worst-follower lag from recent subscription polls).
fn handle_stats(shared: &Shared, out: &mut impl Write) -> std::io::Result<()> {
    let repl = &shared.repl;
    let group_commits = shared.group_commits.load(Ordering::Relaxed);
    let group_txns = shared.group_txns.load(Ordering::Relaxed);
    let txns_per_fsync = if group_commits > 0 {
        group_txns as f64 / group_commits as f64
    } else {
        0.0
    };
    let role = ReplicaRole::from_u8(repl.role.load(Ordering::Acquire));
    let last_seq = repl.last_seq.load(Ordering::Acquire);
    let (followers, lag_frames, lag_ms) = if repl.leader_addr.is_some() {
        // A (possibly promoted or fenced) replica: lag against its leader.
        // `lag_ms` is ms since the last successful leader contact.
        let lag = repl
            .leader_seq
            .load(Ordering::Relaxed)
            .saturating_sub(last_seq);
        (0u64, lag, ms_since_leader_contact(repl))
    } else {
        // A leader: worst lag over the live followers.
        let mut followers = repl.followers.lock().expect("follower map poisoned");
        followers.retain(|_, lag| lag.last_poll.elapsed() < FOLLOWER_PRUNE);
        let lag_frames = followers
            .values()
            .map(|f| last_seq.saturating_sub(f.seq))
            .max()
            .unwrap_or(0);
        let lag_ms = followers
            .values()
            .map(|f| f.last_poll.elapsed().as_millis() as u64)
            .max()
            .unwrap_or(0);
        (followers.len() as u64, lag_frames, lag_ms)
    };
    let m = shared.server_metrics();
    writeln!(
        out,
        "OK epoch={} in_flight={} shed={} group_commits={group_commits} \
         group_txns={group_txns} txns_per_fsync={txns_per_fsync:.2} role={role} term={} \
         repl_followers={followers} repl_lag_frames={lag_frames} repl_lag_ms={lag_ms} \
         reactor_wakeups={} pipelined_batches={} pipelined_requests={} max_batch_depth={} \
         prepared_execs={} reply_cache_hits={}",
        shared.epoch.load(Ordering::Acquire),
        shared.in_flight.load(Ordering::Acquire),
        shared.shed.load(Ordering::Relaxed),
        repl.term.load(Ordering::Acquire),
        m.reactor_wakeups,
        m.pipelined_batches,
        m.pipelined_requests,
        m.max_batch_depth,
        m.prepared_execs,
        m.reply_cache_hits,
    )?;
    out.flush()
}

/// Answer `REPL SUBSCRIBE <from_seq> [term=T] [id=I]`: stream committed WAL
/// frames (or a snapshot when compaction outran the subscriber) straight from
/// the data directory, and fence ourselves when the poll proves a newer term.
fn handle_repl(rest: &str, shared: &Shared, out: &mut impl Write) -> std::io::Result<()> {
    let (sub, args) = match rest.split_once(char::is_whitespace) {
        Some((sub, args)) => (sub, args.trim()),
        None => (rest, ""),
    };
    if !sub.eq_ignore_ascii_case("SUBSCRIBE") {
        return respond_err(
            out,
            "parse",
            "usage: REPL SUBSCRIBE <from_seq> [term=T] [id=I]",
        );
    }
    let mut from_seq: Option<u64> = None;
    let mut term = 0u64;
    let mut id = 0u64;
    for token in args.split_whitespace() {
        if let Some(value) = token.strip_prefix("term=") {
            term = value.parse().unwrap_or(0);
        } else if let Some(value) = token.strip_prefix("id=") {
            id = value.parse().unwrap_or(0);
        } else {
            from_seq = token.parse().ok();
        }
    }
    let Some(from_seq) = from_seq else {
        return respond_err(
            out,
            "parse",
            "usage: REPL SUBSCRIBE <from_seq> [term=T] [id=I]",
        );
    };
    let repl = &shared.repl;
    let Some(dir) = repl.data_dir.as_deref() else {
        return respond_err(
            out,
            "repl",
            "this server is not durable; nothing to replicate",
        );
    };
    // Fencing: a subscriber carrying a newer term proves a newer leader was
    // elected. Adopt the term; if we thought we were the leader, we are not —
    // flip to fenced (writes refused) before answering.
    let my_term = repl.term.load(Ordering::Acquire);
    if term > my_term {
        repl.term.store(term, Ordering::Release);
        let was_leader = repl
            .role
            .compare_exchange(
                ReplicaRole::Leader.as_u8(),
                ReplicaRole::Fenced.as_u8(),
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .is_ok();
        let _ = replication::persist_term(dir, term);
        if was_leader || repl.role.load(Ordering::Acquire) == ReplicaRole::Fenced.as_u8() {
            return respond_err(out, "fenced", &format!("superseded by term {term}"));
        }
        // A follower simply adopts the newer term and keeps serving frames
        // (chained replication stays valid: our log is a committed prefix).
    } else if repl.role.load(Ordering::Acquire) == ReplicaRole::Fenced.as_u8() {
        return respond_err(
            out,
            "fenced",
            &format!("superseded by term {}", repl.term.load(Ordering::Acquire)),
        );
    }
    let step = match replication::stream_step(dir, from_seq, REPL_BATCH_FRAMES) {
        Ok(step) => step,
        Err(error) => return respond_err(out, "repl", &error.to_string()),
    };
    // Record this follower's drain position for leader-side lag accounting.
    if id != 0 {
        let mut followers = repl.followers.lock().expect("follower map poisoned");
        followers.retain(|_, lag| lag.last_poll.elapsed() < FOLLOWER_PRUNE);
        followers.insert(
            id,
            FollowerLag {
                seq: from_seq.saturating_sub(1),
                last_poll: Instant::now(),
            },
        );
    }
    let my_term = repl.term.load(Ordering::Acquire);
    match step {
        StreamStep::Snapshot {
            text,
            seq,
            last_seq,
        } => {
            writeln!(out, "SNAP {}", replication::to_hex(text.as_bytes()))?;
            writeln!(
                out,
                "OK frames=0 snapshot_seq={seq} last_seq={last_seq} term={my_term}"
            )?;
        }
        StreamStep::Frames { frames, last_seq } => {
            for frame in &frames {
                writeln!(out, "FRAME {}", replication::to_hex(&frame.encode()))?;
            }
            writeln!(
                out,
                "OK frames={} last_seq={last_seq} term={my_term}",
                frames.len()
            )?;
        }
    }
    out.flush()
}

/// Answer `PROMOTE`: idempotent on a leader, refused on a fenced ex-leader,
/// and on a follower gated by the lease — only after the leader has been out
/// of contact for a full lease timeout does the term bump (persisted first)
/// and the role flip; the apply loop then becomes the writer.
fn handle_promote(shared: &Shared, out: &mut impl Write) -> std::io::Result<()> {
    let repl = &shared.repl;
    match ReplicaRole::from_u8(repl.role.load(Ordering::Acquire)) {
        ReplicaRole::Leader => {
            writeln!(
                out,
                "OK role=leader term={}",
                repl.term.load(Ordering::Acquire)
            )?;
            out.flush()
        }
        ReplicaRole::Fenced => respond_err(
            out,
            "fenced",
            &format!(
                "superseded by term {}; restart this node as a follower",
                repl.term.load(Ordering::Acquire)
            ),
        ),
        ReplicaRole::Follower => {
            let since_contact_ms = ms_since_leader_contact(repl);
            let lease_ms = repl.lease_timeout.as_millis() as u64;
            if since_contact_ms < lease_ms {
                return respond_err(
                    out,
                    "lease",
                    &format!(
                        "leader lease still valid for {} more ms; refusing promotion",
                        lease_ms - since_contact_ms
                    ),
                );
            }
            let new_term = repl.term.load(Ordering::Acquire) + 1;
            // Persist before flipping the role: a promotion that does not
            // survive our own crash could let the old leader fence us back.
            if let Some(dir) = repl.data_dir.as_deref() {
                if let Err(error) = replication::persist_term(dir, new_term) {
                    return respond_err(out, "repl", &error.to_string());
                }
            }
            repl.term.store(new_term, Ordering::Release);
            // A concurrent PROMOTE may win this race; both persisted the same
            // term, so reporting the shared outcome is correct either way.
            let _ = repl.role.compare_exchange(
                ReplicaRole::Follower.as_u8(),
                ReplicaRole::Leader.as_u8(),
                Ordering::AcqRel,
                Ordering::Acquire,
            );
            writeln!(
                out,
                "OK role=leader term={}",
                repl.term.load(Ordering::Acquire)
            )?;
            out.flush()
        }
    }
}

/// Parse and answer a `QUERY` from the current view.
fn handle_query(
    text: &str,
    shared: &Shared,
    view: &View,
    out: &mut impl Write,
) -> std::io::Result<()> {
    // Accept the REPL's clause syntax: a trailing period is noise here.
    let text = text.trim().trim_end_matches('.');
    let query = match parse_query(text) {
        Ok(query) => query,
        Err(e) => return respond_err(out, "parse", &e.to_string()),
    };
    answer_query(&query, shared, view, out)
}

/// Answer an already-parsed query from the caller's view snapshot (whose
/// epoch keys the reply cache — see [`Reactor::serve_cached`]), with periodic
/// deadline/cancellation checks while rendering rows.
fn answer_query(
    query: &Query,
    shared: &Shared,
    view: &View,
    out: &mut impl Write,
) -> std::io::Result<()> {
    let started = Instant::now();
    let answers = view.model.answers(query);
    let mut rendered = String::new();
    for (i, row) in answers.iter().enumerate() {
        if i % ROW_CHECK_INTERVAL == 0 && i > 0 {
            if let Some(deadline) = shared.options.request_deadline {
                if started.elapsed() >= deadline {
                    return respond_err(
                        out,
                        "deadline",
                        &format!(
                            "deadline of {deadline:.1?} exceeded after {:.1?} ({i} of {} row(s) sent)",
                            started.elapsed(),
                            answers.len()
                        ),
                    );
                }
            }
            if shared.cancel.is_cancelled() || shared.stopping.load(Ordering::Acquire) {
                return respond_err(out, "shutdown", "server is shutting down");
            }
        }
        rendered.clear();
        rendered.push_str("ROW ");
        for (j, value) in row.iter().enumerate() {
            if j > 0 {
                rendered.push_str(", ");
            }
            write_const(&mut rendered, value);
        }
        writeln!(out, "{rendered}")?;
    }
    writeln!(out, "OK rows={} epoch={}", answers.len(), view.epoch)?;
    out.flush()
}

/// Handle `PREPARE <query>`: parse once with `?` placeholders, store the
/// statement on the connection, and reply `OK id=<id> params=<count>`.
fn handle_prepare(conn: &mut Conn, text: &str) {
    if conn.prepared.len() >= MAX_PREPARED_PER_CONN {
        let _ = respond_err(
            &mut conn.outbuf,
            "limit",
            &format!("connection already holds {MAX_PREPARED_PER_CONN} prepared statements"),
        );
        return;
    }
    match prepare_statement(text) {
        Ok(stmt) => {
            let id = conn.next_prepared;
            conn.next_prepared += 1;
            let params = stmt.params.len();
            conn.prepared.insert(id, stmt);
            let _ = writeln!(conn.outbuf, "OK id={id} params={params}");
        }
        Err(message) => {
            let _ = respond_err(&mut conn.outbuf, "parse", &message);
        }
    }
}

/// Compile `PREPARE` text into a [`PreparedStmt`]: each `?` outside a string
/// literal becomes a fresh variable, the rewritten query is parsed once, and
/// the placeholder term positions are recorded in placeholder order.
fn prepare_statement(text: &str) -> Result<PreparedStmt, String> {
    let src = text.trim().trim_end_matches('.').to_string();
    let mut rewritten = String::with_capacity(src.len() + 16);
    let mut names: Vec<String> = Vec::new();
    let mut in_string = false;
    for ch in src.chars() {
        if in_string {
            rewritten.push(ch);
            // The lexer has no escapes: a string runs to the next `"`.
            if ch == '"' {
                in_string = false;
            }
            continue;
        }
        match ch {
            '"' => {
                in_string = true;
                rewritten.push(ch);
            }
            '?' => {
                // `_Param` prefix: uppercase-or-underscore start makes it a
                // variable; distinct from the parser's `_anon` names, and
                // suffixed past any collision with the query's own text.
                let mut name = format!("_Param{}", names.len());
                while src.contains(&name) {
                    name.push('_');
                }
                rewritten.push_str(&name);
                names.push(name);
            }
            _ => rewritten.push(ch),
        }
    }
    // Zero-placeholder statements are legal: EXEC then behaves like a cached,
    // re-parse-free QUERY.
    let query = parse_query(&rewritten).map_err(|e| e.to_string())?;
    let mut params = vec![usize::MAX; names.len()];
    for (pos, term) in query.atom.terms.iter().enumerate() {
        if let Term::Var(symbol) = term {
            if let Some(slot) = names.iter().position(|n| n == symbol.as_str()) {
                if params[slot] != usize::MAX {
                    return Err("internal: placeholder bound twice".to_string());
                }
                params[slot] = pos;
            }
        }
    }
    if params.contains(&usize::MAX) {
        return Err("placeholders are only supported in term positions".to_string());
    }
    Ok(PreparedStmt { src, query, params })
}

/// Bind `EXEC` arguments into a prepared statement, yielding a ground-where-
/// bound query. Arguments are parsed as constants by wrapping them in a tiny
/// synthetic atom — the only parsing `EXEC` does.
fn bind_prepared(stmt: &PreparedStmt, args: &str) -> Result<Query, String> {
    let consts: Vec<Const> = if args.is_empty() {
        Vec::new()
    } else {
        let parsed = parse_query(&format!("x({args})"))
            .map_err(|e| format!("bad EXEC arguments `{args}`: {e}"))?;
        let mut consts = Vec::with_capacity(parsed.atom.terms.len());
        for term in &parsed.atom.terms {
            match term {
                Term::Const(value) => consts.push(*value),
                Term::Var(_) => {
                    return Err(format!(
                        "EXEC arguments must be constants, got variable in `{args}`"
                    ))
                }
            }
        }
        consts
    };
    if consts.len() != stmt.params.len() {
        return Err(format!(
            "prepared statement takes {} argument(s), got {}",
            stmt.params.len(),
            consts.len()
        ));
    }
    let mut query = stmt.query.clone();
    for (&pos, &value) in stmt.params.iter().zip(consts.iter()) {
        query.atom.terms[pos] = Term::Const(value);
    }
    Ok(query)
}

/// Parse `+p(1, 2); -q(foo)` into transaction ops. Every atom must be ground.
fn parse_txn_ops(spec: &str) -> Result<Vec<(TxnOp, Symbol, Vec<Const>)>, String> {
    let mut ops = Vec::new();
    for part in spec.split(';') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let (op, atom_text) = match part.split_at(1) {
            ("+", rest) => (TxnOp::Assert, rest.trim().trim_end_matches('.')),
            ("-", rest) => (TxnOp::Retract, rest.trim().trim_end_matches('.')),
            _ => {
                return Err(format!(
                    "transaction op `{part}` must start with `+` (assert) or `-` (retract)"
                ))
            }
        };
        let atom = parse_query(atom_text)
            .map_err(|e| format!("bad atom in `{part}`: {e}"))?
            .atom;
        let Some(tuple) = atom.as_fact() else {
            return Err(format!("transaction atom `{atom_text}` must be ground"));
        };
        ops.push((op, atom.predicate, tuple));
    }
    if ops.is_empty() {
        return Err("empty transaction".to_string());
    }
    Ok(ops)
}

fn respond_overloaded(out: &mut impl Write, shared: &Shared) -> std::io::Result<()> {
    respond_err(
        out,
        "overloaded",
        &format!(
            "server at capacity; retry after {} ms",
            shared.options.retry_after.as_millis()
        ),
    )
}

/// Map an engine error onto a protocol error code.
fn respond_engine_error(out: &mut impl Write, error: &EngineError) -> std::io::Result<()> {
    let code = match error {
        EngineError::Parse(_) => "parse",
        EngineError::ArityMismatch { .. } | EngineError::NonGroundFact(_) => "txn",
        EngineError::Eval(EvalError::LimitExceeded { reason, .. }) => match reason {
            LimitReason::Cancelled => "cancelled",
            LimitReason::Deadline { .. } => "deadline",
            LimitReason::DerivedFacts { .. } | LimitReason::MemoryBudget { .. } => "limit",
        },
        EngineError::Eval(_) => "eval",
        EngineError::Durability(_) | EngineError::Locked { .. } => "durability",
        EngineError::Snapshot(_) | EngineError::Io(_) | EngineError::Transform(_) => "internal",
    };
    respond_err(out, code, &error.to_string())
}

fn respond_err(out: &mut impl Write, code: &str, message: &str) -> std::io::Result<()> {
    // Protocol lines are single lines: flatten any embedded newlines.
    let message = message.replace('\n', " | ");
    writeln!(out, "ERR {code}: {message}")?;
    out.flush()
}

/// Jitter a backoff delay uniformly into `(delay/2, delay]`. Without this,
/// every client shed by the same overload retries on the same schedule and the
/// herd stampedes back in lockstep. Dependency-free: a splitmix64 stream over
/// a process-global counter seeded from the clock and pid.
fn jittered(delay: Duration) -> Duration {
    static STATE: AtomicU64 = AtomicU64::new(0);
    if STATE.load(Ordering::Relaxed) == 0 {
        let seed = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x5_DEEC_E66D)
            ^ ((std::process::id() as u64) << 32);
        // `| 1`: never store 0, the "unseeded" sentinel.
        let _ = STATE.compare_exchange(0, seed | 1, Ordering::Relaxed, Ordering::Relaxed);
    }
    let mut x = STATE.fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    let nanos = delay.as_nanos() as u64;
    let span = (nanos / 2).max(1);
    Duration::from_nanos(nanos - span + 1 + x % span)
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

/// A client-side error.
#[derive(Clone, Debug)]
pub enum ClientError {
    /// The socket failed (connect refused, disconnect mid-response).
    Io(String),
    /// The server sent something the client cannot interpret.
    Protocol(String),
    /// The server answered with a structured `ERR` line.
    Server {
        /// The error code (`overloaded`, `deadline`, `shutdown`, …).
        code: String,
        /// The human-readable message after the code.
        message: String,
    },
}

impl ClientError {
    /// Is this an `overloaded` shed — the one error class the server asks the
    /// client to retry after a backoff?
    pub fn is_retryable(&self) -> bool {
        matches!(self, ClientError::Server { code, .. } if code == "overloaded")
    }
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(m) => write!(f, "io: {m}"),
            ClientError::Protocol(m) => write!(f, "protocol: {m}"),
            ClientError::Server { code, message } => write!(f, "server ({code}): {message}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// A successful `QUERY` response.
#[derive(Clone, Debug)]
pub struct QueryReply {
    /// One rendered row per answer, in the server's (sorted) answer order.
    pub rows: Vec<String>,
    /// Epoch of the view the query was answered from.
    pub epoch: u64,
}

/// A successful `TXN` response.
#[derive(Clone, Copy, Debug)]
pub struct TxnReply {
    /// Facts asserted (new).
    pub asserted: usize,
    /// Facts retracted (present and removed).
    pub retracted: usize,
    /// The first epoch whose view includes this transaction.
    pub epoch: u64,
}

/// A parsed `STATS` response.
#[derive(Clone, Copy, Debug, Default)]
pub struct StatsReply {
    /// Current published epoch.
    pub epoch: u64,
    /// Requests in service right now.
    pub in_flight: usize,
    /// Requests shed by admission control so far.
    pub shed: u64,
    /// Group commits the engine performed (each one fsync).
    pub group_commits: u64,
    /// Transactions committed through those groups.
    pub group_txns: u64,
    /// Measured batching ratio: `group_txns / group_commits` (0 before the
    /// first commit).
    pub txns_per_fsync: f64,
    /// The server's replication role.
    pub role: ReplicaRole,
    /// The server's replication term.
    pub term: u64,
    /// Leader only: followers seen polling within the prune horizon.
    pub repl_followers: u64,
    /// Replication lag in frames: a follower's distance behind its leader, or
    /// a leader's worst-follower distance.
    pub repl_lag_frames: u64,
    /// Replication lag in wall-clock ms: time since the follower's last
    /// successful leader contact, or since the leader's stalest follower poll.
    pub repl_lag_ms: u64,
    /// Times the reactor's poll loop woke (readiness, wake pipe, or timeout).
    pub reactor_wakeups: u64,
    /// Read-drain rounds that served at least one request.
    pub pipelined_batches: u64,
    /// Requests served across those rounds (`/ pipelined_batches` = mean
    /// pipelining depth).
    pub pipelined_requests: u64,
    /// Deepest single pipelined batch seen.
    pub max_batch_depth: u64,
    /// `EXEC` requests served from prepared statements.
    pub prepared_execs: u64,
    /// Reads answered from the epoch-keyed rendered-reply cache.
    pub reply_cache_hits: u64,
}

/// A server-side prepared statement handle, scoped to the [`Client`]
/// connection that created it.
#[derive(Clone, Copy, Debug)]
pub struct Prepared {
    /// The id `EXEC` sends.
    pub id: u64,
    /// Number of `?` placeholders the statement takes.
    pub params: usize,
}

/// A line-protocol client with exponential-backoff retry for shed requests.
/// One request in flight at a time per client (the protocol is synchronous).
///
/// Idempotent reads ([`Client::query`]) transparently reconnect and retry
/// once when the connection drops; writes ([`Client::txn`]) never do — a
/// dropped connection mid-commit leaves the outcome unknown, and a blind
/// retry could double-apply.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    /// The server's resolved address, kept for reconnects.
    addr: SocketAddr,
}

impl Client {
    /// Connect to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr).map_err(|e| ClientError::Io(e.to_string()))?;
        stream.set_nodelay(true).ok();
        let addr = stream
            .peer_addr()
            .map_err(|e| ClientError::Io(e.to_string()))?;
        let reader = stream
            .try_clone()
            .map_err(|e| ClientError::Io(e.to_string()))?;
        Ok(Client {
            reader: BufReader::new(reader),
            writer: stream,
            addr,
        })
    }

    /// Replace the dropped connection with a fresh one to the same address.
    /// Connection-scoped state (prepared statements) does not survive.
    fn reconnect(&mut self) -> Result<(), ClientError> {
        let fresh = Client::connect(self.addr)?;
        self.reader = fresh.reader;
        self.writer = fresh.writer;
        Ok(())
    }

    /// Connect with exponential backoff — for races against a server that is
    /// still binding (e.g. a test or smoke script that just spawned it).
    pub fn connect_with_retry(
        addr: impl ToSocketAddrs + Clone,
        attempts: usize,
    ) -> Result<Client, ClientError> {
        let mut delay = Duration::from_millis(10);
        let mut last = ClientError::Io("no connection attempts made".to_string());
        for _ in 0..attempts.max(1) {
            match Client::connect(addr.clone()) {
                Ok(client) => return Ok(client),
                Err(e) => last = e,
            }
            std::thread::sleep(jittered(delay));
            delay = (delay * 2).min(Duration::from_secs(1));
        }
        Err(last)
    }

    pub(crate) fn send_line(&mut self, line: &str) -> Result<(), ClientError> {
        writeln!(self.writer, "{line}")
            .and_then(|()| self.writer.flush())
            .map_err(|e| ClientError::Io(e.to_string()))
    }

    pub(crate) fn read_reply_line(&mut self) -> Result<String, ClientError> {
        let mut line = String::new();
        match self.reader.read_line(&mut line) {
            Ok(0) => Err(ClientError::Io("server closed the connection".to_string())),
            Ok(_) => Ok(line.trim_end().to_string()),
            Err(e) => Err(ClientError::Io(e.to_string())),
        }
    }

    /// Interpret a final `OK …`/`ERR …` line; rows are handled by the caller.
    pub(crate) fn expect_ok(line: &str) -> Result<&str, ClientError> {
        if let Some(rest) = line.strip_prefix("OK") {
            return Ok(rest.trim());
        }
        if let Some(rest) = line.strip_prefix("ERR ") {
            let (code, message) = rest.split_once(':').unwrap_or((rest, ""));
            return Err(ClientError::Server {
                code: code.trim().to_string(),
                message: message.trim().to_string(),
            });
        }
        Err(ClientError::Protocol(format!(
            "expected OK/ERR, got `{line}`"
        )))
    }

    pub(crate) fn parse_field(fields: &str, key: &str) -> Result<u64, ClientError> {
        fields
            .split_whitespace()
            .find_map(|f| f.strip_prefix(key)?.strip_prefix('=')?.parse().ok())
            .ok_or_else(|| ClientError::Protocol(format!("missing `{key}=` in `{fields}`")))
    }

    fn parse_field_f64(fields: &str, key: &str) -> Result<f64, ClientError> {
        fields
            .split_whitespace()
            .find_map(|f| f.strip_prefix(key)?.strip_prefix('=')?.parse().ok())
            .ok_or_else(|| ClientError::Protocol(format!("missing `{key}=` in `{fields}`")))
    }

    /// Run one query; rows come back rendered exactly as the server printed
    /// them (parseable constant syntax, comma-separated).
    ///
    /// Queries are idempotent, so a dropped connection is repaired by one
    /// transparent reconnect-and-retry before the error surfaces.
    pub fn query(&mut self, atom: &str) -> Result<QueryReply, ClientError> {
        match self.query_once(atom) {
            Err(ClientError::Io(_)) => {
                self.reconnect()?;
                self.query_once(atom)
            }
            other => other,
        }
    }

    fn query_once(&mut self, atom: &str) -> Result<QueryReply, ClientError> {
        self.send_line(&format!("QUERY {atom}"))?;
        self.read_query_reply()
    }

    /// Read `ROW …` lines up to the `OK rows=… epoch=…` verdict.
    fn read_query_reply(&mut self) -> Result<QueryReply, ClientError> {
        let mut rows = Vec::new();
        loop {
            let line = self.read_reply_line()?;
            if let Some(row) = line.strip_prefix("ROW ") {
                rows.push(row.to_string());
                continue;
            }
            let fields = Self::expect_ok(&line)?;
            let epoch = Self::parse_field(fields, "epoch")?;
            return Ok(QueryReply { rows, epoch });
        }
    }

    /// `PREPARE` a query with `?` placeholders; [`Client::exec`] binds them.
    /// The statement lives on this connection — a reconnect discards it.
    pub fn prepare(&mut self, query: &str) -> Result<Prepared, ClientError> {
        self.send_line(&format!("PREPARE {query}"))?;
        let line = self.read_reply_line()?;
        let fields = Self::expect_ok(&line)?;
        Ok(Prepared {
            id: Self::parse_field(fields, "id")?,
            params: Self::parse_field(fields, "params")? as usize,
        })
    }

    /// `EXEC` a prepared statement with comma-separated constant arguments
    /// (e.g. `"0, foo"`; empty string for zero-parameter statements).
    ///
    /// No transparent reconnect: prepared statements are connection-scoped,
    /// so after a drop the id no longer exists — re-`PREPARE` instead.
    pub fn exec(&mut self, stmt: Prepared, args: &str) -> Result<QueryReply, ClientError> {
        if args.is_empty() {
            self.send_line(&format!("EXEC {}", stmt.id))?;
        } else {
            self.send_line(&format!("EXEC {} {args}", stmt.id))?;
        }
        self.read_query_reply()
    }

    /// Commit a transaction, e.g. `"+e(1, 2); -e(0, 1)"`.
    ///
    /// Never reconnects on I/O errors: the transaction may have committed
    /// before the drop, and blindly retrying could double-apply it. Callers
    /// who know their ops are idempotent can reconnect and retry themselves.
    pub fn txn(&mut self, spec: &str) -> Result<TxnReply, ClientError> {
        self.send_line(&format!("TXN {spec}"))?;
        let line = self.read_reply_line()?;
        let fields = Self::expect_ok(&line)?;
        Ok(TxnReply {
            asserted: Self::parse_field(fields, "asserted")? as usize,
            retracted: Self::parse_field(fields, "retracted")? as usize,
            epoch: Self::parse_field(fields, "epoch")?,
        })
    }

    /// Retry wrapper around [`Client::query`]: exponential backoff on
    /// `overloaded` sheds, up to `attempts` tries.
    pub fn query_with_retry(
        &mut self,
        atom: &str,
        attempts: usize,
    ) -> Result<QueryReply, ClientError> {
        Self::with_backoff(attempts, || self.query(atom))
    }

    /// Retry wrapper around [`Client::txn`]: exponential backoff on
    /// `overloaded` sheds, up to `attempts` tries.
    pub fn txn_with_retry(&mut self, spec: &str, attempts: usize) -> Result<TxnReply, ClientError> {
        Self::with_backoff(attempts, || self.txn(spec))
    }

    fn with_backoff<T>(
        attempts: usize,
        mut call: impl FnMut() -> Result<T, ClientError>,
    ) -> Result<T, ClientError> {
        let mut delay = Duration::from_millis(5);
        let mut last_err = None;
        for _ in 0..attempts.max(1) {
            match call() {
                Ok(value) => return Ok(value),
                Err(e) if e.is_retryable() => {
                    last_err = Some(e);
                    std::thread::sleep(jittered(delay));
                    delay = (delay * 2).min(Duration::from_millis(500));
                }
                Err(e) => return Err(e),
            }
        }
        Err(last_err.expect("at least one attempt was made"))
    }

    /// The server's current epoch.
    pub fn epoch(&mut self) -> Result<u64, ClientError> {
        self.send_line("EPOCH")?;
        let line = self.read_reply_line()?;
        Self::parse_field(Self::expect_ok(&line)?, "epoch")
    }

    /// The server's counters.
    pub fn stats(&mut self) -> Result<StatsReply, ClientError> {
        self.send_line("STATS")?;
        let line = self.read_reply_line()?;
        let fields = Self::expect_ok(&line)?;
        let role = fields
            .split_whitespace()
            .find_map(|f| f.strip_prefix("role="))
            .and_then(ReplicaRole::parse)
            .unwrap_or_default();
        Ok(StatsReply {
            epoch: Self::parse_field(fields, "epoch")?,
            in_flight: Self::parse_field(fields, "in_flight")? as usize,
            shed: Self::parse_field(fields, "shed")?,
            group_commits: Self::parse_field(fields, "group_commits")?,
            group_txns: Self::parse_field(fields, "group_txns")?,
            txns_per_fsync: Self::parse_field_f64(fields, "txns_per_fsync")?,
            role,
            term: Self::parse_field(fields, "term")?,
            repl_followers: Self::parse_field(fields, "repl_followers")?,
            repl_lag_frames: Self::parse_field(fields, "repl_lag_frames")?,
            repl_lag_ms: Self::parse_field(fields, "repl_lag_ms")?,
            reactor_wakeups: Self::parse_field(fields, "reactor_wakeups")?,
            pipelined_batches: Self::parse_field(fields, "pipelined_batches")?,
            pipelined_requests: Self::parse_field(fields, "pipelined_requests")?,
            max_batch_depth: Self::parse_field(fields, "max_batch_depth")?,
            prepared_execs: Self::parse_field(fields, "prepared_execs")?,
            reply_cache_hits: Self::parse_field(fields, "reply_cache_hits")?,
        })
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.send_line("PING")?;
        let line = self.read_reply_line()?;
        Self::expect_ok(&line).map(|_| ())
    }

    /// Say goodbye; the server closes the connection.
    pub fn quit(mut self) {
        let _ = self.send_line("QUIT");
        let mut sink = String::new();
        let _ = self.reader.read_to_string(&mut sink);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use factorlog_datalog::parser::parse_query as pq;

    const TC: &str = "t(X, Y) :- e(X, Y).\nt(X, Y) :- e(X, W), t(W, Y).";

    fn tc_engine(edges: i64) -> Engine {
        let mut engine = Engine::new();
        engine.load_source(TC).unwrap();
        for i in 0..edges {
            engine
                .insert("e", &[Const::Int(i), Const::Int(i + 1)])
                .unwrap();
        }
        engine
    }

    fn quick_options() -> ServerOptions {
        ServerOptions {
            drain_timeout: Duration::from_secs(2),
            ..ServerOptions::default()
        }
    }

    #[test]
    fn queries_transactions_and_epochs_round_trip() {
        let handle = serve(tc_engine(4), "127.0.0.1:0", quick_options()).unwrap();
        let mut client = Client::connect(handle.addr()).unwrap();
        client.ping().unwrap();

        let reply = client.query("t(0, Y)").unwrap();
        assert_eq!(reply.epoch, 0);
        assert_eq!(reply.rows, vec!["1", "2", "3", "4"]);

        let txn = client.txn("+e(4, 5); -e(0, 1)").unwrap();
        assert_eq!((txn.asserted, txn.retracted), (1, 1));
        assert_eq!(txn.epoch, 1);
        // Read-your-writes: the reply's epoch is already published.
        let reply = client.query("t(1, Y)").unwrap();
        assert!(reply.epoch >= txn.epoch);
        assert_eq!(reply.rows, vec!["2", "3", "4", "5"]);
        let reply = client.query("t(0, Y)").unwrap();
        assert!(reply.rows.is_empty(), "e(0,1) was retracted");

        // Structured parse errors, not dropped connections.
        let err = client.query("t(0, Y").unwrap_err();
        assert!(matches!(err, ClientError::Server { ref code, .. } if code == "parse"));
        let err = client.txn("e(1, 2)").unwrap_err();
        assert!(matches!(err, ClientError::Server { ref code, .. } if code == "parse"));
        let err = client.txn("+e(1)").unwrap_err();
        assert!(
            matches!(err, ClientError::Server { ref code, .. } if code == "txn"),
            "arity mismatch is a structured txn error: {err}"
        );
        // The session survives all of it.
        client.ping().unwrap();
        assert_eq!(client.epoch().unwrap(), 1);
        client.quit();

        let report = handle.shutdown();
        assert_eq!(report.epoch, 1);
        assert!(report.drained_cleanly);
        // The engine comes back with the committed state.
        let mut engine = report.engine;
        assert_eq!(engine.query(&pq("t(1, Y)").unwrap()).unwrap().len(), 4);
    }

    #[test]
    fn slow_writers_are_not_truncated_across_read_timeouts() {
        // Regression: a client that writes half a request, pauses longer than
        // the connection read timeout, then writes the rest must get the
        // answer to the WHOLE request — not have the first half discarded and
        // the tail parsed as a different (possibly valid) request.
        let handle = serve(tc_engine(4), "127.0.0.1:0", quick_options()).unwrap();
        let mut stream = std::net::TcpStream::connect(handle.addr()).unwrap();
        stream.set_nodelay(true).unwrap();
        // On the broken read loop the truncated tail can be an empty request
        // (swallowed silently): a bounded read turns that hang into a failure.
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let request = b"QUERY t(0, Y)\n";
        for (i, byte) in request.iter().enumerate() {
            // Byte at a time, stalling past the poll interval at several
            // mid-request boundaries (after the verb, inside the atom, and
            // right before the terminating newline).
            if [6, 9, request.len() - 1].contains(&i) {
                std::thread::sleep(Duration::from_millis(150));
            }
            stream.write_all(&[*byte]).unwrap();
            stream.flush().unwrap();
        }
        let mut rows = Vec::new();
        loop {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            let line = line.trim_end();
            if let Some(row) = line.strip_prefix("ROW ") {
                rows.push(row.to_string());
                continue;
            }
            assert_eq!(line, "OK rows=4 epoch=0", "slow request mangled");
            break;
        }
        assert_eq!(rows, vec!["1", "2", "3", "4"]);
        handle.shutdown();
    }

    #[test]
    fn rows_render_symbols_in_parseable_syntax() {
        let mut engine = Engine::new();
        engine
            .load_source("label(a, \"blue metal\").\nlabel(b, plain).")
            .unwrap();
        let handle = serve(engine, "127.0.0.1:0", quick_options()).unwrap();
        let mut client = Client::connect(handle.addr()).unwrap();
        let reply = client.query("label(X, Y)").unwrap();
        assert_eq!(reply.rows, vec!["a, \"blue metal\"", "b, plain"]);
        handle.shutdown();
    }

    #[test]
    fn concurrent_clients_group_commit_under_shared_fsyncs() {
        let dir = std::env::temp_dir().join(format!(
            "factorlog_server_group_{}_{}",
            std::process::id(),
            line!()
        ));
        std::fs::remove_dir_all(&dir).ok();
        let mut engine = Engine::open_durable(&dir).unwrap();
        engine.load_source(TC).unwrap();
        let handle = serve(
            engine,
            "127.0.0.1:0",
            ServerOptions {
                group_window: Duration::from_millis(10),
                ..quick_options()
            },
        )
        .unwrap();
        let addr = handle.addr();
        let writers: Vec<_> = (0..8)
            .map(|w| {
                std::thread::spawn(move || {
                    let mut client = Client::connect(addr).unwrap();
                    for i in 0..5i64 {
                        client
                            .txn_with_retry(&format!("+e({}, {})", 100 * w + i, 100 * w + i + 1), 8)
                            .unwrap();
                    }
                })
            })
            .collect();
        for w in writers {
            w.join().unwrap();
        }
        let mut client = Client::connect(addr).unwrap();
        let stats = client.stats().unwrap();
        assert_eq!(stats.epoch, 40, "all 40 txns committed");
        assert_eq!(stats.group_txns, 40);
        assert!(
            stats.group_commits < stats.group_txns,
            "concurrent submitters must share fsyncs: {} groups for {} txns",
            stats.group_commits,
            stats.group_txns
        );
        assert!(
            stats.txns_per_fsync > 1.0,
            "measured batching ratio surfaces in STATS: {}",
            stats.txns_per_fsync
        );
        assert_eq!(stats.role, ReplicaRole::Leader);
        assert_eq!(stats.repl_followers, 0, "no follower ever subscribed");
        let report = handle.shutdown();
        drop(report);
        // And the groups are replay-equivalent to singles.
        let reopened = Engine::open_durable(&dir).unwrap();
        assert_eq!(reopened.facts().count("e"), 40);
        drop(reopened);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn overload_sheds_with_a_retryable_error_instead_of_queueing() {
        // max_in_flight = 0: every governed request is shed immediately.
        let handle = serve(
            tc_engine(2),
            "127.0.0.1:0",
            ServerOptions {
                max_in_flight: 0,
                ..quick_options()
            },
        )
        .unwrap();
        let mut client = Client::connect(handle.addr()).unwrap();
        let err = client.query("t(0, Y)").unwrap_err();
        assert!(err.is_retryable(), "sheds are retryable: {err}");
        assert!(err.to_string().contains("retry after"));
        // Ungoverned liveness probes still answer.
        client.ping().unwrap();
        assert!(handle.shed() >= 1);
        let report = handle.shutdown();
        assert!(report.shed >= 1);
    }

    #[test]
    fn shutdown_rejects_new_requests_and_returns_a_reusable_engine() {
        let handle = serve(tc_engine(3), "127.0.0.1:0", quick_options()).unwrap();
        let addr = handle.addr();
        let mut client = Client::connect(addr).unwrap();
        client.query("t(0, Y)").unwrap();
        let report = handle.shutdown();
        assert!(report.drained_cleanly);
        // The old connection and new connections both see refusal, not a hang.
        assert!(client.query("t(0, Y)").is_err());
        assert!(Client::connect(addr).map(|mut c| c.ping()).is_err());
        let mut engine = report.engine;
        engine.insert("e", &[Const::Int(3), Const::Int(4)]).unwrap();
        assert_eq!(engine.query(&pq("t(0, Y)").unwrap()).unwrap().len(), 4);
    }

    #[test]
    fn jittered_delays_stay_in_the_half_open_band() {
        for _ in 0..200 {
            let d = jittered(Duration::from_millis(100));
            assert!(
                d > Duration::from_millis(50) && d <= Duration::from_millis(100),
                "jitter must stay in (delay/2, delay]: {d:?}"
            );
        }
    }

    #[test]
    fn txn_ops_parse_and_reject_malformed_input() {
        let ops = parse_txn_ops("+e(1, 2); -e(2, 1);").unwrap();
        assert_eq!(ops.len(), 2);
        assert_eq!(ops[0].0, TxnOp::Assert);
        assert_eq!(ops[1].0, TxnOp::Retract);
        assert!(parse_txn_ops("").is_err());
        assert!(parse_txn_ops("e(1, 2)").is_err());
        assert!(parse_txn_ops("+e(X, 2)").is_err(), "non-ground atom");
        assert!(parse_txn_ops("+e(1, ").is_err());
    }

    #[test]
    fn pipelined_requests_answer_in_order_from_one_packet() {
        let handle = serve(tc_engine(4), "127.0.0.1:0", quick_options()).unwrap();
        let mut stream = std::net::TcpStream::connect(handle.addr()).unwrap();
        stream.set_nodelay(true).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        // Five requests in ONE write: the reactor must serve all of them
        // before re-arming, and the replies must come back in request order.
        stream
            .write_all(b"PING\nQUERY t(0, Y)\nEPOCH\nQUERY t(3, Y)\nPING\n")
            .unwrap();
        let mut reader = BufReader::new(stream);
        let mut lines = Vec::new();
        while lines.len() < 8 {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            lines.push(line.trim_end().to_string());
        }
        assert_eq!(
            lines,
            vec![
                "OK pong",
                "ROW 1",
                "ROW 2",
                "ROW 3",
                "ROW 4",
                "OK rows=4 epoch=0",
                "OK epoch=0",
                "ROW 4",
            ]
        );
        let metrics = handle.server_metrics();
        assert!(metrics.pipelined_batches >= 1);
        assert!(
            metrics.max_batch_depth >= 5,
            "five requests in one packet should drain as one batch: {metrics:?}"
        );
        handle.shutdown();
    }

    #[test]
    fn prepare_exec_binds_placeholders_without_reparsing() {
        let handle = serve(tc_engine(4), "127.0.0.1:0", quick_options()).unwrap();
        let mut client = Client::connect(handle.addr()).unwrap();

        let stmt = client.prepare("t(?, Y)").unwrap();
        assert_eq!(stmt.params, 1);
        // The same statement serves different constants (rebinding).
        assert_eq!(
            client.exec(stmt, "0").unwrap().rows,
            vec!["1", "2", "3", "4"]
        );
        assert_eq!(client.exec(stmt, "2").unwrap().rows, vec!["3", "4"]);

        // Zero-parameter statements are legal; a miss is an empty row set.
        let all = client.prepare("t(X, Y)").unwrap();
        assert_eq!(all.params, 0);
        assert_eq!(client.exec(all, "").unwrap().rows.len(), 10);
        assert!(client.exec(stmt, "99").unwrap().rows.is_empty());

        // Structured errors: wrong arity, variables as args, unknown id.
        let err = client.exec(stmt, "1, 2").unwrap_err();
        assert!(matches!(err, ClientError::Server { ref code, .. } if code == "parse"));
        let err = client.exec(stmt, "X").unwrap_err();
        assert!(matches!(err, ClientError::Server { ref code, .. } if code == "parse"));
        let err = client
            .exec(Prepared { id: 999, params: 0 }, "")
            .unwrap_err();
        assert!(matches!(err, ClientError::Server { ref code, .. } if code == "parse"));

        // Placeholders inside string literals are literal text, not params.
        let lit = client.prepare("t(?, \"a?b\")").unwrap();
        assert_eq!(lit.params, 1);

        // EXEC results track the live view across commits.
        client.txn("+e(4, 5)").unwrap();
        assert_eq!(
            client.exec(stmt, "0").unwrap().rows,
            vec!["1", "2", "3", "4", "5"]
        );

        let stats = client.stats().unwrap();
        assert!(stats.prepared_execs >= 7, "stats: {stats:?}");
        handle.shutdown();
    }

    #[test]
    fn repeated_reads_hit_the_reply_cache_until_the_epoch_moves() {
        let handle = serve(tc_engine(4), "127.0.0.1:0", quick_options()).unwrap();
        let mut client = Client::connect(handle.addr()).unwrap();
        let first = client.query("t(0, Y)").unwrap();
        let second = client.query("t(0, Y)").unwrap();
        assert_eq!(first.rows, second.rows);
        assert!(
            client.stats().unwrap().reply_cache_hits >= 1,
            "identical queries in one epoch must share a rendered reply"
        );
        // A commit moves the epoch; the cached reply must NOT be served stale.
        client.txn("+e(4, 5)").unwrap();
        let third = client.query("t(0, Y)").unwrap();
        assert_eq!(third.rows, vec!["1", "2", "3", "4", "5"]);
        handle.shutdown();
    }

    #[test]
    fn query_reconnects_once_after_a_dropped_connection_but_txn_refuses() {
        let handle = serve(tc_engine(3), "127.0.0.1:0", quick_options()).unwrap();

        // QUIT makes the server close this connection while staying up — the
        // cheapest honest stand-in for a broken TCP session.
        let mut client = Client::connect(handle.addr()).unwrap();
        client.send_line("QUIT").unwrap();
        assert_eq!(client.read_reply_line().unwrap(), "OK bye");
        let reply = client.query("t(0, Y)").unwrap();
        assert_eq!(reply.rows, vec!["1", "2", "3"], "query must reconnect");

        // Writes never silently retry: the commit may have landed.
        let mut client = Client::connect(handle.addr()).unwrap();
        client.send_line("QUIT").unwrap();
        assert_eq!(client.read_reply_line().unwrap(), "OK bye");
        let err = client.txn("+e(7, 8)").unwrap_err();
        assert!(
            matches!(err, ClientError::Io(_)),
            "txn on a dropped connection surfaces the I/O error: {err}"
        );
        handle.shutdown();
    }

    #[test]
    fn follower_lag_never_underflows_when_contact_lands_mid_read() {
        let repl = ReplState {
            role: AtomicU8::new(ReplicaRole::Follower.as_u8()),
            term: AtomicU64::new(0),
            last_seq: AtomicU64::new(0),
            leader_seq: AtomicU64::new(0),
            last_contact_ms: AtomicU64::new(0),
            started: Instant::now(),
            lease_timeout: Duration::from_secs(1),
            followers: Mutex::new(HashMap::new()),
            data_dir: None,
            leader_addr: Some("127.0.0.1:1".to_string()),
        };
        // A sync thread hammers the contact stamp while readers compute lag:
        // with the stamp loaded before the elapsed capture, lag can never be
        // a giant underflow and stays bounded by the loop's runtime.
        std::thread::scope(|scope| {
            let writer = scope.spawn(|| {
                let deadline = Instant::now() + Duration::from_millis(120);
                while Instant::now() < deadline {
                    let now = repl.started.elapsed().as_millis() as u64;
                    repl.last_contact_ms.store(now, Ordering::Release);
                }
            });
            while !writer.is_finished() {
                let lag = ms_since_leader_contact(&repl);
                assert!(
                    lag < 10_000,
                    "lag must track the (sub-second) test duration, got {lag}"
                );
            }
        });
    }

    /// Publish order pins the reply-cache's correctness: the epoch atomic
    /// must never run ahead of the readable view, or a reply rendered from
    /// the old view could be cached under the new epoch and served stale for
    /// the rest of that epoch (breaking read-your-writes after a TXN ack).
    #[test]
    fn publish_never_lets_the_epoch_atomic_run_ahead_of_the_view() {
        let handle = serve(tc_engine(2), "127.0.0.1:0", quick_options()).unwrap();
        let shared = handle.shared.clone();
        let stop = Arc::new(AtomicBool::new(false));
        let observer = {
            let shared = shared.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                while !stop.load(Ordering::Acquire) {
                    let epoch = shared.epoch.load(Ordering::Acquire);
                    let view = shared.current_view();
                    assert!(
                        view.epoch >= epoch,
                        "observed view at epoch {} behind the epoch atomic ({epoch}): \
                         a reply rendered now could be cached under an epoch it \
                         does not reflect",
                        view.epoch
                    );
                }
            })
        };
        let mut client = Client::connect(handle.addr()).unwrap();
        for i in 0..100 {
            client
                .txn(&format!("+e({}, {})", 500 + i, 501 + i))
                .unwrap();
        }
        stop.store(true, Ordering::Release);
        observer.join().expect("no stale-epoch observation");
        handle.shutdown();
    }

    #[test]
    fn prepare_statement_rejects_placeholders_outside_term_positions() {
        assert!(prepare_statement("t(?, Y)").is_ok());
        assert!(prepare_statement("t(??, Y)").is_err(), "?? is not a term");
        assert!(prepare_statement("?(X, Y)").is_err(), "predicate position");
        let stmt = prepare_statement("t(?, ?)").unwrap();
        assert_eq!(stmt.params.len(), 2);
        let bound = bind_prepared(&stmt, "1, 2").unwrap();
        assert_eq!(bound.atom.terms.len(), 2);
        assert!(bound.atom.terms.iter().all(|t| !t.is_var()));
        assert!(bind_prepared(&stmt, "1").is_err(), "arity mismatch");
    }
}
