//! The append-only transaction log behind durable sessions: versioned binary
//! framing with a per-record length prefix and CRC-32 checksum, written through an
//! fsync'ing writer with an injectable fault point so crash-recovery tests can kill
//! the writer at any byte offset.
//!
//! # On-disk format
//!
//! ```text
//! file   := header record*
//! header := "FLOGWAL1"                          (8 bytes, format version 1)
//! record := len:u32le crc:u32le payload         (crc = CRC-32/IEEE of payload)
//!
//! payload := kind:u8 seq:u64le body
//!   kind 1 (txn)    body := nops:u32le op*
//!                   op   := polarity:u8 pred:str arity:u16le const{arity}
//!                   const := 0x00 i64le | 0x01 str
//!   kind 2 (source) body := str                  (Datalog text absorbed verbatim)
//!   str  := len:u32le utf8-bytes
//! ```
//!
//! Every record carries a monotonically increasing sequence number. Snapshots
//! record the sequence they include (see the `durability` module), so a log tail
//! that survives a crashed compaction is replayed only from the first record the
//! snapshot does *not* already contain — records are applied at most once no matter
//! where a crash lands.
//!
//! # Recovery contract
//!
//! [`read_log`] scans from the start and stops at the first record whose length
//! prefix overruns the file, whose CRC mismatches, or whose payload fails to
//! decode. Everything before that point is returned; everything at and after it is
//! the *torn tail* — the bytes a crashed writer left behind — which
//! [`recover_log`] truncates away so the log is append-ready again. A torn write
//! can therefore lose only the record being written at the moment of the crash,
//! never a previously synced one.

use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use factorlog_datalog::ast::Const;
use factorlog_datalog::symbol::Symbol;

/// Magic bytes opening every log file: identifies the file *and* its format
/// version (`FLOGWAL1` = framing version 1).
pub const WAL_MAGIC: &[u8; 8] = b"FLOGWAL1";

/// Hard ceiling on one record's payload (sanity bound during scans: a corrupt
/// length prefix must not provoke a multi-gigabyte allocation).
pub const MAX_RECORD_BYTES: u32 = 1 << 28;

/// Errors raised by the log layer.
#[derive(Debug)]
pub enum WalError {
    /// An underlying filesystem operation failed.
    Io(std::io::Error),
    /// The file exists but does not open with the `FLOGWAL1` header.
    BadHeader(PathBuf),
    /// A record failed to decode *before* the scan's stop point (only raised by
    /// strict decoding paths; tail scans turn this into truncation instead).
    Corrupt(String),
    /// The injected fault point fired: the writer "crashed" mid-write, leaving a
    /// torn tail behind. Test-harness only; never raised in production configs.
    Injected {
        /// Bytes of the in-flight record that reached the file before the crash.
        written: usize,
    },
    /// The record exceeds [`MAX_RECORD_BYTES`]; nothing was written (recovery
    /// would refuse to read such a record, so acknowledging it would lose it —
    /// and everything after it — at the next open).
    TooLarge {
        /// Encoded payload size of the rejected record.
        bytes: usize,
    },
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal i/o error: {e}"),
            WalError::BadHeader(path) => {
                write!(f, "{} is not a factorlog wal (bad header)", path.display())
            }
            WalError::Corrupt(message) => write!(f, "corrupt wal record: {message}"),
            WalError::Injected { written } => {
                write!(f, "injected wal fault after {written} byte(s)")
            }
            WalError::TooLarge { bytes } => write!(
                f,
                "record of {bytes} bytes exceeds the {MAX_RECORD_BYTES} byte record limit"
            ),
        }
    }
}

impl std::error::Error for WalError {}

impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> Self {
        WalError::Io(e)
    }
}

/// CRC-32 (IEEE 802.3, the zlib/PNG polynomial), table-driven.
fn crc32_table() -> &'static [u32; 256] {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ 0xEDB8_8320
                } else {
                    crc >> 1
                };
            }
            *slot = crc;
        }
        table
    })
}

/// CRC-32 checksum of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let table = crc32_table();
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ table[((crc ^ b as u32) & 0xFF) as usize];
    }
    crc ^ 0xFFFF_FFFF
}

/// Polarity of one logged operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WalOp {
    /// The fact was asserted.
    Assert,
    /// The fact was retracted.
    Retract,
}

/// One decoded log record.
#[derive(Clone, Debug, PartialEq)]
pub enum WalRecord {
    /// A committed transaction batch: the operations exactly as the caller queued
    /// them (pre-routing predicate names — replay re-derives IDB assertion routing
    /// and exit rules deterministically).
    Txn {
        /// This record's sequence number.
        seq: u64,
        /// The batch, in queue order.
        ops: Vec<(WalOp, Symbol, Vec<Const>)>,
    },
    /// Datalog source text absorbed into the session (rule registrations and bulk
    /// fact loads), replayed verbatim through the parser.
    Source {
        /// This record's sequence number.
        seq: u64,
        /// The absorbed text.
        text: String,
    },
}

impl WalRecord {
    /// The record's sequence number.
    pub fn seq(&self) -> u64 {
        match self {
            WalRecord::Txn { seq, .. } | WalRecord::Source { seq, .. } => *seq,
        }
    }

    /// Encode the record payload (everything the CRC covers).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            WalRecord::Txn { seq, ops } => {
                out.push(1u8);
                out.extend_from_slice(&seq.to_le_bytes());
                out.extend_from_slice(&(ops.len() as u32).to_le_bytes());
                for (op, predicate, tuple) in ops {
                    out.push(match op {
                        WalOp::Assert => 0u8,
                        WalOp::Retract => 1u8,
                    });
                    encode_str(&mut out, predicate.as_str());
                    out.extend_from_slice(&(tuple.len() as u16).to_le_bytes());
                    for value in tuple {
                        match value {
                            Const::Int(i) => {
                                out.push(0u8);
                                out.extend_from_slice(&i.to_le_bytes());
                            }
                            Const::Sym(s) => {
                                out.push(1u8);
                                encode_str(&mut out, s.as_str());
                            }
                        }
                    }
                }
            }
            WalRecord::Source { seq, text } => {
                out.push(2u8);
                out.extend_from_slice(&seq.to_le_bytes());
                encode_str(&mut out, text);
            }
        }
        out
    }

    /// Decode one record payload. Any framing violation is an error (the caller
    /// decides whether that means corruption or a torn tail).
    pub fn decode(payload: &[u8]) -> Result<WalRecord, WalError> {
        let mut cursor = Cursor::new(payload);
        let kind = cursor.u8()?;
        let seq = cursor.u64()?;
        let record = match kind {
            1 => {
                let nops = cursor.u32()? as usize;
                if nops > payload.len() {
                    return Err(WalError::Corrupt(format!(
                        "op count {nops} exceeds payload size"
                    )));
                }
                let mut ops = Vec::with_capacity(nops);
                for _ in 0..nops {
                    let op = match cursor.u8()? {
                        0 => WalOp::Assert,
                        1 => WalOp::Retract,
                        other => return Err(WalError::Corrupt(format!("unknown op tag {other}"))),
                    };
                    let predicate = Symbol::intern(cursor.str()?);
                    let arity = cursor.u16()? as usize;
                    let mut tuple = Vec::with_capacity(arity);
                    for _ in 0..arity {
                        tuple.push(match cursor.u8()? {
                            0 => Const::Int(cursor.i64()?),
                            1 => Const::Sym(Symbol::intern(cursor.str()?)),
                            other => {
                                return Err(WalError::Corrupt(format!("unknown const tag {other}")))
                            }
                        });
                    }
                    ops.push((op, predicate, tuple));
                }
                WalRecord::Txn { seq, ops }
            }
            2 => WalRecord::Source {
                seq,
                text: cursor.str()?.to_string(),
            },
            other => return Err(WalError::Corrupt(format!("unknown record kind {other}"))),
        };
        if !cursor.at_end() {
            return Err(WalError::Corrupt("trailing bytes in record".to_string()));
        }
        Ok(record)
    }
}

fn encode_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

/// A bounds-checked byte reader over one record payload.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Cursor<'a> {
        Cursor { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WalError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.bytes.len())
            .ok_or_else(|| WalError::Corrupt("record truncated mid-field".to_string()))?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, WalError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WalError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, WalError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, WalError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn i64(&mut self) -> Result<i64, WalError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn str(&mut self) -> Result<&'a str, WalError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        std::str::from_utf8(bytes)
            .map_err(|_| WalError::Corrupt("string field is not utf-8".to_string()))
    }

    fn at_end(&self) -> bool {
        self.pos == self.bytes.len()
    }
}

/// A crash-injection point for the log writer: after `budget` more bytes reach the
/// file, every further byte is dropped and the write reports [`WalError::Injected`]
/// — exactly what a process killed mid-`write(2)` leaves on disk. Budgets at record
/// boundaries simulate kills between commits; budgets inside a record simulate torn
/// writes.
///
/// Defined in the shared `factorlog_datalog::fault` module since the engine-wide
/// chaos harness landed; re-exported here where the WAL's crash-injection tests
/// have always found it.
pub use factorlog_datalog::fault::FaultPoint;

/// The append side of the log: owns the file handle, tracks the append offset, and
/// optionally fsyncs after every record.
pub struct WalWriter {
    path: PathBuf,
    file: File,
    /// Bytes of valid log currently on disk (header included).
    len: u64,
    /// fsync after every append (disable only for tests and throughput benches —
    /// without it, the durability guarantee weakens to "whatever the OS flushed").
    fsync: bool,
    fault: Option<FaultPoint>,
    /// Set after an injected fault: the writer is unusable (as a crashed process
    /// would be) and every further append fails.
    poisoned: bool,
    /// Wall time of the fsync inside the most recent successful [`append`]
    /// (`WalWriter::append`); `None` when that append did not fsync. Read by the
    /// engine's tracing layer to feed the `wal_fsync` latency histogram.
    last_fsync_ns: Option<u64>,
}

impl WalWriter {
    /// Create a fresh, empty log at `path` (truncating any existing file) and write
    /// the header.
    pub fn create(path: impl Into<PathBuf>, fsync: bool) -> Result<WalWriter, WalError> {
        let path = path.into();
        let mut file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&path)?;
        file.write_all(WAL_MAGIC)?;
        if fsync {
            file.sync_data()?;
        }
        Ok(WalWriter {
            path,
            file,
            len: WAL_MAGIC.len() as u64,
            fsync,
            fault: None,
            poisoned: false,
            last_fsync_ns: None,
        })
    }

    /// Open an existing log for appending at `valid_len` (as reported by
    /// [`read_log`]), truncating anything after it — the torn tail of a crashed
    /// writer.
    pub fn open_append(
        path: impl Into<PathBuf>,
        valid_len: u64,
        fsync: bool,
    ) -> Result<WalWriter, WalError> {
        let path = path.into();
        let mut file = OpenOptions::new().read(true).write(true).open(&path)?;
        file.set_len(valid_len)?;
        file.seek(SeekFrom::Start(valid_len))?;
        if fsync {
            file.sync_data()?;
        }
        Ok(WalWriter {
            path,
            file,
            len: valid_len,
            fsync,
            fault: None,
            poisoned: false,
            last_fsync_ns: None,
        })
    }

    /// The log file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Bytes of valid log on disk (header included).
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Is the log empty (header only)?
    pub fn is_empty(&self) -> bool {
        self.len <= WAL_MAGIC.len() as u64
    }

    /// Arm (or disarm) the crash-injection point. Test harness only.
    pub fn set_fault(&mut self, fault: Option<FaultPoint>) {
        self.fault = fault;
    }

    /// Did an earlier append fail mid-write, leaving the writer unusable (as a
    /// crashed process would be)? A poisoned writer rejects every further
    /// append; reopening the directory recovers (the torn tail is truncated).
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// Wall time, in nanoseconds, of the fsync performed by the most recent
    /// successful [`append`](WalWriter::append) — `None` when that append ran
    /// with fsync disabled. Always measured (one clock pair per append, noise
    /// next to the fsync itself); the engine samples it into the `wal_fsync`
    /// histogram only while tracing.
    pub fn last_fsync_ns(&self) -> Option<u64> {
        self.last_fsync_ns
    }

    /// Write `bytes` through the fault point: persists as much as the remaining
    /// budget allows, then reports the injected crash.
    fn write_through_fault(&mut self, bytes: &[u8]) -> Result<(), WalError> {
        match &mut self.fault {
            None => {
                self.file.write_all(bytes)?;
                Ok(())
            }
            Some(fault) => {
                let allowed = (fault.budget.min(bytes.len() as u64)) as usize;
                self.file.write_all(&bytes[..allowed])?;
                fault.budget -= allowed as u64;
                if allowed < bytes.len() {
                    // Crash mid-write: flush what made it to the file (a real crash
                    // can persist any prefix; syncing the partial write makes the
                    // test deterministic) and poison the writer.
                    self.file.sync_data().ok();
                    self.poisoned = true;
                    Err(WalError::Injected { written: allowed })
                } else {
                    Ok(())
                }
            }
        }
    }

    /// Append one record: length prefix, CRC, payload, then (when enabled) fsync.
    /// On success the record is durable. On an error the writer first tries to
    /// truncate the file back to the last durable record so the append can simply
    /// be retried; if even that fails, the writer poisons itself (every further
    /// append errors) — otherwise a retry would land after the torn bytes and be
    /// silently discarded by the next recovery scan.
    pub fn append(&mut self, record: &WalRecord) -> Result<(), WalError> {
        if self.poisoned {
            return Err(WalError::Injected { written: 0 });
        }
        let payload = record.encode();
        if payload.len() as u64 > MAX_RECORD_BYTES as u64 {
            // Nothing was written: the commit aborts cleanly instead of
            // acknowledging a record the recovery scan would refuse to read.
            return Err(WalError::TooLarge {
                bytes: payload.len(),
            });
        }
        let mut frame = Vec::with_capacity(8 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        self.last_fsync_ns = None;
        let result = self.write_through_fault(&frame).and_then(|()| {
            if self.fsync {
                let start = std::time::Instant::now();
                self.file.sync_data()?;
                self.last_fsync_ns = Some(start.elapsed().as_nanos() as u64);
            }
            Ok(())
        });
        if let Err(error) = result {
            if !matches!(error, WalError::Injected { .. }) {
                // A real I/O failure (full disk, failed sync): roll the file back
                // to the last durable record, or poison the writer if we cannot.
                let rolled_back = self
                    .file
                    .set_len(self.len)
                    .and_then(|()| self.file.seek(SeekFrom::Start(self.len)).map(|_| ()))
                    .is_ok();
                if !rolled_back {
                    self.poisoned = true;
                }
            }
            return Err(error);
        }
        self.len += frame.len() as u64;
        Ok(())
    }

    /// Append a batch of records under a single fsync (group commit): every
    /// frame is written, then one `sync_data` makes the whole batch durable at
    /// once. All-or-nothing: on any error the file is rolled back to its length
    /// before the batch (poisoning the writer if the rollback itself fails), so
    /// no record of a failed group is ever acknowledged or replayed. An empty
    /// batch is a no-op.
    pub fn append_all(&mut self, records: &[WalRecord]) -> Result<(), WalError> {
        if records.is_empty() {
            return Ok(());
        }
        if self.poisoned {
            return Err(WalError::Injected { written: 0 });
        }
        let mut frames = Vec::new();
        for record in records {
            let payload = record.encode();
            if payload.len() as u64 > MAX_RECORD_BYTES as u64 {
                // Nothing has been written yet: the whole group aborts cleanly.
                return Err(WalError::TooLarge {
                    bytes: payload.len(),
                });
            }
            frames.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            frames.extend_from_slice(&crc32(&payload).to_le_bytes());
            frames.extend_from_slice(&payload);
        }
        self.last_fsync_ns = None;
        let result = self.write_through_fault(&frames).and_then(|()| {
            if self.fsync {
                let start = std::time::Instant::now();
                self.file.sync_data()?;
                self.last_fsync_ns = Some(start.elapsed().as_nanos() as u64);
            }
            Ok(())
        });
        if let Err(error) = result {
            if !matches!(error, WalError::Injected { .. }) {
                let rolled_back = self
                    .file
                    .set_len(self.len)
                    .and_then(|()| self.file.seek(SeekFrom::Start(self.len)).map(|_| ()))
                    .is_ok();
                if !rolled_back {
                    self.poisoned = true;
                }
            }
            return Err(error);
        }
        self.len += frames.len() as u64;
        Ok(())
    }

    /// Force an fsync now (used once at the end of unsynced bulk phases).
    pub fn sync(&mut self) -> Result<(), WalError> {
        self.file.sync_data()?;
        Ok(())
    }
}

/// The result of scanning a log file.
#[derive(Debug)]
pub struct LogScan {
    /// Every intact record, in file order.
    pub records: Vec<WalRecord>,
    /// Byte length of the valid prefix (header + intact records). Appending resumes
    /// here; everything beyond is the torn tail.
    pub valid_len: u64,
    /// Bytes beyond `valid_len` found in the file — non-zero exactly when a torn or
    /// corrupt tail was detected.
    pub torn_bytes: u64,
}

/// A pull-based iterator over the intact records of a log file, in file order,
/// with exactly [`read_log`]'s stop rules: the iterator ends at the first record
/// whose length prefix overruns the file, whose CRC mismatches, whose payload
/// fails to decode, or whose sequence number does not increase — everything at
/// and beyond that point is the torn tail.
///
/// This is the streaming primitive replication is built on: the leader's
/// subscription handler walks frames from disk without materializing the whole
/// log, and [`read_frames_from`] layers sequence filtering and batching on top.
pub struct FrameIter {
    bytes: Vec<u8>,
    /// Byte offset validity has been confirmed up to (the next frame starts here).
    pos: usize,
    last_seq: Option<u64>,
    stopped: bool,
}

impl FrameIter {
    /// Open `path` for frame iteration. A missing file iterates as empty; a
    /// partial-magic prefix (crash during log creation) iterates as empty with
    /// the partial header counted as torn; any other leading bytes are a
    /// [`WalError::BadHeader`].
    pub fn open(path: &Path) -> Result<FrameIter, WalError> {
        let bytes = match std::fs::read(path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e.into()),
        };
        if bytes.len() < WAL_MAGIC.len() {
            if !bytes.is_empty() && !WAL_MAGIC.starts_with(&bytes) {
                return Err(WalError::BadHeader(path.to_path_buf()));
            }
            // Empty/missing, or a crash during `create` left a partial header:
            // an empty log whose whole content (if any) is torn.
            return Ok(FrameIter {
                bytes,
                pos: 0,
                last_seq: None,
                stopped: true,
            });
        }
        if bytes[..WAL_MAGIC.len()] != *WAL_MAGIC {
            return Err(WalError::BadHeader(path.to_path_buf()));
        }
        Ok(FrameIter {
            bytes,
            pos: WAL_MAGIC.len(),
            last_seq: None,
            stopped: false,
        })
    }

    /// Byte length of the valid prefix walked so far (header + intact records).
    /// Once the iterator is exhausted this is [`LogScan::valid_len`].
    pub fn valid_len(&self) -> u64 {
        self.pos as u64
    }

    /// Bytes beyond the current position — once exhausted, the torn tail size.
    pub fn torn_bytes(&self) -> u64 {
        (self.bytes.len() - self.pos) as u64
    }
}

impl Iterator for FrameIter {
    type Item = WalRecord;

    fn next(&mut self) -> Option<WalRecord> {
        if self.stopped {
            return None;
        }
        // Anything that fails from here on is a torn/corrupt tail: stop without
        // advancing, so `valid_len` reports the intact prefix.
        let bytes = &self.bytes;
        let pos = self.pos;
        if pos + 8 > bytes.len() {
            self.stopped = true;
            return None;
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap());
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap());
        if len > MAX_RECORD_BYTES {
            self.stopped = true;
            return None;
        }
        let start = pos + 8;
        let Some(end) = start
            .checked_add(len as usize)
            .filter(|&e| e <= bytes.len())
        else {
            self.stopped = true;
            return None;
        };
        let payload = &bytes[start..end];
        if crc32(payload) != crc {
            self.stopped = true;
            return None;
        }
        let Ok(record) = WalRecord::decode(payload) else {
            self.stopped = true;
            return None;
        };
        // Sequence numbers must increase; a stale or replayed block means the
        // tail is not trustworthy.
        if self.last_seq.is_some_and(|last| record.seq() <= last) {
            self.stopped = true;
            return None;
        }
        self.last_seq = Some(record.seq());
        self.pos = end;
        Some(record)
    }
}

/// Scan a log file from the start, returning every intact record and the byte
/// offset where validity ends. A missing file scans as empty. A file whose header
/// is a proper prefix of the magic (a crash during log creation) scans as empty
/// with the partial header counted as torn. Any other leading bytes are a
/// [`WalError::BadHeader`] — that file is not a factorlog log, and truncating it
/// would destroy someone else's data.
pub fn read_log(path: &Path) -> Result<LogScan, WalError> {
    let mut iter = FrameIter::open(path)?;
    let records: Vec<WalRecord> = iter.by_ref().collect();
    Ok(LogScan {
        records,
        valid_len: iter.valid_len(),
        torn_bytes: iter.torn_bytes(),
    })
}

/// The result of a sequence-filtered, batched frame read (see
/// [`read_frames_from`]).
#[derive(Debug, Default)]
pub struct FrameRead {
    /// The intact records with `seq >= from_seq`, in file order, capped at the
    /// requested batch size.
    pub frames: Vec<WalRecord>,
    /// Sequence number of the first returned frame (`None` when none matched).
    /// A value *greater* than the requested `from_seq` means the log no longer
    /// reaches back that far — the caller's position predates this log (e.g. a
    /// compaction reset it) and a snapshot bootstrap is needed.
    pub first_seq: Option<u64>,
    /// Sequence number of the last intact record in the *whole* log — the
    /// publisher's current position, regardless of the batch cap.
    pub last_seq: Option<u64>,
    /// Did the batch cap cut the read short (more matching frames remain)?
    pub truncated: bool,
}

/// Read the intact records with `seq >= from_seq`, at most `max_frames` of
/// them, plus the log's overall last sequence number. The streaming read under
/// the leader's `REPL SUBSCRIBE` handler: a follower at position `from_seq - 1`
/// asks for everything from `from_seq` on, in publisher-bounded batches.
/// Shares [`read_log`]'s header and torn-tail handling.
pub fn read_frames_from(
    path: &Path,
    from_seq: u64,
    max_frames: usize,
) -> Result<FrameRead, WalError> {
    let iter = FrameIter::open(path)?;
    let mut read = FrameRead::default();
    for record in iter {
        read.last_seq = Some(record.seq());
        if record.seq() < from_seq {
            continue;
        }
        if read.frames.len() >= max_frames {
            // Keep walking for `last_seq` (the lag signal) but ship no more.
            read.truncated = true;
            continue;
        }
        if read.first_seq.is_none() {
            read.first_seq = Some(record.seq());
        }
        read.frames.push(record);
    }
    Ok(read)
}

/// Scan `path` and truncate its torn tail (if any), returning the scan and a
/// writer positioned to append after the last intact record. A missing file is
/// created fresh.
pub fn recover_log(path: &Path, fsync: bool) -> Result<(LogScan, WalWriter), WalError> {
    let scan = read_log(path)?;
    let writer = if scan.valid_len < WAL_MAGIC.len() as u64 {
        // Missing file, or a partial header from a crashed create: start fresh.
        WalWriter::create(path, fsync)?
    } else {
        WalWriter::open_append(path, scan.valid_len, fsync)?
    };
    Ok((scan, writer))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        static COUNTER: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
        let n = COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "factorlog_wal_{tag}_{}_{n}.log",
            std::process::id()
        ))
    }

    fn sample_txn(seq: u64) -> WalRecord {
        WalRecord::Txn {
            seq,
            ops: vec![
                (
                    WalOp::Assert,
                    Symbol::intern("e"),
                    vec![Const::Int(seq as i64), Const::Int(seq as i64 + 1)],
                ),
                (
                    WalOp::Retract,
                    Symbol::intern("label"),
                    vec![Const::sym("blue metal")],
                ),
            ],
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard check value of CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn records_round_trip_through_encoding() {
        for record in [
            sample_txn(7),
            WalRecord::Source {
                seq: 9,
                text: "t(X, Y) :- e(X, Y).\ne(1, 2).".to_string(),
            },
            WalRecord::Txn {
                seq: 1,
                ops: vec![],
            },
        ] {
            let decoded = WalRecord::decode(&record.encode()).unwrap();
            assert_eq!(decoded, record);
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(WalRecord::decode(&[]).is_err());
        assert!(WalRecord::decode(&[9, 0, 0, 0, 0, 0, 0, 0, 0]).is_err());
        // Valid record with trailing junk.
        let mut bytes = sample_txn(3).encode();
        bytes.push(0);
        assert!(WalRecord::decode(&bytes).is_err());
    }

    #[test]
    fn write_then_read_round_trips() {
        let path = temp_path("roundtrip");
        let mut writer = WalWriter::create(&path, true).unwrap();
        for seq in 1..=5 {
            writer.append(&sample_txn(seq)).unwrap();
        }
        let scan = read_log(&path).unwrap();
        assert_eq!(scan.records.len(), 5);
        assert_eq!(scan.torn_bytes, 0);
        assert_eq!(scan.valid_len, writer.len());
        assert_eq!(scan.records[2], sample_txn(3));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_detected_and_truncated_at_every_offset() {
        // Build a 3-record log, then truncate at every byte offset: the scan must
        // recover exactly the records whose frames fit the prefix.
        let path = temp_path("torn");
        let mut writer = WalWriter::create(&path, false).unwrap();
        let mut boundaries = vec![writer.len()];
        for seq in 1..=3 {
            writer.append(&sample_txn(seq)).unwrap();
            boundaries.push(writer.len());
        }
        drop(writer);
        let full = std::fs::read(&path).unwrap();
        for cut in (WAL_MAGIC.len() as u64)..=(full.len() as u64) {
            std::fs::write(&path, &full[..cut as usize]).unwrap();
            let scan = read_log(&path).unwrap();
            let expect_records = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
            assert_eq!(
                scan.records.len(),
                expect_records,
                "truncation at byte {cut}"
            );
            assert_eq!(scan.valid_len, boundaries[expect_records]);
            assert_eq!(scan.torn_bytes, cut - boundaries[expect_records]);
            // And recovery truncates + appends cleanly from there.
            let (_, mut recovered) = recover_log(&path, false).unwrap();
            recovered.append(&sample_txn(99)).unwrap();
            let rescan = read_log(&path).unwrap();
            assert_eq!(rescan.records.len(), expect_records + 1);
            assert_eq!(rescan.torn_bytes, 0);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_byte_invalidates_the_record_and_everything_after() {
        let path = temp_path("corrupt");
        let mut writer = WalWriter::create(&path, false).unwrap();
        let mut boundaries = vec![writer.len()];
        for seq in 1..=3 {
            writer.append(&sample_txn(seq)).unwrap();
            boundaries.push(writer.len());
        }
        drop(writer);
        let full = std::fs::read(&path).unwrap();
        // Flip one byte inside record 2 (its CRC no longer matches): records 2 and 3
        // are both dropped — after a bad record nothing downstream is trustworthy.
        let mut bytes = full.clone();
        let target = boundaries[1] as usize + 12;
        bytes[target] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let scan = read_log(&path).unwrap();
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.valid_len, boundaries[1]);
        assert!(scan.torn_bytes > 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fault_point_tears_the_write_at_the_configured_byte() {
        let path = temp_path("fault");
        let record = sample_txn(1);
        let frame_len = record.encode().len() as u64 + 8;
        for budget in 0..frame_len {
            let mut writer = WalWriter::create(&path, false).unwrap();
            writer.append(&record).unwrap();
            writer.set_fault(Some(FaultPoint { budget }));
            let err = writer.append(&sample_txn(2)).unwrap_err();
            assert!(matches!(err, WalError::Injected { .. }), "budget {budget}");
            // The writer is poisoned, like a dead process.
            assert!(matches!(
                writer.append(&sample_txn(3)),
                Err(WalError::Injected { .. })
            ));
            drop(writer);
            // On disk: record 1 intact, record 2 torn at `budget` bytes.
            let scan = read_log(&path).unwrap();
            assert_eq!(scan.records.len(), 1, "budget {budget}");
            assert_eq!(scan.torn_bytes, budget);
        }
        // A budget covering the whole frame lets the append through.
        let mut writer = WalWriter::create(&path, false).unwrap();
        writer.set_fault(Some(FaultPoint { budget: frame_len }));
        writer.append(&record).unwrap();
        assert_eq!(read_log(&path).unwrap().records.len(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn append_all_groups_records_under_one_sync() {
        let path = temp_path("group");
        let mut writer = WalWriter::create(&path, true).unwrap();
        writer.append(&sample_txn(1)).unwrap();
        writer
            .append_all(&[sample_txn(2), sample_txn(3), sample_txn(4)])
            .unwrap();
        writer.append_all(&[]).unwrap(); // no-op
        let scan = read_log(&path).unwrap();
        assert_eq!(scan.records.len(), 4);
        assert_eq!(scan.torn_bytes, 0);
        assert_eq!(scan.valid_len, writer.len());
        assert_eq!(scan.records[3], sample_txn(4));
        // The single group fsync is timed like a plain append's.
        assert!(writer.last_fsync_ns().is_some());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn append_all_torn_mid_group_loses_the_whole_suffix_but_keeps_the_prefix() {
        // Tear the group write at every byte offset: recovery keeps exactly the
        // records whose frames fully made it to disk — a torn group commit can
        // lose a suffix of the batch but never reorders or corrupts.
        let path = temp_path("group_fault");
        let batch = [sample_txn(2), sample_txn(3)];
        let batch_len: u64 = batch.iter().map(|r| r.encode().len() as u64 + 8).sum();
        let frame2_len = batch[0].encode().len() as u64 + 8;
        for budget in 0..batch_len {
            let mut writer = WalWriter::create(&path, false).unwrap();
            writer.append(&sample_txn(1)).unwrap();
            writer.set_fault(Some(FaultPoint { budget }));
            let err = writer.append_all(&batch).unwrap_err();
            assert!(matches!(err, WalError::Injected { .. }), "budget {budget}");
            assert!(writer.is_poisoned());
            drop(writer);
            let scan = read_log(&path).unwrap();
            let expect = 1 + usize::from(budget >= frame2_len);
            assert_eq!(scan.records.len(), expect, "budget {budget}");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn append_all_rejects_oversized_records_without_writing() {
        let path = temp_path("group_big");
        let mut writer = WalWriter::create(&path, false).unwrap();
        let huge = WalRecord::Source {
            seq: 1,
            text: "x".repeat(MAX_RECORD_BYTES as usize + 1),
        };
        let before = writer.len();
        assert!(matches!(
            writer.append_all(&[sample_txn(1), huge]),
            Err(WalError::TooLarge { .. })
        ));
        assert_eq!(writer.len(), before, "nothing from the group is written");
        assert!(!writer.is_poisoned());
        writer.append_all(&[sample_txn(1)]).unwrap();
        assert_eq!(read_log(&path).unwrap().records.len(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_scans_empty_and_bad_header_is_rejected() {
        let path = temp_path("missing");
        let scan = read_log(&path).unwrap();
        assert!(scan.records.is_empty());
        assert_eq!(scan.valid_len, 0);

        std::fs::write(&path, b"definitely not a wal").unwrap();
        assert!(matches!(read_log(&path), Err(WalError::BadHeader(_))));

        // A partial header (crashed create) recovers to a fresh log.
        std::fs::write(&path, &WAL_MAGIC[..4]).unwrap();
        let scan = read_log(&path).unwrap();
        assert!(scan.records.is_empty());
        assert_eq!(scan.torn_bytes, 4);
        let (_, mut writer) = recover_log(&path, false).unwrap();
        writer.append(&sample_txn(1)).unwrap();
        assert_eq!(read_log(&path).unwrap().records.len(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn frame_iter_handles_empty_and_missing_logs() {
        // Missing file: iterates as empty, nothing valid, nothing torn.
        let path = temp_path("iter_missing");
        let mut iter = FrameIter::open(&path).unwrap();
        assert!(iter.next().is_none());
        assert_eq!(iter.valid_len(), 0);
        assert_eq!(iter.torn_bytes(), 0);
        let read = read_frames_from(&path, 1, 16).unwrap();
        assert!(read.frames.is_empty());
        assert_eq!(read.first_seq, None);
        assert_eq!(read.last_seq, None);
        assert!(!read.truncated);

        // Header-only log: same, but the header counts as valid bytes.
        let writer = WalWriter::create(&path, false).unwrap();
        drop(writer);
        let mut iter = FrameIter::open(&path).unwrap();
        assert!(iter.next().is_none());
        assert_eq!(iter.valid_len(), WAL_MAGIC.len() as u64);
        assert_eq!(iter.torn_bytes(), 0);
        let read = read_frames_from(&path, 1, 16).unwrap();
        assert!(read.frames.is_empty() && read.last_seq.is_none());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn frame_iter_stops_at_a_torn_tail_mid_frame() {
        let path = temp_path("iter_torn");
        let mut writer = WalWriter::create(&path, false).unwrap();
        writer.append(&sample_txn(1)).unwrap();
        writer.append(&sample_txn(2)).unwrap();
        let boundary = writer.len();
        writer.append(&sample_txn(3)).unwrap();
        drop(writer);
        // Cut 5 bytes into record 3's frame: the iterator yields 1 and 2 and
        // reports the torn bytes without touching them.
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..boundary as usize + 5]).unwrap();
        let mut iter = FrameIter::open(&path).unwrap();
        assert_eq!(iter.next().map(|r| r.seq()), Some(1));
        assert_eq!(iter.next().map(|r| r.seq()), Some(2));
        assert!(iter.next().is_none());
        assert_eq!(iter.valid_len(), boundary);
        assert_eq!(iter.torn_bytes(), 5);
        // The streaming read sees the same prefix: last_seq stops before the tear.
        let read = read_frames_from(&path, 2, 16).unwrap();
        assert_eq!(read.frames.len(), 1);
        assert_eq!(read.first_seq, Some(2));
        assert_eq!(read.last_seq, Some(2));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn read_frames_from_at_a_compaction_boundary() {
        // After a compaction the log restarts at a later sequence (say 5..=8).
        let path = temp_path("iter_boundary");
        let mut writer = WalWriter::create(&path, false).unwrap();
        for seq in 5..=8 {
            writer.append(&sample_txn(seq)).unwrap();
        }
        drop(writer);

        // Reading from exactly the first retained sequence returns everything.
        let read = read_frames_from(&path, 5, 16).unwrap();
        assert_eq!(read.frames.len(), 4);
        assert_eq!(read.first_seq, Some(5));
        assert_eq!(read.last_seq, Some(8));
        assert!(!read.truncated);

        // Reading from *before* the boundary reveals the gap: the first frame
        // the log can supply is 5, not the 4 the caller asked for — the caller
        // must bootstrap from a snapshot instead of applying a discontinuity.
        let read = read_frames_from(&path, 4, 16).unwrap();
        assert_eq!(read.first_seq, Some(5));
        assert_eq!(read.frames[0].seq(), 5);

        // Reading from past the end returns no frames but still reports the
        // publisher position.
        let read = read_frames_from(&path, 9, 16).unwrap();
        assert!(read.frames.is_empty());
        assert_eq!(read.first_seq, None);
        assert_eq!(read.last_seq, Some(8));

        // The batch cap truncates without losing the position signal.
        let read = read_frames_from(&path, 5, 2).unwrap();
        assert_eq!(read.frames.len(), 2);
        assert_eq!(read.frames[1].seq(), 6);
        assert_eq!(read.last_seq, Some(8));
        assert!(read.truncated);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn stale_sequence_numbers_stop_the_scan() {
        // A compaction that truncated the log but crashed before finishing could in
        // principle leave an old record after a new one; the scan must refuse to
        // read past a non-increasing sequence.
        let path = temp_path("seq");
        let mut writer = WalWriter::create(&path, false).unwrap();
        writer.append(&sample_txn(5)).unwrap();
        writer.append(&sample_txn(3)).unwrap(); // stale
        drop(writer);
        let scan = read_log(&path).unwrap();
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.records[0].seq(), 5);
        std::fs::remove_file(&path).ok();
    }
}
