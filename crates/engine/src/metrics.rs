//! Engine-level metrics: latency histograms, subsystem spans, and the
//! machine-readable JSON document behind `factorlog repl --metrics-json`.
//!
//! The eval-side profile ([`EvalProfile`]) rides on
//! [`EvalStats`](factorlog_datalog::eval::EvalStats) and accumulates across a
//! session's evaluations; [`EngineMetrics`] holds everything *above* the
//! evaluators — end-to-end query latency, prepared-plan lookup time, optimizer
//! pass times, WAL append/fsync latency, snapshot compaction time. Both are
//! collected only while [`Engine::set_tracing`](crate::Engine::set_tracing) is
//! on; the disabled fast path is one branch on an `Option` per site.
//!
//! # JSON schema (version 3)
//!
//! [`render_metrics_json`] emits a single versioned object, hand-formatted (the
//! workspace is dependency-free):
//!
//! ```text
//! {
//!   "factorlog_metrics_version": 3,
//!   "tracing": bool,
//!   "host": { "cores": n, "threads_configured": n },
//!   "txns_per_fsync": f,
//!   "replication": {"role": "...", "term": n, "applied_seq": n,
//!                   "leader_seq": n, "lag_frames": n} | null,
//!   "server": {"reactor_wakeups": n, "pipelined_batches": n,
//!              "pipelined_requests": n, "max_batch_depth": n,
//!              "prepared_execs": n, "reply_cache_hits": n} | null,
//!   "counters": { <every EvalStats counter>: n, ... },
//!   "phases": { "<phase>": {"count": n, "total_ns": n, "max_ns": n}, ... },
//!   "optimize_passes": { "<pass>": {"count": n, "total_ns": n, "max_ns": n}, ... },
//!   "engine_spans": { "prepared_lookup": {...}, "wal_append": {...}, "compaction": {...} },
//!   "rules": [ {"rule": "...", "firings": n, "time_ns": n, "rows_in": n, "rows_out": n}, ... ],
//!   "histograms": {
//!     "query_latency": {"count": n, "p50_ns": n, "p95_ns": n, "p99_ns": n, "max_ns": n, "total_ns": n},
//!     "wal_fsync":     { same fields }
//!   }
//! }
//! ```
//!
//! Version 2 added `txns_per_fsync` (the measured group-commit batching ratio,
//! `wal_group_txns / wal_group_commits`, 0 before the first commit), the
//! `wal_group_commits`/`wal_group_txns` counters, and the `replication` object
//! (`null` for a session that is not replicating; a replica reports its role,
//! term, and how far behind its leader it is).
//!
//! Version 3 added the `server` object: the event-driven front end's reactor
//! counters (poll-loop wakeups, pipelined batch/request totals, deepest batch,
//! prepared-statement executions, rendered-reply cache hits). `null` for a
//! session that is not serving.
//!
//! `phases` and `rules` come from the accumulated eval profile and are empty
//! when tracing was never enabled; every `*_ns` field is wall-clock nanoseconds.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use factorlog_datalog::ast::Program;
use factorlog_datalog::eval::{EvalProfile, EvalStats, Histogram, SpanStats};

/// Version stamp of the metrics JSON document.
pub const METRICS_JSON_VERSION: u32 = 3;

/// Metrics collected above the evaluators while tracing is enabled: latency
/// histograms and subsystem span timers. See the [module docs](self).
#[derive(Clone, Debug, Default)]
pub struct EngineMetrics {
    /// End-to-end latency of [`Engine::query`](crate::Engine::query) and
    /// [`Engine::query_prepared`](crate::Engine::query_prepared) calls
    /// (refresh/evaluate + answer projection), one sample per call.
    pub query_latency: Histogram,
    /// Prepared-plan cache lookups — rebind time on hits, the full optimizer
    /// pipeline plus compilation on misses.
    pub prepared_lookup: SpanStats,
    /// WAL record appends (encode + frame + write + fsync), one per committed
    /// durable mutation.
    pub wal_append: SpanStats,
    /// The fsync portion of WAL appends alone (zero samples when the session
    /// runs with `fsync` off).
    pub wal_fsync: Histogram,
    /// Snapshot compactions (write temp + fsync + rename + dir fsync + log
    /// reset).
    pub compaction: SpanStats,
    /// Optimizer pass wall time by pass name, accumulated from
    /// [`Optimized::pass_times`](factorlog_core::pipeline::Optimized) on every
    /// prepared-plan miss.
    pub optimize_passes: BTreeMap<&'static str, SpanStats>,
}

impl EngineMetrics {
    /// Fold one pipeline run's per-pass times into the accumulated spans.
    pub fn absorb_pass_times(&mut self, pass_times: &[(&'static str, u64)]) {
        for &(name, ns) in pass_times {
            let span = self.optimize_passes.entry(name).or_default();
            span.count += 1;
            span.total_ns = span.total_ns.saturating_add(ns);
            span.max_ns = span.max_ns.max(ns);
        }
    }
}

/// Escape a string for inclusion in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn span_json(span: &SpanStats) -> String {
    format!(
        "{{\"count\": {}, \"total_ns\": {}, \"max_ns\": {}}}",
        span.count, span.total_ns, span.max_ns
    )
}

fn histogram_json(h: &Histogram) -> String {
    format!(
        "{{\"count\": {}, \"p50_ns\": {}, \"p95_ns\": {}, \"p99_ns\": {}, \"max_ns\": {}, \"total_ns\": {}}}",
        h.count(),
        h.p50_ns(),
        h.p95_ns(),
        h.p99_ns(),
        h.max_ns(),
        h.total_ns()
    )
}

/// Render the versioned metrics JSON document for one session. `tracing` says
/// whether collection is currently enabled; `threads` is the session's
/// configured worker-thread setting ([`EvalOptions::threads`]
/// (factorlog_datalog::eval::EvalOptions), 0 = one per core). The eval-side
/// phase spans and per-rule profiles come from `stats.profile` (rule text is
/// looked up in `program` by rule index); everything else from `metrics`.
/// `replication` is a replica's point-in-time status (`None` renders the
/// `replication` key as `null` — the session is not replicating). `server` is
/// a serving front end's reactor counters (`None` renders the `server` key as
/// `null` — the session is not serving).
pub fn render_metrics_json(
    metrics: &EngineMetrics,
    stats: &EvalStats,
    program: &Program,
    tracing: bool,
    threads: usize,
    replication: Option<&crate::replication::ReplicaStatus>,
    server: Option<&crate::server::ServerMetrics>,
) -> String {
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(
        out,
        "  \"factorlog_metrics_version\": {METRICS_JSON_VERSION},"
    );
    let _ = writeln!(out, "  \"tracing\": {tracing},");
    let _ = writeln!(
        out,
        "  \"host\": {{\"cores\": {cores}, \"threads_configured\": {threads}}},"
    );
    let txns_per_fsync = if stats.wal_group_commits > 0 {
        stats.wal_group_txns as f64 / stats.wal_group_commits as f64
    } else {
        0.0
    };
    let _ = writeln!(out, "  \"txns_per_fsync\": {txns_per_fsync:.2},");
    match replication {
        Some(status) => {
            let _ = writeln!(
                out,
                "  \"replication\": {{\"role\": \"{}\", \"term\": {}, \"applied_seq\": {}, \
                 \"leader_seq\": {}, \"lag_frames\": {}}},",
                status.role, status.term, status.applied_seq, status.leader_seq, status.lag_frames
            );
        }
        None => {
            let _ = writeln!(out, "  \"replication\": null,");
        }
    }
    match server {
        Some(m) => {
            let _ = writeln!(
                out,
                "  \"server\": {{\"reactor_wakeups\": {}, \"pipelined_batches\": {}, \
                 \"pipelined_requests\": {}, \"max_batch_depth\": {}, \"prepared_execs\": {}, \
                 \"reply_cache_hits\": {}}},",
                m.reactor_wakeups,
                m.pipelined_batches,
                m.pipelined_requests,
                m.max_batch_depth,
                m.prepared_execs,
                m.reply_cache_hits
            );
        }
        None => {
            let _ = writeln!(out, "  \"server\": null,");
        }
    }

    let _ = writeln!(out, "  \"counters\": {{");
    let counters: &[(&str, usize)] = &[
        ("iterations", stats.iterations),
        ("inferences", stats.inferences),
        ("duplicates", stats.duplicates),
        ("facts_derived", stats.facts_derived),
        ("plan_cache_hits", stats.plan_cache_hits),
        ("plan_cache_misses", stats.plan_cache_misses),
        ("plan_cache_evictions", stats.plan_cache_evictions),
        ("index_probes", stats.index_probes),
        ("full_scans", stats.full_scans),
        ("membership_checks", stats.membership_checks),
        ("scratch_allocs", stats.scratch_allocs),
        ("literal_reorders", stats.literal_reorders),
        ("parallel_rounds", stats.parallel_rounds),
        ("parallel_firings", stats.parallel_firings),
        ("threads_used", stats.threads_used),
        ("retractions", stats.retractions),
        ("rederivations", stats.rederivations),
        ("delete_rounds", stats.delete_rounds),
        ("wal_appends", stats.wal_appends),
        ("wal_replays", stats.wal_replays),
        ("wal_torn_truncations", stats.wal_torn_truncations),
        ("wal_compactions", stats.wal_compactions),
        ("wal_group_commits", stats.wal_group_commits),
        ("wal_group_txns", stats.wal_group_txns),
    ];
    for (i, (name, value)) in counters.iter().enumerate() {
        let comma = if i + 1 < counters.len() { "," } else { "" };
        let _ = writeln!(out, "    \"{name}\": {value}{comma}");
    }
    out.push_str("  },\n");

    let empty_profile = EvalProfile::default();
    let profile = stats.profile.as_deref().unwrap_or(&empty_profile);
    let _ = writeln!(out, "  \"phases\": {{");
    for (i, (name, span)) in profile.phases.iter().enumerate() {
        let comma = if i + 1 < profile.phases.len() {
            ","
        } else {
            ""
        };
        let _ = writeln!(out, "    \"{name}\": {}{comma}", span_json(span));
    }
    out.push_str("  },\n");

    let _ = writeln!(out, "  \"optimize_passes\": {{");
    for (i, (name, span)) in metrics.optimize_passes.iter().enumerate() {
        let comma = if i + 1 < metrics.optimize_passes.len() {
            ","
        } else {
            ""
        };
        let _ = writeln!(out, "    \"{name}\": {}{comma}", span_json(span));
    }
    out.push_str("  },\n");

    let _ = writeln!(out, "  \"engine_spans\": {{");
    let _ = writeln!(
        out,
        "    \"prepared_lookup\": {},",
        span_json(&metrics.prepared_lookup)
    );
    let _ = writeln!(
        out,
        "    \"wal_append\": {},",
        span_json(&metrics.wal_append)
    );
    let _ = writeln!(
        out,
        "    \"compaction\": {}",
        span_json(&metrics.compaction)
    );
    out.push_str("  },\n");

    let _ = writeln!(out, "  \"rules\": [");
    for (i, rule) in profile.rules.iter().enumerate() {
        let text = program
            .rules
            .get(i)
            .map(|r| json_escape(&r.to_string()))
            .unwrap_or_else(|| format!("rule #{i}"));
        let comma = if i + 1 < profile.rules.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"rule\": \"{text}\", \"firings\": {}, \"time_ns\": {}, \"rows_in\": {}, \"rows_out\": {}}}{comma}",
            rule.firings, rule.time_ns, rule.rows_in, rule.rows_out
        );
    }
    out.push_str("  ],\n");

    let _ = writeln!(out, "  \"histograms\": {{");
    let _ = writeln!(
        out,
        "    \"query_latency\": {},",
        histogram_json(&metrics.query_latency)
    );
    let _ = writeln!(
        out,
        "    \"wal_fsync\": {}",
        histogram_json(&metrics.wal_fsync)
    );
    out.push_str("  }\n");
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("x\ny"), "x\\ny");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn absorb_pass_times_accumulates() {
        let mut m = EngineMetrics::default();
        m.absorb_pass_times(&[("adorn", 10), ("magic", 20)]);
        m.absorb_pass_times(&[("adorn", 30)]);
        assert_eq!(m.optimize_passes["adorn"].count, 2);
        assert_eq!(m.optimize_passes["adorn"].total_ns, 40);
        assert_eq!(m.optimize_passes["adorn"].max_ns, 30);
        assert_eq!(m.optimize_passes["magic"].count, 1);
    }

    #[test]
    fn render_produces_versioned_document_with_required_keys() {
        let mut metrics = EngineMetrics::default();
        metrics.query_latency.record(Duration::from_micros(42));
        metrics.wal_fsync.record(Duration::from_micros(120));
        metrics.absorb_pass_times(&[("adorn", 5)]);
        let stats = EvalStats::default();
        let program = Program::new();
        let text = render_metrics_json(&metrics, &stats, &program, true, 4, None, None);
        for key in [
            "\"factorlog_metrics_version\": 3",
            "\"tracing\": true",
            "\"host\"",
            "\"threads_configured\": 4",
            "\"txns_per_fsync\": 0.00",
            "\"replication\": null",
            "\"server\": null",
            "\"counters\"",
            "\"wal_group_commits\"",
            "\"phases\"",
            "\"optimize_passes\"",
            "\"engine_spans\"",
            "\"rules\"",
            "\"histograms\"",
            "\"query_latency\"",
            "\"wal_fsync\"",
            "\"p50_ns\"",
            "\"p95_ns\"",
            "\"p99_ns\"",
        ] {
            assert!(text.contains(key), "missing {key} in:\n{text}");
        }
        // Balanced braces — a cheap well-formedness check without a parser.
        let opens = text.matches('{').count();
        let closes = text.matches('}').count();
        assert_eq!(opens, closes, "{text}");
    }

    #[test]
    fn render_includes_a_replication_object_for_replicas() {
        let status = crate::replication::ReplicaStatus {
            role: crate::replication::ReplicaRole::Follower,
            term: 3,
            applied_seq: 120,
            leader_seq: 128,
            lag_frames: 8,
            frames_applied: 120,
            bootstraps: 1,
            leader: "127.0.0.1:7070".to_string(),
        };
        let text = render_metrics_json(
            &EngineMetrics::default(),
            &EvalStats::default(),
            &Program::new(),
            false,
            1,
            Some(&status),
            None,
        );
        for key in [
            "\"replication\": {\"role\": \"follower\", \"term\": 3",
            "\"applied_seq\": 120",
            "\"lag_frames\": 8",
        ] {
            assert!(text.contains(key), "missing {key} in:\n{text}");
        }
        assert_eq!(text.matches('{').count(), text.matches('}').count());
    }

    #[test]
    fn render_includes_a_server_object_for_serving_sessions() {
        let server = crate::server::ServerMetrics {
            reactor_wakeups: 17,
            pipelined_batches: 4,
            pipelined_requests: 12,
            max_batch_depth: 5,
            prepared_execs: 3,
            reply_cache_hits: 2,
        };
        let text = render_metrics_json(
            &EngineMetrics::default(),
            &EvalStats::default(),
            &Program::new(),
            false,
            1,
            None,
            Some(&server),
        );
        for key in [
            "\"server\": {\"reactor_wakeups\": 17",
            "\"pipelined_batches\": 4",
            "\"pipelined_requests\": 12",
            "\"max_batch_depth\": 5",
            "\"prepared_execs\": 3",
            "\"reply_cache_hits\": 2",
        ] {
            assert!(text.contains(key), "missing {key} in:\n{text}");
        }
        assert_eq!(text.matches('{').count(), text.matches('}').count());
    }
}
