//! `factorlog-engine`: the persistent incremental runtime.
//!
//! Everything below `factorlog-engine` in the stack is one-shot: parse a program,
//! optimize a query, evaluate from scratch, return. This crate adds the long-lived
//! layer a deductive database needs to serve traffic:
//!
//! * **Sessions** — an [`Engine`] owns a fact store ([`Database`]) plus the registered
//!   rules, and persists across any number of inserts and queries, accumulating
//!   per-session [`EvalStats`] (including prepared-plan cache counters) under a single
//!   set of [`EvalOptions`].
//!
//! * **Incremental view maintenance** — the engine materializes the least model of the
//!   registered program once, then absorbs new EDB facts by *resuming* the semi-naive
//!   fixpoint with the inserted facts as seeded deltas
//!   ([`factorlog_datalog::eval::seminaive_resume`]): only consequences using at least
//!   one new fact are derived, never the whole model. Inserts are buffered and the
//!   model is brought up to date lazily, at the next query, so a burst of inserts
//!   costs one delta round.
//!
//! * **Prepared queries** — [`Engine::query_prepared`] runs the full
//!   `factorlog-core` pipeline (reduce → adorn → magic → factor → §5 optimize) once
//!   per (predicate, query shape), caches the resulting
//!   [`factorlog_core::pipeline::PreparedPlan`] (compiled rules with the magic seed
//!   held as injectable data), and replays it on subsequent calls — including queries
//!   with *different constants* of the same adornment, via sound constant rebinding.
//!   Hits and misses are surfaced through
//!   [`EvalStats::plan_cache_hits`](factorlog_datalog::eval::EvalStats) /
//!   `plan_cache_misses`.
//!
//! * **Crash-safe durability** — [`Engine::open_durable`] binds a session to a data
//!   directory: every committed mutation is appended to a checksummed, fsync'd
//!   write-ahead log ([`wal`]) before it applies, startup recovery loads the newest
//!   snapshot and replays the log tail (truncating torn writes), and the log
//!   compacts into a fresh snapshot — atomically — once it outgrows
//!   [`DurabilityOptions::compact_threshold`]. Derived views are never stored; they
//!   rebuild from the recovered base facts on the first query.
//!
//! * **A served engine** — [`serve`] moves a session behind a line-protocol TCP
//!   front end ([`server`]): any number of reader connections answer queries
//!   lock-free from an atomically swappable materialized view, while a single
//!   writer thread group-commits concurrently submitted transactions under one
//!   WAL fsync, with admission control (overload sheds with a retryable error),
//!   per-request deadlines, and graceful drain-then-cancel shutdown.
//!
//! * **Replication** — [`replication`] ships committed WAL frames from a served
//!   leader to any number of read replicas over the same line protocol
//!   (`REPL SUBSCRIBE`), with snapshot bootstrap when compaction outruns a
//!   lagging follower and lease-based failover (`PROMOTE` after lease expiry;
//!   a superseded ex-leader fences itself and refuses writes).
//!
//! * **A REPL front end** — [`Repl`] interprets the `factorlog repl` command language
//!   (`:load`, `:insert`, `:prepare`, `?- query.`, `:open`, `:compact`, `:stats`, …)
//!   against an engine session; the `factorlog` binary only supplies the I/O loop.
//!
//! # Example
//!
//! ```
//! use factorlog_engine::Engine;
//! use factorlog_datalog::ast::Const;
//! use factorlog_datalog::parser::parse_query;
//!
//! let mut engine = Engine::new();
//! engine
//!     .load_source("t(X, Y) :- e(X, Y).\n t(X, Y) :- e(X, W), t(W, Y).\n e(0, 1).")
//!     .unwrap();
//! let query = parse_query("t(0, Y)").unwrap();
//! assert_eq!(engine.query(&query).unwrap().len(), 1);
//!
//! // Incremental: the new edge extends the materialized closure via a delta round.
//! engine.insert("e", &[Const::Int(1), Const::Int(2)]).unwrap();
//! assert_eq!(engine.query(&query).unwrap().len(), 2);
//!
//! // Prepared: first call compiles the magic/factored plan (miss), second replays it.
//! assert_eq!(engine.query_prepared(&query).unwrap().len(), 2);
//! assert_eq!(engine.query_prepared(&query).unwrap().len(), 2);
//! assert_eq!(engine.stats().plan_cache_hits, 1);
//! assert_eq!(engine.stats().plan_cache_misses, 1);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod durability;
mod engine;
pub mod metrics;
mod reactor;
mod repl;
pub mod replication;
pub mod server;
pub mod wal;

pub use durability::{
    CompactReport, CompactionFault, DurabilityOptions, RecoveryReport, DEFAULT_COMPACT_THRESHOLD,
    LOCK_FILE, SNAPSHOT_FILE, WAL_FILE,
};
pub use engine::{
    is_snapshot_text, Engine, EngineError, LoadSummary, PrepareReport, Snapshot, Txn, TxnSummary,
    DEFAULT_PREPARED_CAPACITY, SNAPSHOT_HEADER, SNAPSHOT_HEADER_PREFIX,
};
pub use metrics::{EngineMetrics, METRICS_JSON_VERSION};
pub use repl::{Repl, ReplAction};
pub use replication::{
    serve_follower, Replica, ReplicaRole, ReplicaStatus, ReplicationOptions, SubscribeReply,
    SyncReport, TERM_FILE,
};
pub use server::{
    serve, Client, ClientError, Prepared, QueryReply, ServeError, ServerHandle, ServerMetrics,
    ServerOptions, ShutdownReport, StatsReply, TxnReply,
};

pub use factorlog_datalog::eval::{EvalError, EvalOptions, EvalStats, LimitReason};
pub use factorlog_datalog::fault::{CancelToken, FaultAction, FaultInjector, FaultSite};
pub use factorlog_datalog::storage::Database;
