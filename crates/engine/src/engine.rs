//! The persistent [`Engine`]: a session that owns facts, rules, a materialized model,
//! and a prepared-query cache.
//!
//! # State machine
//!
//! ```text
//!   insert ──────────────▶ edb (+ model, + pending delta)
//!   add_rules/load ──────▶ program         (model dropped, caches cleared)
//!   query ───────────────▶ refresh: model = fixpoint(program, edb)
//!                            · no model yet   → full semi-naive evaluation
//!                            · pending deltas → seminaive_resume (delta rounds only)
//!                          then answer from the materialized model
//!   query_prepared ──────▶ prepared-plan cache keyed by (predicate, query shape):
//!                            · hit  → replay the cached CompiledProgram
//!                            · miss → reduce→adorn→magic→factor→optimize, cache plan
//! ```
//!
//! All evaluation statistics are merged into one cumulative per-session
//! [`EvalStats`], so `:stats` (REPL) and `--stats` (CLI) report session totals, not
//! the last call.

use std::collections::BTreeSet;
use std::fmt;

use factorlog_core::error::TransformError;
use factorlog_core::pipeline::{optimize_query, PipelineOptions, PreparedPlan, Strategy};
use factorlog_datalog::ast::{Atom, Const, Program, Query, Rule, Term};
use factorlog_datalog::eval::{
    seminaive_evaluate_compiled, seminaive_resume, CompiledProgram, EvalError, EvalOptions,
    EvalStats,
};
use factorlog_datalog::fx::FxHashMap;
use factorlog_datalog::parser::{parse_program, ParseError};
use factorlog_datalog::storage::{Database, Relation};
use factorlog_datalog::symbol::Symbol;

/// Errors surfaced by engine operations.
#[derive(Clone, Debug)]
pub enum EngineError {
    /// Source text failed to parse.
    Parse(ParseError),
    /// Evaluation failed (invalid program or iteration limit).
    Eval(EvalError),
    /// The optimization pipeline rejected a prepared query.
    Transform(TransformError),
    /// An inserted tuple does not match the relation's arity.
    ArityMismatch {
        /// The predicate being inserted into.
        predicate: Symbol,
        /// Arity already established for the predicate.
        expected: usize,
        /// Arity of the offered tuple.
        got: usize,
    },
    /// An inserted atom contains variables.
    NonGroundFact(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Parse(e) => write!(f, "{e}"),
            EngineError::Eval(e) => write!(f, "{e}"),
            EngineError::Transform(e) => write!(f, "{e}"),
            EngineError::ArityMismatch {
                predicate,
                expected,
                got,
            } => write!(
                f,
                "arity mismatch: {predicate} has arity {expected}, tuple has {got}"
            ),
            EngineError::NonGroundFact(atom) => {
                write!(f, "cannot insert non-ground atom {atom} as a fact")
            }
        }
    }
}

impl std::error::Error for EngineError {}

impl From<ParseError> for EngineError {
    fn from(e: ParseError) -> Self {
        EngineError::Parse(e)
    }
}

impl From<EvalError> for EngineError {
    fn from(e: EvalError) -> Self {
        EngineError::Eval(e)
    }
}

impl From<TransformError> for EngineError {
    fn from(e: TransformError) -> Self {
        EngineError::Transform(e)
    }
}

/// What [`Engine::load_source`] did.
#[derive(Clone, Debug, Default)]
pub struct LoadSummary {
    /// Rules added to the registered program.
    pub rules_added: usize,
    /// Facts inserted (new tuples only).
    pub facts_added: usize,
    /// Facts that were already present.
    pub duplicates: usize,
    /// The `?- atom.` query clause of the source, if any.
    pub query: Option<Query>,
}

/// What [`Engine::prepare`] did.
#[derive(Clone, Debug)]
pub struct PrepareReport {
    /// `true` if a cached plan was reused (possibly rebound to new constants).
    pub cached: bool,
    /// Which program the plan embodies (factored vs magic-only).
    pub strategy: Strategy,
}

/// One entry of the prepared-query cache.
#[derive(Clone, Debug)]
struct CachedPlan {
    plan: PreparedPlan,
    strategy: Strategy,
    /// Logical timestamp of the last hit or insertion (LRU eviction order).
    last_used: u64,
}

/// Default bound on the prepared-plan cache (entries), so long-lived REPL sessions
/// cannot grow without bound. Override with [`Engine::set_prepared_capacity`].
pub const DEFAULT_PREPARED_CAPACITY: usize = 256;

/// A persistent session: facts + rules + materialized model + prepared-plan cache.
///
/// See the [crate docs](crate) for the overall design and an example.
pub struct Engine {
    program: Program,
    /// The IDB predicates of `program` (cached; recomputed on rule changes).
    idb: BTreeSet<Symbol>,
    edb: Database,
    /// The materialized least model (EDB ∪ derived IDB), when up to date except for
    /// `pending`.
    model: Option<Database>,
    /// Facts inserted since the model was last brought to a fixpoint, per predicate —
    /// the seed deltas for the next [`seminaive_resume`].
    pending: FxHashMap<Symbol, Relation>,
    /// Compiled plan for the registered (base) program.
    compiled: Option<CompiledProgram>,
    /// Prepared plans keyed by (query predicate, query shape). The shape encodes the
    /// constant/variable pattern *and* which variable positions repeat (`t(X, Y)` and
    /// `t(X, X)` need different plans even though both adorn as `ff`). Bounded to
    /// `prepared_capacity` entries with least-recently-used eviction.
    prepared: FxHashMap<(Symbol, String), CachedPlan>,
    /// Maximum number of cached prepared plans.
    prepared_capacity: usize,
    /// Logical clock driving the LRU order of `prepared`.
    prepared_clock: u64,
    options: EvalOptions,
    pipeline: PipelineOptions,
    stats: EvalStats,
}

/// The cache key shape of a query: `b` for constant positions, a first-occurrence
/// index for variable positions, `,`-separated — so repeated-variable queries get
/// their own plans.
fn query_shape(query: &Query) -> String {
    use std::fmt::Write as _;
    let mut seen: Vec<Symbol> = Vec::new();
    let mut shape = String::new();
    for term in &query.atom.terms {
        match term {
            Term::Const(_) => shape.push_str("b,"),
            Term::Var(v) => {
                let index = seen.iter().position(|s| s == v).unwrap_or_else(|| {
                    seen.push(*v);
                    seen.len() - 1
                });
                let _ = write!(shape, "{index},");
            }
        }
    }
    shape
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new()
    }
}

impl Engine {
    /// A fresh session with default options.
    pub fn new() -> Engine {
        Engine::with_options(EvalOptions::default())
    }

    /// A fresh session with the given evaluation options. The options apply to every
    /// evaluation the session performs (materialization, incremental resumes, and
    /// prepared-plan replays) — they round-trip through the engine rather than being
    /// per-call.
    pub fn with_options(options: EvalOptions) -> Engine {
        Engine {
            program: Program::new(),
            idb: BTreeSet::new(),
            edb: Database::new(),
            model: None,
            pending: FxHashMap::default(),
            compiled: None,
            prepared: FxHashMap::default(),
            prepared_capacity: DEFAULT_PREPARED_CAPACITY,
            prepared_clock: 0,
            options,
            pipeline: PipelineOptions::default(),
            stats: EvalStats::default(),
        }
    }

    /// The session's evaluation options.
    pub fn options(&self) -> &EvalOptions {
        &self.options
    }

    /// Replace the session's evaluation options. Compiled plans depend on them
    /// (builtin handling is baked in at compile time), so all caches and the
    /// materialized model are invalidated.
    pub fn set_options(&mut self, options: EvalOptions) {
        self.options = options;
        self.invalidate();
    }

    /// The session's worker-thread count for partitioned evaluation rounds
    /// (see [`EvalOptions::threads`]: 1 = sequential, 0 = one per available core).
    pub fn threads(&self) -> usize {
        self.options.threads
    }

    /// Set the worker-thread count for every subsequent evaluation this session
    /// performs. Unlike [`Engine::set_options`] this invalidates nothing: compiled
    /// plans are thread-agnostic, and parallel evaluation produces bit-identical
    /// results, so the materialized model and all cached plans stay valid.
    pub fn set_threads(&mut self, threads: usize) {
        self.options.threads = threads;
    }

    /// The pipeline options used to prepare queries.
    pub fn pipeline_options(&self) -> &PipelineOptions {
        &self.pipeline
    }

    /// Replace the pipeline options; drops cached prepared plans.
    pub fn set_pipeline_options(&mut self, pipeline: PipelineOptions) {
        self.pipeline = pipeline;
        self.prepared.clear();
    }

    /// The registered rules.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The extensional facts of the session (inserted facts only, no derived facts).
    pub fn facts(&self) -> &Database {
        &self.edb
    }

    /// Cumulative statistics for every evaluation this session has performed,
    /// including prepared-plan cache hit/miss counters.
    pub fn stats(&self) -> &EvalStats {
        &self.stats
    }

    /// Reset the cumulative statistics (keeps model and caches).
    pub fn reset_stats(&mut self) {
        self.stats = EvalStats::default();
    }

    /// Fold externally computed statistics into this session's cumulative counters
    /// (e.g. an auxiliary evaluation a front end performed on the session's behalf).
    pub fn absorb_stats(&mut self, other: &EvalStats) {
        self.stats.merge(other);
    }

    /// Number of prepared plans currently cached.
    pub fn prepared_count(&self) -> usize {
        self.prepared.len()
    }

    /// The bound on the prepared-plan cache (entries).
    pub fn prepared_capacity(&self) -> usize {
        self.prepared_capacity
    }

    /// Change the bound on the prepared-plan cache. Shrinking below the current size
    /// evicts least-recently-used plans immediately (counted in the session
    /// statistics). A capacity of 0 disables caching entirely.
    pub fn set_prepared_capacity(&mut self, capacity: usize) {
        self.prepared_capacity = capacity;
        self.evict_to_capacity();
    }

    /// Evict least-recently-used plans until the cache fits its capacity.
    fn evict_to_capacity(&mut self) {
        while self.prepared.len() > self.prepared_capacity {
            let Some(oldest) = self
                .prepared
                .iter()
                .min_by_key(|(_, entry)| entry.last_used)
                .map(|(key, _)| key.clone())
            else {
                break;
            };
            self.prepared.remove(&oldest);
            self.stats.plan_cache_evictions += 1;
        }
    }

    /// Number of inserted facts not yet propagated into the materialized model.
    pub fn pending_facts(&self) -> usize {
        self.pending.values().map(Relation::len).sum()
    }

    /// Is the materialized model current (no pending deltas)?
    pub fn is_materialized(&self) -> bool {
        self.model.is_some() && self.pending.values().all(Relation::is_empty)
    }

    fn invalidate(&mut self) {
        self.model = None;
        self.compiled = None;
        self.prepared.clear();
        self.pending.clear();
    }

    /// Register additional rules. Changing the program invalidates the materialized
    /// model and every cached plan (both are program-specific); the facts survive.
    ///
    /// Facts previously inserted under a predicate that now *becomes* IDB migrate to
    /// its assertion relation (see [`Engine::insert`]) so the rewrite pipeline keeps
    /// seeing a purely rule-defined predicate.
    pub fn add_rules(&mut self, rules: Program) {
        if rules.is_empty() {
            return;
        }
        self.program.extend(rules);
        self.invalidate();
        self.idb = self.program.idb_predicates();
        let migrate: Vec<Symbol> = self
            .idb
            .iter()
            .copied()
            .filter(|&p| self.edb.relation(p).is_some_and(|r| !r.is_empty()))
            .collect();
        for predicate in migrate {
            let relation = self
                .edb
                .remove_relation(predicate)
                .expect("relation checked above");
            self.ensure_assertion_rule(predicate, relation.arity());
            self.edb
                .ensure_relation(Self::asserted_symbol(predicate), relation.arity())
                .merge_from(&relation);
        }
    }

    /// The auxiliary EDB relation holding user-asserted facts of an IDB predicate.
    fn asserted_symbol(predicate: Symbol) -> Symbol {
        Symbol::intern(&format!("{predicate}__asserted"))
    }

    /// Ensure the exit rule `p(X0, ..., Xn) :- p__asserted(X0, ..., Xn).` exists, so
    /// asserted facts of the IDB predicate `p` flow through every rewrite (magic,
    /// factoring) instead of bypassing it.
    fn ensure_assertion_rule(&mut self, predicate: Symbol, arity: usize) {
        let alias = Self::asserted_symbol(predicate);
        let already = self.program.rules.iter().any(|r| {
            r.head.predicate == predicate && r.body.len() == 1 && r.body[0].predicate == alias
        });
        if already {
            return;
        }
        let vars: Vec<Term> = (0..arity).map(|i| Term::var(&format!("X{i}"))).collect();
        self.program.push(Rule::new(
            Atom::new(predicate, vars.clone()),
            vec![Atom::new(alias, vars)],
        ));
        self.invalidate();
        self.idb = self.program.idb_predicates();
    }

    /// The arity the session already associates with `predicate`, from (in order) the
    /// fact store, the materialized model, or the registered rules.
    fn expected_arity(&self, predicate: Symbol) -> Option<usize> {
        self.edb
            .relation(predicate)
            .map(Relation::arity)
            .or_else(|| {
                self.model
                    .as_ref()
                    .and_then(|m| m.relation(predicate))
                    .map(Relation::arity)
            })
            .or_else(|| self.program.arity_of(predicate))
    }

    /// Parse `source` (rules, facts, optionally a `?- atom.` clause) and absorb it:
    /// rules are registered, facts inserted (incrementally when a model exists).
    pub fn load_source(&mut self, source: &str) -> Result<LoadSummary, EngineError> {
        let parsed = parse_program(source)?;
        let query = parsed.query().cloned();
        let (rules, facts) = parsed.split_facts();
        let mut summary = LoadSummary {
            rules_added: rules.len(),
            query,
            ..LoadSummary::default()
        };
        self.add_rules(rules);
        for atom in &facts {
            if self.insert_atom(atom)? {
                summary.facts_added += 1;
            } else {
                summary.duplicates += 1;
            }
        }
        Ok(summary)
    }

    /// Insert one fact; returns `true` if it was new. New facts are recorded as
    /// pending deltas and propagated into the materialized model by the next query
    /// (delta rounds only — the model is never rebuilt from scratch).
    ///
    /// A fact asserted for an *IDB* predicate `p` is stored in the auxiliary EDB
    /// relation `p__asserted`, with the exit rule `p(..) :- p__asserted(..)`
    /// registered on first use: this keeps every rewrite of `p` (magic, factoring)
    /// sound in the presence of asserted facts, at the cost of one full
    /// re-materialization when the exit rule first appears.
    pub fn insert(
        &mut self,
        predicate: impl Into<Symbol>,
        tuple: &[Const],
    ) -> Result<bool, EngineError> {
        let predicate = predicate.into();
        if let Some(expected) = self.expected_arity(predicate) {
            if expected != tuple.len() {
                return Err(EngineError::ArityMismatch {
                    predicate,
                    expected,
                    got: tuple.len(),
                });
            }
        }
        let target = if self.idb.contains(&predicate) {
            self.ensure_assertion_rule(predicate, tuple.len());
            Self::asserted_symbol(predicate)
        } else {
            predicate
        };
        let new = self.edb.add_fact(target, tuple);
        if !new {
            return Ok(false);
        }
        if let Some(model) = &mut self.model {
            // Feed the delta only if the model did not already contain the fact (it
            // may exist there as a *derived* fact, in which case the fixpoint already
            // accounts for it).
            if model.add_fact(target, tuple) {
                self.pending
                    .entry(target)
                    .or_insert_with(|| Relation::new(tuple.len()))
                    .insert(tuple);
            }
        }
        Ok(true)
    }

    /// Insert a ground atom as a fact; errors on non-ground atoms.
    pub fn insert_atom(&mut self, atom: &Atom) -> Result<bool, EngineError> {
        let Some(tuple) = atom.as_fact() else {
            return Err(EngineError::NonGroundFact(atom.to_string()));
        };
        self.insert(atom.predicate, &tuple)
    }

    /// Bring the materialized model up to date: full evaluation the first time,
    /// seeded-delta resume afterwards.
    fn refresh(&mut self) -> Result<(), EngineError> {
        if self.compiled.is_none() {
            self.compiled = Some(CompiledProgram::compile(&self.program, &self.options)?);
        }
        let compiled = self.compiled.as_ref().expect("compiled above");
        match &mut self.model {
            None => {
                let result = seminaive_evaluate_compiled(compiled, &self.edb, &self.options)?;
                self.stats.merge(&result.stats);
                self.model = Some(result.database);
                self.pending.clear();
            }
            Some(model) => {
                if self.pending.values().any(|r| !r.is_empty()) {
                    let stats = seminaive_resume(compiled, model, &self.pending, &self.options)?;
                    self.stats.merge(&stats);
                    self.pending.clear();
                }
            }
        }
        Ok(())
    }

    /// Answers to `query` over the materialized model of the registered program
    /// (projected onto the query's free positions, sorted). Pending inserts are
    /// propagated first via incremental delta rounds.
    pub fn query(&mut self, query: &Query) -> Result<Vec<Vec<Const>>, EngineError> {
        self.refresh()?;
        Ok(self
            .model
            .as_ref()
            .expect("model materialized by refresh")
            .answers(query))
    }

    /// Look up (or build) the prepared plan for `query`'s (predicate, shape),
    /// recording a cache hit or miss in the session statistics.
    fn prepared_plan(&mut self, query: &Query) -> Result<(PreparedPlan, Strategy), EngineError> {
        let key = (query.atom.predicate, query_shape(query));
        let bound: Vec<Const> = query
            .atom
            .terms
            .iter()
            .filter_map(|t| t.as_const())
            .collect();
        self.prepared_clock += 1;
        let now = self.prepared_clock;
        if let Some(entry) = self.prepared.get_mut(&key) {
            if let Some(plan) = entry.plan.rebind(&bound) {
                entry.last_used = now;
                let strategy = entry.strategy;
                self.stats.record_plan_lookup(true);
                return Ok((plan, strategy));
            }
        }
        // Miss: run the full pipeline for this query and cache the plan (most recent
        // constants win when rebinding was not applicable), evicting the
        // least-recently-used plan when the cache is full.
        self.stats.record_plan_lookup(false);
        let optimized = optimize_query(&self.program, query, &self.pipeline)?;
        let plan = optimized.prepare(&self.options)?;
        let strategy = optimized.strategy;
        if self.prepared_capacity > 0 {
            self.prepared.insert(
                key,
                CachedPlan {
                    plan: plan.clone(),
                    strategy,
                    last_used: now,
                },
            );
            self.evict_to_capacity();
        }
        Ok((plan, strategy))
    }

    /// Ensure a prepared plan exists for `query`; reports whether a cached plan was
    /// reused and which strategy the plan embodies.
    pub fn prepare(&mut self, query: &Query) -> Result<PrepareReport, EngineError> {
        let hits_before = self.stats.plan_cache_hits;
        let (_, strategy) = self.prepared_plan(query)?;
        Ok(PrepareReport {
            cached: self.stats.plan_cache_hits > hits_before,
            strategy,
        })
    }

    /// Is a prepared plan cached for `query`'s (predicate, shape)?
    pub fn has_prepared(&self, query: &Query) -> bool {
        self.prepared
            .contains_key(&(query.atom.predicate, query_shape(query)))
    }

    /// The strategy of the cached plan for `query`, if one is cached (a pure lookup:
    /// no counters are touched).
    pub fn prepared_strategy(&self, query: &Query) -> Option<Strategy> {
        self.prepared
            .get(&(query.atom.predicate, query_shape(query)))
            .map(|entry| entry.strategy)
    }

    /// Answers to `query` via the prepared-plan path: the optimization pipeline runs
    /// at most once per (predicate, shape); subsequent calls replay the cached
    /// compiled plan over the current facts. Same answer contract as
    /// [`Engine::query`].
    pub fn query_prepared(&mut self, query: &Query) -> Result<Vec<Vec<Const>>, EngineError> {
        let (plan, _) = self.prepared_plan(query)?;
        let result = plan.evaluate(&self.edb, &self.options)?;
        self.stats.merge(&result.stats);
        Ok(result.answers(plan.query()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use factorlog_datalog::eval::evaluate_default;
    use factorlog_datalog::parser::{parse_atom, parse_query};

    fn c(i: i64) -> Const {
        Const::Int(i)
    }

    fn tc_engine(n: i64) -> Engine {
        let mut engine = Engine::new();
        engine
            .load_source("t(X, Y) :- e(X, Y).\nt(X, Y) :- e(X, W), t(W, Y).")
            .unwrap();
        for i in 0..n {
            engine.insert("e", &[c(i), c(i + 1)]).unwrap();
        }
        engine
    }

    #[test]
    fn query_matches_batch_evaluation() {
        let mut engine = tc_engine(10);
        let query = parse_query("t(0, Y)").unwrap();
        let batch = evaluate_default(engine.program(), engine.facts())
            .unwrap()
            .answers(&query);
        assert_eq!(engine.query(&query).unwrap(), batch);
        assert_eq!(batch.len(), 10);
    }

    #[test]
    fn inserts_after_materialization_are_incremental() {
        let mut engine = tc_engine(10);
        let query = parse_query("t(0, Y)").unwrap();
        assert_eq!(engine.query(&query).unwrap().len(), 10);
        let inferences_after_first = engine.stats().inferences;

        engine.insert("e", &[c(10), c(11)]).unwrap();
        assert_eq!(engine.pending_facts(), 1);
        assert!(!engine.is_materialized());
        assert_eq!(engine.query(&query).unwrap().len(), 11);
        assert!(engine.is_materialized());

        let incremental_cost = engine.stats().inferences - inferences_after_first;
        assert!(
            incremental_cost < inferences_after_first,
            "resume ({incremental_cost}) must cost less than the initial fixpoint \
             ({inferences_after_first})"
        );
    }

    #[test]
    fn duplicate_and_derived_inserts_are_no_ops() {
        let mut engine = tc_engine(5);
        let query = parse_query("t(0, Y)").unwrap();
        engine.query(&query).unwrap();
        // Duplicate EDB fact.
        assert!(!engine.insert("e", &[c(0), c(1)]).unwrap());
        assert_eq!(engine.pending_facts(), 0);
        // Fact already derivable (t(0, 1) is in the model): inserted into the EDB but
        // contributes no delta work.
        assert!(engine.insert("t", &[c(0), c(1)]).unwrap());
        assert_eq!(engine.pending_facts(), 0);
        assert_eq!(engine.query(&query).unwrap().len(), 5);
    }

    #[test]
    fn inserting_idb_facts_propagates() {
        let mut engine = tc_engine(3);
        let query = parse_query("t(0, Y)").unwrap();
        assert_eq!(engine.query(&query).unwrap().len(), 3);
        // Assert a derived fact that is not otherwise derivable; the recursion must
        // extend it.
        engine.insert("t", &[c(3), c(100)]).unwrap();
        let answers = engine.query(&query).unwrap();
        assert!(answers.contains(&vec![c(100)]));
    }

    #[test]
    fn add_rules_invalidates_model_but_keeps_facts() {
        let mut engine = tc_engine(4);
        let query = parse_query("t(0, Y)").unwrap();
        assert_eq!(engine.query(&query).unwrap().len(), 4);
        engine.load_source("s(X, Y) :- t(Y, X).").unwrap();
        assert!(!engine.is_materialized());
        let s_query = parse_query("s(4, Y)").unwrap();
        assert_eq!(engine.query(&s_query).unwrap().len(), 4);
        assert_eq!(engine.query(&query).unwrap().len(), 4);
    }

    #[test]
    fn arity_and_groundness_are_checked() {
        let mut engine = tc_engine(2);
        let err = engine.insert("e", &[c(1)]).unwrap_err();
        assert!(matches!(err, EngineError::ArityMismatch { .. }));
        let atom = parse_atom("e(X, 1)").unwrap();
        let err = engine.insert_atom(&atom).unwrap_err();
        assert!(matches!(err, EngineError::NonGroundFact(_)));
        assert!(format!("{err}").contains("non-ground"));
    }

    #[test]
    fn prepared_cache_hits_on_same_adornment() {
        let mut engine = tc_engine(8);
        let query = parse_query("t(0, Y)").unwrap();
        let first = engine.query_prepared(&query).unwrap();
        assert_eq!(engine.stats().plan_cache_misses, 1);
        assert_eq!(engine.stats().plan_cache_hits, 0);
        let second = engine.query_prepared(&query).unwrap();
        assert_eq!(first, second);
        assert_eq!(engine.stats().plan_cache_hits, 1);
        assert_eq!(engine.prepared_count(), 1);
    }

    #[test]
    fn prepared_cache_rebinds_across_constants() {
        let mut engine = tc_engine(10);
        let q0 = parse_query("t(0, Y)").unwrap();
        let q5 = parse_query("t(5, Y)").unwrap();
        assert_eq!(engine.query_prepared(&q0).unwrap().len(), 10);
        // Different constant, same adornment: the cached plan is rebound, not rebuilt.
        assert_eq!(engine.query_prepared(&q5).unwrap().len(), 5);
        assert_eq!(engine.stats().plan_cache_hits, 1);
        assert_eq!(engine.stats().plan_cache_misses, 1);
        // And the prepared answers agree with the materialized-model answers.
        assert_eq!(
            engine.query_prepared(&q5).unwrap(),
            engine.query(&q5).unwrap()
        );
    }

    #[test]
    fn wrong_arity_insert_on_model_only_predicate_errors_cleanly() {
        // `t` exists only as rules (and in the model after a query), never in the
        // EDB; a wrong-arity insert must error, not panic in the storage layer.
        let mut engine = tc_engine(3);
        let query = parse_query("t(0, Y)").unwrap();
        engine.query(&query).unwrap();
        let err = engine.insert("t", &[c(1)]).unwrap_err();
        assert!(matches!(
            err,
            EngineError::ArityMismatch {
                expected: 2,
                got: 1,
                ..
            }
        ));
        // And the fact store was not polluted with a wrong-arity relation.
        assert_eq!(engine.facts().count("t"), 0);
        assert_eq!(engine.query(&query).unwrap().len(), 3);
    }

    #[test]
    fn repeated_variable_queries_get_their_own_plans() {
        let mut engine = Engine::new();
        engine
            .load_source("t(X, Y) :- e(X, Y).\nt(X, Y) :- e(X, W), t(W, Y).")
            .unwrap();
        engine.insert("e", &[c(0), c(1)]).unwrap();
        engine.insert("e", &[c(1), c(0)]).unwrap();
        let q_xy = parse_query("t(X, Y)").unwrap();
        let q_xx = parse_query("t(X, X)").unwrap();
        // Cache the general plan first, then the repeated-variable query: it must not
        // reuse the (t, "ff") plan.
        let xy = engine.query_prepared(&q_xy).unwrap();
        let xx = engine.query_prepared(&q_xx).unwrap();
        assert_eq!(xy, engine.query(&q_xy).unwrap());
        assert_eq!(xx, engine.query(&q_xx).unwrap());
        assert_eq!(xx, vec![vec![c(0)], vec![c(1)]]);
        assert_eq!(engine.prepared_count(), 2);
    }

    #[test]
    fn prepared_path_sees_asserted_idb_facts() {
        let mut engine = Engine::new();
        engine
            .load_source("t(X, Y) :- e(X, Y).\nt(X, Y) :- e(X, W), t(W, Y).")
            .unwrap();
        engine.insert("e", &[c(0), c(1)]).unwrap();
        let query = parse_query("t(0, Y)").unwrap();
        assert_eq!(engine.query_prepared(&query).unwrap(), vec![vec![c(1)]]);
        // Assert a t fact after the plan is cached: the assertion exit rule
        // invalidates the plan and the rebuilt plan must include it — and extend it
        // through the recursion (t(0,99) via t(0,1) ∘ t(1,99)? no: via e(0,1)+t(1,99)).
        engine.insert("t", &[c(1), c(99)]).unwrap();
        let prepared = engine.query_prepared(&query).unwrap();
        let materialized = engine.query(&query).unwrap();
        assert_eq!(prepared, materialized);
        assert!(prepared.contains(&vec![c(99)]));
    }

    #[test]
    fn facts_present_before_rules_migrate_to_assertions() {
        // Insert t facts while t is still EDB, then register rules for t: the facts
        // must keep counting as part of the model and the rewrites must stay sound.
        let mut engine = Engine::new();
        engine.insert("t", &[c(7), c(8)]).unwrap();
        engine
            .load_source("t(X, Y) :- e(X, Y).\nt(X, Y) :- e(X, W), t(W, Y).")
            .unwrap();
        engine.insert("e", &[c(0), c(7)]).unwrap();
        let query = parse_query("t(0, Y)").unwrap();
        let answers = engine.query(&query).unwrap();
        assert_eq!(answers, vec![vec![c(7)], vec![c(8)]]);
        assert_eq!(engine.query_prepared(&query).unwrap(), answers);
    }

    #[test]
    fn constant_headed_rules_answer_correctly_through_the_engine() {
        // Companion to the pipeline-level adornment regression: a rule whose head has
        // a constant in the free position of the query adornment must contribute its
        // answers on the materialized path, the prepared path, and after rebinding the
        // cached plan to a different query constant (the rebind guard must refuse or
        // rebuild, never drop the rule).
        let mut engine = Engine::new();
        engine
            .load_source("t(X, Y) :- e(X, Y).\nt(X, Y) :- e(X, W), t(W, Y).\nt(X, 7) :- mark(X).")
            .unwrap();
        for (a, b) in [(0i64, 1i64), (1, 2), (7, 8)] {
            engine.insert("e", &[c(a), c(b)]).unwrap();
        }
        engine.insert("mark", &[c(1)]).unwrap();
        let q0 = parse_query("t(0, Y)").unwrap();
        // Derivation through the constant head: t(1, 7) via mark(1), then t(0, 7) by
        // prepending e(0, 1) — alongside the ordinary edge answers 1 and 2.
        let materialized = engine.query(&q0).unwrap();
        assert_eq!(materialized, vec![vec![c(1)], vec![c(2)], vec![c(7)]]);
        assert_eq!(engine.query_prepared(&q0).unwrap(), materialized);
        // A different constant hits the rebind guard (7 is mentioned by a rule).
        let q7 = parse_query("t(7, Y)").unwrap();
        assert_eq!(
            engine.query_prepared(&q7).unwrap(),
            engine.query(&q7).unwrap()
        );
    }

    #[test]
    fn prepare_reports_strategy_and_caching() {
        let mut engine = tc_engine(4);
        let query = parse_query("t(0, Y)").unwrap();
        let first = engine.prepare(&query).unwrap();
        assert!(!first.cached);
        assert_eq!(first.strategy, Strategy::FactoredMagic);
        assert!(engine.has_prepared(&query));
        let again = engine.prepare(&query).unwrap();
        assert!(again.cached);
    }

    #[test]
    fn rule_changes_drop_prepared_plans() {
        let mut engine = tc_engine(4);
        let query = parse_query("t(0, Y)").unwrap();
        engine.query_prepared(&query).unwrap();
        assert_eq!(engine.prepared_count(), 1);
        engine.load_source("u(X) :- t(X, X).").unwrap();
        assert_eq!(engine.prepared_count(), 0);
    }

    #[test]
    fn prepared_cache_evicts_least_recently_used() {
        let mut engine = Engine::new();
        engine
            .load_source(
                "t(X, Y) :- e(X, Y).\nt(X, Y) :- e(X, W), t(W, Y).\n\
                 s(X) :- t(X, X).\nu(Y) :- t(0, Y).",
            )
            .unwrap();
        engine.insert("e", &[c(0), c(1)]).unwrap();
        engine.insert("e", &[c(1), c(0)]).unwrap();
        engine.set_prepared_capacity(2);
        assert_eq!(engine.prepared_capacity(), 2);

        let q_t = parse_query("t(0, Y)").unwrap();
        let q_s = parse_query("s(X)").unwrap();
        let q_u = parse_query("u(Y)").unwrap();
        engine.query_prepared(&q_t).unwrap();
        engine.query_prepared(&q_s).unwrap();
        assert_eq!(engine.prepared_count(), 2);
        assert_eq!(engine.stats().plan_cache_evictions, 0);

        // Touch t so s becomes the LRU entry, then overflow with u.
        engine.query_prepared(&q_t).unwrap();
        engine.query_prepared(&q_u).unwrap();
        assert_eq!(engine.prepared_count(), 2);
        assert_eq!(engine.stats().plan_cache_evictions, 1);
        assert!(engine.has_prepared(&q_t), "recently used plan survives");
        assert!(engine.has_prepared(&q_u));
        assert!(!engine.has_prepared(&q_s), "LRU plan is evicted");

        // The evicted query still answers correctly (re-prepared on demand).
        let misses_before = engine.stats().plan_cache_misses;
        let answers = engine.query_prepared(&q_s).unwrap();
        assert_eq!(answers, engine.query(&q_s).unwrap());
        assert_eq!(engine.stats().plan_cache_misses, misses_before + 1);
    }

    #[test]
    fn shrinking_prepared_capacity_evicts_immediately() {
        let mut engine = tc_engine(4);
        let q0 = parse_query("t(0, Y)").unwrap();
        let q_all = parse_query("t(X, Y)").unwrap();
        engine.query_prepared(&q0).unwrap();
        engine.query_prepared(&q_all).unwrap();
        assert_eq!(engine.prepared_count(), 2);
        engine.set_prepared_capacity(1);
        assert_eq!(engine.prepared_count(), 1);
        assert_eq!(engine.stats().plan_cache_evictions, 1);
        // Capacity 0 disables caching.
        engine.set_prepared_capacity(0);
        assert_eq!(engine.prepared_count(), 0);
        engine.query_prepared(&q0).unwrap();
        assert_eq!(engine.prepared_count(), 0);
    }

    #[test]
    fn default_prepared_capacity_is_bounded() {
        let engine = Engine::new();
        assert_eq!(engine.prepared_capacity(), DEFAULT_PREPARED_CAPACITY);
        assert_eq!(engine.prepared_capacity(), 256);
    }

    #[test]
    fn stats_accumulate_across_calls() {
        let mut engine = tc_engine(6);
        let query = parse_query("t(0, Y)").unwrap();
        engine.query(&query).unwrap();
        let after_one = engine.stats().inferences;
        engine.insert("e", &[c(6), c(7)]).unwrap();
        engine.query(&query).unwrap();
        assert!(
            engine.stats().inferences > after_one,
            "counters are cumulative"
        );
        engine.reset_stats();
        assert_eq!(engine.stats().inferences, 0);
    }

    #[test]
    fn load_summary_reports_what_happened() {
        let mut engine = Engine::new();
        let summary = engine
            .load_source("t(X, Y) :- e(X, Y).\ne(1, 2).\ne(1, 2).\n?- t(1, Y).")
            .unwrap();
        assert_eq!(summary.rules_added, 1);
        assert_eq!(summary.facts_added, 1);
        assert_eq!(summary.duplicates, 1);
        assert_eq!(summary.query.unwrap().atom.predicate, Symbol::intern("t"));
    }

    #[test]
    fn options_round_trip_and_invalidate() {
        let mut engine = tc_engine(3);
        let query = parse_query("t(0, Y)").unwrap();
        engine.query(&query).unwrap();
        let options = EvalOptions {
            max_iterations: 123,
            ..EvalOptions::default()
        };
        engine.set_options(options);
        assert_eq!(engine.options().max_iterations, 123);
        assert!(!engine.is_materialized());
        assert_eq!(engine.query(&query).unwrap().len(), 3);
    }

    #[test]
    fn set_threads_keeps_model_and_plans_and_answers() {
        let mut engine = tc_engine(12);
        let query = parse_query("t(0, Y)").unwrap();
        let sequential = engine.query(&query).unwrap();
        engine.query_prepared(&query).unwrap();
        let plans = engine.prepared_count();
        assert!(engine.is_materialized());

        // Raising the thread count invalidates nothing and answers identically.
        engine.set_threads(4);
        assert_eq!(engine.threads(), 4);
        assert!(engine.is_materialized());
        assert_eq!(engine.prepared_count(), plans);
        assert_eq!(engine.query(&query).unwrap(), sequential);
        assert_eq!(engine.query_prepared(&query).unwrap(), sequential);

        // Inserts keep propagating incrementally under the new setting.
        engine.insert("e", &[c(12), c(13)]).unwrap();
        assert_eq!(engine.query(&query).unwrap().len(), 13);
    }

    #[test]
    fn parallel_session_matches_sequential_session() {
        // Two whole sessions — materialization, incremental resume, prepared replay —
        // at 1 vs 4 threads with the threshold forced to zero must agree exactly.
        let run = |threads: usize| {
            let mut engine = Engine::with_options(EvalOptions {
                threads,
                parallel_threshold: 0,
                ..EvalOptions::default()
            });
            engine
                .load_source("t(X, Y) :- e(X, Y).\nt(X, Y) :- e(X, W), t(W, Y).")
                .unwrap();
            for i in 0..20i64 {
                engine.insert("e", &[c(i), c(i + 1)]).unwrap();
            }
            let query = parse_query("t(0, Y)").unwrap();
            let first = engine.query(&query).unwrap();
            engine.insert("e", &[c(20), c(21)]).unwrap();
            let second = engine.query(&query).unwrap();
            let prepared = engine.query_prepared(&query).unwrap();
            (first, second, prepared, engine.stats().inferences)
        };
        let (f1, s1, p1, inf1) = run(1);
        let (f4, s4, p4, inf4) = run(4);
        assert_eq!(f1, f4);
        assert_eq!(s1, s4);
        assert_eq!(p1, p4);
        assert_eq!(inf1, inf4, "inference counts are thread-invariant");
    }

    #[test]
    fn empty_program_answers_from_facts() {
        let mut engine = Engine::new();
        engine.insert("e", &[c(1), c(2)]).unwrap();
        let query = parse_query("e(1, Y)").unwrap();
        assert_eq!(engine.query(&query).unwrap(), vec![vec![c(2)]]);
    }
}
