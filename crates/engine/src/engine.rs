//! The persistent [`Engine`]: a session that owns facts, rules, a materialized model,
//! and a prepared-query cache.
//!
//! # State machine
//!
//! ```text
//!   insert ──────────────▶ edb (+ model, + pending delta)
//!   transaction/commit ──▶ edb ± batch; retractions propagate immediately via
//!                          seminaive_retract (negative deltas + counting re-derive),
//!                          assertions become pending deltas
//!   add_rules/load ──────▶ program         (model dropped, caches cleared)
//!   query ───────────────▶ refresh: model = fixpoint(program, edb)
//!                            · no model yet   → full semi-naive evaluation
//!                            · pending deltas → seminaive_resume (delta rounds only)
//!                          then answer from the materialized model
//!   query_prepared ──────▶ prepared-plan cache keyed by (predicate, query shape):
//!                            · hit  → replay the cached CompiledProgram
//!                            · miss → reduce→adorn→magic→factor→optimize, cache plan
//!   snapshot/restore ────▶ serialize program + edb as (versioned) Datalog text;
//!                          restore wipes the session and reloads it
//! ```
//!
//! All evaluation statistics are merged into one cumulative per-session
//! [`EvalStats`], so `:stats` (REPL) and `--stats` (CLI) report session totals, not
//! the last call.

use std::collections::BTreeSet;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};

use factorlog_core::error::TransformError;
use factorlog_core::pipeline::{optimize_query, PipelineOptions, PreparedPlan, Strategy};
use factorlog_datalog::ast::{Atom, Const, Program, Query, Rule, Term};
use factorlog_datalog::eval::{
    seminaive_evaluate_compiled, seminaive_resume, seminaive_retract, CompiledProgram, EvalError,
    EvalOptions, EvalStats,
};
use factorlog_datalog::fault::{CancelToken, FaultAction, FaultInjector, FaultSite};
use factorlog_datalog::fx::FxHashMap;
use factorlog_datalog::parser::{parse_program, ParseError};
use factorlog_datalog::storage::{Database, Relation};
use factorlog_datalog::symbol::Symbol;

/// Errors surfaced by engine operations.
#[derive(Clone, Debug)]
pub enum EngineError {
    /// Source text failed to parse.
    Parse(ParseError),
    /// Evaluation failed (invalid program or iteration limit).
    Eval(EvalError),
    /// The optimization pipeline rejected a prepared query.
    Transform(TransformError),
    /// An inserted tuple does not match the relation's arity.
    ArityMismatch {
        /// The predicate being inserted into.
        predicate: Symbol,
        /// Arity already established for the predicate.
        expected: usize,
        /// Arity of the offered tuple.
        got: usize,
    },
    /// An inserted atom contains variables.
    NonGroundFact(String),
    /// A snapshot file or string is not in the expected format.
    Snapshot(String),
    /// An I/O failure while saving or loading a snapshot.
    Io(String),
    /// A durability failure: the transaction log could not be written or the
    /// data directory could not be recovered/compacted.
    Durability(String),
    /// A durable data directory is already open by a live session (see the
    /// single-writer `LOCK` file, [`crate::LOCK_FILE`]).
    Locked {
        /// The directory that is locked.
        dir: std::path::PathBuf,
        /// The PID holding the lock (this process's own PID for a same-process
        /// double-open).
        pid: u32,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Parse(e) => write!(f, "{e}"),
            EngineError::Eval(e) => write!(f, "{e}"),
            EngineError::Transform(e) => write!(f, "{e}"),
            EngineError::ArityMismatch {
                predicate,
                expected,
                got,
            } => write!(
                f,
                "arity mismatch: {predicate} has arity {expected}, tuple has {got}"
            ),
            EngineError::NonGroundFact(atom) => {
                write!(f, "cannot insert non-ground atom {atom} as a fact")
            }
            EngineError::Snapshot(message) => write!(f, "invalid snapshot: {message}"),
            EngineError::Io(message) => write!(f, "{message}"),
            EngineError::Durability(message) => write!(f, "durability: {message}"),
            EngineError::Locked { dir, pid } => write!(
                f,
                "data directory {} is locked by live process {pid} \
                 (close that session first; a stale LOCK from a dead process \
                 is reclaimed automatically)",
                dir.display()
            ),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<ParseError> for EngineError {
    fn from(e: ParseError) -> Self {
        EngineError::Parse(e)
    }
}

impl From<EvalError> for EngineError {
    fn from(e: EvalError) -> Self {
        EngineError::Eval(e)
    }
}

impl From<TransformError> for EngineError {
    fn from(e: TransformError) -> Self {
        EngineError::Transform(e)
    }
}

/// What [`Engine::load_source`] did.
#[derive(Clone, Debug, Default)]
pub struct LoadSummary {
    /// Rules added to the registered program.
    pub rules_added: usize,
    /// Facts inserted (new tuples only).
    pub facts_added: usize,
    /// Facts that were already present.
    pub duplicates: usize,
    /// The `?- atom.` query clause of the source, if any.
    pub query: Option<Query>,
}

/// What a committed transaction did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TxnSummary {
    /// Facts newly added to the fact store.
    pub asserted: usize,
    /// Facts removed from the fact store.
    pub retracted: usize,
    /// Asserted facts that were already present (no-ops).
    pub duplicates: usize,
    /// Retracted facts that were not present as base facts (no-ops — a derived fact
    /// cannot be retracted, only the assertions supporting it).
    pub missing: usize,
}

/// One operation of a transaction batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum TxnOp {
    Assert,
    Retract,
}

/// An atomic batch of `assert`/`retract` operations against an [`Engine`].
///
/// Build one with [`Engine::transaction`], queue operations with [`Txn::assert`] /
/// [`Txn::retract`] (or the atom-taking variants), and apply the whole batch with
/// [`Txn::commit`]. Nothing touches the engine until commit; dropping an uncommitted
/// transaction discards it. Commit validates every operation (arity consistency —
/// against the session *and* within the batch) before applying anything, so a failed
/// commit leaves the session exactly as it was.
///
/// Within one batch the ops are set-oriented and the *last* operation on a given
/// fact wins: `assert(f)` after `retract(f)` means `f` is present afterwards, and
/// vice versa. Retractions are applied before assertions; retractions propagate
/// through the materialized model immediately (negative deltas + counting
/// re-derivation, see [`seminaive_retract`]), while assertions become pending deltas
/// absorbed by the next query, exactly like [`Engine::insert`].
#[must_use = "a transaction does nothing until committed"]
pub struct Txn<'e> {
    engine: &'e mut Engine,
    ops: Vec<(TxnOp, Symbol, Vec<Const>)>,
}

impl Txn<'_> {
    /// Queue an assertion of `predicate(tuple)`.
    pub fn assert(&mut self, predicate: impl Into<Symbol>, tuple: &[Const]) -> &mut Self {
        self.ops
            .push((TxnOp::Assert, predicate.into(), tuple.to_vec()));
        self
    }

    /// Queue a retraction of `predicate(tuple)`.
    pub fn retract(&mut self, predicate: impl Into<Symbol>, tuple: &[Const]) -> &mut Self {
        self.ops
            .push((TxnOp::Retract, predicate.into(), tuple.to_vec()));
        self
    }

    /// Queue an assertion of a ground atom; errors (leaving the batch unchanged) if
    /// the atom contains variables.
    pub fn assert_atom(&mut self, atom: &Atom) -> Result<&mut Self, EngineError> {
        let tuple = atom
            .as_fact()
            .ok_or_else(|| EngineError::NonGroundFact(atom.to_string()))?;
        Ok(self.assert(atom.predicate, &tuple))
    }

    /// Queue a retraction of a ground atom; errors (leaving the batch unchanged) if
    /// the atom contains variables.
    pub fn retract_atom(&mut self, atom: &Atom) -> Result<&mut Self, EngineError> {
        let tuple = atom
            .as_fact()
            .ok_or_else(|| EngineError::NonGroundFact(atom.to_string()))?;
        Ok(self.retract(atom.predicate, &tuple))
    }

    /// Number of queued operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Is the batch empty?
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Apply the whole batch atomically. Validation failures (arity mismatches)
    /// leave the session untouched. An evaluation failure *during* model maintenance
    /// (e.g. the iteration limit on a diverging program) still applies the batch to
    /// the fact store — the store is the source of truth — but drops the
    /// materialized model, which the next query rebuilds from scratch.
    pub fn commit(self) -> Result<TxnSummary, EngineError> {
        let ops = self.ops;
        self.engine.apply_txn(ops)
    }
}

/// The version header identifying a session snapshot. It is a Datalog line comment,
/// so every snapshot is also a loadable Datalog source file.
pub const SNAPSHOT_HEADER: &str = "% factorlog snapshot v1";

/// The version-independent prefix of every snapshot header: used to *sniff* that a
/// text is some snapshot (possibly from a newer build) before checking whether this
/// build can read it — an unknown version must fail loudly, never parse as plain
/// Datalog source.
pub const SNAPSHOT_HEADER_PREFIX: &str = "% factorlog snapshot";

/// A serialized session image: the registered program plus every base fact, as
/// versioned Datalog text (rules and facts round-trip through the regular parser).
///
/// Produced by [`Engine::snapshot`]; consumed by [`Engine::restore`] /
/// [`Engine::from_snapshot`]. The materialized model, pending deltas, and prepared
/// plans are deliberately *not* serialized — they are caches, rebuilt on demand
/// after a restore (the first query re-materializes; prepared shapes re-compile on
/// first use and are cached again from then on).
///
/// Symbolic constants that are not plain identifiers are written as quoted strings;
/// symbols containing `"` or a newline cannot be represented by the surface syntax
/// and fail to round-trip (construct such facts programmatically and they are on
/// you).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Snapshot {
    text: String,
}

impl Snapshot {
    /// The snapshot as Datalog text (header comment included).
    pub fn as_str(&self) -> &str {
        &self.text
    }

    /// Wrap existing snapshot text, validating the version header: a missing
    /// header is rejected, and so — explicitly — is a snapshot version this build
    /// does not read (rather than falling back to parsing it as plain source).
    pub fn from_text(text: &str) -> Result<Snapshot, EngineError> {
        let Some(header) = text.lines().find(|line| !line.trim().is_empty()) else {
            return Err(EngineError::Snapshot(format!(
                "empty text (missing `{SNAPSHOT_HEADER}` header)"
            )));
        };
        let header = header.trim();
        if header != SNAPSHOT_HEADER {
            return Err(if header.starts_with(SNAPSHOT_HEADER_PREFIX) {
                EngineError::Snapshot(format!(
                    "unsupported snapshot version `{header}` (this build reads `{SNAPSHOT_HEADER}`)"
                ))
            } else {
                EngineError::Snapshot(format!("missing `{SNAPSHOT_HEADER}` header"))
            });
        }
        Ok(Snapshot {
            text: text.to_string(),
        })
    }

    /// Write the snapshot to a file.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> Result<(), EngineError> {
        let path = path.as_ref();
        std::fs::write(path, &self.text)
            .map_err(|e| EngineError::Io(format!("cannot write {}: {e}", path.display())))
    }

    /// Read a snapshot from a file (validating the version header). A missing or
    /// empty file is a clean [`EngineError`] naming the path, never a raw
    /// io/parse error.
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<Snapshot, EngineError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path)
            .map_err(|e| EngineError::Io(format!("cannot read {}: {e}", path.display())))?;
        if text.trim().is_empty() {
            return Err(EngineError::Snapshot(format!(
                "snapshot file {} is empty",
                path.display()
            )));
        }
        Snapshot::from_text(&text)
    }
}

impl fmt::Display for Snapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// Does `text` begin with a snapshot header of *any* version (allowing leading
/// blank lines)? Used by front ends to tell a snapshot from ordinary Datalog
/// source; version support is then checked by [`Snapshot::from_text`], so an
/// unknown-version snapshot routes to an explicit error instead of being absorbed
/// as source.
pub fn is_snapshot_text(text: &str) -> bool {
    text.lines()
        .find(|line| !line.trim().is_empty())
        .is_some_and(|line| line.trim().starts_with(SNAPSHOT_HEADER_PREFIX))
}

/// Write one constant in parseable surface syntax: integers and identifier-shaped
/// symbols verbatim, other symbols as quoted strings.
pub(crate) fn write_const(out: &mut String, value: &Const) {
    use std::fmt::Write as _;
    match value {
        Const::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Const::Sym(s) => {
            let name = s.as_str();
            let identifier = name.chars().next().is_some_and(|c| c.is_ascii_lowercase())
                && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_');
            if identifier {
                out.push_str(name);
            } else {
                let _ = write!(out, "\"{name}\"");
            }
        }
    }
}

/// Render a caught panic payload: the common `&str`/`String` payloads verbatim,
/// a placeholder otherwise (panic payloads may be any `Any` value).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic>".to_string()
    }
}

/// What [`Engine::prepare`] did.
#[derive(Clone, Debug)]
pub struct PrepareReport {
    /// `true` if a cached plan was reused (possibly rebound to new constants).
    pub cached: bool,
    /// Which program the plan embodies (factored vs magic-only).
    pub strategy: Strategy,
}

/// One entry of the prepared-query cache.
#[derive(Clone, Debug)]
struct CachedPlan {
    plan: PreparedPlan,
    strategy: Strategy,
    /// Logical timestamp of the last hit or insertion (LRU eviction order).
    last_used: u64,
}

/// Default bound on the prepared-plan cache (entries), so long-lived REPL sessions
/// cannot grow without bound. Override with [`Engine::set_prepared_capacity`].
pub const DEFAULT_PREPARED_CAPACITY: usize = 256;

/// A persistent session: facts + rules + materialized model + prepared-plan cache.
///
/// See the [crate docs](crate) for the overall design and an example.
pub struct Engine {
    program: Program,
    /// The IDB predicates of `program` (cached; recomputed on rule changes).
    idb: BTreeSet<Symbol>,
    edb: Database,
    /// The materialized least model (EDB ∪ derived IDB), when up to date except for
    /// `pending`.
    model: Option<Database>,
    /// Facts inserted since the model was last brought to a fixpoint, per predicate —
    /// the seed deltas for the next [`seminaive_resume`].
    pending: FxHashMap<Symbol, Relation>,
    /// Compiled plan for the registered (base) program.
    compiled: Option<CompiledProgram>,
    /// Prepared plans keyed by (query predicate, query shape). The shape encodes the
    /// constant/variable pattern *and* which variable positions repeat (`t(X, Y)` and
    /// `t(X, X)` need different plans even though both adorn as `ff`). Bounded to
    /// `prepared_capacity` entries with least-recently-used eviction.
    prepared: FxHashMap<(Symbol, String), CachedPlan>,
    /// Maximum number of cached prepared plans.
    prepared_capacity: usize,
    /// Logical clock driving the LRU order of `prepared`.
    prepared_clock: u64,
    options: EvalOptions,
    pipeline: PipelineOptions,
    pub(crate) stats: EvalStats,
    /// The durable half of the session (transaction log + data directory), when
    /// opened via [`Engine::open_durable`]. `None` = plain in-memory session.
    pub(crate) durability: Option<crate::durability::Durability>,
    /// Is the observability layer collecting? Every engine span site is a
    /// single branch on this flag (eval-side sites branch on the equally cheap
    /// `EvalOptions::trace` / profile option).
    pub(crate) tracing: bool,
    /// Engine-level metrics (latency histograms, subsystem spans). Allocated on
    /// the first [`Engine::set_tracing`]`(true)` and retained when tracing is
    /// later disabled, so collected data stays inspectable.
    pub(crate) metrics: Option<Box<crate::metrics::EngineMetrics>>,
}

/// The cache key shape of a query: `b` for constant positions, a first-occurrence
/// index for variable positions, `,`-separated — so repeated-variable queries get
/// their own plans.
fn query_shape(query: &Query) -> String {
    use std::fmt::Write as _;
    let mut seen: Vec<Symbol> = Vec::new();
    let mut shape = String::new();
    for term in &query.atom.terms {
        match term {
            Term::Const(_) => shape.push_str("b,"),
            Term::Var(v) => {
                let index = seen.iter().position(|s| s == v).unwrap_or_else(|| {
                    seen.push(*v);
                    seen.len() - 1
                });
                let _ = write!(shape, "{index},");
            }
        }
    }
    shape
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new()
    }
}

impl Engine {
    /// A fresh session with default options.
    pub fn new() -> Engine {
        Engine::with_options(EvalOptions::default())
    }

    /// A fresh session with the given evaluation options. The options apply to every
    /// evaluation the session performs (materialization, incremental resumes, and
    /// prepared-plan replays) — they round-trip through the engine rather than being
    /// per-call.
    pub fn with_options(options: EvalOptions) -> Engine {
        Engine {
            program: Program::new(),
            idb: BTreeSet::new(),
            edb: Database::new(),
            model: None,
            pending: FxHashMap::default(),
            compiled: None,
            prepared: FxHashMap::default(),
            prepared_capacity: DEFAULT_PREPARED_CAPACITY,
            prepared_clock: 0,
            options,
            pipeline: PipelineOptions::default(),
            stats: EvalStats::default(),
            durability: None,
            tracing: false,
            metrics: None,
        }
    }

    /// The session's evaluation options.
    pub fn options(&self) -> &EvalOptions {
        &self.options
    }

    /// Replace the session's evaluation options. Compiled plans depend on them
    /// (builtin handling is baked in at compile time), so all caches and the
    /// materialized model are invalidated.
    pub fn set_options(&mut self, options: EvalOptions) {
        self.options = options;
        // The session's tracing switch owns the eval-side trace flag.
        self.options.trace = self.tracing;
        self.invalidate();
    }

    /// The session's worker-thread count for partitioned evaluation rounds
    /// (see [`EvalOptions::threads`]: 1 = sequential, 0 = one per available core).
    pub fn threads(&self) -> usize {
        self.options.threads
    }

    /// Set the worker-thread count for every subsequent evaluation this session
    /// performs. Unlike [`Engine::set_options`] this invalidates nothing: compiled
    /// plans are thread-agnostic, and parallel evaluation produces bit-identical
    /// results, so the materialized model and all cached plans stay valid.
    pub fn set_threads(&mut self, threads: usize) {
        self.options.threads = threads;
    }

    /// Set the session's resource guardrails for every subsequent evaluation:
    /// wall-clock deadline, derived-fact cap, and estimated-memory budget (each
    /// `None` = unlimited). Like [`Engine::set_threads`] this invalidates
    /// nothing — guardrails decide when an evaluation is abandoned, never what
    /// it computes, so the materialized model and all cached plans stay valid.
    pub fn set_limits(
        &mut self,
        deadline: Option<std::time::Duration>,
        max_derived_facts: Option<usize>,
        memory_budget_bytes: Option<usize>,
    ) {
        self.options.deadline = deadline;
        self.options.max_derived_facts = max_derived_facts;
        self.options.memory_budget_bytes = memory_budget_bytes;
    }

    /// The cooperative cancellation token governing this session's evaluations,
    /// created on first use. Clones share the flag: hand one to a signal
    /// handler or another thread, and `cancel()` aborts the evaluation in
    /// flight at its next poll with a structured
    /// [`LimitExceeded`](EvalError::LimitExceeded) error. The engine never
    /// resets the token — front ends [`reset`](CancelToken::reset) it before
    /// each run so a stale Ctrl-C cannot cancel the next query.
    pub fn cancel_token(&mut self) -> CancelToken {
        self.options
            .cancel
            .get_or_insert_with(CancelToken::new)
            .clone()
    }

    /// Arm (or disarm) the chaos-test fault injector threaded through every
    /// evaluation and durable-write site of this session (see
    /// [`FaultSite`]). Test harness only; invalidates nothing.
    pub fn set_fault_injector(&mut self, injector: Option<FaultInjector>) {
        self.options.fault_injector = injector;
    }

    /// The pipeline options used to prepare queries.
    pub fn pipeline_options(&self) -> &PipelineOptions {
        &self.pipeline
    }

    /// Replace the pipeline options; drops cached prepared plans.
    pub fn set_pipeline_options(&mut self, pipeline: PipelineOptions) {
        self.pipeline = pipeline;
        self.prepared.clear();
    }

    /// The registered rules.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The extensional facts of the session (inserted facts only, no derived facts).
    pub fn facts(&self) -> &Database {
        &self.edb
    }

    /// Cumulative statistics for every evaluation this session has performed,
    /// including prepared-plan cache hit/miss counters.
    pub fn stats(&self) -> &EvalStats {
        &self.stats
    }

    /// Reset the cumulative statistics (keeps model and caches).
    pub fn reset_stats(&mut self) {
        self.stats = EvalStats::default();
    }

    /// Fold externally computed statistics into this session's cumulative counters
    /// (e.g. an auxiliary evaluation a front end performed on the session's behalf).
    pub fn absorb_stats(&mut self, other: &EvalStats) {
        self.stats.merge(other);
    }

    /// Is the observability layer (span timers, latency histograms, per-rule
    /// profiles) collecting?
    pub fn tracing(&self) -> bool {
        self.tracing
    }

    /// Enable or disable tracing. Like [`Engine::set_threads`] this invalidates
    /// nothing — tracing is not baked into compiled plans — so it can be toggled
    /// mid-session. Disabling stops collection but retains everything collected
    /// so far ([`Engine::metrics`] and the profile on [`Engine::stats`] stay
    /// inspectable); [`Engine::reset_stats`] clears the eval-side profile.
    pub fn set_tracing(&mut self, on: bool) {
        self.tracing = on;
        self.options.trace = on;
        if on && self.metrics.is_none() {
            self.metrics = Some(Box::default());
        }
    }

    /// The engine-level metrics (query-latency and WAL-fsync histograms,
    /// subsystem spans, optimizer pass times) collected so far; `None` when
    /// tracing was never enabled on this session.
    pub fn metrics(&self) -> Option<&crate::metrics::EngineMetrics> {
        self.metrics.as_deref()
    }

    /// Render the versioned machine-readable metrics document for this session
    /// (see the [`crate::metrics`] module docs for the schema). Valid whether or
    /// not tracing is on — an untraced session reports its counters with empty
    /// phase, rule, and histogram sections.
    pub fn metrics_json(&self) -> String {
        self.metrics_json_with(None, None)
    }

    /// [`Engine::metrics_json`] with the front-end facets: replicating
    /// sessions pass their [`Replica`](crate::replication::Replica)'s
    /// [`status`](crate::replication::Replica::status) so the document's
    /// `replication` object reports role, term, and lag; serving sessions pass
    /// their [`ServerHandle`](crate::server::ServerHandle)'s
    /// [`server_metrics`](crate::server::ServerHandle::server_metrics) so the
    /// `server` object reports the reactor counters. `None` renders the
    /// corresponding key as `null`.
    pub fn metrics_json_with(
        &self,
        replication: Option<&crate::replication::ReplicaStatus>,
        server: Option<&crate::server::ServerMetrics>,
    ) -> String {
        let default_metrics = crate::metrics::EngineMetrics::default();
        let metrics = self.metrics.as_deref().unwrap_or(&default_metrics);
        crate::metrics::render_metrics_json(
            metrics,
            &self.stats,
            &self.program,
            self.tracing,
            self.options.threads,
            replication,
            server,
        )
    }

    /// Number of prepared plans currently cached.
    pub fn prepared_count(&self) -> usize {
        self.prepared.len()
    }

    /// The bound on the prepared-plan cache (entries).
    pub fn prepared_capacity(&self) -> usize {
        self.prepared_capacity
    }

    /// Change the bound on the prepared-plan cache. Shrinking below the current size
    /// evicts least-recently-used plans immediately (counted in the session
    /// statistics). A capacity of 0 disables caching entirely.
    pub fn set_prepared_capacity(&mut self, capacity: usize) {
        self.prepared_capacity = capacity;
        self.evict_to_capacity();
    }

    /// Evict least-recently-used plans until the cache fits its capacity.
    fn evict_to_capacity(&mut self) {
        while self.prepared.len() > self.prepared_capacity {
            let Some(oldest) = self
                .prepared
                .iter()
                .min_by_key(|(_, entry)| entry.last_used)
                .map(|(key, _)| key.clone())
            else {
                break;
            };
            self.prepared.remove(&oldest);
            self.stats.plan_cache_evictions += 1;
        }
    }

    /// Number of inserted facts not yet propagated into the materialized model.
    pub fn pending_facts(&self) -> usize {
        self.pending.values().map(Relation::len).sum()
    }

    /// Is the materialized model current (no pending deltas)?
    pub fn is_materialized(&self) -> bool {
        self.model.is_some() && self.pending.values().all(Relation::is_empty)
    }

    fn invalidate(&mut self) {
        self.model = None;
        self.compiled = None;
        self.prepared.clear();
        self.pending.clear();
    }

    /// Register additional rules. Changing the program invalidates the materialized
    /// model and every cached plan (both are program-specific); the facts survive.
    /// On a durable session the rules are logged (as rendered source) before they
    /// are applied; a log failure registers nothing.
    ///
    /// Facts previously inserted under a predicate that now *becomes* IDB migrate to
    /// its assertion relation (see [`Engine::insert`]) so the rewrite pipeline keeps
    /// seeing a purely rule-defined predicate.
    pub fn add_rules(&mut self, rules: Program) -> Result<(), EngineError> {
        if rules.is_empty() {
            return Ok(());
        }
        self.wal_log_source(&rules.to_string())?;
        self.add_rules_unlogged(rules);
        self.wal_maybe_compact()
    }

    /// [`Engine::add_rules`] minus the durability hooks (replay and internal use).
    fn add_rules_unlogged(&mut self, rules: Program) {
        if rules.is_empty() {
            return;
        }
        self.program.extend(rules);
        self.invalidate();
        self.idb = self.program.idb_predicates();
        let migrate: Vec<Symbol> = self
            .idb
            .iter()
            .copied()
            .filter(|&p| self.edb.relation(p).is_some_and(|r| !r.is_empty()))
            .collect();
        for predicate in migrate {
            let relation = self
                .edb
                .remove_relation(predicate)
                .expect("relation checked above");
            self.ensure_assertion_rule(predicate, relation.arity());
            self.edb
                .ensure_relation(Self::asserted_symbol(predicate), relation.arity())
                .merge_from(&relation);
        }
    }

    /// The auxiliary EDB relation holding user-asserted facts of an IDB predicate.
    fn asserted_symbol(predicate: Symbol) -> Symbol {
        Symbol::intern(&format!("{predicate}__asserted"))
    }

    /// Ensure the exit rule `p(X0, ..., Xn) :- p__asserted(X0, ..., Xn).` exists, so
    /// asserted facts of the IDB predicate `p` flow through every rewrite (magic,
    /// factoring) instead of bypassing it.
    fn ensure_assertion_rule(&mut self, predicate: Symbol, arity: usize) {
        let alias = Self::asserted_symbol(predicate);
        let already = self.program.rules.iter().any(|r| {
            r.head.predicate == predicate && r.body.len() == 1 && r.body[0].predicate == alias
        });
        if already {
            return;
        }
        let vars: Vec<Term> = (0..arity).map(|i| Term::var(&format!("X{i}"))).collect();
        self.program.push(Rule::new(
            Atom::new(predicate, vars.clone()),
            vec![Atom::new(alias, vars)],
        ));
        self.invalidate();
        self.idb = self.program.idb_predicates();
    }

    /// The arity the session already associates with `predicate`, from (in order) the
    /// fact store, the materialized model, or the registered rules.
    fn expected_arity(&self, predicate: Symbol) -> Option<usize> {
        self.edb
            .relation(predicate)
            .map(Relation::arity)
            .or_else(|| {
                self.model
                    .as_ref()
                    .and_then(|m| m.relation(predicate))
                    .map(Relation::arity)
            })
            .or_else(|| self.program.arity_of(predicate))
    }

    /// Parse `source` (rules, facts, optionally a `?- atom.` clause) and absorb it:
    /// rules are registered, facts inserted (incrementally when a model exists).
    ///
    /// On a durable session the *whole source text* is logged as one record (after
    /// parsing, before anything is applied), so a bulk load costs one log append +
    /// fsync instead of one per fact; replay re-absorbs the text verbatim.
    pub fn load_source(&mut self, source: &str) -> Result<LoadSummary, EngineError> {
        let parsed = parse_program(source)?;
        if !source.trim().is_empty() {
            self.wal_log_source(source)?;
        }
        // Suspend durability around the nested add_rules/insert calls — the source
        // record above already covers them.
        let suspended = self.durability.take();
        let result = self.absorb_parsed(&parsed);
        self.durability = suspended;
        if result.is_ok() {
            self.wal_maybe_compact()?;
        }
        result
    }

    /// Absorb an already-parsed source (the body of [`Engine::load_source`]).
    fn absorb_parsed(
        &mut self,
        parsed: &factorlog_datalog::parser::ParseOutput,
    ) -> Result<LoadSummary, EngineError> {
        let query = parsed.query().cloned();
        let (rules, facts) = parsed.split_facts();
        let mut summary = LoadSummary {
            rules_added: rules.len(),
            query,
            ..LoadSummary::default()
        };
        self.add_rules_unlogged(rules);
        for atom in &facts {
            if self.insert_atom(atom)? {
                summary.facts_added += 1;
            } else {
                summary.duplicates += 1;
            }
        }
        Ok(summary)
    }

    /// Insert one fact; returns `true` if it was new. New facts are recorded as
    /// pending deltas and propagated into the materialized model by the next query
    /// (delta rounds only — the model is never rebuilt from scratch).
    ///
    /// A fact asserted for an *IDB* predicate `p` is stored in the auxiliary EDB
    /// relation `p__asserted`, with the exit rule `p(..) :- p__asserted(..)`
    /// registered on first use: this keeps every rewrite of `p` (magic, factoring)
    /// sound in the presence of asserted facts, at the cost of one full
    /// re-materialization when the exit rule first appears.
    pub fn insert(
        &mut self,
        predicate: impl Into<Symbol>,
        tuple: &[Const],
    ) -> Result<bool, EngineError> {
        let predicate = predicate.into();
        if let Some(expected) = self.expected_arity(predicate) {
            if expected != tuple.len() {
                return Err(EngineError::ArityMismatch {
                    predicate,
                    expected,
                    got: tuple.len(),
                });
            }
        }
        // Durable sessions log the (validated) insert before applying it — except
        // when the fact is already present: an idempotent re-insert is a no-op and
        // must not grow the log or pay an fsync. (Non-durable sessions skip the
        // probe; the `add_fact` below detects duplicates anyway.)
        if self.durability.is_some() {
            let probe = if self.idb.contains(&predicate) {
                Self::asserted_symbol(predicate)
            } else {
                predicate
            };
            let present = self
                .edb
                .relation(probe)
                .is_some_and(|r| r.arity() == tuple.len() && r.contains(tuple));
            if present {
                return Ok(false);
            }
            self.wal_log_txn(&[(TxnOp::Assert, predicate, tuple.to_vec())])?;
        }
        let target = if self.idb.contains(&predicate) {
            self.ensure_assertion_rule(predicate, tuple.len());
            Self::asserted_symbol(predicate)
        } else {
            predicate
        };
        let new = self.edb.add_fact(target, tuple);
        if !new {
            self.wal_maybe_compact()?;
            return Ok(false);
        }
        if let Some(model) = &mut self.model {
            // Feed the delta only if the model did not already contain the fact (it
            // may exist there as a *derived* fact, in which case the fixpoint already
            // accounts for it).
            if model.add_fact(target, tuple) {
                self.pending
                    .entry(target)
                    .or_insert_with(|| Relation::new(tuple.len()))
                    .insert(tuple);
            }
        }
        self.wal_maybe_compact()?;
        Ok(true)
    }

    /// Insert a ground atom as a fact; errors on non-ground atoms.
    pub fn insert_atom(&mut self, atom: &Atom) -> Result<bool, EngineError> {
        let Some(tuple) = atom.as_fact() else {
            return Err(EngineError::NonGroundFact(atom.to_string()));
        };
        self.insert(atom.predicate, &tuple)
    }

    /// Start an atomic mutation batch (see [`Txn`]). Nothing is applied until
    /// [`Txn::commit`].
    pub fn transaction(&mut self) -> Txn<'_> {
        Txn {
            engine: self,
            ops: Vec::new(),
        }
    }

    /// Retract one fact; returns `true` if it was present (and is now gone). The
    /// single-op convenience over [`Engine::transaction`]: retraction of an IDB
    /// predicate removes the *asserted* base fact (see [`Engine::insert`] on the
    /// `p__asserted` scheme); a fact that is merely derived cannot be retracted and
    /// reports `false`. The materialized model is maintained incrementally via
    /// counting-based delete propagation, never rebuilt.
    pub fn retract(
        &mut self,
        predicate: impl Into<Symbol>,
        tuple: &[Const],
    ) -> Result<bool, EngineError> {
        let mut txn = self.transaction();
        txn.retract(predicate, tuple);
        Ok(txn.commit()?.retracted > 0)
    }

    /// Retract a ground atom; errors on non-ground atoms.
    pub fn retract_atom(&mut self, atom: &Atom) -> Result<bool, EngineError> {
        let Some(tuple) = atom.as_fact() else {
            return Err(EngineError::NonGroundFact(atom.to_string()));
        };
        self.retract(atom.predicate, &tuple)
    }

    /// Validate one transaction batch's arities against the session and within
    /// the batch, without mutating anything — this is what makes a failed
    /// commit a no-op.
    fn validate_txn_ops(&self, ops: &[(TxnOp, Symbol, Vec<Const>)]) -> Result<(), EngineError> {
        let mut batch_arity: FxHashMap<Symbol, usize> = FxHashMap::default();
        for (_, predicate, tuple) in ops {
            let expected = self
                .expected_arity(*predicate)
                .or_else(|| batch_arity.get(predicate).copied());
            if let Some(expected) = expected {
                if expected != tuple.len() {
                    return Err(EngineError::ArityMismatch {
                        predicate: *predicate,
                        expected,
                        got: tuple.len(),
                    });
                }
            } else {
                batch_arity.insert(*predicate, tuple.len());
            }
        }
        Ok(())
    }

    /// Apply one transaction batch: validate everything, then retract, then assert,
    /// maintaining the materialized model incrementally (see [`Txn::commit`] for the
    /// error contract).
    pub(crate) fn apply_txn(
        &mut self,
        ops: Vec<(TxnOp, Symbol, Vec<Const>)>,
    ) -> Result<TxnSummary, EngineError> {
        self.validate_txn_ops(&ops)?;

        // Durable sessions log the validated batch *before* applying it (write-ahead:
        // an append failure aborts the commit with the session untouched; a crash
        // after the append replays the batch on recovery).
        if !ops.is_empty() {
            self.wal_log_txn(&ops)?;
        }
        self.apply_txn_validated(ops)
    }

    /// Commit several independently submitted batches as one group: every
    /// batch is validated separately, the valid ones are appended to the log
    /// under a *single* fsync ([`crate::wal::WalWriter::append_all`]), then
    /// applied in memory in submission order. Returns one result per input
    /// batch, in order. A failed group append fails every valid batch with the
    /// same (durability) error — none of them was acknowledged — while batches
    /// that failed validation keep their own errors. This is the server's
    /// group-commit pipeline; a single-element group degenerates to
    /// [`Engine::apply_txn`] durability-wise.
    pub(crate) fn commit_group(
        &mut self,
        mut batches: Vec<Vec<(TxnOp, Symbol, Vec<Const>)>>,
    ) -> Vec<Result<TxnSummary, EngineError>> {
        let mut results: Vec<Option<Result<TxnSummary, EngineError>>> = batches
            .iter()
            .map(|ops| self.validate_txn_ops(ops).err().map(Err))
            .collect();
        let valid: Vec<usize> = (0..batches.len())
            .filter(|&i| results[i].is_none())
            .collect();
        // One WAL append + fsync for the whole group (empty batches log nothing,
        // exactly as they would through apply_txn).
        let group: Vec<&[(TxnOp, Symbol, Vec<Const>)]> = valid
            .iter()
            .map(|&i| batches[i].as_slice())
            .filter(|ops| !ops.is_empty())
            .collect();
        if let Err(error) = self.wal_log_txn_group(&group) {
            for &i in &valid {
                results[i] = Some(Err(error.clone()));
            }
        } else {
            for &i in &valid {
                results[i] = Some(self.apply_txn_validated(std::mem::take(&mut batches[i])));
            }
        }
        results
            .into_iter()
            .map(|r| r.expect("every batch resolved"))
            .collect()
    }

    /// The post-validation, post-logging half of [`Engine::apply_txn`]: compute
    /// the batch's net effect and apply it to the fact store and the
    /// materialized model. The batch (if any) is already on the log.
    fn apply_txn_validated(
        &mut self,
        ops: Vec<(TxnOp, Symbol, Vec<Const>)>,
    ) -> Result<TxnSummary, EngineError> {
        // Net effect per fact: the last operation wins.
        let mut order: Vec<(Symbol, Vec<Const>)> = Vec::new();
        let mut net: FxHashMap<(Symbol, Vec<Const>), TxnOp> = FxHashMap::default();
        for (op, predicate, tuple) in ops {
            let key = (predicate, tuple);
            if net.insert(key.clone(), op).is_none() {
                order.push(key);
            }
        }

        // Route IDB-predicate ops to the assertion relation. Registering a new
        // assertion exit rule invalidates the model (exactly as single inserts do).
        let mut summary = TxnSummary::default();
        let mut retracts: Vec<(Symbol, Vec<Const>)> = Vec::new();
        let mut asserts: Vec<(Symbol, Vec<Const>)> = Vec::new();
        for (predicate, tuple) in order {
            let op = net[&(predicate, tuple.clone())];
            let target = if self.idb.contains(&predicate) {
                if op == TxnOp::Assert {
                    self.ensure_assertion_rule(predicate, tuple.len());
                }
                Self::asserted_symbol(predicate)
            } else {
                predicate
            };
            match op {
                TxnOp::Assert => asserts.push((target, tuple)),
                TxnOp::Retract => retracts.push((target, tuple)),
            }
        }

        // Apply retractions to the fact store: one batched removal per relation.
        let mut seeds: FxHashMap<Symbol, Relation> = FxHashMap::default();
        for (target, tuple) in retracts {
            let present = self
                .edb
                .relation(target)
                .is_some_and(|r| r.arity() == tuple.len() && r.contains(&tuple));
            if present {
                seeds
                    .entry(target)
                    .or_insert_with(|| Relation::new(tuple.len()))
                    .insert(&tuple);
            } else {
                summary.missing += 1;
            }
        }
        for (&target, doomed) in &seeds {
            let removed = self
                .edb
                .relation_mut(target)
                .expect("retracted facts were found in this relation")
                .remove_all(doomed);
            debug_assert_eq!(removed, doomed.len());
            summary.retracted += removed;
        }

        // Apply assertions to the fact store.
        let mut new_facts: Vec<(Symbol, Vec<Const>)> = Vec::new();
        for (target, tuple) in asserts {
            if self.edb.add_fact(target, &tuple) {
                summary.asserted += 1;
                new_facts.push((target, tuple));
            } else {
                summary.duplicates += 1;
            }
        }

        // Maintain the materialized model, if one exists. The fact store is already
        // committed; an evaluation error (or a caught panic) here degrades to
        // dropping the model via the containment boundary — the next query rebuilds
        // it from the — consistent — fact store.
        if self.model.is_some() && !seeds.is_empty() {
            self.contained(|engine| engine.propagate_retractions(&seeds))?;
        }
        if let Some(model) = &mut self.model {
            for (target, tuple) in new_facts {
                if model.add_fact(target, &tuple) {
                    self.pending
                        .entry(target)
                        .or_insert_with(|| Relation::new(tuple.len()))
                        .insert(&tuple);
                }
            }
        }
        self.wal_maybe_compact()?;
        Ok(summary)
    }

    /// Propagate a batch of base-fact retractions through the materialized model:
    /// flush pending insertions first (delete propagation needs a fixpoint to start
    /// from), then drive the negative deltas via [`seminaive_retract`].
    fn propagate_retractions(
        &mut self,
        seeds: &FxHashMap<Symbol, Relation>,
    ) -> Result<(), EngineError> {
        if self.compiled.is_none() {
            self.compiled = Some(CompiledProgram::compile(&self.program, &self.options)?);
        }
        let compiled = self.compiled.as_ref().expect("compiled above");
        let model = self
            .model
            .as_mut()
            .expect("caller checked the model exists");
        if self.pending.values().any(|r| !r.is_empty()) {
            let stats = seminaive_resume(compiled, model, &self.pending, &self.options)?;
            self.stats.merge(&stats);
            self.pending.clear();
        }
        let stats = seminaive_retract(compiled, model, seeds, &self.edb, &self.options)?;
        self.stats.merge(&stats);
        Ok(())
    }

    /// Serialize the session — registered program plus every base fact — as a
    /// versioned [`Snapshot`]. Caches (the materialized model, pending deltas,
    /// prepared plans) are not part of the image; they rebuild on demand after
    /// [`Engine::restore`].
    pub fn snapshot(&self) -> Snapshot {
        use std::fmt::Write as _;
        let mut text = String::new();
        let _ = writeln!(text, "{SNAPSHOT_HEADER}");
        if !self.program.is_empty() {
            text.push_str("% rules\n");
            let _ = write!(text, "{}", self.program);
        }
        let predicates = self.edb.predicates();
        if predicates.iter().any(|&p| self.edb.count(p) > 0) {
            text.push_str("% facts\n");
            for predicate in predicates {
                let relation = self.edb.relation(predicate).expect("listed predicate");
                for row in relation.iter() {
                    text.push_str(predicate.as_str());
                    if !row.is_empty() {
                        text.push('(');
                        for (i, value) in row.iter().enumerate() {
                            if i > 0 {
                                text.push_str(", ");
                            }
                            write_const(&mut text, value);
                        }
                        text.push(')');
                    }
                    text.push_str(".\n");
                }
            }
        }
        Snapshot { text }
    }

    /// Replace this session's program and facts with a snapshot's, keeping the
    /// session configuration (evaluation options, pipeline options, prepared-plan
    /// capacity) and the cumulative statistics. The model and every cache are
    /// dropped; the first query after a restore re-materializes.
    ///
    /// The snapshot is parsed into a staging session first and swapped in only on
    /// success — a snapshot with a valid header but a corrupt body errors out
    /// without touching this session.
    pub fn restore(&mut self, snapshot: &Snapshot) -> Result<LoadSummary, EngineError> {
        let mut staged = Engine::with_options(self.options.clone());
        let summary = staged.load_source(snapshot.as_str())?;
        // A durable session persists the replacement image *before* swapping it in
        // (the restored state becomes the on-disk snapshot and the log resets —
        // there is no meaningful log delta against a replaced state): a persistence
        // failure leaves both memory and disk on the old state.
        self.wal_persist_restore(&staged)?;
        self.program = staged.program;
        self.idb = staged.idb;
        self.edb = staged.edb;
        self.invalidate();
        Ok(summary)
    }

    /// A fresh session (default configuration) restored from a snapshot.
    pub fn from_snapshot(snapshot: &Snapshot) -> Result<Engine, EngineError> {
        let mut engine = Engine::new();
        engine.restore(snapshot)?;
        Ok(engine)
    }

    /// Run one evaluation (or durably-logged mutation) step under the engine's
    /// fault-containment boundary, enforcing the session invariant: **any
    /// failed evaluation — limit, cancellation, caught panic, injected fault —
    /// drops the materialized view; the fact store stays the source of
    /// truth.** A panic escaping `body` (an injected `Panic`-action fault, or
    /// a genuine bug on the sequential path — parallel workers are already
    /// caught one level down) is converted to [`EvalError::WorkerPanic`].
    /// `AssertUnwindSafe` is sound because the poisoned half-state (a
    /// partially maintained model, partial pending deltas) is exactly what the
    /// invariant discards.
    pub(crate) fn contained<T>(
        &mut self,
        body: impl FnOnce(&mut Engine) -> Result<T, EngineError>,
    ) -> Result<T, EngineError> {
        let caught = {
            let this = &mut *self;
            catch_unwind(AssertUnwindSafe(|| body(this)))
        };
        let result = match caught {
            Ok(inner) => {
                // A successful run merges its counters at the call site; an
                // aborted one only carries them inside the error. Fold those
                // partial counters into the session stats so `:stats` shows
                // the work (and the abort) the failed evaluation did.
                if let Err(EngineError::Eval(
                    EvalError::LimitExceeded { partial_stats, .. }
                    | EvalError::WorkerPanic { partial_stats, .. },
                )) = &inner
                {
                    self.stats.merge(partial_stats);
                }
                inner
            }
            Err(payload) => {
                self.stats.worker_panics += 1;
                Err(EngineError::Eval(EvalError::WorkerPanic {
                    message: panic_message(payload.as_ref()),
                    // Already the session stats — nothing further to merge.
                    partial_stats: Box::new(self.stats.clone()),
                }))
            }
        };
        // Only evaluation failures taint the view. Validation and durability
        // errors abort *before* any state mutation (write-ahead discipline),
        // so the model is still consistent with the fact store there.
        if matches!(result, Err(EngineError::Eval(_))) {
            self.model = None;
            self.pending.clear();
        }
        result
    }

    /// Report reaching an engine-level chaos site (WAL append, compaction). A
    /// no-op unless the session's fault injector is armed there; an
    /// `Error`-action fault aborts the operation with a structured error
    /// (before any state was mutated — the sites sit at the top of the
    /// write-ahead path), a `Panic`-action fault panics and is converted by
    /// the [`Engine::contained`] boundary of the enclosing operation.
    pub(crate) fn chaos_hit(&mut self, site: FaultSite) -> Result<(), EngineError> {
        let Some(injector) = &self.options.fault_injector else {
            return Ok(());
        };
        match injector.hit(site) {
            None => Ok(()),
            Some(FaultAction::Error) => Err(EngineError::Eval(EvalError::Injected { site })),
            Some(FaultAction::Panic) => panic!("injected fault ({site})"),
        }
    }

    /// Bring the materialized model up to date: full evaluation the first time,
    /// seeded-delta resume afterwards.
    fn refresh(&mut self) -> Result<(), EngineError> {
        if self.compiled.is_none() {
            self.compiled = Some(CompiledProgram::compile(&self.program, &self.options)?);
        }
        let compiled = self.compiled.as_ref().expect("compiled above");
        match &mut self.model {
            None => {
                let result = seminaive_evaluate_compiled(compiled, &self.edb, &self.options)?;
                self.stats.merge(&result.stats);
                self.model = Some(result.database);
                self.pending.clear();
            }
            Some(model) => {
                if self.pending.values().any(|r| !r.is_empty()) {
                    let stats = seminaive_resume(compiled, model, &self.pending, &self.options)?;
                    self.stats.merge(&stats);
                    self.pending.clear();
                }
            }
        }
        Ok(())
    }

    /// Answers to `query` over the materialized model of the registered program
    /// (projected onto the query's free positions, sorted). Pending inserts are
    /// propagated first via incremental delta rounds.
    pub fn query(&mut self, query: &Query) -> Result<Vec<Vec<Const>>, EngineError> {
        let start = self.tracing.then(std::time::Instant::now);
        self.contained(Engine::refresh)?;
        let answers = self
            .model
            .as_ref()
            .expect("model materialized by refresh")
            .answers(query);
        if let (Some(start), Some(metrics)) = (start, self.metrics.as_deref_mut()) {
            metrics.query_latency.record(start.elapsed());
        }
        Ok(answers)
    }

    /// Bring the materialized model up to date (under the containment boundary)
    /// and return a clone of it: the full model answers *any* atom query via
    /// [`Database::answers`], so the server snapshots it into an immutable,
    /// `Arc`-shared view that reader threads query without touching the engine.
    pub(crate) fn refreshed_model(&mut self) -> Result<Database, EngineError> {
        self.contained(Engine::refresh)?;
        Ok(self.model.clone().expect("model materialized by refresh"))
    }

    /// Look up (or build) the prepared plan for `query`'s (predicate, shape),
    /// recording a cache hit or miss in the session statistics.
    fn prepared_plan(&mut self, query: &Query) -> Result<(PreparedPlan, Strategy), EngineError> {
        let start = self.tracing.then(std::time::Instant::now);
        let result = self.prepared_plan_inner(query);
        if let (Some(start), Some(metrics)) = (start, self.metrics.as_deref_mut()) {
            metrics.prepared_lookup.record(start.elapsed());
        }
        result
    }

    fn prepared_plan_inner(
        &mut self,
        query: &Query,
    ) -> Result<(PreparedPlan, Strategy), EngineError> {
        let key = (query.atom.predicate, query_shape(query));
        let bound: Vec<Const> = query
            .atom
            .terms
            .iter()
            .filter_map(|t| t.as_const())
            .collect();
        self.prepared_clock += 1;
        let now = self.prepared_clock;
        if let Some(entry) = self.prepared.get_mut(&key) {
            if let Some(plan) = entry.plan.rebind(&bound) {
                entry.last_used = now;
                let strategy = entry.strategy;
                self.stats.record_plan_lookup(true);
                return Ok((plan, strategy));
            }
        }
        // Miss: run the full pipeline for this query and cache the plan (most recent
        // constants win when rebinding was not applicable), evicting the
        // least-recently-used plan when the cache is full.
        self.stats.record_plan_lookup(false);
        let optimized = optimize_query(&self.program, query, &self.pipeline)?;
        if self.tracing {
            if let Some(metrics) = self.metrics.as_deref_mut() {
                metrics.absorb_pass_times(&optimized.pass_times);
            }
        }
        let plan = optimized.prepare(&self.options)?;
        let strategy = optimized.strategy;
        if self.prepared_capacity > 0 {
            self.prepared.insert(
                key,
                CachedPlan {
                    plan: plan.clone(),
                    strategy,
                    last_used: now,
                },
            );
            self.evict_to_capacity();
        }
        Ok((plan, strategy))
    }

    /// Ensure a prepared plan exists for `query`; reports whether a cached plan was
    /// reused and which strategy the plan embodies.
    pub fn prepare(&mut self, query: &Query) -> Result<PrepareReport, EngineError> {
        let hits_before = self.stats.plan_cache_hits;
        let (_, strategy) = self.prepared_plan(query)?;
        Ok(PrepareReport {
            cached: self.stats.plan_cache_hits > hits_before,
            strategy,
        })
    }

    /// Is a prepared plan cached for `query`'s (predicate, shape)?
    pub fn has_prepared(&self, query: &Query) -> bool {
        self.prepared
            .contains_key(&(query.atom.predicate, query_shape(query)))
    }

    /// The strategy of the cached plan for `query`, if one is cached (a pure lookup:
    /// no counters are touched).
    pub fn prepared_strategy(&self, query: &Query) -> Option<Strategy> {
        self.prepared
            .get(&(query.atom.predicate, query_shape(query)))
            .map(|entry| entry.strategy)
    }

    /// Answers to `query` via the prepared-plan path: the optimization pipeline runs
    /// at most once per (predicate, shape); subsequent calls replay the cached
    /// compiled plan over the current facts. Same answer contract as
    /// [`Engine::query`].
    pub fn query_prepared(&mut self, query: &Query) -> Result<Vec<Vec<Const>>, EngineError> {
        let start = self.tracing.then(std::time::Instant::now);
        let (plan, _) = self.prepared_plan(query)?;
        let result = self.contained(|engine| {
            let result = plan.evaluate(&engine.edb, &engine.options)?;
            engine.stats.merge(&result.stats);
            Ok(result)
        })?;
        let answers = result.answers(plan.query());
        if let (Some(start), Some(metrics)) = (start, self.metrics.as_deref_mut()) {
            metrics.query_latency.record(start.elapsed());
        }
        Ok(answers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use factorlog_datalog::eval::evaluate_default;
    use factorlog_datalog::parser::{parse_atom, parse_query};

    fn c(i: i64) -> Const {
        Const::Int(i)
    }

    fn tc_engine(n: i64) -> Engine {
        let mut engine = Engine::new();
        engine
            .load_source("t(X, Y) :- e(X, Y).\nt(X, Y) :- e(X, W), t(W, Y).")
            .unwrap();
        for i in 0..n {
            engine.insert("e", &[c(i), c(i + 1)]).unwrap();
        }
        engine
    }

    #[test]
    fn query_matches_batch_evaluation() {
        let mut engine = tc_engine(10);
        let query = parse_query("t(0, Y)").unwrap();
        let batch = evaluate_default(engine.program(), engine.facts())
            .unwrap()
            .answers(&query);
        assert_eq!(engine.query(&query).unwrap(), batch);
        assert_eq!(batch.len(), 10);
    }

    #[test]
    fn inserts_after_materialization_are_incremental() {
        let mut engine = tc_engine(10);
        let query = parse_query("t(0, Y)").unwrap();
        assert_eq!(engine.query(&query).unwrap().len(), 10);
        let inferences_after_first = engine.stats().inferences;

        engine.insert("e", &[c(10), c(11)]).unwrap();
        assert_eq!(engine.pending_facts(), 1);
        assert!(!engine.is_materialized());
        assert_eq!(engine.query(&query).unwrap().len(), 11);
        assert!(engine.is_materialized());

        let incremental_cost = engine.stats().inferences - inferences_after_first;
        assert!(
            incremental_cost < inferences_after_first,
            "resume ({incremental_cost}) must cost less than the initial fixpoint \
             ({inferences_after_first})"
        );
    }

    #[test]
    fn duplicate_and_derived_inserts_are_no_ops() {
        let mut engine = tc_engine(5);
        let query = parse_query("t(0, Y)").unwrap();
        engine.query(&query).unwrap();
        // Duplicate EDB fact.
        assert!(!engine.insert("e", &[c(0), c(1)]).unwrap());
        assert_eq!(engine.pending_facts(), 0);
        // Fact already derivable (t(0, 1) is in the model): inserted into the EDB but
        // contributes no delta work.
        assert!(engine.insert("t", &[c(0), c(1)]).unwrap());
        assert_eq!(engine.pending_facts(), 0);
        assert_eq!(engine.query(&query).unwrap().len(), 5);
    }

    #[test]
    fn inserting_idb_facts_propagates() {
        let mut engine = tc_engine(3);
        let query = parse_query("t(0, Y)").unwrap();
        assert_eq!(engine.query(&query).unwrap().len(), 3);
        // Assert a derived fact that is not otherwise derivable; the recursion must
        // extend it.
        engine.insert("t", &[c(3), c(100)]).unwrap();
        let answers = engine.query(&query).unwrap();
        assert!(answers.contains(&vec![c(100)]));
    }

    #[test]
    fn add_rules_invalidates_model_but_keeps_facts() {
        let mut engine = tc_engine(4);
        let query = parse_query("t(0, Y)").unwrap();
        assert_eq!(engine.query(&query).unwrap().len(), 4);
        engine.load_source("s(X, Y) :- t(Y, X).").unwrap();
        assert!(!engine.is_materialized());
        let s_query = parse_query("s(4, Y)").unwrap();
        assert_eq!(engine.query(&s_query).unwrap().len(), 4);
        assert_eq!(engine.query(&query).unwrap().len(), 4);
    }

    #[test]
    fn arity_and_groundness_are_checked() {
        let mut engine = tc_engine(2);
        let err = engine.insert("e", &[c(1)]).unwrap_err();
        assert!(matches!(err, EngineError::ArityMismatch { .. }));
        let atom = parse_atom("e(X, 1)").unwrap();
        let err = engine.insert_atom(&atom).unwrap_err();
        assert!(matches!(err, EngineError::NonGroundFact(_)));
        assert!(format!("{err}").contains("non-ground"));
    }

    #[test]
    fn prepared_cache_hits_on_same_adornment() {
        let mut engine = tc_engine(8);
        let query = parse_query("t(0, Y)").unwrap();
        let first = engine.query_prepared(&query).unwrap();
        assert_eq!(engine.stats().plan_cache_misses, 1);
        assert_eq!(engine.stats().plan_cache_hits, 0);
        let second = engine.query_prepared(&query).unwrap();
        assert_eq!(first, second);
        assert_eq!(engine.stats().plan_cache_hits, 1);
        assert_eq!(engine.prepared_count(), 1);
    }

    #[test]
    fn prepared_cache_rebinds_across_constants() {
        let mut engine = tc_engine(10);
        let q0 = parse_query("t(0, Y)").unwrap();
        let q5 = parse_query("t(5, Y)").unwrap();
        assert_eq!(engine.query_prepared(&q0).unwrap().len(), 10);
        // Different constant, same adornment: the cached plan is rebound, not rebuilt.
        assert_eq!(engine.query_prepared(&q5).unwrap().len(), 5);
        assert_eq!(engine.stats().plan_cache_hits, 1);
        assert_eq!(engine.stats().plan_cache_misses, 1);
        // And the prepared answers agree with the materialized-model answers.
        assert_eq!(
            engine.query_prepared(&q5).unwrap(),
            engine.query(&q5).unwrap()
        );
    }

    #[test]
    fn wrong_arity_insert_on_model_only_predicate_errors_cleanly() {
        // `t` exists only as rules (and in the model after a query), never in the
        // EDB; a wrong-arity insert must error, not panic in the storage layer.
        let mut engine = tc_engine(3);
        let query = parse_query("t(0, Y)").unwrap();
        engine.query(&query).unwrap();
        let err = engine.insert("t", &[c(1)]).unwrap_err();
        assert!(matches!(
            err,
            EngineError::ArityMismatch {
                expected: 2,
                got: 1,
                ..
            }
        ));
        // And the fact store was not polluted with a wrong-arity relation.
        assert_eq!(engine.facts().count("t"), 0);
        assert_eq!(engine.query(&query).unwrap().len(), 3);
    }

    #[test]
    fn repeated_variable_queries_get_their_own_plans() {
        let mut engine = Engine::new();
        engine
            .load_source("t(X, Y) :- e(X, Y).\nt(X, Y) :- e(X, W), t(W, Y).")
            .unwrap();
        engine.insert("e", &[c(0), c(1)]).unwrap();
        engine.insert("e", &[c(1), c(0)]).unwrap();
        let q_xy = parse_query("t(X, Y)").unwrap();
        let q_xx = parse_query("t(X, X)").unwrap();
        // Cache the general plan first, then the repeated-variable query: it must not
        // reuse the (t, "ff") plan.
        let xy = engine.query_prepared(&q_xy).unwrap();
        let xx = engine.query_prepared(&q_xx).unwrap();
        assert_eq!(xy, engine.query(&q_xy).unwrap());
        assert_eq!(xx, engine.query(&q_xx).unwrap());
        assert_eq!(xx, vec![vec![c(0)], vec![c(1)]]);
        assert_eq!(engine.prepared_count(), 2);
    }

    #[test]
    fn prepared_path_sees_asserted_idb_facts() {
        let mut engine = Engine::new();
        engine
            .load_source("t(X, Y) :- e(X, Y).\nt(X, Y) :- e(X, W), t(W, Y).")
            .unwrap();
        engine.insert("e", &[c(0), c(1)]).unwrap();
        let query = parse_query("t(0, Y)").unwrap();
        assert_eq!(engine.query_prepared(&query).unwrap(), vec![vec![c(1)]]);
        // Assert a t fact after the plan is cached: the assertion exit rule
        // invalidates the plan and the rebuilt plan must include it — and extend it
        // through the recursion (t(0,99) via t(0,1) ∘ t(1,99)? no: via e(0,1)+t(1,99)).
        engine.insert("t", &[c(1), c(99)]).unwrap();
        let prepared = engine.query_prepared(&query).unwrap();
        let materialized = engine.query(&query).unwrap();
        assert_eq!(prepared, materialized);
        assert!(prepared.contains(&vec![c(99)]));
    }

    #[test]
    fn facts_present_before_rules_migrate_to_assertions() {
        // Insert t facts while t is still EDB, then register rules for t: the facts
        // must keep counting as part of the model and the rewrites must stay sound.
        let mut engine = Engine::new();
        engine.insert("t", &[c(7), c(8)]).unwrap();
        engine
            .load_source("t(X, Y) :- e(X, Y).\nt(X, Y) :- e(X, W), t(W, Y).")
            .unwrap();
        engine.insert("e", &[c(0), c(7)]).unwrap();
        let query = parse_query("t(0, Y)").unwrap();
        let answers = engine.query(&query).unwrap();
        assert_eq!(answers, vec![vec![c(7)], vec![c(8)]]);
        assert_eq!(engine.query_prepared(&query).unwrap(), answers);
    }

    #[test]
    fn constant_headed_rules_answer_correctly_through_the_engine() {
        // Companion to the pipeline-level adornment regression: a rule whose head has
        // a constant in the free position of the query adornment must contribute its
        // answers on the materialized path, the prepared path, and after rebinding the
        // cached plan to a different query constant (the rebind guard must refuse or
        // rebuild, never drop the rule).
        let mut engine = Engine::new();
        engine
            .load_source("t(X, Y) :- e(X, Y).\nt(X, Y) :- e(X, W), t(W, Y).\nt(X, 7) :- mark(X).")
            .unwrap();
        for (a, b) in [(0i64, 1i64), (1, 2), (7, 8)] {
            engine.insert("e", &[c(a), c(b)]).unwrap();
        }
        engine.insert("mark", &[c(1)]).unwrap();
        let q0 = parse_query("t(0, Y)").unwrap();
        // Derivation through the constant head: t(1, 7) via mark(1), then t(0, 7) by
        // prepending e(0, 1) — alongside the ordinary edge answers 1 and 2.
        let materialized = engine.query(&q0).unwrap();
        assert_eq!(materialized, vec![vec![c(1)], vec![c(2)], vec![c(7)]]);
        assert_eq!(engine.query_prepared(&q0).unwrap(), materialized);
        // A different constant hits the rebind guard (7 is mentioned by a rule).
        let q7 = parse_query("t(7, Y)").unwrap();
        assert_eq!(
            engine.query_prepared(&q7).unwrap(),
            engine.query(&q7).unwrap()
        );
    }

    #[test]
    fn prepare_reports_strategy_and_caching() {
        let mut engine = tc_engine(4);
        let query = parse_query("t(0, Y)").unwrap();
        let first = engine.prepare(&query).unwrap();
        assert!(!first.cached);
        assert_eq!(first.strategy, Strategy::FactoredMagic);
        assert!(engine.has_prepared(&query));
        let again = engine.prepare(&query).unwrap();
        assert!(again.cached);
    }

    #[test]
    fn rule_changes_drop_prepared_plans() {
        let mut engine = tc_engine(4);
        let query = parse_query("t(0, Y)").unwrap();
        engine.query_prepared(&query).unwrap();
        assert_eq!(engine.prepared_count(), 1);
        engine.load_source("u(X) :- t(X, X).").unwrap();
        assert_eq!(engine.prepared_count(), 0);
    }

    #[test]
    fn prepared_cache_evicts_least_recently_used() {
        let mut engine = Engine::new();
        engine
            .load_source(
                "t(X, Y) :- e(X, Y).\nt(X, Y) :- e(X, W), t(W, Y).\n\
                 s(X) :- t(X, X).\nu(Y) :- t(0, Y).",
            )
            .unwrap();
        engine.insert("e", &[c(0), c(1)]).unwrap();
        engine.insert("e", &[c(1), c(0)]).unwrap();
        engine.set_prepared_capacity(2);
        assert_eq!(engine.prepared_capacity(), 2);

        let q_t = parse_query("t(0, Y)").unwrap();
        let q_s = parse_query("s(X)").unwrap();
        let q_u = parse_query("u(Y)").unwrap();
        engine.query_prepared(&q_t).unwrap();
        engine.query_prepared(&q_s).unwrap();
        assert_eq!(engine.prepared_count(), 2);
        assert_eq!(engine.stats().plan_cache_evictions, 0);

        // Touch t so s becomes the LRU entry, then overflow with u.
        engine.query_prepared(&q_t).unwrap();
        engine.query_prepared(&q_u).unwrap();
        assert_eq!(engine.prepared_count(), 2);
        assert_eq!(engine.stats().plan_cache_evictions, 1);
        assert!(engine.has_prepared(&q_t), "recently used plan survives");
        assert!(engine.has_prepared(&q_u));
        assert!(!engine.has_prepared(&q_s), "LRU plan is evicted");

        // The evicted query still answers correctly (re-prepared on demand).
        let misses_before = engine.stats().plan_cache_misses;
        let answers = engine.query_prepared(&q_s).unwrap();
        assert_eq!(answers, engine.query(&q_s).unwrap());
        assert_eq!(engine.stats().plan_cache_misses, misses_before + 1);
    }

    #[test]
    fn shrinking_prepared_capacity_evicts_immediately() {
        let mut engine = tc_engine(4);
        let q0 = parse_query("t(0, Y)").unwrap();
        let q_all = parse_query("t(X, Y)").unwrap();
        engine.query_prepared(&q0).unwrap();
        engine.query_prepared(&q_all).unwrap();
        assert_eq!(engine.prepared_count(), 2);
        engine.set_prepared_capacity(1);
        assert_eq!(engine.prepared_count(), 1);
        assert_eq!(engine.stats().plan_cache_evictions, 1);
        // Capacity 0 disables caching.
        engine.set_prepared_capacity(0);
        assert_eq!(engine.prepared_count(), 0);
        engine.query_prepared(&q0).unwrap();
        assert_eq!(engine.prepared_count(), 0);
    }

    #[test]
    fn default_prepared_capacity_is_bounded() {
        let engine = Engine::new();
        assert_eq!(engine.prepared_capacity(), DEFAULT_PREPARED_CAPACITY);
        assert_eq!(engine.prepared_capacity(), 256);
    }

    #[test]
    fn stats_accumulate_across_calls() {
        let mut engine = tc_engine(6);
        let query = parse_query("t(0, Y)").unwrap();
        engine.query(&query).unwrap();
        let after_one = engine.stats().inferences;
        engine.insert("e", &[c(6), c(7)]).unwrap();
        engine.query(&query).unwrap();
        assert!(
            engine.stats().inferences > after_one,
            "counters are cumulative"
        );
        engine.reset_stats();
        assert_eq!(engine.stats().inferences, 0);
    }

    #[test]
    fn load_summary_reports_what_happened() {
        let mut engine = Engine::new();
        let summary = engine
            .load_source("t(X, Y) :- e(X, Y).\ne(1, 2).\ne(1, 2).\n?- t(1, Y).")
            .unwrap();
        assert_eq!(summary.rules_added, 1);
        assert_eq!(summary.facts_added, 1);
        assert_eq!(summary.duplicates, 1);
        assert_eq!(summary.query.unwrap().atom.predicate, Symbol::intern("t"));
    }

    #[test]
    fn options_round_trip_and_invalidate() {
        let mut engine = tc_engine(3);
        let query = parse_query("t(0, Y)").unwrap();
        engine.query(&query).unwrap();
        let options = EvalOptions {
            max_iterations: 123,
            ..EvalOptions::default()
        };
        engine.set_options(options);
        assert_eq!(engine.options().max_iterations, 123);
        assert!(!engine.is_materialized());
        assert_eq!(engine.query(&query).unwrap().len(), 3);
    }

    #[test]
    fn set_threads_keeps_model_and_plans_and_answers() {
        let mut engine = tc_engine(12);
        let query = parse_query("t(0, Y)").unwrap();
        let sequential = engine.query(&query).unwrap();
        engine.query_prepared(&query).unwrap();
        let plans = engine.prepared_count();
        assert!(engine.is_materialized());

        // Raising the thread count invalidates nothing and answers identically.
        engine.set_threads(4);
        assert_eq!(engine.threads(), 4);
        assert!(engine.is_materialized());
        assert_eq!(engine.prepared_count(), plans);
        assert_eq!(engine.query(&query).unwrap(), sequential);
        assert_eq!(engine.query_prepared(&query).unwrap(), sequential);

        // Inserts keep propagating incrementally under the new setting.
        engine.insert("e", &[c(12), c(13)]).unwrap();
        assert_eq!(engine.query(&query).unwrap().len(), 13);
    }

    #[test]
    fn parallel_session_matches_sequential_session() {
        // Two whole sessions — materialization, incremental resume, prepared replay —
        // at 1 vs 4 threads with the threshold forced to zero must agree exactly.
        let run = |threads: usize| {
            let mut engine = Engine::with_options(EvalOptions {
                threads,
                parallel_threshold: 0,
                ..EvalOptions::default()
            });
            engine
                .load_source("t(X, Y) :- e(X, Y).\nt(X, Y) :- e(X, W), t(W, Y).")
                .unwrap();
            for i in 0..20i64 {
                engine.insert("e", &[c(i), c(i + 1)]).unwrap();
            }
            let query = parse_query("t(0, Y)").unwrap();
            let first = engine.query(&query).unwrap();
            engine.insert("e", &[c(20), c(21)]).unwrap();
            let second = engine.query(&query).unwrap();
            let prepared = engine.query_prepared(&query).unwrap();
            (first, second, prepared, engine.stats().inferences)
        };
        let (f1, s1, p1, inf1) = run(1);
        let (f4, s4, p4, inf4) = run(4);
        assert_eq!(f1, f4);
        assert_eq!(s1, s4);
        assert_eq!(p1, p4);
        assert_eq!(inf1, inf4, "inference counts are thread-invariant");
    }

    #[test]
    fn retract_maintains_the_model_incrementally() {
        let mut engine = tc_engine(10);
        let query = parse_query("t(0, Y)").unwrap();
        assert_eq!(engine.query(&query).unwrap().len(), 10);
        assert!(engine.is_materialized());

        // Retracting a middle edge cuts the chain; the model is maintained by delete
        // propagation (still materialized afterwards), not rebuilt.
        assert!(engine.retract("e", &[c(4), c(5)]).unwrap());
        assert!(engine.is_materialized(), "retraction maintains in place");
        assert_eq!(engine.query(&query).unwrap().len(), 4);
        assert!(engine.stats().retractions > 0);

        // The maintained answers equal from-scratch evaluation of the surviving EDB.
        let batch = evaluate_default(engine.program(), engine.facts())
            .unwrap()
            .answers(&query);
        assert_eq!(engine.query(&query).unwrap(), batch);

        // Retracting an absent fact is a no-op.
        assert!(!engine.retract("e", &[c(4), c(5)]).unwrap());
        assert!(!engine.retract("e", &[c(77), c(78)]).unwrap());
    }

    #[test]
    fn transaction_applies_batch_atomically() {
        let mut engine = tc_engine(6);
        let query = parse_query("t(0, Y)").unwrap();
        engine.query(&query).unwrap();

        let mut txn = engine.transaction();
        txn.retract("e", &[c(2), c(3)])
            .assert("e", &[c(2), c(30)])
            .assert("e", &[c(30), c(3)])
            .assert("e", &[c(0), c(1)]); // duplicate
        txn.retract("e", &[c(90), c(91)]); // missing
        assert_eq!(txn.len(), 5);
        let summary = txn.commit().unwrap();
        assert_eq!(summary.asserted, 2);
        assert_eq!(summary.retracted, 1);
        assert_eq!(summary.duplicates, 1);
        assert_eq!(summary.missing, 1);

        // The detour 2→30→3 replaces the cut edge: same reachability plus node 30.
        let answers = engine.query(&query).unwrap();
        assert!(answers.contains(&vec![c(30)]));
        assert_eq!(answers.len(), 7);
        let batch = evaluate_default(engine.program(), engine.facts())
            .unwrap()
            .answers(&query);
        assert_eq!(engine.query(&query).unwrap(), batch);
    }

    #[test]
    fn failed_commit_is_a_no_op() {
        let mut engine = tc_engine(4);
        let query = parse_query("t(0, Y)").unwrap();
        engine.query(&query).unwrap();
        let facts_before = engine.facts().total_facts();

        let mut txn = engine.transaction();
        txn.retract("e", &[c(0), c(1)]).assert("e", &[c(9)]); // arity error
        let err = txn.commit().unwrap_err();
        assert!(matches!(err, EngineError::ArityMismatch { .. }));
        // Nothing was applied — not even the valid retraction queued first.
        assert_eq!(engine.facts().total_facts(), facts_before);
        assert_eq!(engine.query(&query).unwrap().len(), 4);

        // Arity consistency is also enforced *within* a batch for new predicates.
        let mut txn = engine.transaction();
        txn.assert("fresh", &[c(1), c(2)]).assert("fresh", &[c(3)]);
        assert!(matches!(
            txn.commit().unwrap_err(),
            EngineError::ArityMismatch { .. }
        ));
        assert_eq!(engine.facts().count("fresh"), 0);
    }

    #[test]
    fn last_op_wins_within_a_batch() {
        let mut engine = tc_engine(3);
        let query = parse_query("t(0, Y)").unwrap();
        engine.query(&query).unwrap();

        // retract-then-assert: present afterwards.
        let mut txn = engine.transaction();
        txn.retract("e", &[c(0), c(1)]).assert("e", &[c(0), c(1)]);
        let summary = txn.commit().unwrap();
        assert_eq!((summary.retracted, summary.duplicates), (0, 1));
        assert_eq!(engine.query(&query).unwrap().len(), 3);

        // assert-then-retract: absent afterwards.
        let mut txn = engine.transaction();
        txn.assert("e", &[c(9), c(10)]).retract("e", &[c(9), c(10)]);
        let summary = txn.commit().unwrap();
        assert_eq!((summary.asserted, summary.missing), (0, 1));
        assert!(!engine
            .facts()
            .contains_atom(&parse_atom("e(9, 10)").unwrap()));
    }

    #[test]
    fn retracting_asserted_idb_facts_propagates() {
        let mut engine = tc_engine(3);
        let query = parse_query("t(0, Y)").unwrap();
        engine.insert("t", &[c(3), c(100)]).unwrap();
        assert!(engine.query(&query).unwrap().contains(&vec![c(100)]));

        // Retracting the asserted t fact removes it and its consequences…
        assert!(engine.retract("t", &[c(3), c(100)]).unwrap());
        let answers = engine.query(&query).unwrap();
        assert!(!answers.contains(&vec![c(100)]));
        assert_eq!(answers.len(), 3);
        // …but a derived fact cannot be retracted.
        assert!(!engine.retract("t", &[c(0), c(1)]).unwrap());
        assert_eq!(engine.query(&query).unwrap().len(), 3);
        let batch = evaluate_default(engine.program(), engine.facts())
            .unwrap()
            .answers(&query);
        assert_eq!(engine.query(&query).unwrap(), batch);
    }

    #[test]
    fn retract_flushes_pending_inserts_first() {
        let mut engine = tc_engine(5);
        let query = parse_query("t(0, Y)").unwrap();
        engine.query(&query).unwrap();
        // Insert without querying (stays pending), then retract: the commit must
        // absorb the pending delta before propagating the deletion.
        engine.insert("e", &[c(5), c(6)]).unwrap();
        assert_eq!(engine.pending_facts(), 1);
        assert!(engine.retract("e", &[c(2), c(3)]).unwrap());
        assert_eq!(engine.pending_facts(), 0);
        assert_eq!(engine.query(&query).unwrap().len(), 2);
        let batch = evaluate_default(engine.program(), engine.facts())
            .unwrap()
            .answers(&query);
        assert_eq!(engine.query(&query).unwrap(), batch);
    }

    #[test]
    fn prepared_queries_see_retractions() {
        let mut engine = tc_engine(8);
        let query = parse_query("t(0, Y)").unwrap();
        assert_eq!(engine.query_prepared(&query).unwrap().len(), 8);
        engine.retract("e", &[c(3), c(4)]).unwrap();
        // The prepared plan replays over the current fact store: no invalidation
        // needed, the answers just shrink.
        assert_eq!(engine.query_prepared(&query).unwrap().len(), 3);
        assert_eq!(
            engine.query_prepared(&query).unwrap(),
            engine.query(&query).unwrap()
        );
    }

    #[test]
    fn snapshot_restore_round_trips_a_session() {
        let mut engine = tc_engine(5);
        let query = parse_query("t(0, Y)").unwrap();
        engine.insert("t", &[c(5), c(50)]).unwrap(); // asserted IDB fact
        engine.insert("label", &[Const::sym("blue")]).unwrap();
        let answers = engine.query(&query).unwrap();

        let snapshot = engine.snapshot();
        assert!(is_snapshot_text(snapshot.as_str()));
        let text = snapshot.as_str();
        assert!(text.starts_with(SNAPSHOT_HEADER));
        assert!(text.contains("t(X, Y) :- e(X, W), t(W, Y)."));
        assert!(text.contains("t__asserted(5, 50)."));

        // Restore into a fresh engine: same program, same facts, same answers.
        let mut restored = Engine::from_snapshot(&snapshot).unwrap();
        assert_eq!(restored.query(&query).unwrap(), answers);
        assert_eq!(restored.facts().total_facts(), engine.facts().total_facts());
        // Prepared plans are rebuilt on demand after restore and keep working.
        assert_eq!(restored.query_prepared(&query).unwrap(), answers);
        assert_eq!(restored.stats().plan_cache_misses, 1);
        assert_eq!(restored.query_prepared(&query).unwrap(), answers);
        assert_eq!(restored.stats().plan_cache_hits, 1);
        // And mutations keep flowing after a restore.
        restored.retract("e", &[c(0), c(1)]).unwrap();
        assert!(restored.query(&query).unwrap().is_empty());
    }

    #[test]
    fn snapshot_quotes_non_identifier_symbols() {
        let mut engine = Engine::new();
        engine.insert("tag", &[Const::sym("has space")]).unwrap();
        engine.insert("tag", &[Const::sym("plain")]).unwrap();
        let snapshot = engine.snapshot();
        assert!(snapshot.as_str().contains("tag(\"has space\")."));
        assert!(snapshot.as_str().contains("tag(plain)."));
        let restored = Engine::from_snapshot(&snapshot).unwrap();
        assert_eq!(restored.facts().count("tag"), 2);
    }

    #[test]
    fn snapshot_files_round_trip() {
        let path = std::env::temp_dir().join("factorlog_engine_snapshot_test.fl");
        let mut engine = tc_engine(4);
        let query = parse_query("t(0, Y)").unwrap();
        let answers = engine.query(&query).unwrap();
        engine.snapshot().save(&path).unwrap();

        let loaded = Snapshot::load(&path).unwrap();
        let mut restored = Engine::new();
        restored.restore(&loaded).unwrap();
        assert_eq!(restored.query(&query).unwrap(), answers);
        std::fs::remove_file(&path).ok();

        // Bad inputs are rejected with clear errors.
        assert!(matches!(
            Snapshot::from_text("e(1, 2)."),
            Err(EngineError::Snapshot(_))
        ));
        assert!(matches!(
            Snapshot::load("/nonexistent/path.fl"),
            Err(EngineError::Io(_))
        ));
    }

    #[test]
    fn loading_missing_or_empty_snapshot_files_errors_cleanly() {
        // Nonexistent path: a clean EngineError::Io naming the path.
        let err = Snapshot::load("/nonexistent/factorlog_snapshot.fl").unwrap_err();
        assert!(matches!(err, EngineError::Io(_)));
        assert!(format!("{err}").contains("/nonexistent/factorlog_snapshot.fl"));

        // Empty (and whitespace-only) files: an explicit snapshot error, not a
        // confusing "missing header" parse of nothing.
        let path = std::env::temp_dir().join(format!(
            "factorlog_empty_snapshot_{}.fl",
            std::process::id()
        ));
        for contents in ["", "  \n\n  "] {
            std::fs::write(&path, contents).unwrap();
            let err = Snapshot::load(&path).unwrap_err();
            assert!(matches!(err, EngineError::Snapshot(_)), "{contents:?}");
            assert!(format!("{err}").contains("is empty"), "{err}");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn unknown_snapshot_versions_fail_explicitly() {
        // A v2 header still *sniffs* as a snapshot (so front ends do not absorb it
        // as plain source)…
        let v2 = "% factorlog snapshot v2\ne(1, 2).\n";
        assert!(is_snapshot_text(v2));
        // …but wrapping it fails with an explicit unsupported-version error.
        let err = Snapshot::from_text(v2).unwrap_err();
        assert!(matches!(err, EngineError::Snapshot(_)));
        let message = format!("{err}");
        assert!(
            message.contains("unsupported snapshot version"),
            "{message}"
        );
        assert!(message.contains("v2"), "{message}");

        // A header-free text is still "missing header", not "unsupported version".
        let err = Snapshot::from_text("e(1, 2).").unwrap_err();
        assert!(format!("{err}").contains("missing"), "{err}");
        // And v1 snapshots keep loading.
        assert!(Snapshot::from_text(&format!("{SNAPSHOT_HEADER}\ne(1, 2).\n")).is_ok());
    }

    #[test]
    fn failed_restore_leaves_the_session_untouched() {
        // A valid header with a corrupt body must error WITHOUT wiping the live
        // session (regression: restore used to clear state before parsing).
        let mut engine = tc_engine(3);
        let query = parse_query("t(0, Y)").unwrap();
        assert_eq!(engine.query(&query).unwrap().len(), 3);
        let corrupt = Snapshot::from_text(&format!(
            "{SNAPSHOT_HEADER}\ne(1, 2).\nthis is (not datalog"
        ))
        .unwrap();
        assert!(engine.restore(&corrupt).is_err());
        assert_eq!(
            engine.facts().count("e"),
            3,
            "facts survive a failed restore"
        );
        assert_eq!(engine.program().len(), 2, "rules survive a failed restore");
        assert_eq!(engine.query(&query).unwrap().len(), 3);
    }

    #[test]
    fn restore_replaces_existing_session_state() {
        let mut engine = tc_engine(3);
        let query = parse_query("t(0, Y)").unwrap();
        engine.query(&query).unwrap();
        let snapshot = engine.snapshot();

        let mut other = Engine::new();
        other.load_source("zzz(1).\nq(X) :- zzz(X).").unwrap();
        other.set_threads(3);
        other.restore(&snapshot).unwrap();
        // Old state is gone, snapshot state is in, configuration survives.
        assert_eq!(other.facts().count("zzz"), 0);
        assert_eq!(other.threads(), 3);
        assert_eq!(other.query(&query).unwrap().len(), 3);
    }

    #[test]
    fn empty_program_answers_from_facts() {
        let mut engine = Engine::new();
        engine.insert("e", &[c(1), c(2)]).unwrap();
        let query = parse_query("e(1, Y)").unwrap();
        assert_eq!(engine.query(&query).unwrap(), vec![vec![c(2)]]);
    }
}
