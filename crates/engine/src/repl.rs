//! The interactive session command language, decoupled from terminal I/O so it can be
//! tested directly: [`Repl::execute`] maps one input line to one textual response.
//!
//! ```text
//! :load <file>        load a Datalog file — or restore a snapshot (autodetected)
//! :save <file>        save the session (program + facts) as a snapshot
//! :open <dir>         switch to a durable session backed by <dir> (snapshot +
//!                     write-ahead log; recovers committed state on open)
//! :compact            rewrite the durable snapshot and reset the log
//! :insert <fact>.     insert one ground fact (incremental)
//! :retract <fact>.    retract one base fact (counting-based delete propagation)
//! :begin              start a transaction; :insert/:retract queue until :commit
//! :commit             apply the queued batch atomically
//! :abort              discard the queued batch
//! :prepare <query>    compile + cache the optimized plan for a query
//! ?- <query>.         answer a query (uses the prepared plan when one is cached)
//! :threads [N]        show or set the evaluation worker count (0 = all cores)
//! :stats              cumulative session statistics (incl. plan-cache counters)
//! :profile [on|off|show]  toggle tracing / show span timers + per-rule profile
//! :metrics            dump session metrics as versioned JSON
//! :program            show the registered rules
//! :serve <addr>       serve the engine over TCP; the session becomes a client
//! :connect <addr>     become a client of a running server (:detach to return)
//! :follow <addr>      turn the (durable) session into a read replica of a
//!                     served leader (:promote to take over, :detach to stop)
//! :promote            promote a replica to leader once the lease has expired
//! :help               command summary
//! :quit               leave the session
//! <rule or fact>.     bare Datalog clauses are absorbed like :load text
//! ```

use std::fmt::Write as _;
use std::time::Duration;

use factorlog_datalog::ast::{Atom, Query};
use factorlog_datalog::eval::{EvalError, LimitReason};
use factorlog_datalog::parser::{parse_atom, parse_query};

use crate::durability::DurabilityOptions;
use crate::engine::{is_snapshot_text, Engine, EngineError, Snapshot};
use crate::replication::{Replica, ReplicationOptions};
use crate::server::{serve, Client, ServerHandle, ServerOptions};

/// The outcome of executing one REPL line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReplAction {
    /// Print this (possibly empty) response and continue.
    Output(String),
    /// Leave the session.
    Quit,
}

/// One queued operation of an open REPL transaction.
#[derive(Clone, Debug)]
enum PendingOp {
    Assert(Atom),
    Retract(Atom),
}

/// A REPL session: an [`Engine`] plus the command interpreter.
#[derive(Default)]
pub struct Repl {
    engine: Engine,
    /// Queued operations of an open `:begin` transaction (`None` = autocommit).
    txn: Option<Vec<PendingOp>>,
    /// A server this session spawned via `:serve` (stopped by `:detach`).
    server: Option<ServerHandle>,
    /// When set, the session is in client mode: queries and mutations forward
    /// over the wire instead of touching the local engine.
    remote: Option<Client>,
    /// When set, the session is a read replica (`:follow`): the engine lives
    /// inside the [`Replica`], queries sync from the leader before answering
    /// locally, and mutations are role-gated until `:promote`.
    replica: Option<Replica>,
}

const HELP: &str = "\
commands:
  :load <file>     load rules and facts from a Datalog file, or restore a
                   snapshot written by :save (autodetected by its header)
  :save <file>     save the session (program + base facts) as a snapshot
  :open <dir>      switch to a durable session backed by <dir>: every committed
                   mutation is appended to an fsync'd write-ahead log and
                   recovered on the next :open (crash-safe)
  :compact         rewrite the durable snapshot atomically and reset the log
  :insert <fact>.  insert one ground fact (incrementally maintained)
  :retract <fact>. retract one base fact (incremental delete propagation)
  :begin           start a transaction: :insert/:retract queue until :commit
  :commit          apply the queued batch atomically
  :abort           discard the queued batch
  :prepare <q>     prepare (compile + cache) the optimized plan for query <q>
  ?- <query>.      answer a query; replays the prepared plan when one is cached
  :threads [N]     show or set evaluation worker threads (1 = sequential, 0 = cores);
                   parallel evaluation is bit-identical to sequential, only faster
  :limit [time <ms> | facts <n> | mem <bytes> | off]
                   show or set the session's evaluation guardrails: wall-clock
                   deadline, derived-fact cap, estimated-memory budget. A tripped
                   guardrail aborts the query with a structured error and the
                   session stays usable; :limit off clears all three. Ctrl-C
                   during a query cancels it the same way.
  :stats           cumulative session statistics, grouped by subsystem
                   (eval, joins, parallel, mutations, wal)
  :profile [on|off|show]  enable/disable tracing, or show the collected
                   profile: per-phase span timers, per-rule firing times and
                   row counts, latency histograms (p50/p95/p99)
  :metrics         dump the session's metrics as a versioned JSON document
  :program         show the registered rules
  :serve <addr>    move the engine behind a concurrent TCP server on <addr> and
                   turn this session into a client of it (group-committed
                   writes, admission control; :detach stops the server and
                   reclaims the engine)
  :connect <addr>  become a client of an already-running server (:detach
                   returns to the untouched local session)
  :follow <addr>   turn this (durable) session into a read replica of a served
                   leader: queries sync committed WAL frames from <addr> and
                   answer locally; :insert/:retract are refused until :promote;
                   :detach stops following and keeps the replicated state
  :promote         promote a replica to leader once the leader's lease has
                   expired; the session becomes writable (in client mode,
                   :promote asks the connected server to promote itself)
  :help            this summary
  :quit            leave the session
bare rules/facts (e.g. `e(1, 2).` or `t(X, Y) :- e(X, Y).`) are added directly.";

/// Render nanoseconds with a human-scale unit (`812ns`, `3.4µs`, `1.2ms`, `2.5s`).
fn fmt_ns(ns: u64) -> String {
    match ns {
        0..=999 => format!("{ns}ns"),
        1_000..=999_999 => format!("{:.1}µs", ns as f64 / 1e3),
        1_000_000..=999_999_999 => format!("{:.1}ms", ns as f64 / 1e6),
        _ => format!("{:.2}s", ns as f64 / 1e9),
    }
}

impl Repl {
    /// A fresh session.
    pub fn new() -> Repl {
        Repl::with_engine(Engine::new())
    }

    /// A session wrapping an existing engine (e.g. pre-loaded from a file).
    pub fn with_engine(engine: Engine) -> Repl {
        Repl {
            engine,
            txn: None,
            server: None,
            remote: None,
            replica: None,
        }
    }

    /// The underlying engine.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Mutable access to the underlying engine.
    pub fn engine_mut(&mut self) -> &mut Engine {
        &mut self.engine
    }

    /// Execute one input line and return what to print (or [`ReplAction::Quit`]).
    /// Errors are rendered into the response, never panicked or propagated.
    pub fn execute(&mut self, line: &str) -> ReplAction {
        let line = line.trim();
        if line.is_empty() || line.starts_with('%') {
            return ReplAction::Output(String::new());
        }
        match self.dispatch(line) {
            Ok(action) => action,
            Err(message) => ReplAction::Output(format!("error: {message}")),
        }
    }

    fn dispatch(&mut self, line: &str) -> Result<ReplAction, String> {
        if self.remote.is_some() {
            return self.dispatch_remote(line);
        }
        if self.replica.is_some() {
            return self.dispatch_follower(line);
        }
        if let Some(rest) = line.strip_prefix("?-") {
            return self.run_query(rest).map(ReplAction::Output);
        }
        if let Some(rest) = line.strip_prefix(':') {
            let (command, argument) = match rest.split_once(char::is_whitespace) {
                Some((c, a)) => (c, a.trim()),
                None => (rest, ""),
            };
            return match command {
                "quit" | "exit" | "q" => Ok(ReplAction::Quit),
                "help" | "h" => Ok(ReplAction::Output(HELP.to_string())),
                "load" => self.load(argument).map(ReplAction::Output),
                "save" => self.save(argument).map(ReplAction::Output),
                "open" => self.open(argument).map(ReplAction::Output),
                "compact" => self.compact().map(ReplAction::Output),
                "insert" => self.insert(argument).map(ReplAction::Output),
                "retract" => self.retract(argument).map(ReplAction::Output),
                "begin" => self.begin().map(ReplAction::Output),
                "commit" => self.commit().map(ReplAction::Output),
                "abort" | "rollback" => self.abort().map(ReplAction::Output),
                "prepare" => self.prepare(argument).map(ReplAction::Output),
                "threads" => self.threads(argument).map(ReplAction::Output),
                "limit" => self.limit(argument).map(ReplAction::Output),
                "stats" => Ok(ReplAction::Output(self.stats())),
                "profile" => self.profile(argument).map(ReplAction::Output),
                "metrics" => Ok(ReplAction::Output(self.engine.metrics_json())),
                "program" => Ok(ReplAction::Output(self.show_program())),
                "serve" => self.serve_cmd(argument).map(ReplAction::Output),
                "connect" => self.connect_cmd(argument).map(ReplAction::Output),
                "follow" => self.follow_cmd(argument).map(ReplAction::Output),
                "promote" => Err(
                    "not a replica (use :follow <addr> first, or :connect to a server \
                     and :promote there)"
                        .to_string(),
                ),
                "detach" => Err(
                    "no server, remote, or replica connection (:serve, :connect, or :follow)"
                        .to_string(),
                ),
                other => Err(format!("unknown command `:{other}` (try :help)")),
            };
        }
        // Bare Datalog text: rules and facts.
        self.absorb(line).map(ReplAction::Output)
    }

    fn load(&mut self, path: &str) -> Result<String, String> {
        if path.is_empty() {
            return Err(":load requires a file path".to_string());
        }
        let source =
            std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        if source.trim().is_empty() {
            return Err(format!("{path} is empty (nothing to load)"));
        }
        if is_snapshot_text(&source) {
            let snapshot = Snapshot::from_text(&source).map_err(|e| e.to_string())?;
            let summary = self.engine.restore(&snapshot).map_err(|e| e.to_string())?;
            self.txn = None;
            return Ok(format!(
                "restored snapshot {path}: {} rule(s), {} fact(s)",
                summary.rules_added, summary.facts_added
            ));
        }
        let summary = self
            .engine
            .load_source(&source)
            .map_err(|e| e.to_string())?;
        let mut out = format!(
            "loaded {} rule(s), {} fact(s)",
            summary.rules_added, summary.facts_added
        );
        if summary.duplicates > 0 {
            let _ = write!(out, " ({} duplicate(s) ignored)", summary.duplicates);
        }
        if let Some(query) = &summary.query {
            let _ = write!(out, "; file query: {query}");
        }
        Ok(out)
    }

    fn save(&mut self, path: &str) -> Result<String, String> {
        if path.is_empty() {
            return Err(":save requires a file path".to_string());
        }
        let snapshot = self.engine.snapshot();
        snapshot.save(path).map_err(|e| e.to_string())?;
        Ok(format!(
            "saved snapshot {path}: {} rule(s), {} fact(s)",
            self.engine.program().len(),
            self.engine.facts().total_facts()
        ))
    }

    fn open(&mut self, dir: &str) -> Result<String, String> {
        if dir.is_empty() {
            return Err(":open requires a data directory path".to_string());
        }
        if self.txn.is_some() {
            return Err("a transaction is open (commit or abort it before :open)".to_string());
        }
        // The current session's evaluation options carry over; its *state* does not
        // (the durable directory's recovered state replaces it). Release the
        // current directory's single-writer lock first: re-opening the same
        // directory (the recovery flow after a poisoned log) must not be refused
        // by our own lock.
        let was_durable = self.engine.close_durable();
        let engine = Engine::open_durable_with_options(
            dir,
            DurabilityOptions::default(),
            self.engine.options().clone(),
        )
        .map_err(|e| {
            if was_durable {
                format!("{e} (the previous durable session is now detached; :open to re-attach)")
            } else {
                e.to_string()
            }
        })?;
        self.engine = engine;
        self.txn = None;
        let report = self.engine.recovery_report().cloned().unwrap_or_default();
        Ok(format!(
            "opened durable session {dir}: {} rule(s), {} fact(s); {}",
            self.engine.program().len(),
            self.engine.facts().total_facts(),
            report.describe(),
        ))
    }

    fn compact(&mut self) -> Result<String, String> {
        let report = self.engine.compact().map_err(|e| e.to_string())?;
        Ok(format!(
            "compacted: log {} -> {} byte(s); snapshot includes wal seq {}",
            report.log_bytes_before, report.log_bytes_after, report.snapshot_seq
        ))
    }

    /// `:serve <addr>`: move this session's engine behind a TCP server and
    /// turn the session into a client of it (`:detach` reverses both).
    fn serve_cmd(&mut self, addr: &str) -> Result<String, String> {
        if addr.is_empty() {
            return Err(
                ":serve requires a listen address, e.g. `:serve 127.0.0.1:7070`".to_string(),
            );
        }
        if self.txn.is_some() {
            return Err("a transaction is open (commit or abort it before :serve)".to_string());
        }
        let engine = std::mem::take(&mut self.engine);
        let handle = match serve(engine, addr, ServerOptions::default()) {
            Ok(handle) => handle,
            Err(e) => {
                // Nothing started: the session keeps its engine and state.
                self.engine = *e.engine;
                return Err(e.error.to_string());
            }
        };
        let bound = handle.addr();
        match Client::connect(bound) {
            Ok(client) => {
                self.server = Some(handle);
                self.remote = Some(client);
                Ok(format!(
                    "serving on {bound}; this session is now a client \
                     (queries and :insert/:retract go over the wire; :detach to stop \
                     the server and reclaim the engine)"
                ))
            }
            Err(e) => {
                // Could not even connect locally: stop the server, restore state.
                self.engine = handle.shutdown().engine;
                Err(format!("server started but local client failed: {e}"))
            }
        }
    }

    /// `:connect <addr>`: become a client of an already-running server. The
    /// local engine is left untouched and comes back on `:detach`.
    fn connect_cmd(&mut self, addr: &str) -> Result<String, String> {
        if addr.is_empty() {
            return Err(
                ":connect requires a server address, e.g. `:connect 127.0.0.1:7070`".to_string(),
            );
        }
        if self.txn.is_some() {
            return Err("a transaction is open (commit or abort it before :connect)".to_string());
        }
        let mut client = Client::connect(addr).map_err(|e| e.to_string())?;
        let epoch = client.epoch().map_err(|e| e.to_string())?;
        self.remote = Some(client);
        Ok(format!(
            "connected to {addr} (epoch {epoch}); queries and :insert/:retract go \
             over the wire (:detach to return to the local session)"
        ))
    }

    /// Leave client mode: stop a `:serve`d server (reclaiming its engine) or
    /// just drop a `:connect`ed session's connection.
    fn detach(&mut self) -> Result<String, String> {
        if self.remote.take().is_none() {
            return Err("no server or remote connection (:serve or :connect)".to_string());
        }
        if let Some(handle) = self.server.take() {
            let report = handle.shutdown();
            self.engine = report.engine;
            self.txn = None;
            return Ok(format!(
                "server stopped at epoch {} ({} request(s) shed); the session \
                 reclaimed the engine",
                report.epoch, report.shed
            ));
        }
        Ok("disconnected; back to the local session".to_string())
    }

    /// `:follow <addr>`: wrap this session's durable engine in a [`Replica`]
    /// subscribed to a served leader. Queries sync then answer locally;
    /// `:promote` takes over after the lease expires; `:detach` stops
    /// following and keeps the replicated state writable-if-promoted.
    fn follow_cmd(&mut self, addr: &str) -> Result<String, String> {
        if addr.is_empty() {
            return Err(
                ":follow requires a leader address, e.g. `:follow 127.0.0.1:7070`".to_string(),
            );
        }
        if self.txn.is_some() {
            return Err("a transaction is open (commit or abort it before :follow)".to_string());
        }
        if self.engine.data_dir().is_none() {
            return Err(
                "a replica must be durable (:open a data directory before :follow)".to_string(),
            );
        }
        let engine = std::mem::take(&mut self.engine);
        let mut replica = Replica::from_engine(engine, addr, ReplicationOptions::default())
            .map_err(|e| e.to_string())?;
        // Best-effort initial catch-up: an unreachable leader is not an error
        // (the next query retries), only local durability failures are.
        let caught_up = replica.catch_up(5).map_err(|e| e.to_string())?;
        let message = format!(
            "following {addr} (term {}): applied through seq {}{}; queries answer \
             locally after syncing (:promote to take over, :detach to stop)",
            replica.term(),
            replica.applied_seq(),
            if caught_up {
                ""
            } else {
                ", leader unreachable (will keep retrying)"
            },
        );
        self.replica = Some(replica);
        Ok(message)
    }

    /// Command dispatch while following: queries sync-then-answer locally,
    /// mutations go through the replica's role gate (so a promoted session
    /// writes and a follower refuses), everything engine-shaped runs against
    /// the replicated state via [`Repl::with_replica_engine`].
    fn dispatch_follower(&mut self, line: &str) -> Result<ReplAction, String> {
        if let Some(rest) = line.strip_prefix("?-") {
            self.replica_sync()?;
            let rest = rest.to_string();
            return self
                .with_replica_engine(|repl| repl.run_query(&rest))
                .map(ReplAction::Output);
        }
        if let Some(rest) = line.strip_prefix(':') {
            let (command, argument) = match rest.split_once(char::is_whitespace) {
                Some((c, a)) => (c, a.trim()),
                None => (rest, ""),
            };
            return match command {
                "quit" | "exit" | "q" => {
                    let _ = self.unfollow();
                    Ok(ReplAction::Quit)
                }
                "detach" => self.unfollow().map(ReplAction::Output),
                "insert" => self.replica_mutate(true, argument).map(ReplAction::Output),
                "retract" => self.replica_mutate(false, argument).map(ReplAction::Output),
                "promote" => self.promote_local().map(ReplAction::Output),
                "stats" => {
                    self.replica_sync()?;
                    let header = self.replica_header();
                    let body = self.with_replica_engine(|repl| repl.stats());
                    Ok(ReplAction::Output(format!("{header}\n{body}")))
                }
                "metrics" => {
                    let replica = self.replica.as_ref().expect("dispatch_follower");
                    Ok(ReplAction::Output(
                        replica
                            .engine()
                            .metrics_json_with(Some(&replica.status()), None),
                    ))
                }
                "prepare" => {
                    let argument = argument.to_string();
                    self.with_replica_engine(|repl| repl.prepare(&argument))
                        .map(ReplAction::Output)
                }
                "threads" => {
                    let argument = argument.to_string();
                    self.with_replica_engine(|repl| repl.threads(&argument))
                        .map(ReplAction::Output)
                }
                "program" => Ok(ReplAction::Output(
                    self.with_replica_engine(|repl| repl.show_program()),
                )),
                "help" | "h" => Ok(ReplAction::Output(
                    "replica mode: ?- <query>. | :promote | :stats | :metrics | \
                     :prepare <q> | :threads [N] | :program | :detach | :quit \
                     (:insert/:retract need a promoted leader)"
                        .to_string(),
                )),
                other => Err(format!(
                    "`:{other}` is not available while following (:detach to return \
                     to the local session)"
                )),
            };
        }
        Err("bare clauses are not available while following (:promote first)".to_string())
    }

    /// One best-effort subscription poll; only local durability failures err.
    fn replica_sync(&mut self) -> Result<(), String> {
        let replica = self.replica.as_mut().expect("replica mode");
        replica.sync_once().map(|_| ()).map_err(|e| e.to_string())
    }

    /// Run an engine-shaped REPL method against the replicated state by
    /// temporarily swapping the replica's engine into `self.engine`.
    fn with_replica_engine<T>(&mut self, f: impl FnOnce(&mut Repl) -> T) -> T {
        std::mem::swap(
            &mut self.engine,
            self.replica.as_mut().expect("replica mode").engine_mut(),
        );
        let result = f(self);
        std::mem::swap(
            &mut self.engine,
            self.replica.as_mut().expect("replica mode").engine_mut(),
        );
        result
    }

    fn replica_header(&self) -> String {
        let status = self.replica.as_ref().expect("replica mode").status();
        format!(
            "replica:\n  role: {}, term {}, leader {}\n  applied seq {}, leader seq {}, \
             lag {} frame(s); {} frame(s) applied, {} bootstrap(s)",
            status.role,
            status.term,
            status.leader,
            status.applied_seq,
            status.leader_seq,
            status.lag_frames,
            status.frames_applied,
            status.bootstraps,
        )
    }

    fn replica_mutate(&mut self, insert: bool, text: &str) -> Result<String, String> {
        let command = if insert { ":insert" } else { ":retract" };
        let atom = Self::parse_fact(command, text)?;
        let tuple = atom
            .as_fact()
            .ok_or_else(|| format!("cannot {} non-ground atom {atom}", &command[1..]))?;
        let replica = self.replica.as_mut().expect("replica mode");
        let predicate = atom.predicate.as_str().to_string();
        if insert {
            let new = replica
                .insert(&predicate, &tuple)
                .map_err(|e| e.to_string())?;
            Ok(if new {
                format!("inserted {atom}")
            } else {
                format!("{atom} already present")
            })
        } else {
            let removed = replica
                .retract(&predicate, &tuple)
                .map_err(|e| e.to_string())?;
            Ok(if removed {
                format!("retracted {atom}")
            } else {
                format!("{atom} not present (nothing retracted)")
            })
        }
    }

    /// `:promote` while following: take over as leader once the lease expired.
    fn promote_local(&mut self) -> Result<String, String> {
        let replica = self.replica.as_mut().expect("replica mode");
        let term = replica.promote().map_err(|e| e.to_string())?;
        Ok(format!(
            "promoted to leader (term {term}); the session now accepts \
             :insert/:retract (:detach to drop the replica wrapper)"
        ))
    }

    /// Stop following: unwrap the replica and reclaim its engine (with all
    /// replicated state) as the local session engine.
    fn unfollow(&mut self) -> Result<String, String> {
        let Some(replica) = self.replica.take() else {
            return Err("not following (:follow <addr> first)".to_string());
        };
        let role = replica.role();
        let term = replica.term();
        let leader = replica.status().leader;
        self.engine = replica.into_engine();
        self.txn = None;
        Ok(format!(
            "stopped following {leader} (role {role}, term {term}); the session \
             keeps the replicated state{}",
            if role == crate::replication::ReplicaRole::Leader {
                " and stays writable"
            } else {
                " read-write locally (no longer replicating)"
            }
        ))
    }

    /// Command dispatch while in client mode: the curated subset that makes
    /// sense over the wire, everything else a structured refusal.
    fn dispatch_remote(&mut self, line: &str) -> Result<ReplAction, String> {
        if let Some(rest) = line.strip_prefix("?-") {
            return self.remote_query(rest).map(ReplAction::Output);
        }
        if let Some(rest) = line.strip_prefix(':') {
            let (command, argument) = match rest.split_once(char::is_whitespace) {
                Some((c, a)) => (c, a.trim()),
                None => (rest, ""),
            };
            return match command {
                // Quitting the session tears the server down first: its engine
                // flushes the WAL and releases the data-directory lock.
                "quit" | "exit" | "q" => {
                    let _ = self.detach();
                    Ok(ReplAction::Quit)
                }
                "detach" => self.detach().map(ReplAction::Output),
                "insert" => self
                    .remote_mutate('+', ":insert", argument)
                    .map(ReplAction::Output),
                "retract" => self
                    .remote_mutate('-', ":retract", argument)
                    .map(ReplAction::Output),
                "stats" => self.remote_stats().map(ReplAction::Output),
                "promote" => self.remote_promote().map(ReplAction::Output),
                // A `:serve`d session renders the live reactor counters in the
                // `server` facet (the engine facets stay behind the server
                // until `:detach` hands the engine back).
                "metrics" => match &self.server {
                    Some(handle) => Ok(ReplAction::Output(
                        self.engine
                            .metrics_json_with(None, Some(&handle.server_metrics())),
                    )),
                    None => Err(
                        "`:metrics` is remote-less in client mode (:detach to return \
                         to the local session)"
                            .to_string(),
                    ),
                },
                "help" | "h" => Ok(ReplAction::Output(
                    "client mode: ?- <query>. | :insert <fact>. | :retract <fact>. | \
                     :stats | :metrics | :promote | :detach | :quit"
                        .to_string(),
                )),
                other => Err(format!(
                    "`:{other}` is not available in client mode (:detach to return \
                     to the local session)"
                )),
            };
        }
        Err("bare clauses are not available in client mode (use :insert, or :detach)".to_string())
    }

    fn remote(&mut self) -> &mut Client {
        self.remote
            .as_mut()
            .expect("dispatch_remote requires a client")
    }

    fn remote_query(&mut self, text: &str) -> Result<String, String> {
        let reply = self
            .remote()
            .query_with_retry(text.trim(), 6)
            .map_err(|e| e.to_string())?;
        let mut out = format!(
            "% {} answer(s) [remote, epoch {}]",
            reply.rows.len(),
            reply.epoch
        );
        for row in &reply.rows {
            out.push('\n');
            out.push_str(if row.is_empty() { "true" } else { row });
        }
        Ok(out)
    }

    fn remote_mutate(&mut self, sign: char, command: &str, text: &str) -> Result<String, String> {
        let atom = Self::parse_fact(command, text)?;
        let reply = self
            .remote()
            .txn_with_retry(&format!("{sign}{atom}"), 6)
            .map_err(|e| e.to_string())?;
        Ok(format!(
            "{} asserted, {} retracted (epoch {})",
            reply.asserted, reply.retracted, reply.epoch
        ))
    }

    fn remote_stats(&mut self) -> Result<String, String> {
        let stats = self.remote().stats().map_err(|e| e.to_string())?;
        let mut out = format!(
            "server: epoch {}, {} in flight, {} shed, {} group commit(s) \
             covering {} txn(s) ({:.2} txn(s)/fsync)",
            stats.epoch,
            stats.in_flight,
            stats.shed,
            stats.group_commits,
            stats.group_txns,
            stats.txns_per_fsync,
        );
        let _ = write!(
            out,
            "\nreplication: role {}, term {}, {} follower(s), lag {} frame(s) / {} ms",
            stats.role, stats.term, stats.repl_followers, stats.repl_lag_frames, stats.repl_lag_ms,
        );
        let _ = write!(
            out,
            "\nreactor: {} wakeup(s), {} pipelined batch(es) covering {} request(s) \
             (max depth {}), {} prepared exec(s), {} reply-cache hit(s)",
            stats.reactor_wakeups,
            stats.pipelined_batches,
            stats.pipelined_requests,
            stats.max_batch_depth,
            stats.prepared_execs,
            stats.reply_cache_hits,
        );
        Ok(out)
    }

    /// `:promote` in client mode: ask the connected server to promote itself
    /// (it refuses while its leader's lease is still valid).
    fn remote_promote(&mut self) -> Result<String, String> {
        let (role, term) = self.remote().promote().map_err(|e| e.to_string())?;
        Ok(format!("server promoted: role {role}, term {term}"))
    }

    /// Parse one ground fact argument (shared by `:insert` and `:retract`).
    fn parse_fact(command: &str, text: &str) -> Result<Atom, String> {
        let text = text.trim().trim_end_matches('.');
        if text.is_empty() {
            return Err(format!(
                "{command} requires a fact, e.g. `{command} e(1, 2).`"
            ));
        }
        let atom = parse_atom(text).map_err(|e| e.to_string())?;
        if !atom.is_ground() {
            return Err(format!("cannot {} non-ground atom {atom}", &command[1..]));
        }
        Ok(atom)
    }

    fn insert(&mut self, text: &str) -> Result<String, String> {
        let atom = Self::parse_fact(":insert", text)?;
        if let Some(ops) = &mut self.txn {
            ops.push(PendingOp::Assert(atom.clone()));
            return Ok(format!(
                "queued assert {atom} ({} op(s) pending)",
                ops.len()
            ));
        }
        let new = self.engine.insert_atom(&atom).map_err(|e| e.to_string())?;
        Ok(if new {
            format!("inserted {atom}")
        } else {
            format!("{atom} already present")
        })
    }

    fn retract(&mut self, text: &str) -> Result<String, String> {
        let atom = Self::parse_fact(":retract", text)?;
        if let Some(ops) = &mut self.txn {
            ops.push(PendingOp::Retract(atom.clone()));
            return Ok(format!(
                "queued retract {atom} ({} op(s) pending)",
                ops.len()
            ));
        }
        let removed = self.engine.retract_atom(&atom).map_err(|e| e.to_string())?;
        Ok(if removed {
            format!("retracted {atom}")
        } else {
            format!("{atom} not present (nothing retracted)")
        })
    }

    fn begin(&mut self) -> Result<String, String> {
        if self.txn.is_some() {
            return Err("a transaction is already open (commit or abort it first)".to_string());
        }
        self.txn = Some(Vec::new());
        Ok("transaction started; :insert/:retract queue until :commit".to_string())
    }

    fn commit(&mut self) -> Result<String, String> {
        let Some(ops) = self.txn.take() else {
            return Err("no open transaction (start one with :begin)".to_string());
        };
        let mut txn = self.engine.transaction();
        for op in &ops {
            match op {
                PendingOp::Assert(atom) => txn.assert_atom(atom).map(|_| ()),
                PendingOp::Retract(atom) => txn.retract_atom(atom).map(|_| ()),
            }
            .map_err(|e| e.to_string())?;
        }
        let summary = txn.commit().map_err(|e| e.to_string())?;
        Ok(format!(
            "committed {} op(s): {} asserted, {} retracted, {} duplicate(s), {} missing",
            ops.len(),
            summary.asserted,
            summary.retracted,
            summary.duplicates,
            summary.missing
        ))
    }

    fn abort(&mut self) -> Result<String, String> {
        match self.txn.take() {
            Some(ops) => Ok(format!(
                "aborted transaction ({} op(s) discarded)",
                ops.len()
            )),
            None => Err("no open transaction (start one with :begin)".to_string()),
        }
    }

    fn parse_query_text(text: &str) -> Result<Query, String> {
        let text = text.trim().trim_end_matches('.');
        if text.is_empty() {
            return Err("expected a query literal, e.g. `t(0, Y)`".to_string());
        }
        parse_query(text).map_err(|e| e.to_string())
    }

    fn prepare(&mut self, text: &str) -> Result<String, String> {
        let query = Self::parse_query_text(text)?;
        let report = self.engine.prepare(&query).map_err(|e| e.to_string())?;
        Ok(format!(
            "prepared {query} [{}]{}",
            report.strategy,
            if report.cached { " (cached)" } else { "" }
        ))
    }

    fn threads(&mut self, arg: &str) -> Result<String, String> {
        let describe = |engine: &Engine| {
            let configured = engine.threads();
            let effective = engine.options().effective_threads();
            match configured {
                0 => format!("threads: 0 (auto: {effective} available core(s))"),
                1 => "threads: 1 (sequential)".to_string(),
                n => format!("threads: {n}"),
            }
        };
        if arg.is_empty() {
            return Ok(describe(&self.engine));
        }
        let n: usize = arg
            .parse()
            .map_err(|_| format!("`:threads` expects a number, got `{arg}`"))?;
        self.engine.set_threads(n);
        Ok(describe(&self.engine))
    }

    /// `:limit`: show or set the session's evaluation guardrails. Each
    /// invocation adjusts one axis and leaves the others alone; `:limit off`
    /// clears all three.
    fn limit(&mut self, arg: &str) -> Result<String, String> {
        let options = self.engine.options();
        let (mut deadline, mut facts, mut mem) = (
            options.deadline,
            options.max_derived_facts,
            options.memory_budget_bytes,
        );
        let (kind, value) = match arg.split_once(char::is_whitespace) {
            Some((k, v)) => (k, v.trim()),
            None => (arg, ""),
        };
        let parse = |what: &str, value: &str| -> Result<u64, String> {
            value
                .parse()
                .map_err(|_| format!("`:limit {what}` expects a positive number, got `{value}`"))
        };
        match kind {
            "" => {}
            "off" => (deadline, facts, mem) = (None, None, None),
            "time" => deadline = Some(Duration::from_millis(parse("time", value)?)),
            "facts" => facts = Some(parse("facts", value)? as usize),
            "mem" => mem = Some(parse("mem", value)? as usize),
            other => {
                return Err(format!(
                "`:limit` expects `time <ms>`, `facts <n>`, `mem <bytes>`, or `off`, got `{other}`"
            ))
            }
        }
        self.engine.set_limits(deadline, facts, mem);
        Ok(format!("limits: {}", Self::describe_limits(&self.engine)))
    }

    fn describe_limits(engine: &Engine) -> String {
        let options = engine.options();
        let mut parts = Vec::new();
        if let Some(d) = options.deadline {
            parts.push(format!("time {}ms", d.as_millis()));
        }
        if let Some(n) = options.max_derived_facts {
            parts.push(format!("facts {n}"));
        }
        if let Some(b) = options.memory_budget_bytes {
            parts.push(format!("mem {b} byte(s)"));
        }
        if parts.is_empty() {
            "none".to_string()
        } else {
            parts.join(", ")
        }
    }

    fn run_query(&mut self, text: &str) -> Result<String, String> {
        let query = Self::parse_query_text(text)?;
        // A stale Ctrl-C (one that landed after the previous query already
        // finished) must not cancel this run: reset the shared token first.
        if let Some(token) = &self.engine.options().cancel {
            token.reset();
        }
        let (result, label) = if self.engine.has_prepared(&query) {
            (self.engine.query_prepared(&query), "prepared")
        } else {
            (self.engine.query(&query), "materialized")
        };
        let answers = match result {
            Ok(answers) => answers,
            // A Ctrl-C cancellation is the user's own request, not a fault:
            // report it as plain output, with how far the query got.
            Err(EngineError::Eval(EvalError::LimitExceeded {
                reason: LimitReason::Cancelled,
                elapsed,
                partial_stats,
            })) => {
                return Ok(format!(
                    "cancelled after {:.1?} ({} fact(s) derived; model dropped, facts intact)",
                    elapsed, partial_stats.facts_derived,
                ))
            }
            Err(e) => return Err(e.to_string()),
        };

        // Distinct free variables in first-occurrence order — matches the projection
        // used by `Database::answers`.
        let mut free_vars: Vec<String> = Vec::new();
        for term in &query.atom.terms {
            if let Some(v) = term.as_var() {
                let name = v.as_str().to_string();
                if !free_vars.contains(&name) {
                    free_vars.push(name);
                }
            }
        }
        let mut out = format!("% {} answer(s) [{label}]", answers.len());
        for row in &answers {
            let rendered: Vec<String> = free_vars
                .iter()
                .zip(row.iter())
                .map(|(v, c)| format!("{v} = {c}"))
                .collect();
            out.push('\n');
            if rendered.is_empty() {
                out.push_str("true");
            } else {
                out.push_str(&rendered.join(", "));
            }
        }
        Ok(out)
    }

    fn absorb(&mut self, text: &str) -> Result<String, String> {
        let summary = self.engine.load_source(text).map_err(|e| e.to_string())?;
        let mut parts = Vec::new();
        if summary.rules_added > 0 {
            parts.push(format!("added {} rule(s)", summary.rules_added));
        }
        if summary.facts_added > 0 {
            parts.push(format!("inserted {} fact(s)", summary.facts_added));
        }
        if summary.duplicates > 0 {
            parts.push(format!("{} duplicate(s) ignored", summary.duplicates));
        }
        if parts.is_empty() {
            parts.push("nothing to add".to_string());
        }
        Ok(parts.join(", "))
    }

    /// `:stats`: cumulative session counters grouped under one heading per
    /// subsystem; a subsystem the session never exercised shows `—` instead of
    /// a wall of zeros.
    fn stats(&self) -> String {
        let stats = self.engine.stats();
        let mut out = String::new();
        let _ = writeln!(out, "eval:");
        let _ = writeln!(
            out,
            "  iterations: {}, inferences: {}, facts derived: {}, duplicates: {}",
            stats.iterations, stats.inferences, stats.facts_derived, stats.duplicates
        );
        let _ = writeln!(
            out,
            "  plan cache: {} hits, {} misses, {} evicted; prepared plans: {} cached of {} max",
            stats.plan_cache_hits,
            stats.plan_cache_misses,
            stats.plan_cache_evictions,
            self.engine.prepared_count(),
            self.engine.prepared_capacity(),
        );
        let _ = writeln!(
            out,
            "  pending facts: {}; model: {}; tracing: {}",
            self.engine.pending_facts(),
            if self.engine.is_materialized() {
                "materialized"
            } else {
                "stale"
            },
            if self.engine.tracing() { "on" } else { "off" },
        );
        let _ = writeln!(out, "  limits: {}", Self::describe_limits(&self.engine));
        if stats.cancel_checks + stats.limit_aborts + stats.worker_panics > 0 {
            let _ = writeln!(
                out,
                "  governance: {} cancel check(s), {} limit abort(s), {} worker panic(s)",
                stats.cancel_checks, stats.limit_aborts, stats.worker_panics
            );
        }
        let mut preds: Vec<_> = stats.facts_per_predicate.iter().collect();
        preds.sort_by_key(|(p, _)| p.as_str());
        for (p, n) in preds {
            let _ = writeln!(out, "  {p}: {n} facts");
        }

        let _ = writeln!(out, "joins:");
        if stats.index_probes
            + stats.full_scans
            + stats.membership_checks
            + stats.scratch_allocs
            + stats.literal_reorders
            > 0
        {
            let _ = writeln!(
                out,
                "  {} index probes, {} full scans, {} membership checks, {} scratch allocations",
                stats.index_probes, stats.full_scans, stats.membership_checks, stats.scratch_allocs
            );
            let _ = writeln!(out, "  literal reorders: {}", stats.literal_reorders);
        } else {
            let _ = writeln!(out, "  —");
        }

        let _ = writeln!(out, "parallel:");
        let _ = writeln!(
            out,
            "  threads: {} configured ({} effective)",
            self.engine.threads(),
            self.engine.options().effective_threads()
        );
        if stats.parallel_rounds > 0 {
            let _ = writeln!(
                out,
                "  parallel rounds: {} ({} firings) on {} threads",
                stats.parallel_rounds, stats.parallel_firings, stats.threads_used
            );
        } else {
            let _ = writeln!(out, "  parallel rounds: —");
        }

        let _ = writeln!(out, "mutations:");
        if stats.retractions + stats.rederivations + stats.delete_rounds > 0 {
            let _ = writeln!(
                out,
                "  {} retraction(s), {} rederivation(s), {} delete round(s)",
                stats.retractions, stats.rederivations, stats.delete_rounds
            );
        } else {
            let _ = writeln!(out, "  —");
        }
        let _ = writeln!(
            out,
            "  transaction: {}",
            match &self.txn {
                Some(ops) => format!("open ({} op(s) queued)", ops.len()),
                None => "none".to_string(),
            }
        );

        let _ = write!(out, "wal:");
        if let Some(dir) = self.engine.data_dir() {
            let _ = write!(
                out,
                "\n  dir {}, log {} byte(s)\n  {} append(s), {} replay(s), {} compaction(s), {} torn truncation(s)",
                dir.display(),
                self.engine.wal_len().unwrap_or(0),
                stats.wal_appends,
                stats.wal_replays,
                stats.wal_compactions,
                stats.wal_torn_truncations,
            );
        } else {
            let _ = write!(out, "\n  —");
        }
        out
    }

    /// `:profile on|off|show`.
    fn profile(&mut self, arg: &str) -> Result<String, String> {
        match arg {
            "on" => {
                self.engine.set_tracing(true);
                Ok("profile: on (span timers and latency histograms collecting)".to_string())
            }
            "off" => {
                self.engine.set_tracing(false);
                Ok(
                    "profile: off (collection stopped; collected data retained for :profile show)"
                        .to_string(),
                )
            }
            "" | "show" => Ok(self.show_profile()),
            other => Err(format!(
                "`:profile` expects `on`, `off`, or `show`, got `{other}`"
            )),
        }
    }

    /// Render the collected profile: per-phase spans, optimizer passes, latency
    /// histograms, and per-rule firing times.
    fn show_profile(&self) -> String {
        let mut out = format!(
            "profile: {}",
            if self.engine.tracing() { "on" } else { "off" }
        );
        let stats = self.engine.stats();
        let Some(profile) = stats.profile.as_deref() else {
            out.push_str("\nno profile collected yet (enable with :profile on, then run queries)");
            return out;
        };
        out.push_str("\nphases:");
        if profile.phases.is_empty() {
            out.push_str("\n  —");
        }
        for (name, span) in &profile.phases {
            let _ = write!(
                out,
                "\n  {name:<20} count {:>8}  total {:>10}  max {:>10}",
                span.count,
                fmt_ns(span.total_ns),
                fmt_ns(span.max_ns)
            );
        }
        if let Some(metrics) = self.engine.metrics() {
            if !metrics.optimize_passes.is_empty() {
                out.push_str("\noptimize passes:");
                for (name, span) in &metrics.optimize_passes {
                    let _ = write!(
                        out,
                        "\n  {name:<20} count {:>8}  total {:>10}  max {:>10}",
                        span.count,
                        fmt_ns(span.total_ns),
                        fmt_ns(span.max_ns)
                    );
                }
            }
            for (label, h) in [
                ("query latency", &metrics.query_latency),
                ("wal fsync", &metrics.wal_fsync),
            ] {
                if h.count() > 0 {
                    let _ = write!(
                        out,
                        "\n{label}: {} sample(s), p50 {}, p95 {}, p99 {}, max {}",
                        h.count(),
                        fmt_ns(h.p50_ns()),
                        fmt_ns(h.p95_ns()),
                        fmt_ns(h.p99_ns()),
                        fmt_ns(h.max_ns())
                    );
                }
            }
        }
        out.push_str("\nrules:");
        if profile.rules.is_empty() {
            out.push_str("\n  —");
        }
        let program = self.engine.program();
        for (i, rule) in profile.rules.iter().enumerate() {
            let text = program
                .rules
                .get(i)
                .map(|r| r.to_string())
                .unwrap_or_else(|| format!("rule #{i}"));
            let _ = write!(
                out,
                "\n  {text}\n    firings {}  time {}  rows in {}  rows out {}",
                rule.firings,
                fmt_ns(rule.time_ns),
                rule.rows_in,
                rule.rows_out
            );
        }
        out
    }

    fn show_program(&self) -> String {
        let program = self.engine.program();
        if program.is_empty() {
            "no rules registered".to_string()
        } else {
            format!("{program}").trim_end().to_string()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn output(repl: &mut Repl, line: &str) -> String {
        match repl.execute(line) {
            ReplAction::Output(text) => text,
            ReplAction::Quit => panic!("unexpected quit for {line}"),
        }
    }

    #[test]
    fn serve_turns_the_session_into_a_client_and_detach_reclaims_the_engine() {
        let mut repl = Repl::new();
        output(
            &mut repl,
            "t(X, Y) :- e(X, Y).\nt(X, Y) :- e(X, W), t(W, Y).",
        );
        output(&mut repl, ":insert e(0, 1).");

        // A bad address is refused without losing the session's state.
        let err = output(&mut repl, ":serve 256.0.0.1:0");
        assert!(err.starts_with("error:"), "{err}");
        assert!(output(&mut repl, "?- t(0, Y).").contains("% 1 answer(s)"));

        let served = output(&mut repl, ":serve 127.0.0.1:0");
        assert!(served.contains("this session is now a client"), "{served}");
        assert!(
            output(&mut repl, ":insert e(1, 2).").contains("1 asserted, 0 retracted (epoch 1)"),
            "mutations forward over the wire"
        );
        let answers = output(&mut repl, "?- t(0, Y).");
        assert!(
            answers.contains("% 2 answer(s) [remote, epoch"),
            "{answers}"
        );
        assert!(
            answers.contains("\n1\n2") || answers.ends_with("1\n2"),
            "{answers}"
        );
        let stats = output(&mut repl, ":stats");
        assert!(stats.contains("server: epoch 1"), "{stats}");
        assert!(
            output(&mut repl, ":compact").starts_with("error:"),
            "local-only commands are refused in client mode"
        );

        let detached = output(&mut repl, ":detach");
        assert!(detached.contains("reclaimed the engine"), "{detached}");
        // The remote mutation survived the round trip back to local mode.
        let answers = output(&mut repl, "?- t(0, Y).");
        assert!(
            answers.contains("% 2 answer(s) [materialized]"),
            "{answers}"
        );
        assert!(
            output(&mut repl, ":detach").starts_with("error:"),
            "nothing to detach from"
        );
    }

    #[test]
    fn follow_replicates_and_promote_makes_the_session_writable() {
        let base = std::env::temp_dir().join(format!(
            "factorlog_repl_follow_{}_{:x}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .subsec_nanos()
        ));
        let leader_dir = base.join("leader");
        let follower_dir = base.join("follower");
        std::fs::remove_dir_all(&base).ok();

        // Leader: a durable session served over TCP.
        let mut leader = Repl::new();
        output(&mut leader, &format!(":open {}", leader_dir.display()));
        output(&mut leader, "t(X, Y) :- e(X, Y).");
        output(&mut leader, ":insert e(1, 2).");
        let served = output(&mut leader, ":serve 127.0.0.1:0");
        let addr = served
            .split("serving on ")
            .nth(1)
            .and_then(|rest| rest.split(';').next())
            .expect("bound address in the :serve reply")
            .trim()
            .to_string();

        // Follower: must be durable before :follow; then replicates and
        // answers locally while refusing writes.
        let mut follower = Repl::new();
        assert!(
            output(&mut follower, &format!(":follow {addr}")).starts_with("error:"),
            "non-durable sessions cannot follow"
        );
        output(&mut follower, &format!(":open {}", follower_dir.display()));
        let followed = output(&mut follower, &format!(":follow {addr}"));
        assert!(followed.contains("following"), "{followed}");
        let answers = output(&mut follower, "?- t(1, Y).");
        assert!(answers.contains("Y = 2"), "{answers}");
        let refused = output(&mut follower, ":insert e(9, 9).");
        assert!(refused.starts_with("error:"), "{refused}");
        assert!(refused.contains("read-only"), "{refused}");
        let stats = output(&mut follower, ":stats");
        assert!(stats.contains("role: follower"), "{stats}");
        assert!(
            output(&mut follower, ":promote").starts_with("error:"),
            "promotion is refused while the leader's lease is valid"
        );
        let metrics = output(&mut follower, ":metrics");
        assert!(metrics.contains("\"replication\": {"), "{metrics}");
        assert!(metrics.contains("\"role\": \"follower\""), "{metrics}");

        // Leader goes away; once the lease expires the follower promotes and
        // becomes writable, then :detach keeps the replicated state.
        output(&mut leader, ":detach");
        std::thread::sleep(Duration::from_millis(800));
        let promoted = output(&mut follower, ":promote");
        assert!(promoted.contains("promoted to leader"), "{promoted}");
        assert!(
            output(&mut follower, ":insert e(2, 3).").contains("inserted"),
            "a promoted replica accepts writes"
        );
        let detached = output(&mut follower, ":detach");
        assert!(detached.contains("stopped following"), "{detached}");
        let answers = output(&mut follower, "?- t(2, Y).");
        assert!(answers.contains("Y = 3"), "{answers}");

        drop(follower);
        drop(leader);
        std::fs::remove_dir_all(&base).ok();
    }

    #[test]
    fn full_session_transcript() {
        let mut repl = Repl::new();
        assert_eq!(output(&mut repl, "t(X, Y) :- e(X, Y)."), "added 1 rule(s)");
        assert_eq!(
            output(&mut repl, "t(X, Y) :- e(X, W), t(W, Y)."),
            "added 1 rule(s)"
        );
        assert_eq!(output(&mut repl, ":insert e(0, 1)."), "inserted e(0, 1)");
        assert_eq!(output(&mut repl, ":insert e(1, 2)."), "inserted e(1, 2)");
        let answers = output(&mut repl, "?- t(0, Y).");
        assert!(answers.starts_with("% 2 answer(s) [materialized]"));
        assert!(answers.contains("Y = 1") && answers.contains("Y = 2"));

        // Incremental insert, then the same query sees the new fact.
        assert_eq!(output(&mut repl, ":insert e(2, 3)."), "inserted e(2, 3)");
        assert!(output(&mut repl, "?- t(0, Y).").contains("% 3 answer(s)"));

        // Prepare, then the query switches to the prepared plan and hits the cache.
        let prepared = output(&mut repl, ":prepare t(0, Y)");
        assert!(prepared.starts_with("prepared ?- t(0, Y). [magic + factoring]"));
        let answers = output(&mut repl, "?- t(0, Y).");
        assert!(answers.starts_with("% 3 answer(s) [prepared]"));
        assert_eq!(repl.engine().stats().plan_cache_hits, 1);

        let stats = output(&mut repl, ":stats");
        assert!(stats.contains("plan cache: 1 hits, 1 misses, 0 evicted"));
        assert!(stats.contains("prepared plans: 1 cached of 256 max"));
        // The compiled-join counters flow through the cumulative session stats.
        assert!(stats.contains("index probes"), "{stats}");
        assert!(stats.contains("full scans"), "{stats}");

        let program = output(&mut repl, ":program");
        assert!(program.contains("t(X, Y) :- e(X, W), t(W, Y)."));

        assert_eq!(repl.execute(":quit"), ReplAction::Quit);
    }

    #[test]
    fn errors_are_reported_not_propagated() {
        let mut repl = Repl::new();
        assert!(output(&mut repl, ":insert e(X, 1).").starts_with("error:"));
        assert!(output(&mut repl, ":bogus").starts_with("error:"));
        assert!(output(&mut repl, "?- ").starts_with("error:"));
        assert!(output(&mut repl, ":load /nonexistent/path.dl").starts_with("error:"));
        assert!(output(&mut repl, "nonsense here").starts_with("error:"));
    }

    #[test]
    fn blank_lines_comments_and_help() {
        let mut repl = Repl::new();
        assert_eq!(output(&mut repl, ""), "");
        assert_eq!(output(&mut repl, "% a comment"), "");
        assert!(output(&mut repl, ":help").contains(":prepare"));
        assert_eq!(output(&mut repl, ":program"), "no rules registered");
    }

    #[test]
    fn stats_report_evictions_and_join_counters() {
        let mut repl = Repl::new();
        repl.engine_mut().set_prepared_capacity(1);
        output(&mut repl, "t(X, Y) :- e(X, Y).");
        output(&mut repl, "s(X) :- t(X, X).");
        output(&mut repl, ":insert e(1, 1).");
        // Two differently-shaped prepared plans with capacity 1: one eviction.
        output(&mut repl, ":prepare t(1, Y)");
        output(&mut repl, ":prepare s(X)");
        let stats = output(&mut repl, ":stats");
        assert!(
            stats.contains(
                "plan cache: 0 hits, 2 misses, 1 evicted; prepared plans: 1 cached of 1 max"
            ),
            "{stats}"
        );
    }

    #[test]
    fn stats_groups_by_subsystem_with_dashes_for_idle_ones() {
        let mut repl = Repl::new();
        let stats = output(&mut repl, ":stats");
        // Every subsystem heading is present even in a fresh session...
        for heading in ["eval:", "joins:", "parallel:", "mutations:", "wal:"] {
            assert!(stats.contains(heading), "missing {heading} in {stats}");
        }
        // ...and the unexercised ones show a dash, not a wall of zeros.
        assert!(stats.contains("joins:\n  —"), "{stats}");
        assert!(stats.contains("mutations:\n  —"), "{stats}");
        assert!(stats.contains("wal:\n  —"), "{stats}");
        assert!(stats.contains("parallel rounds: —"), "{stats}");

        // Exercising a subsystem replaces its dash with counters.
        output(&mut repl, "t(X, Y) :- e(X, Y).");
        output(&mut repl, ":insert e(1, 2).");
        output(&mut repl, "?- t(1, Y).");
        output(&mut repl, ":retract e(1, 2).");
        let stats = output(&mut repl, ":stats");
        assert!(!stats.contains("joins:\n  —"), "{stats}");
        assert!(!stats.contains("mutations:\n  —"), "{stats}");
        assert!(stats.contains("index probes"), "{stats}");
        assert!(
            stats.contains("retraction(s), 0 rederivation(s)"),
            "{stats}"
        );
    }

    #[test]
    fn profile_command_toggles_tracing_and_shows_spans() {
        let mut repl = Repl::new();
        let shown = output(&mut repl, ":profile");
        assert!(shown.contains("no profile collected yet"), "{shown}");
        assert!(output(&mut repl, ":profile nope").starts_with("error:"));

        assert!(output(&mut repl, ":profile on").contains("profile: on"));
        assert!(repl.engine().tracing());
        output(
            &mut repl,
            "t(X, Y) :- e(X, Y).\nt(X, Y) :- e(X, W), t(W, Y).",
        );
        output(&mut repl, ":insert e(0, 1).");
        output(&mut repl, ":insert e(1, 2).");
        output(&mut repl, "?- t(0, Y).");
        output(&mut repl, ":prepare t(0, Y)");
        output(&mut repl, "?- t(0, Y).");

        let shown = output(&mut repl, ":profile show");
        assert!(shown.starts_with("profile: on"), "{shown}");
        assert!(shown.contains("eval.plan"), "{shown}");
        assert!(shown.contains("eval.round"), "{shown}");
        assert!(shown.contains("optimize passes:"), "{shown}");
        assert!(shown.contains("query latency:"), "{shown}");
        assert!(shown.contains("p50"), "{shown}");
        assert!(shown.contains("t(X, Y) :- e(X, W), t(W, Y)."), "{shown}");
        assert!(shown.contains("firings"), "{shown}");

        // :profile off stops collection but keeps what was gathered.
        assert!(output(&mut repl, ":profile off").contains("profile: off"));
        assert!(!repl.engine().tracing());
        let shown = output(&mut repl, ":profile show");
        assert!(shown.starts_with("profile: off"), "{shown}");
        assert!(shown.contains("eval.round"), "{shown}");
    }

    #[test]
    fn metrics_command_emits_versioned_json() {
        let mut repl = Repl::new();
        output(&mut repl, ":profile on");
        output(&mut repl, "t(X, Y) :- e(X, Y).");
        output(&mut repl, ":insert e(1, 2).");
        output(&mut repl, "?- t(1, Y).");
        let json = output(&mut repl, ":metrics");
        assert!(json.contains("\"factorlog_metrics_version\": 3"), "{json}");
        assert!(json.contains("\"replication\": null"), "{json}");
        assert!(json.contains("\"server\": null"), "{json}");
        assert!(json.contains("\"tracing\": true"), "{json}");
        assert!(json.contains("\"query_latency\""), "{json}");
        assert!(json.contains("\"p99_ns\""), "{json}");
        assert!(json.contains("\"eval.round\""), "{json}");
        assert!(json.contains("t(X, Y) :- e(X, Y)."), "{json}");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn threads_command_round_trips() {
        let mut repl = Repl::new();
        repl.engine_mut().set_threads(1);
        assert_eq!(output(&mut repl, ":threads"), "threads: 1 (sequential)");
        assert_eq!(output(&mut repl, ":threads 4"), "threads: 4");
        assert_eq!(repl.engine().threads(), 4);
        assert!(output(&mut repl, ":threads 0").starts_with("threads: 0 (auto:"));
        assert!(output(&mut repl, ":threads nope").starts_with("error:"));
        // A parallel session still answers queries correctly.
        repl.engine_mut().set_threads(4);
        output(&mut repl, "t(X, Y) :- e(X, Y).");
        output(&mut repl, ":insert e(1, 2).");
        assert!(output(&mut repl, "?- t(1, Y).").contains("Y = 2"));
        let stats = output(&mut repl, ":stats");
        assert!(stats.contains("threads: 4 configured"), "{stats}");
        assert!(stats.contains("parallel rounds:"), "{stats}");
        assert!(stats.contains("literal reorders:"), "{stats}");
    }

    #[test]
    fn limit_command_round_trips() {
        let mut repl = Repl::new();
        assert_eq!(output(&mut repl, ":limit"), "limits: none");
        assert_eq!(output(&mut repl, ":limit time 250"), "limits: time 250ms");
        assert_eq!(
            output(&mut repl, ":limit facts 1000"),
            "limits: time 250ms, facts 1000"
        );
        assert_eq!(
            output(&mut repl, ":limit mem 1048576"),
            "limits: time 250ms, facts 1000, mem 1048576 byte(s)"
        );
        let stats = output(&mut repl, ":stats");
        assert!(
            stats.contains("limits: time 250ms, facts 1000, mem 1048576 byte(s)"),
            "{stats}"
        );
        assert_eq!(output(&mut repl, ":limit off"), "limits: none");
        assert!(output(&mut repl, ":limit nope").starts_with("error:"));
        assert!(output(&mut repl, ":limit time soon").starts_with("error:"));
        assert!(output(&mut repl, ":help").contains(":limit"));
    }

    #[test]
    fn tripped_limit_aborts_the_query_and_the_session_stays_usable() {
        let mut repl = Repl::new();
        output(
            &mut repl,
            "counter(N) :- seed(N).\ncounter(M) :- counter(N), succ(N, M).",
        );
        output(&mut repl, ":insert seed(0).");
        output(&mut repl, ":limit facts 100");
        let message = output(&mut repl, "?- counter(X).");
        assert!(message.starts_with("error:"), "{message}");
        assert!(message.contains("derived-fact limit"), "{message}");
        let stats = output(&mut repl, ":stats");
        assert!(stats.contains("limit abort(s)"), "{stats}");
        // The session survives the abort: drop the divergent seed and query again.
        assert!(output(&mut repl, ":retract seed(0).").contains("retracted"));
        output(&mut repl, ":limit off");
        assert!(output(&mut repl, "?- counter(X).").contains("% 0 answer(s)"));
    }

    #[test]
    fn cancellation_mid_query_returns_to_the_prompt() {
        let mut repl = Repl::new();
        output(
            &mut repl,
            "counter(N) :- seed(N).\ncounter(M) :- counter(N), succ(N, M).",
        );
        output(&mut repl, ":insert seed(0).");
        // Simulate Ctrl-C: a clone of the session token cancelled from another
        // thread while the (unbounded) query runs.
        let token = repl.engine_mut().cancel_token();
        let canceller = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            token.cancel();
        });
        let message = output(&mut repl, "?- counter(X).");
        canceller.join().unwrap();
        assert!(message.starts_with("cancelled after"), "{message}");
        assert!(message.contains("facts intact"), "{message}");
        // The still-set token is stale now; the next query resets it instead of
        // dying instantly, and the session keeps answering.
        assert!(output(&mut repl, ":retract seed(0).").contains("retracted"));
        assert!(output(&mut repl, "?- counter(X).").contains("% 0 answer(s)"));
    }

    #[test]
    fn poisoned_wal_names_the_recovery_path_and_reopen_recovers() {
        let dir =
            std::env::temp_dir().join(format!("factorlog_repl_poison_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let dir_arg = dir.display().to_string();
        let mut repl = Repl::new();
        output(&mut repl, &format!(":open {dir_arg}"));
        output(&mut repl, "t(X, Y) :- e(X, Y).");
        output(&mut repl, ":insert e(1, 2).");
        // Arm a byte-budget crash in the log writer: the next append tears
        // mid-record and poisons the writer, as a real crash would.
        assert!(repl
            .engine_mut()
            .set_wal_fault(Some(crate::wal::FaultPoint { budget: 4 })));
        assert!(output(&mut repl, ":insert e(2, 3).").starts_with("error:"));
        // Regression: the poisoned writer used to be a dead end (every later
        // mutation kept failing with the raw injected-write error). It must now
        // name the recovery path instead.
        let blocked = output(&mut repl, ":insert e(3, 4).");
        assert!(blocked.contains("reopen the data directory"), "{blocked}");
        // :open on the same directory truncates the torn record and recovers.
        let reopened = output(&mut repl, &format!(":open {dir_arg}"));
        assert!(reopened.contains("opened durable session"), "{reopened}");
        assert_eq!(output(&mut repl, ":insert e(2, 3)."), "inserted e(2, 3)");
        assert!(output(&mut repl, "?- t(2, Y).").contains("Y = 3"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn retract_command_round_trips() {
        let mut repl = Repl::new();
        output(&mut repl, "t(X, Y) :- e(X, Y).");
        output(&mut repl, "t(X, Y) :- e(X, W), t(W, Y).");
        for edge in ["e(0, 1).", "e(1, 2).", "e(2, 3)."] {
            output(&mut repl, &format!(":insert {edge}"));
        }
        assert!(output(&mut repl, "?- t(0, Y).").contains("% 3 answer(s)"));
        assert_eq!(output(&mut repl, ":retract e(1, 2)."), "retracted e(1, 2)");
        assert!(output(&mut repl, "?- t(0, Y).").contains("% 1 answer(s)"));
        assert_eq!(
            output(&mut repl, ":retract e(1, 2)."),
            "e(1, 2) not present (nothing retracted)"
        );
        assert!(output(&mut repl, ":retract e(X, 2).").starts_with("error:"));
        let stats = output(&mut repl, ":stats");
        assert!(stats.contains("mutations:"), "{stats}");
        assert!(stats.contains("retraction(s)"), "{stats}");
    }

    #[test]
    fn transactions_queue_and_commit_atomically() {
        let mut repl = Repl::new();
        output(
            &mut repl,
            "t(X, Y) :- e(X, Y).\nt(X, Y) :- e(X, W), t(W, Y).",
        );
        output(&mut repl, ":insert e(0, 1).");
        output(&mut repl, ":insert e(1, 2).");
        assert!(output(&mut repl, "?- t(0, Y).").contains("% 2 answer(s)"));

        assert!(output(&mut repl, ":begin").contains("transaction started"));
        assert!(
            output(&mut repl, ":begin").starts_with("error:"),
            "no nesting"
        );
        assert!(output(&mut repl, ":insert e(2, 3).").contains("queued assert"));
        assert!(output(&mut repl, ":retract e(0, 1).").contains("queued retract"));
        // Nothing applied yet.
        assert!(output(&mut repl, "?- t(0, Y).").contains("% 2 answer(s)"));
        let stats = output(&mut repl, ":stats");
        assert!(
            stats.contains("transaction: open (2 op(s) queued)"),
            "{stats}"
        );

        let committed = output(&mut repl, ":commit");
        assert!(committed.contains("1 asserted, 1 retracted"), "{committed}");
        assert!(output(&mut repl, "?- t(0, Y).").contains("% 0 answer(s)"));
        assert!(output(&mut repl, "?- t(1, Y).").contains("% 2 answer(s)"));
        assert!(output(&mut repl, ":commit").starts_with("error:"), "closed");

        // Abort discards.
        output(&mut repl, ":begin");
        output(&mut repl, ":insert e(7, 8).");
        assert!(output(&mut repl, ":abort").contains("1 op(s) discarded"));
        assert!(output(&mut repl, "?- t(7, Y).").contains("% 0 answer(s)"));
        assert!(output(&mut repl, ":abort").starts_with("error:"));
    }

    #[test]
    fn save_and_load_round_trip_a_snapshot() {
        let path = std::env::temp_dir().join("factorlog_repl_snapshot_test.fl");
        let path = path.to_str().unwrap().to_string();
        let mut repl = Repl::new();
        output(
            &mut repl,
            "t(X, Y) :- e(X, Y).\nt(X, Y) :- e(X, W), t(W, Y).",
        );
        output(&mut repl, ":insert e(1, 2).");
        output(&mut repl, ":insert e(2, 3).");
        let saved = output(&mut repl, &format!(":save {path}"));
        assert!(saved.contains("saved snapshot"), "{saved}");
        assert!(saved.contains("2 rule(s), 2 fact(s)"), "{saved}");

        // A fresh session restores it via the same :load command (autodetected).
        let mut fresh = Repl::new();
        let restored = output(&mut fresh, &format!(":load {path}"));
        assert!(restored.contains("restored snapshot"), "{restored}");
        assert!(restored.contains("2 rule(s), 2 fact(s)"), "{restored}");
        let answers = output(&mut fresh, "?- t(1, Y).");
        assert!(answers.contains("% 2 answer(s)"), "{answers}");
        assert!(answers.contains("Y = 2") && answers.contains("Y = 3"));
        // And the restored session keeps mutating incrementally.
        output(&mut fresh, ":retract e(2, 3).");
        assert!(output(&mut fresh, "?- t(1, Y).").contains("% 1 answer(s)"));
        std::fs::remove_file(&path).ok();
        assert!(output(&mut repl, ":save").starts_with("error:"));
    }

    #[test]
    fn load_of_empty_or_missing_files_errors_cleanly() {
        let mut repl = Repl::new();
        // Missing file: clean error naming the path.
        let message = output(&mut repl, ":load /nonexistent/factorlog.dl");
        assert!(message.starts_with("error:"), "{message}");
        assert!(message.contains("/nonexistent/factorlog.dl"), "{message}");
        // Empty file: an explicit "is empty" error instead of silently loading
        // 0 rules and 0 facts.
        let path =
            std::env::temp_dir().join(format!("factorlog_repl_empty_{}.dl", std::process::id()));
        std::fs::write(&path, "  \n").unwrap();
        let message = output(&mut repl, &format!(":load {}", path.display()));
        assert!(message.starts_with("error:"), "{message}");
        assert!(message.contains("is empty"), "{message}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_of_unknown_snapshot_version_errors_explicitly() {
        // A future-version snapshot must be routed to the snapshot path and fail
        // with an unsupported-version error — never be absorbed as plain source
        // (its header is a valid Datalog comment, so silent absorption would load
        // the facts while dropping whatever v2 semantics they relied on).
        let path =
            std::env::temp_dir().join(format!("factorlog_repl_v2_{}.fl", std::process::id()));
        std::fs::write(&path, "% factorlog snapshot v2\ne(1, 2).\n").unwrap();
        let mut repl = Repl::new();
        let message = output(&mut repl, &format!(":load {}", path.display()));
        assert!(message.starts_with("error:"), "{message}");
        assert!(
            message.contains("unsupported snapshot version"),
            "{message}"
        );
        assert_eq!(repl.engine().facts().total_facts(), 0, "nothing absorbed");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn open_and_compact_drive_a_durable_session() {
        let dir =
            std::env::temp_dir().join(format!("factorlog_repl_durable_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let dir_arg = dir.display().to_string();

        let mut repl = Repl::new();
        assert!(
            output(&mut repl, ":compact").starts_with("error:"),
            "not durable yet"
        );
        let opened = output(&mut repl, &format!(":open {dir_arg}"));
        assert!(opened.contains("opened durable session"), "{opened}");
        assert!(
            opened.contains("snapshot absent, 0 wal record(s) replayed"),
            "{opened}"
        );
        output(
            &mut repl,
            "t(X, Y) :- e(X, Y).\nt(X, Y) :- e(X, W), t(W, Y).",
        );
        output(&mut repl, ":insert e(1, 2).");
        output(&mut repl, ":begin");
        output(&mut repl, ":insert e(2, 3).");
        output(&mut repl, ":retract e(1, 2).");
        assert!(output(&mut repl, ":commit").contains("1 asserted, 1 retracted"));
        let stats = output(&mut repl, ":stats");
        assert!(stats.contains("wal:\n  dir"), "{stats}");
        assert!(stats.contains("3 append(s)"), "{stats}");
        let compacted = output(&mut repl, ":compact");
        assert!(compacted.contains("compacted: log"), "{compacted}");

        // :open refuses to silently discard a queued transaction.
        output(&mut repl, ":begin");
        assert!(
            output(&mut repl, &format!(":open {dir_arg}")).starts_with("error:"),
            "open must not discard the queued transaction"
        );
        output(&mut repl, ":abort");
        assert!(output(&mut repl, ":open").starts_with("error:"));

        // Single-writer: a second session is refused while the first holds the
        // directory's LOCK…
        let mut fresh = Repl::new();
        let refused = output(&mut fresh, &format!(":open {dir_arg}"));
        assert!(refused.contains("locked by live process"), "{refused}");
        // …and recovers the committed state once the holder is gone.
        drop(repl);
        let reopened = output(&mut fresh, &format!(":open {dir_arg}"));
        assert!(reopened.contains("snapshot loaded"), "{reopened}");
        let answers = output(&mut fresh, "?- t(2, Y).");
        assert!(answers.contains("% 1 answer(s)"), "{answers}");
        assert!(answers.contains("Y = 3"), "{answers}");
        assert!(output(&mut fresh, "?- t(1, Y).").contains("% 0 answer(s)"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn duplicate_insert_is_reported() {
        let mut repl = Repl::new();
        output(&mut repl, ":insert e(1, 2).");
        assert_eq!(
            output(&mut repl, ":insert e(1, 2)."),
            "e(1, 2) already present"
        );
    }

    #[test]
    fn load_reads_a_file() {
        let path = std::env::temp_dir().join("factorlog_repl_load_test.dl");
        std::fs::write(&path, "t(X, Y) :- e(X, Y).\ne(1, 2).\n?- t(1, Y).\n").unwrap();
        let mut repl = Repl::new();
        let message = output(&mut repl, &format!(":load {}", path.display()));
        assert!(message.contains("loaded 1 rule(s), 1 fact(s)"));
        assert!(message.contains("file query: ?- t(1, Y)."));
        assert!(output(&mut repl, "?- t(1, Y).").contains("Y = 2"));
        std::fs::remove_file(&path).ok();
    }
}
