//! The interactive session command language, decoupled from terminal I/O so it can be
//! tested directly: [`Repl::execute`] maps one input line to one textual response.
//!
//! ```text
//! :load <file>        load rules + facts from a Datalog file
//! :insert <fact>.     insert one ground fact (incremental)
//! :prepare <query>    compile + cache the optimized plan for a query
//! ?- <query>.         answer a query (uses the prepared plan when one is cached)
//! :threads [N]        show or set the evaluation worker count (0 = all cores)
//! :stats              cumulative session statistics (incl. plan-cache counters)
//! :program            show the registered rules
//! :help               command summary
//! :quit               leave the session
//! <rule or fact>.     bare Datalog clauses are absorbed like :load text
//! ```

use std::fmt::Write as _;

use factorlog_datalog::ast::Query;
use factorlog_datalog::parser::{parse_atom, parse_query};

use crate::engine::Engine;

/// The outcome of executing one REPL line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReplAction {
    /// Print this (possibly empty) response and continue.
    Output(String),
    /// Leave the session.
    Quit,
}

/// A REPL session: an [`Engine`] plus the command interpreter.
#[derive(Default)]
pub struct Repl {
    engine: Engine,
}

const HELP: &str = "\
commands:
  :load <file>     load rules and facts from a Datalog file
  :insert <fact>.  insert one ground fact (incrementally maintained)
  :prepare <q>     prepare (compile + cache) the optimized plan for query <q>
  ?- <query>.      answer a query; replays the prepared plan when one is cached
  :threads [N]     show or set evaluation worker threads (1 = sequential, 0 = cores);
                   parallel evaluation is bit-identical to sequential, only faster
  :stats           cumulative session statistics (plan cache, inferences, parallel)
  :program         show the registered rules
  :help            this summary
  :quit            leave the session
bare rules/facts (e.g. `e(1, 2).` or `t(X, Y) :- e(X, Y).`) are added directly.";

impl Repl {
    /// A fresh session.
    pub fn new() -> Repl {
        Repl {
            engine: Engine::new(),
        }
    }

    /// A session wrapping an existing engine (e.g. pre-loaded from a file).
    pub fn with_engine(engine: Engine) -> Repl {
        Repl { engine }
    }

    /// The underlying engine.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Mutable access to the underlying engine.
    pub fn engine_mut(&mut self) -> &mut Engine {
        &mut self.engine
    }

    /// Execute one input line and return what to print (or [`ReplAction::Quit`]).
    /// Errors are rendered into the response, never panicked or propagated.
    pub fn execute(&mut self, line: &str) -> ReplAction {
        let line = line.trim();
        if line.is_empty() || line.starts_with('%') {
            return ReplAction::Output(String::new());
        }
        match self.dispatch(line) {
            Ok(action) => action,
            Err(message) => ReplAction::Output(format!("error: {message}")),
        }
    }

    fn dispatch(&mut self, line: &str) -> Result<ReplAction, String> {
        if let Some(rest) = line.strip_prefix("?-") {
            return self.run_query(rest).map(ReplAction::Output);
        }
        if let Some(rest) = line.strip_prefix(':') {
            let (command, argument) = match rest.split_once(char::is_whitespace) {
                Some((c, a)) => (c, a.trim()),
                None => (rest, ""),
            };
            return match command {
                "quit" | "exit" | "q" => Ok(ReplAction::Quit),
                "help" | "h" => Ok(ReplAction::Output(HELP.to_string())),
                "load" => self.load(argument).map(ReplAction::Output),
                "insert" => self.insert(argument).map(ReplAction::Output),
                "prepare" => self.prepare(argument).map(ReplAction::Output),
                "threads" => self.threads(argument).map(ReplAction::Output),
                "stats" => Ok(ReplAction::Output(self.stats())),
                "program" => Ok(ReplAction::Output(self.show_program())),
                other => Err(format!("unknown command `:{other}` (try :help)")),
            };
        }
        // Bare Datalog text: rules and facts.
        self.absorb(line).map(ReplAction::Output)
    }

    fn load(&mut self, path: &str) -> Result<String, String> {
        if path.is_empty() {
            return Err(":load requires a file path".to_string());
        }
        let source =
            std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let summary = self
            .engine
            .load_source(&source)
            .map_err(|e| e.to_string())?;
        let mut out = format!(
            "loaded {} rule(s), {} fact(s)",
            summary.rules_added, summary.facts_added
        );
        if summary.duplicates > 0 {
            let _ = write!(out, " ({} duplicate(s) ignored)", summary.duplicates);
        }
        if let Some(query) = &summary.query {
            let _ = write!(out, "; file query: {query}");
        }
        Ok(out)
    }

    fn insert(&mut self, text: &str) -> Result<String, String> {
        let text = text.trim().trim_end_matches('.');
        if text.is_empty() {
            return Err(":insert requires a fact, e.g. `:insert e(1, 2).`".to_string());
        }
        let atom = parse_atom(text).map_err(|e| e.to_string())?;
        let new = self.engine.insert_atom(&atom).map_err(|e| e.to_string())?;
        Ok(if new {
            format!("inserted {atom}")
        } else {
            format!("{atom} already present")
        })
    }

    fn parse_query_text(text: &str) -> Result<Query, String> {
        let text = text.trim().trim_end_matches('.');
        if text.is_empty() {
            return Err("expected a query literal, e.g. `t(0, Y)`".to_string());
        }
        parse_query(text).map_err(|e| e.to_string())
    }

    fn prepare(&mut self, text: &str) -> Result<String, String> {
        let query = Self::parse_query_text(text)?;
        let report = self.engine.prepare(&query).map_err(|e| e.to_string())?;
        Ok(format!(
            "prepared {query} [{}]{}",
            report.strategy,
            if report.cached { " (cached)" } else { "" }
        ))
    }

    fn threads(&mut self, arg: &str) -> Result<String, String> {
        let describe = |engine: &Engine| {
            let configured = engine.threads();
            let effective = engine.options().effective_threads();
            match configured {
                0 => format!("threads: 0 (auto: {effective} available core(s))"),
                1 => "threads: 1 (sequential)".to_string(),
                n => format!("threads: {n}"),
            }
        };
        if arg.is_empty() {
            return Ok(describe(&self.engine));
        }
        let n: usize = arg
            .parse()
            .map_err(|_| format!("`:threads` expects a number, got `{arg}`"))?;
        self.engine.set_threads(n);
        Ok(describe(&self.engine))
    }

    fn run_query(&mut self, text: &str) -> Result<String, String> {
        let query = Self::parse_query_text(text)?;
        let (answers, label) = if self.engine.has_prepared(&query) {
            let answers = self
                .engine
                .query_prepared(&query)
                .map_err(|e| e.to_string())?;
            (answers, "prepared")
        } else {
            let answers = self.engine.query(&query).map_err(|e| e.to_string())?;
            (answers, "materialized")
        };

        // Distinct free variables in first-occurrence order — matches the projection
        // used by `Database::answers`.
        let mut free_vars: Vec<String> = Vec::new();
        for term in &query.atom.terms {
            if let Some(v) = term.as_var() {
                let name = v.as_str().to_string();
                if !free_vars.contains(&name) {
                    free_vars.push(name);
                }
            }
        }
        let mut out = format!("% {} answer(s) [{label}]", answers.len());
        for row in &answers {
            let rendered: Vec<String> = free_vars
                .iter()
                .zip(row.iter())
                .map(|(v, c)| format!("{v} = {c}"))
                .collect();
            out.push('\n');
            if rendered.is_empty() {
                out.push_str("true");
            } else {
                out.push_str(&rendered.join(", "));
            }
        }
        Ok(out)
    }

    fn absorb(&mut self, text: &str) -> Result<String, String> {
        let summary = self.engine.load_source(text).map_err(|e| e.to_string())?;
        let mut parts = Vec::new();
        if summary.rules_added > 0 {
            parts.push(format!("added {} rule(s)", summary.rules_added));
        }
        if summary.facts_added > 0 {
            parts.push(format!("inserted {} fact(s)", summary.facts_added));
        }
        if summary.duplicates > 0 {
            parts.push(format!("{} duplicate(s) ignored", summary.duplicates));
        }
        if parts.is_empty() {
            parts.push("nothing to add".to_string());
        }
        Ok(parts.join(", "))
    }

    fn stats(&self) -> String {
        let stats = self.engine.stats();
        let mut out = String::new();
        let _ = write!(out, "{stats}");
        let _ = write!(
            out,
            "prepared plans: {} cached of {} max ({} hits, {} misses, {} evicted); pending facts: {}; model: {}",
            self.engine.prepared_count(),
            self.engine.prepared_capacity(),
            stats.plan_cache_hits,
            stats.plan_cache_misses,
            stats.plan_cache_evictions,
            self.engine.pending_facts(),
            if self.engine.is_materialized() {
                "materialized"
            } else {
                "stale"
            }
        );
        let _ = write!(
            out,
            "\nthreads: {} configured ({} effective); parallel rounds: {} ({} firings); literal reorders: {}",
            self.engine.threads(),
            self.engine.options().effective_threads(),
            stats.parallel_rounds,
            stats.parallel_firings,
            stats.literal_reorders,
        );
        out
    }

    fn show_program(&self) -> String {
        let program = self.engine.program();
        if program.is_empty() {
            "no rules registered".to_string()
        } else {
            format!("{program}").trim_end().to_string()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn output(repl: &mut Repl, line: &str) -> String {
        match repl.execute(line) {
            ReplAction::Output(text) => text,
            ReplAction::Quit => panic!("unexpected quit for {line}"),
        }
    }

    #[test]
    fn full_session_transcript() {
        let mut repl = Repl::new();
        assert_eq!(output(&mut repl, "t(X, Y) :- e(X, Y)."), "added 1 rule(s)");
        assert_eq!(
            output(&mut repl, "t(X, Y) :- e(X, W), t(W, Y)."),
            "added 1 rule(s)"
        );
        assert_eq!(output(&mut repl, ":insert e(0, 1)."), "inserted e(0, 1)");
        assert_eq!(output(&mut repl, ":insert e(1, 2)."), "inserted e(1, 2)");
        let answers = output(&mut repl, "?- t(0, Y).");
        assert!(answers.starts_with("% 2 answer(s) [materialized]"));
        assert!(answers.contains("Y = 1") && answers.contains("Y = 2"));

        // Incremental insert, then the same query sees the new fact.
        assert_eq!(output(&mut repl, ":insert e(2, 3)."), "inserted e(2, 3)");
        assert!(output(&mut repl, "?- t(0, Y).").contains("% 3 answer(s)"));

        // Prepare, then the query switches to the prepared plan and hits the cache.
        let prepared = output(&mut repl, ":prepare t(0, Y)");
        assert!(prepared.starts_with("prepared ?- t(0, Y). [magic + factoring]"));
        let answers = output(&mut repl, "?- t(0, Y).");
        assert!(answers.starts_with("% 3 answer(s) [prepared]"));
        assert_eq!(repl.engine().stats().plan_cache_hits, 1);

        let stats = output(&mut repl, ":stats");
        assert!(stats.contains("plan cache: 1 hits, 1 misses, 0 evicted"));
        assert!(stats.contains("prepared plans: 1 cached of 256 max"));
        // The compiled-join counters flow through the cumulative session stats.
        assert!(stats.contains("index probes"), "{stats}");
        assert!(stats.contains("full scans"), "{stats}");

        let program = output(&mut repl, ":program");
        assert!(program.contains("t(X, Y) :- e(X, W), t(W, Y)."));

        assert_eq!(repl.execute(":quit"), ReplAction::Quit);
    }

    #[test]
    fn errors_are_reported_not_propagated() {
        let mut repl = Repl::new();
        assert!(output(&mut repl, ":insert e(X, 1).").starts_with("error:"));
        assert!(output(&mut repl, ":bogus").starts_with("error:"));
        assert!(output(&mut repl, "?- ").starts_with("error:"));
        assert!(output(&mut repl, ":load /nonexistent/path.dl").starts_with("error:"));
        assert!(output(&mut repl, "nonsense here").starts_with("error:"));
    }

    #[test]
    fn blank_lines_comments_and_help() {
        let mut repl = Repl::new();
        assert_eq!(output(&mut repl, ""), "");
        assert_eq!(output(&mut repl, "% a comment"), "");
        assert!(output(&mut repl, ":help").contains(":prepare"));
        assert_eq!(output(&mut repl, ":program"), "no rules registered");
    }

    #[test]
    fn stats_report_evictions_and_join_counters() {
        let mut repl = Repl::new();
        repl.engine_mut().set_prepared_capacity(1);
        output(&mut repl, "t(X, Y) :- e(X, Y).");
        output(&mut repl, "s(X) :- t(X, X).");
        output(&mut repl, ":insert e(1, 1).");
        // Two differently-shaped prepared plans with capacity 1: one eviction.
        output(&mut repl, ":prepare t(1, Y)");
        output(&mut repl, ":prepare s(X)");
        let stats = output(&mut repl, ":stats");
        assert!(
            stats.contains("prepared plans: 1 cached of 1 max (0 hits, 2 misses, 1 evicted)"),
            "{stats}"
        );
        assert!(
            stats.contains("plan cache: 0 hits, 2 misses, 1 evicted"),
            "{stats}"
        );
    }

    #[test]
    fn threads_command_round_trips() {
        let mut repl = Repl::new();
        repl.engine_mut().set_threads(1);
        assert_eq!(output(&mut repl, ":threads"), "threads: 1 (sequential)");
        assert_eq!(output(&mut repl, ":threads 4"), "threads: 4");
        assert_eq!(repl.engine().threads(), 4);
        assert!(output(&mut repl, ":threads 0").starts_with("threads: 0 (auto:"));
        assert!(output(&mut repl, ":threads nope").starts_with("error:"));
        // A parallel session still answers queries correctly.
        repl.engine_mut().set_threads(4);
        output(&mut repl, "t(X, Y) :- e(X, Y).");
        output(&mut repl, ":insert e(1, 2).");
        assert!(output(&mut repl, "?- t(1, Y).").contains("Y = 2"));
        let stats = output(&mut repl, ":stats");
        assert!(stats.contains("threads: 4 configured"), "{stats}");
        assert!(stats.contains("parallel rounds:"), "{stats}");
        assert!(stats.contains("literal reorders:"), "{stats}");
    }

    #[test]
    fn duplicate_insert_is_reported() {
        let mut repl = Repl::new();
        output(&mut repl, ":insert e(1, 2).");
        assert_eq!(
            output(&mut repl, ":insert e(1, 2)."),
            "e(1, 2) already present"
        );
    }

    #[test]
    fn load_reads_a_file() {
        let path = std::env::temp_dir().join("factorlog_repl_load_test.dl");
        std::fs::write(&path, "t(X, Y) :- e(X, Y).\ne(1, 2).\n?- t(1, Y).\n").unwrap();
        let mut repl = Repl::new();
        let message = output(&mut repl, &format!(":load {}", path.display()));
        assert!(message.contains("loaded 1 rule(s), 1 fact(s)"));
        assert!(message.contains("file query: ?- t(1, Y)."));
        assert!(output(&mut repl, "?- t(1, Y).").contains("Y = 2"));
        std::fs::remove_file(&path).ok();
    }
}
