//! WAL log-shipping replication: read replicas that follow a leader's
//! transaction log over the line protocol, plus lease-based failover.
//!
//! # Topology
//!
//! ```text
//!                       ┌───────────────────────────────┐
//!    writers ── TXN ──▶ │ leader (serve)                │
//!                       │  wal.log = committed truth    │
//!                       └──────┬────────────┬───────────┘
//!          REPL SUBSCRIBE <seq>│            │REPL SUBSCRIBE <seq>
//!              FRAME*/SNAP ────▼──          ▼
//!                       ┌───────────┐ ┌───────────┐
//!    readers ─ QUERY ──▶│ follower  │ │ follower  │  lock-free snapshot reads
//!                       │ (replica) │ │ (replica) │  (stale-bounded by poll lag)
//!                       └───────────┘ └───────────┘
//! ```
//!
//! Followers poll the leader with `REPL SUBSCRIBE <from_seq> term=<T> id=<I>`;
//! the leader streams the committed WAL frames at and after `from_seq`
//! (hex-encoded, one per `FRAME` line) straight from its on-disk log — commits
//! are fsync'd before they are acknowledged, so the log *is* the publisher and
//! no writer-side coupling is needed. When the leader has compacted past the
//! follower's position it ships its snapshot instead (`SNAP` line); the
//! follower bootstraps from it and resumes frame catch-up from the snapshot's
//! sequence number.
//!
//! # Consistency
//!
//! * **Apply-at-most-once.** Shipped frames keep the leader's sequence
//!   numbers; a follower appends each to its own log verbatim and applies it
//!   through the recovery-replay path, skipping sequences it already holds and
//!   refusing gaps. Replay of one totally ordered log on every node is why
//!   replicas converge: the WAL fixes one serialization out of the many
//!   admissible interleavings of concurrent transactions.
//! * **Stale-bounded reads.** A follower serves queries from its latest
//!   applied view — a consistent committed prefix of the leader's history, at
//!   most one poll interval (plus in-flight frames) behind.
//! * **Lease-based failover.** A follower counts the leader as live while any
//!   poll succeeded within the lease timeout. Promotion (`PROMOTE`, REPL
//!   `:promote`, or [`Replica::promote`]) is refused while the lease is
//!   valid, and otherwise bumps the node's *term* (persisted in a `TERM` file
//!   in the data directory) and starts accepting writes. A revived ex-leader
//!   is *fenced* the moment it sees a newer term — from any subscriber's poll
//!   — and refuses writes until it is restarted as a follower of the new
//!   leader, which demotes it cleanly (its committed history is a prefix of
//!   the new leader's, so catch-up is ordinary frame shipping).

use std::net::ToSocketAddrs;
use std::path::Path;
use std::time::{Duration, Instant};

use factorlog_datalog::ast::Const;

use crate::durability::{parse_wal_seq, DurabilityOptions, SNAPSHOT_FILE, WAL_FILE};
use crate::engine::{Engine, EngineError};
use crate::server::{
    serve_inner, Client, ClientError, FollowerConfig, ServeError, ServerHandle, ServerOptions,
};
use crate::wal::{self, WalRecord};

/// File name (inside a data directory) persisting the node's replication term:
/// a monotonically increasing integer bumped by every promotion, the fencing
/// token that lets a new leader supersede a revived old one.
pub const TERM_FILE: &str = "TERM";

/// The replication role a node is in.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ReplicaRole {
    /// Accepts writes and publishes its log to subscribers. Every plain
    /// [`serve`](crate::serve)d node is a leader (possibly with no followers).
    #[default]
    Leader,
    /// Read-only: applies the leader's shipped frames, serves snapshot
    /// queries, and can promote once the leader's lease expires.
    Follower,
    /// An ex-leader that observed a newer term: refuses writes (a split brain
    /// would otherwise fork the history) until restarted as a follower.
    Fenced,
}

impl ReplicaRole {
    /// The lowercase protocol name (`leader` / `follower` / `fenced`).
    pub fn as_str(self) -> &'static str {
        match self {
            ReplicaRole::Leader => "leader",
            ReplicaRole::Follower => "follower",
            ReplicaRole::Fenced => "fenced",
        }
    }

    /// Parse a protocol role name (the inverse of [`ReplicaRole::as_str`]).
    pub fn parse(s: &str) -> Option<ReplicaRole> {
        match s {
            "leader" => Some(ReplicaRole::Leader),
            "follower" => Some(ReplicaRole::Follower),
            "fenced" => Some(ReplicaRole::Fenced),
            _ => None,
        }
    }

    pub(crate) fn as_u8(self) -> u8 {
        match self {
            ReplicaRole::Leader => 0,
            ReplicaRole::Follower => 1,
            ReplicaRole::Fenced => 2,
        }
    }

    pub(crate) fn from_u8(v: u8) -> ReplicaRole {
        match v {
            1 => ReplicaRole::Follower,
            2 => ReplicaRole::Fenced,
            _ => ReplicaRole::Leader,
        }
    }
}

impl std::fmt::Display for ReplicaRole {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Tuning knobs of a follower.
#[derive(Clone, Debug)]
pub struct ReplicationOptions {
    /// How often the follower polls the leader for new frames.
    pub poll_interval: Duration,
    /// How long after the last successful leader contact the leader's lease is
    /// considered expired (promotion is refused before that — the leader may
    /// merely be slow, and two live leaders would fork the history).
    pub lease_timeout: Duration,
    /// Most frames one poll will request (the leader may cap lower).
    pub batch_frames: usize,
}

impl Default for ReplicationOptions {
    fn default() -> Self {
        ReplicationOptions {
            poll_interval: Duration::from_millis(20),
            lease_timeout: Duration::from_millis(750),
            batch_frames: 512,
        }
    }
}

/// Read the persisted term of a data directory (0 when the `TERM` file is
/// absent or unreadable — a node that never took part in a failover).
pub(crate) fn read_term(dir: &Path) -> u64 {
    std::fs::read_to_string(dir.join(TERM_FILE))
        .ok()
        .and_then(|text| text.trim().parse().ok())
        .unwrap_or(0)
}

/// Persist `term` in the data directory's `TERM` file (fsync'd: a promotion
/// must survive the promoted node's own crash, or a revived ex-leader could
/// reclaim leadership it already lost).
pub(crate) fn persist_term(dir: &Path, term: u64) -> Result<(), EngineError> {
    let path = dir.join(TERM_FILE);
    let write = || -> std::io::Result<()> {
        use std::io::Write as _;
        let mut file = std::fs::File::create(&path)?;
        file.write_all(format!("{term}\n").as_bytes())?;
        file.sync_data()
    };
    write().map_err(|e| EngineError::Io(format!("cannot write {}: {e}", path.display())))
}

/// Hex-encode `bytes` (lowercase) — WAL frames and snapshots ship hex-encoded
/// so the line protocol stays line-safe.
pub(crate) fn to_hex(bytes: &[u8]) -> String {
    const DIGITS: &[u8; 16] = b"0123456789abcdef";
    let mut out = String::with_capacity(bytes.len() * 2);
    for &b in bytes {
        out.push(DIGITS[(b >> 4) as usize] as char);
        out.push(DIGITS[(b & 0xF) as usize] as char);
    }
    out
}

/// Decode a hex string produced by [`to_hex`].
pub(crate) fn from_hex(text: &str) -> Result<Vec<u8>, String> {
    let text = text.trim();
    if !text.len().is_multiple_of(2) {
        return Err("odd-length hex payload".to_string());
    }
    let nibble = |c: u8| -> Result<u8, String> {
        match c {
            b'0'..=b'9' => Ok(c - b'0'),
            b'a'..=b'f' => Ok(c - b'a' + 10),
            b'A'..=b'F' => Ok(c - b'A' + 10),
            _ => Err(format!("bad hex digit `{}`", c as char)),
        }
    };
    let bytes = text.as_bytes();
    let mut out = Vec::with_capacity(bytes.len() / 2);
    for pair in bytes.chunks_exact(2) {
        out.push((nibble(pair[0])? << 4) | nibble(pair[1])?);
    }
    Ok(out)
}

/// What the leader ships for one `REPL SUBSCRIBE` poll.
pub(crate) enum StreamStep {
    /// The log can no longer supply `from_seq` contiguously (compaction reset
    /// it): ship the whole snapshot; the follower bootstraps and resumes from
    /// `seq + 1`.
    Snapshot {
        /// The snapshot text (carries its `% wal-seq` stamp).
        text: String,
        /// The sequence number the snapshot includes.
        seq: u64,
        /// The leader's overall committed position.
        last_seq: u64,
    },
    /// Zero or more contiguous frames starting at `from_seq` (empty = the
    /// follower is caught up).
    Frames {
        /// The frames, in log order.
        frames: Vec<WalRecord>,
        /// The leader's overall committed position.
        last_seq: u64,
    },
}

/// Compute the leader-side answer to one subscription poll, straight from the
/// data directory: the on-disk log is the committed truth (commits fsync
/// before acknowledging), so no coupling to the writer thread is needed.
pub(crate) fn stream_step(
    dir: &Path,
    from_seq: u64,
    max_frames: usize,
) -> Result<StreamStep, EngineError> {
    let snapshot = match std::fs::read_to_string(dir.join(SNAPSHOT_FILE)) {
        Ok(text) => Some(text),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => None,
        Err(e) => return Err(EngineError::Io(format!("cannot read snapshot: {e}"))),
    };
    let snap_seq = snapshot.as_deref().map(parse_wal_seq).unwrap_or(0);
    let read = wal::read_frames_from(&dir.join(WAL_FILE), from_seq, max_frames)?;
    let last_seq = read.last_seq.unwrap_or(0).max(snap_seq);
    match read.first_seq {
        // The log supplies `from_seq` contiguously: ship frames.
        Some(first) if first == from_seq => Ok(StreamStep::Frames {
            frames: read.frames,
            last_seq,
        }),
        // Caught up (or ahead — a stale node polling a behind one): nothing to ship.
        None if from_seq > last_seq => Ok(StreamStep::Frames {
            frames: Vec::new(),
            last_seq,
        }),
        // The log starts after `from_seq` (a compaction raced the follower):
        // bootstrap from the snapshot when it covers the gap.
        _ => match snapshot {
            Some(text) if snap_seq + 1 >= from_seq => Ok(StreamStep::Snapshot {
                text,
                seq: snap_seq,
                last_seq,
            }),
            // No snapshot that reaches back far enough — a transient state
            // (e.g. mid-compaction): ship nothing, the follower retries.
            _ => Ok(StreamStep::Frames {
                frames: Vec::new(),
                last_seq,
            }),
        },
    }
}

/// The parsed reply of one `REPL SUBSCRIBE` poll (see [`Client::subscribe`]).
#[derive(Debug)]
pub struct SubscribeReply {
    /// A full snapshot to bootstrap from (the leader compacted past the
    /// requested position); `None` on ordinary frame polls.
    pub snapshot: Option<String>,
    /// The shipped frames, in log order (empty when caught up or when a
    /// snapshot is shipped instead).
    pub frames: Vec<WalRecord>,
    /// The leader's overall committed position (lag = `last_seq` minus the
    /// follower's applied position).
    pub last_seq: u64,
    /// The leader's term.
    pub term: u64,
}

impl Client {
    /// One replication poll: ask the server for committed WAL frames from
    /// `from_seq` on, identifying ourselves with our `term` (fencing: a term
    /// newer than the server's proves a newer leader exists and demotes it)
    /// and follower `id` (per-follower lag tracking in the leader's `STATS`).
    pub fn subscribe(
        &mut self,
        from_seq: u64,
        term: u64,
        id: u64,
    ) -> Result<SubscribeReply, ClientError> {
        self.send_line(&format!("REPL SUBSCRIBE {from_seq} term={term} id={id}"))?;
        let mut snapshot = None;
        let mut frames = Vec::new();
        loop {
            let line = self.read_reply_line()?;
            if let Some(hex) = line.strip_prefix("SNAP ") {
                let bytes = from_hex(hex).map_err(ClientError::Protocol)?;
                snapshot = Some(String::from_utf8(bytes).map_err(|_| {
                    ClientError::Protocol("shipped snapshot is not utf-8".to_string())
                })?);
                continue;
            }
            if let Some(hex) = line.strip_prefix("FRAME ") {
                let bytes = from_hex(hex).map_err(ClientError::Protocol)?;
                let record = WalRecord::decode(&bytes)
                    .map_err(|e| ClientError::Protocol(format!("bad shipped frame: {e}")))?;
                frames.push(record);
                continue;
            }
            let fields = Client::expect_ok(&line)?;
            return Ok(SubscribeReply {
                snapshot,
                frames,
                last_seq: Client::parse_field(fields, "last_seq")?,
                term: Client::parse_field(fields, "term")?,
            });
        }
    }

    /// Ask the server to promote itself to leader. Succeeds (idempotently)
    /// when it already leads, errs with code `lease` while the current
    /// leader's lease is still valid, and with code `fenced` on a superseded
    /// ex-leader. Returns the server's role and term after the call.
    pub fn promote(&mut self) -> Result<(ReplicaRole, u64), ClientError> {
        self.send_line("PROMOTE")?;
        let line = self.read_reply_line()?;
        let fields = Client::expect_ok(&line)?;
        let role = fields
            .split_whitespace()
            .find_map(|f| f.strip_prefix("role="))
            .and_then(ReplicaRole::parse)
            .ok_or_else(|| ClientError::Protocol(format!("missing `role=` in `{fields}`")))?;
        Ok((role, Client::parse_field(fields, "term")?))
    }
}

/// What one [`Replica::sync_once`] poll did.
#[derive(Clone, Copy, Debug, Default)]
pub struct SyncReport {
    /// Did the poll reach a live, non-fenced publisher? (Renews the lease.)
    pub contacted: bool,
    /// Frames newly applied by this poll.
    pub frames_applied: usize,
    /// Did this poll bootstrap from a shipped snapshot?
    pub bootstrapped: bool,
    /// Did the polled node report *itself* fenced (our term supersedes it)?
    pub fenced_leader: bool,
}

/// A point-in-time view of a replica's replication state, surfaced in the
/// REPL's `:stats` and the metrics JSON document.
#[derive(Clone, Debug)]
pub struct ReplicaStatus {
    /// Current role.
    pub role: ReplicaRole,
    /// Current term.
    pub term: u64,
    /// Last log sequence number applied locally.
    pub applied_seq: u64,
    /// The leader's position as of the last successful poll.
    pub leader_seq: u64,
    /// `leader_seq - applied_seq` (frames still to ship).
    pub lag_frames: u64,
    /// Frames applied over this replica's lifetime.
    pub frames_applied: u64,
    /// Snapshot bootstraps over this replica's lifetime.
    pub bootstraps: u64,
    /// The leader address this replica follows.
    pub leader: String,
}

/// An embeddable follower: a durable [`Engine`] plus the subscription loop
/// state — the building block under `factorlog serve --follow`, the REPL's
/// `:follow`, and the replication test harnesses. Call [`Replica::sync_once`]
/// (or [`Replica::catch_up`]) to poll; queries are served from the applied
/// state at any time; writes are refused until [`Replica::promote`] succeeds.
pub struct Replica {
    engine: Engine,
    leader: String,
    options: ReplicationOptions,
    client: Option<Client>,
    id: u64,
    term: u64,
    role: ReplicaRole,
    /// Instant of the last successful publisher contact — seeded at creation,
    /// so a fresh replica must wait out one full lease before promoting.
    last_contact: Instant,
    leader_seq: u64,
    frames_applied: u64,
    bootstraps: u64,
}

impl Replica {
    /// Open (or create) a durable data directory and follow `leader`, with
    /// default durability and replication options.
    pub fn open(dir: impl AsRef<Path>, leader: impl Into<String>) -> Result<Replica, EngineError> {
        let engine = Engine::open_durable_with(dir, DurabilityOptions::default())?;
        Replica::from_engine(engine, leader, ReplicationOptions::default())
    }

    /// Wrap an already-open durable engine as a follower of `leader`. The
    /// engine's persisted term (the `TERM` file) carries over. Errors when the
    /// engine is not durable — a follower without its own log could not
    /// survive its own crash.
    pub fn from_engine(
        engine: Engine,
        leader: impl Into<String>,
        options: ReplicationOptions,
    ) -> Result<Replica, EngineError> {
        let Some(dir) = engine.data_dir() else {
            return Err(EngineError::Durability(
                "a replica must be durable (open it with open_durable)".to_string(),
            ));
        };
        let term = read_term(dir);
        // A follower identity for the leader's per-follower lag map: unique
        // enough across processes and restarts (clock nanos xor pid).
        let id = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0)
            ^ ((std::process::id() as u64) << 32);
        Ok(Replica {
            engine,
            leader: leader.into(),
            options,
            client: None,
            id,
            term,
            role: ReplicaRole::Follower,
            last_contact: Instant::now(),
            leader_seq: 0,
            frames_applied: 0,
            bootstraps: 0,
        })
    }

    /// One subscription poll: connect (or reuse the connection), fetch the
    /// next batch, apply it. Network failures are *not* errors — the report
    /// comes back with `contacted: false` and the next poll reconnects; only
    /// local durability failures (this replica's own log or snapshot) err.
    pub fn sync_once(&mut self) -> Result<SyncReport, EngineError> {
        let mut report = SyncReport::default();
        if self.role != ReplicaRole::Follower {
            return Ok(report);
        }
        let mut client = match self.client.take() {
            Some(client) => client,
            None => match Client::connect(self.leader.as_str()) {
                Ok(client) => client,
                Err(_) => return Ok(report),
            },
        };
        let from_seq = self.engine.wal_last_seq().unwrap_or(0) + 1;
        match client.subscribe(from_seq, self.term, self.id) {
            Ok(reply) => {
                report.contacted = true;
                self.last_contact = Instant::now();
                self.leader_seq = reply.last_seq;
                if reply.term > self.term {
                    // A failover happened upstream: adopt the new term so our
                    // own polls carry it onward.
                    self.term = reply.term;
                    if let Some(dir) = self.engine.data_dir() {
                        let dir = dir.to_path_buf();
                        persist_term(&dir, self.term)?;
                    }
                }
                if let Some(text) = reply.snapshot {
                    self.engine.bootstrap_from_snapshot_text(&text)?;
                    report.bootstrapped = true;
                    self.bootstraps += 1;
                }
                if !reply.frames.is_empty() {
                    let applied = self.engine.apply_replicated(reply.frames)?;
                    report.frames_applied = applied;
                    self.frames_applied += applied as u64;
                }
                self.client = Some(client);
            }
            Err(ClientError::Server { code, .. }) if code == "fenced" => {
                // The polled node fenced itself against our newer term: it is
                // not a live leader, so the lease is deliberately NOT renewed.
                report.fenced_leader = true;
                self.client = Some(client);
            }
            Err(_) => {
                // Leader unreachable or mid-restart: drop the connection and
                // let the next poll redial. The lease keeps aging.
            }
        }
        Ok(report)
    }

    /// Poll until fully caught up with the publisher (no frames shipped and
    /// zero lag) or `attempts` polls have run. Returns whether catch-up
    /// completed.
    pub fn catch_up(&mut self, attempts: usize) -> Result<bool, EngineError> {
        for _ in 0..attempts.max(1) {
            let report = self.sync_once()?;
            if report.contacted
                && report.frames_applied == 0
                && !report.bootstrapped
                && self.lag_frames() == 0
            {
                return Ok(true);
            }
            if !report.contacted {
                std::thread::sleep(Duration::from_millis(10));
            }
        }
        Ok(false)
    }

    /// Drop the current connection (the next poll redials). Simulates a
    /// network partition in tests; harmless otherwise.
    pub fn disconnect(&mut self) {
        self.client = None;
    }

    /// Last log sequence number applied locally.
    pub fn applied_seq(&self) -> u64 {
        self.engine.wal_last_seq().unwrap_or(0)
    }

    /// The leader's position as of the last successful poll.
    pub fn leader_seq(&self) -> u64 {
        self.leader_seq
    }

    /// Frames between the leader's last known position and ours.
    pub fn lag_frames(&self) -> u64 {
        self.leader_seq.saturating_sub(self.applied_seq())
    }

    /// Has the leader's lease expired (no successful contact within the
    /// configured lease timeout)? Promotion requires this.
    pub fn lease_expired(&self) -> bool {
        self.last_contact.elapsed() >= self.options.lease_timeout
    }

    /// Current role.
    pub fn role(&self) -> ReplicaRole {
        self.role
    }

    /// Current term.
    pub fn term(&self) -> u64 {
        self.term
    }

    /// The replication options this replica polls with.
    pub fn options(&self) -> &ReplicationOptions {
        &self.options
    }

    /// Promote this replica to leader: requires the leader's lease to have
    /// expired (err code-free [`EngineError::Durability`] otherwise), bumps
    /// and persists the term, and unlocks writes. Idempotent on an already
    /// promoted replica; refused on a fenced one.
    pub fn promote(&mut self) -> Result<u64, EngineError> {
        match self.role {
            ReplicaRole::Leader => Ok(self.term),
            ReplicaRole::Fenced => Err(EngineError::Durability(format!(
                "fenced: superseded by term {}; restart as a follower of the new leader",
                self.term
            ))),
            ReplicaRole::Follower => {
                if !self.lease_expired() {
                    let remaining = self
                        .options
                        .lease_timeout
                        .saturating_sub(self.last_contact.elapsed());
                    return Err(EngineError::Durability(format!(
                        "leader lease still valid for {} more ms; refusing promotion",
                        remaining.as_millis()
                    )));
                }
                let new_term = self.term + 1;
                if let Some(dir) = self.engine.data_dir() {
                    let dir = dir.to_path_buf();
                    persist_term(&dir, new_term)?;
                }
                self.term = new_term;
                self.role = ReplicaRole::Leader;
                self.client = None;
                Ok(new_term)
            }
        }
    }

    /// Adopt a promotion performed externally (the serving front end's
    /// `PROMOTE` verb flips the shared role; the apply loop then syncs the
    /// replica object before switching to write service).
    pub(crate) fn adopt_promotion(&mut self, term: u64) {
        self.role = ReplicaRole::Leader;
        self.term = term.max(self.term);
        self.client = None;
    }

    /// Insert one ground fact — role-gated: only a promoted (leader) replica
    /// accepts writes; a follower or fenced replica refuses with a
    /// [`EngineError::Durability`] naming its role.
    pub fn insert(&mut self, predicate: &str, tuple: &[Const]) -> Result<bool, EngineError> {
        self.require_leader()?;
        self.engine.insert(predicate, tuple)
    }

    /// Retract one ground fact — role-gated like [`Replica::insert`].
    pub fn retract(&mut self, predicate: &str, tuple: &[Const]) -> Result<bool, EngineError> {
        self.require_leader()?;
        self.engine.retract(predicate, tuple)
    }

    fn require_leader(&self) -> Result<(), EngineError> {
        match self.role {
            ReplicaRole::Leader => Ok(()),
            ReplicaRole::Follower => Err(EngineError::Durability(
                "replica is read-only (role follower): write to the leader or promote it"
                    .to_string(),
            )),
            ReplicaRole::Fenced => Err(EngineError::Durability(format!(
                "fenced: superseded by term {}; this ex-leader refuses writes",
                self.term
            ))),
        }
    }

    /// Snapshot of the replication state for `:stats` and metrics JSON.
    pub fn status(&self) -> ReplicaStatus {
        ReplicaStatus {
            role: self.role,
            term: self.term,
            applied_seq: self.applied_seq(),
            leader_seq: self.leader_seq,
            lag_frames: self.lag_frames(),
            frames_applied: self.frames_applied,
            bootstraps: self.bootstraps,
            leader: self.leader.clone(),
        }
    }

    /// The wrapped engine (read-only access; queries are always allowed).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Mutable access to the wrapped engine — for queries that refresh views.
    /// Durability-level mutations through this handle bypass the role gate;
    /// front ends route writes through [`Replica::insert`]/[`Replica::retract`]
    /// instead.
    pub fn engine_mut(&mut self) -> &mut Engine {
        &mut self.engine
    }

    /// Unwrap the engine (e.g. to serve it, or to reclaim a promoted session).
    pub fn into_engine(self) -> Engine {
        self.engine
    }
}

/// Serve a durable engine as a *follower* of `leader` on `addr`: queries are
/// answered from the continuously applied replica state, transactions are
/// refused with `ERR readonly` until a `PROMOTE` succeeds (after the leader's
/// lease expires), at which point the node starts committing writes as an
/// ordinary leader. See [`serve`](crate::serve) for the non-replicating form.
pub fn serve_follower(
    engine: Engine,
    leader: impl Into<String>,
    addr: impl ToSocketAddrs,
    options: ServerOptions,
    replication: ReplicationOptions,
) -> Result<ServerHandle, ServeError> {
    serve_inner(
        engine,
        addr,
        options,
        Some(FollowerConfig {
            leader: leader.into(),
            replication,
        }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_round_trips() {
        for bytes in [&b""[..], &b"\x00\xff\x10abc"[..]] {
            assert_eq!(from_hex(&to_hex(bytes)).unwrap(), bytes);
        }
        assert_eq!(to_hex(b"\x01\xab"), "01ab");
        assert!(from_hex("abc").is_err(), "odd length");
        assert!(from_hex("zz").is_err(), "bad digit");
        assert_eq!(from_hex("ABCD").unwrap(), vec![0xAB, 0xCD]);
    }

    #[test]
    fn roles_round_trip_through_protocol_names() {
        for role in [
            ReplicaRole::Leader,
            ReplicaRole::Follower,
            ReplicaRole::Fenced,
        ] {
            assert_eq!(ReplicaRole::parse(role.as_str()), Some(role));
            assert_eq!(ReplicaRole::from_u8(role.as_u8()), role);
        }
        assert_eq!(ReplicaRole::parse("president"), None);
    }

    #[test]
    fn terms_persist_in_the_data_directory() {
        let dir = std::env::temp_dir().join(format!("factorlog_term_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::remove_file(dir.join(TERM_FILE)).ok();
        assert_eq!(read_term(&dir), 0, "absent TERM file reads as 0");
        persist_term(&dir, 7).unwrap();
        assert_eq!(read_term(&dir), 7);
        std::fs::remove_dir_all(&dir).ok();
    }
}
