//! A zero-dependency readiness layer for the event-driven server front end:
//! a thin FFI shim over POSIX `poll(2)` plus a self-wake pipe, in the same
//! dependency-free spirit as the CLI's `signal(2)` shim.
//!
//! The server's reactor ([`crate::server`]) drives every client connection
//! from ONE thread: nonblocking sockets are polled for readiness, bytes are
//! accumulated in per-connection buffers (so a request split across arbitrary
//! packet — or time — boundaries is reassembled instead of truncated), and
//! every complete request in a buffer is served before re-arming. The
//! [`WakePipe`] lets other threads (the group-commit writer finishing a
//! transaction, [`ServerHandle::shutdown`](crate::server::ServerHandle))
//! interrupt a blocked `poll` immediately instead of waiting out its timeout.
//!
//! Only the three readiness bits the reactor needs are exposed; everything is
//! `#[repr(C)]`-faithful to `<poll.h>` on the POSIX platforms the workspace
//! targets.

use std::io;
use std::os::fd::RawFd;

/// `POLLIN`: the descriptor has bytes to read (or a pending accept).
pub const POLL_IN: i16 = 0x001;
/// `POLLOUT`: the descriptor can accept writes without blocking.
pub const POLL_OUT: i16 = 0x004;
/// `POLLERR | POLLHUP | POLLNVAL`: the descriptor is in an error/hangup state.
/// These are output-only flags — `poll` reports them even when unrequested.
pub const POLL_FAIL: i16 = 0x008 | 0x010 | 0x020;

/// One entry of the `poll(2)` descriptor array (`struct pollfd`).
#[repr(C)]
#[derive(Clone, Copy, Debug)]
pub struct PollFd {
    /// The descriptor to watch.
    pub fd: RawFd,
    /// Requested readiness events ([`POLL_IN`] / [`POLL_OUT`]).
    pub events: i16,
    /// Reported readiness, filled in by [`poll`].
    pub revents: i16,
}

impl PollFd {
    /// Watch `fd` for `events`.
    pub fn new(fd: RawFd, events: i16) -> PollFd {
        PollFd {
            fd,
            events,
            revents: 0,
        }
    }

    /// Did the kernel report any of `mask` on this descriptor?
    pub fn ready(&self, mask: i16) -> bool {
        self.revents & mask != 0
    }
}

/// `nfds_t`: `unsigned long` on Linux, `unsigned int` on the BSD family
/// (including macOS).
#[cfg(any(target_os = "linux", target_os = "android"))]
type NfdsT = std::os::raw::c_ulong;
#[cfg(not(any(target_os = "linux", target_os = "android")))]
type NfdsT = std::os::raw::c_uint;

extern "C" {
    fn poll(fds: *mut PollFd, nfds: NfdsT, timeout: i32) -> i32;
    fn pipe(fds: *mut RawFd) -> i32;
    fn read(fd: RawFd, buf: *mut u8, count: usize) -> isize;
    fn write(fd: RawFd, buf: *const u8, count: usize) -> isize;
    fn close(fd: RawFd) -> i32;
    fn fcntl(fd: RawFd, cmd: i32, arg: i32) -> i32;
}

const F_GETFL: i32 = 3;
const F_SETFL: i32 = 4;
// `O_NONBLOCK` differs per platform; a wrong value makes `fcntl` silently set
// the wrong flag, sockets stay blocking, and the single-threaded reactor
// wedges on the first slow peer — so refuse to compile on targets we have not
// checked rather than guess.
#[cfg(any(target_os = "linux", target_os = "android"))]
const O_NONBLOCK: i32 = 0x800;
#[cfg(any(
    target_os = "macos",
    target_os = "ios",
    target_os = "freebsd",
    target_os = "netbsd",
    target_os = "openbsd",
    target_os = "dragonfly"
))]
const O_NONBLOCK: i32 = 0x4;
#[cfg(not(any(
    target_os = "linux",
    target_os = "android",
    target_os = "macos",
    target_os = "ios",
    target_os = "freebsd",
    target_os = "netbsd",
    target_os = "openbsd",
    target_os = "dragonfly"
)))]
compile_error!(
    "reactor FFI shim: O_NONBLOCK/nfds_t are not verified for this target OS; \
     add the platform's values before building"
);

/// Block until at least one descriptor is ready or `timeout_ms` elapses
/// (`-1` = forever). Returns the number of ready descriptors (0 on timeout);
/// `EINTR` is surfaced as `Ok(0)` so signal delivery just re-runs the loop.
pub fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
    let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as NfdsT, timeout_ms) };
    if rc >= 0 {
        return Ok(rc as usize);
    }
    let err = io::Error::last_os_error();
    if err.kind() == io::ErrorKind::Interrupted {
        return Ok(0);
    }
    Err(err)
}

/// A self-wake pipe: any thread holding a clone of the [`WakeHandle`] can make
/// a `poll` blocked on the read end return immediately. Wakes coalesce — the
/// pipe is nonblocking on both ends and a full pipe already guarantees the
/// next `poll` returns, so `wake` never blocks and never fails meaningfully.
pub struct WakePipe {
    read_fd: RawFd,
    write_fd: RawFd,
}

/// The cloneable write end of a [`WakePipe`].
#[derive(Clone, Copy, Debug)]
pub struct WakeHandle {
    write_fd: RawFd,
}

impl WakePipe {
    /// Open the pipe, both ends nonblocking.
    pub fn new() -> io::Result<WakePipe> {
        let mut fds: [RawFd; 2] = [-1, -1];
        if unsafe { pipe(fds.as_mut_ptr()) } != 0 {
            return Err(io::Error::last_os_error());
        }
        for fd in fds {
            let flags = unsafe { fcntl(fd, F_GETFL, 0) };
            if flags < 0 || unsafe { fcntl(fd, F_SETFL, flags | O_NONBLOCK) } < 0 {
                let err = io::Error::last_os_error();
                unsafe {
                    close(fds[0]);
                    close(fds[1]);
                }
                return Err(err);
            }
        }
        Ok(WakePipe {
            read_fd: fds[0],
            write_fd: fds[1],
        })
    }

    /// The descriptor to include (with [`POLL_IN`]) in the reactor's poll set.
    pub fn poll_fd(&self) -> RawFd {
        self.read_fd
    }

    /// A handle other threads use to interrupt the poll.
    pub fn handle(&self) -> WakeHandle {
        WakeHandle {
            write_fd: self.write_fd,
        }
    }

    /// Discard every queued wake byte (call once the readiness was observed).
    pub fn drain(&self) {
        let mut buf = [0u8; 64];
        loop {
            let n = unsafe { read(self.read_fd, buf.as_mut_ptr(), buf.len()) };
            if n <= 0 || (n as usize) < buf.len() {
                return;
            }
        }
    }
}

impl Drop for WakePipe {
    fn drop(&mut self) {
        unsafe {
            close(self.read_fd);
            close(self.write_fd);
        }
    }
}

impl WakeHandle {
    /// Interrupt the reactor's current (or next) `poll`. Nonblocking: a full
    /// pipe means a wake is already pending, which is all we need.
    pub fn wake(&self) {
        let byte = [1u8];
        let _ = unsafe { write(self.write_fd, byte.as_ptr(), 1) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::{Duration, Instant};

    #[test]
    fn poll_times_out_without_events() {
        let pipe = WakePipe::new().unwrap();
        let mut fds = [PollFd::new(pipe.poll_fd(), POLL_IN)];
        let start = Instant::now();
        let ready = poll_fds(&mut fds, 50).unwrap();
        assert_eq!(ready, 0);
        assert!(start.elapsed() >= Duration::from_millis(45));
    }

    #[test]
    fn wake_interrupts_poll_and_drain_clears_it() {
        let pipe = WakePipe::new().unwrap();
        let handle = pipe.handle();
        let waker = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            handle.wake();
        });
        let mut fds = [PollFd::new(pipe.poll_fd(), POLL_IN)];
        let ready = poll_fds(&mut fds, 5_000).unwrap();
        assert_eq!(ready, 1);
        assert!(fds[0].ready(POLL_IN));
        waker.join().unwrap();
        pipe.drain();
        let mut fds = [PollFd::new(pipe.poll_fd(), POLL_IN)];
        assert_eq!(poll_fds(&mut fds, 0).unwrap(), 0, "drained pipe is quiet");
    }

    #[test]
    fn wakes_coalesce_without_blocking() {
        let pipe = WakePipe::new().unwrap();
        let handle = pipe.handle();
        // Far more wakes than the pipe buffer holds: none may block.
        for _ in 0..100_000 {
            handle.wake();
        }
        let mut fds = [PollFd::new(pipe.poll_fd(), POLL_IN)];
        assert_eq!(poll_fds(&mut fds, 0).unwrap(), 1);
        pipe.drain();
    }
}
