//! Crash-safe durability for [`Engine`] sessions: a data directory holding a
//! versioned snapshot plus an append-only transaction log (see [`crate::wal`]),
//! replayed on startup and compacted once the log grows past a threshold.
//!
//! # Data directory layout
//!
//! ```text
//! <dir>/snapshot.fl      textual session snapshot (`% factorlog snapshot v1`,
//!                        plus a `% wal-seq: N` comment recording the last log
//!                        sequence number the snapshot includes)
//! <dir>/snapshot.fl.tmp  compaction staging file (ignored and removed on open)
//! <dir>/wal.log          the record log of committed mutations since the snapshot
//! <dir>/LOCK             single-writer lock: the PID of the live opener
//! ```
//!
//! # Write path
//!
//! Every committed mutation — a [`Txn`](crate::Txn) batch, a single
//! [`Engine::insert`], a [`Engine::load_source`] (rules and bulk facts travel as
//! one source record) or [`Engine::add_rules`] — is appended to the log *before*
//! it is applied in memory, and fsync'd (by default) before the commit call
//! returns. A commit that returns an error therefore either never reached the log
//! (validation failures, torn appends — recovery truncates those) or is fully
//! logged; there is no state a crash can expose where the log has less than the
//! acknowledged history.
//!
//! # Recovery
//!
//! [`Engine::open_durable`] loads the newest valid snapshot, truncates the log's
//! torn tail (see [`crate::wal::read_log`]), and replays every record whose
//! sequence number the snapshot does not already include through the ordinary
//! transactional path — the factored-evaluation machinery then rebuilds derived
//! views on the first query, exactly as it would for a freshly loaded session.
//!
//! # Compaction
//!
//! Once the log exceeds [`DurabilityOptions::compact_threshold`] bytes, the
//! engine rewrites the snapshot (to a temp file, fsync, atomic rename, directory
//! fsync) and resets the log. A crash at *any* point of that sequence leaves a
//! recoverable image: before the rename, the old snapshot + full log; after it,
//! the new snapshot + a log whose stale records are skipped by sequence number.

use std::fs::File;
use std::path::{Path, PathBuf};

use factorlog_datalog::ast::Const;
use factorlog_datalog::eval::EvalOptions;
use factorlog_datalog::fault::FaultSite;
use factorlog_datalog::symbol::Symbol;

use crate::engine::{Engine, EngineError, Snapshot, TxnOp};
use crate::wal::{self, FaultPoint, WalError, WalOp, WalRecord, WalWriter};

/// File name of the session snapshot inside a data directory.
pub const SNAPSHOT_FILE: &str = "snapshot.fl";
/// Staging name the compactor writes the next snapshot under before renaming it.
pub const SNAPSHOT_TMP_FILE: &str = "snapshot.fl.tmp";
/// File name of the transaction log inside a data directory.
pub const WAL_FILE: &str = "wal.log";
/// File name of the single-writer lock inside a data directory. Holds the PID
/// of the live opener; a second [`Engine::open_durable`] of the same directory
/// refuses with [`EngineError::Locked`] while that process is alive, and
/// reclaims the lock when it is not (a stale lock from a crash).
pub const LOCK_FILE: &str = "LOCK";

/// The comment line (after the snapshot header) recording the last log sequence
/// number a snapshot includes. Being a `%` comment it is invisible to the parser,
/// so sequenced snapshots remain ordinary v1 snapshots.
const WAL_SEQ_PREFIX: &str = "% wal-seq:";

/// Default log size (bytes) past which a commit triggers snapshot compaction.
pub const DEFAULT_COMPACT_THRESHOLD: u64 = 1 << 20;

/// Configuration of a durable session.
#[derive(Clone, Copy, Debug)]
pub struct DurabilityOptions {
    /// fsync the log after every appended record (and snapshots after every
    /// compaction step). On: a commit that returns is on stable storage — the
    /// crash guarantee this subsystem exists for. Off: commits are buffered by the
    /// OS (a machine crash may lose the newest ones; a mere process crash cannot),
    /// which is only appropriate for bulk loads and benchmarks.
    pub fsync: bool,
    /// Log size (bytes) past which the next commit compacts: rewrites the
    /// snapshot atomically and resets the log. `u64::MAX` disables automatic
    /// compaction (explicit [`Engine::compact`] still works).
    pub compact_threshold: u64,
}

impl Default for DurabilityOptions {
    fn default() -> Self {
        DurabilityOptions {
            fsync: true,
            compact_threshold: DEFAULT_COMPACT_THRESHOLD,
        }
    }
}

/// What [`Engine::open_durable`] found and did.
#[derive(Clone, Debug, Default)]
pub struct RecoveryReport {
    /// Was a snapshot file present (and valid)?
    pub snapshot_loaded: bool,
    /// The last log sequence number the snapshot includes (0 = none).
    pub snapshot_seq: u64,
    /// Log records replayed through the transactional path.
    pub records_replayed: usize,
    /// Log records skipped because the snapshot already includes them (left
    /// behind by a compaction that crashed between snapshot rename and log reset).
    pub records_skipped: usize,
    /// Bytes of torn/corrupt log tail truncated away.
    pub torn_bytes_truncated: u64,
}

impl RecoveryReport {
    /// One-line human summary, shared by every front end's recovery banner:
    /// `snapshot loaded, 3 wal record(s) replayed, 42 torn byte(s) truncated`.
    pub fn describe(&self) -> String {
        use std::fmt::Write as _;
        let mut out = format!(
            "snapshot {}, {} wal record(s) replayed",
            if self.snapshot_loaded {
                "loaded"
            } else {
                "absent"
            },
            self.records_replayed
        );
        if self.torn_bytes_truncated > 0 {
            let _ = write!(
                out,
                ", {} torn byte(s) truncated",
                self.torn_bytes_truncated
            );
        }
        out
    }
}

/// What one [`Engine::compact`] did.
#[derive(Clone, Copy, Debug)]
pub struct CompactReport {
    /// Log bytes before compaction (header included).
    pub log_bytes_before: u64,
    /// Log bytes after compaction (a fresh header).
    pub log_bytes_after: u64,
    /// The sequence number the new snapshot includes.
    pub snapshot_seq: u64,
}

/// Crash-injection points for the compactor (test harness only): compaction
/// aborts with [`EngineError::Durability`] *after* the named step, leaving the
/// directory exactly as a crash at that moment would. Both interrupted states
/// must recover to the same session image.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CompactionFault {
    /// Crash after writing the staging snapshot but before the atomic rename:
    /// readers still see the old snapshot + full log.
    AfterTempWrite,
    /// Crash after the rename but before the log reset: readers see the new
    /// snapshot + a stale log whose records are sequence-skipped.
    AfterRename,
}

/// The durable half of a session: the log writer plus the directory bookkeeping.
pub(crate) struct Durability {
    dir: PathBuf,
    writer: WalWriter,
    options: DurabilityOptions,
    /// Sequence number the next appended record gets (last applied + 1).
    next_seq: u64,
    recovery: RecoveryReport,
    compaction_fault: Option<CompactionFault>,
    /// Held for the session's lifetime; releasing the `LOCK` file on drop.
    _lock: DirLock,
}

/// Canonical paths of every data directory this process currently holds open.
/// The PID in the lock file cannot catch a same-process double-open (our own
/// PID is very much alive), so that case is caught here.
fn lock_registry() -> &'static std::sync::Mutex<std::collections::HashSet<PathBuf>> {
    static REGISTRY: std::sync::OnceLock<std::sync::Mutex<std::collections::HashSet<PathBuf>>> =
        std::sync::OnceLock::new();
    REGISTRY.get_or_init(Default::default)
}

/// Is the process with `pid` alive? Linux answer via `/proc`; on platforms
/// without procfs this conservatively reports dead, degrading to the
/// pre-lock-file last-writer-wins behavior instead of wedging on stale locks.
fn process_alive(pid: u32) -> bool {
    cfg!(target_os = "linux") && Path::new("/proc").join(pid.to_string()).exists()
}

/// An acquired single-writer lock on a data directory: the `LOCK` file holding
/// this process's PID plus the in-process registry entry. Both are released on
/// drop, so dropping a durable [`Engine`] (or [`Engine::close_durable`]) lets
/// the next opener in.
pub(crate) struct DirLock {
    canonical: PathBuf,
    lock_path: PathBuf,
}

impl DirLock {
    /// Acquire the lock on `dir` (which must already exist). Refuses with
    /// [`EngineError::Locked`] when the directory is open in this process or
    /// the `LOCK` file names a live foreign process; reclaims stale locks left
    /// by dead processes.
    fn acquire(dir: &Path) -> Result<DirLock, EngineError> {
        let canonical = dir
            .canonicalize()
            .map_err(|e| EngineError::Io(format!("cannot canonicalize {}: {e}", dir.display())))?;
        let lock_path = dir.join(LOCK_FILE);
        let mut held = lock_registry().lock().expect("lock registry poisoned");
        if held.contains(&canonical) {
            return Err(EngineError::Locked {
                dir: dir.to_path_buf(),
                pid: std::process::id(),
            });
        }
        match std::fs::read_to_string(&lock_path) {
            Ok(text) => {
                // A foreign live process holds the directory. Our own PID here
                // without a registry entry means a prior holder in this process
                // is gone (or the PID was recycled onto us): stale either way.
                if let Ok(pid) = text.trim().parse::<u32>() {
                    if pid != std::process::id() && process_alive(pid) {
                        return Err(EngineError::Locked {
                            dir: dir.to_path_buf(),
                            pid,
                        });
                    }
                }
                // Unparseable or stale: reclaim by overwriting below.
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => {
                return Err(EngineError::Io(format!(
                    "cannot read {}: {e}",
                    lock_path.display()
                )))
            }
        }
        std::fs::write(&lock_path, format!("{}\n", std::process::id()))
            .map_err(|e| EngineError::Io(format!("cannot write {}: {e}", lock_path.display())))?;
        held.insert(canonical.clone());
        Ok(DirLock {
            canonical,
            lock_path,
        })
    }
}

impl Drop for DirLock {
    fn drop(&mut self) {
        std::fs::remove_file(&self.lock_path).ok();
        if let Ok(mut held) = lock_registry().lock() {
            held.remove(&self.canonical);
        }
    }
}

impl From<WalError> for EngineError {
    fn from(e: WalError) -> Self {
        EngineError::Durability(e.to_string())
    }
}

/// Insert the `% wal-seq: N` line after the snapshot header.
fn snapshot_text_with_seq(snapshot: &Snapshot, seq: u64) -> String {
    let text = snapshot.as_str();
    match text.find('\n') {
        Some(pos) => format!(
            "{}\n{WAL_SEQ_PREFIX} {seq}\n{}",
            &text[..pos],
            &text[pos + 1..]
        ),
        None => format!("{text}\n{WAL_SEQ_PREFIX} {seq}\n"),
    }
}

/// The `% wal-seq: N` value of a snapshot text (0 when absent — e.g. a snapshot
/// written by `:save` and copied into a data directory by hand).
pub(crate) fn parse_wal_seq(text: &str) -> u64 {
    text.lines()
        .take(8)
        .find_map(|line| line.trim().strip_prefix(WAL_SEQ_PREFIX))
        .and_then(|rest| rest.trim().parse().ok())
        .unwrap_or(0)
}

/// Best-effort fsync of a directory (required on Linux for a rename to be
/// durable; a no-op error elsewhere is acceptable — the rename itself is atomic
/// either way).
fn sync_dir(dir: &Path) {
    if let Ok(handle) = File::open(dir) {
        handle.sync_all().ok();
    }
}

/// Stage `text` beside the live snapshot and atomically rename it into place
/// (write tmp → fsync → rename → dir fsync), honoring the compactor's injected
/// crash points. On error nothing the directory's recovery depends on has
/// changed: a leftover tmp file is ignored and removed by the next open.
fn persist_snapshot_atomically(
    dir: &Path,
    text: &str,
    fsync: bool,
    fault: Option<CompactionFault>,
) -> Result<(), EngineError> {
    let tmp_path = dir.join(SNAPSHOT_TMP_FILE);
    let write_tmp = || -> std::io::Result<()> {
        let mut tmp = File::create(&tmp_path)?;
        use std::io::Write as _;
        tmp.write_all(text.as_bytes())?;
        if fsync {
            tmp.sync_data()?;
        }
        Ok(())
    };
    write_tmp()
        .map_err(|e| EngineError::Io(format!("cannot write {}: {e}", tmp_path.display())))?;
    if fault == Some(CompactionFault::AfterTempWrite) {
        return Err(EngineError::Durability(
            "injected compaction fault after staging write".to_string(),
        ));
    }
    let snapshot_path = dir.join(SNAPSHOT_FILE);
    std::fs::rename(&tmp_path, &snapshot_path).map_err(|e| {
        EngineError::Io(format!(
            "cannot rename {} over {}: {e}",
            tmp_path.display(),
            snapshot_path.display()
        ))
    })?;
    sync_dir(dir);
    if fault == Some(CompactionFault::AfterRename) {
        return Err(EngineError::Durability(
            "injected compaction fault after snapshot rename".to_string(),
        ));
    }
    Ok(())
}

impl Engine {
    /// Open (or create) a durable session in `dir` with default durability and
    /// evaluation options: loads the newest valid snapshot, truncates the log's
    /// torn tail, replays the remaining records, and logs every subsequent
    /// committed mutation. See the [module docs](self) for the crash guarantees.
    ///
    /// The directory has exactly one live writer, enforced by a `LOCK` file
    /// holding the opener's PID: a second open of the same directory — from
    /// this process or another — fails with [`EngineError::Locked`] while the
    /// first session is alive, and a stale lock left by a dead process is
    /// reclaimed automatically. Dropping the engine (or
    /// [`Engine::close_durable`]) releases the lock.
    pub fn open_durable(dir: impl AsRef<Path>) -> Result<Engine, EngineError> {
        Engine::open_durable_with(dir, DurabilityOptions::default())
    }

    /// [`Engine::open_durable`] with explicit durability options.
    pub fn open_durable_with(
        dir: impl AsRef<Path>,
        options: DurabilityOptions,
    ) -> Result<Engine, EngineError> {
        Engine::open_durable_with_options(dir, options, EvalOptions::default())
    }

    /// [`Engine::open_durable`] with explicit durability *and* evaluation
    /// options (the latter as in [`Engine::with_options`]).
    pub fn open_durable_with_options(
        dir: impl AsRef<Path>,
        options: DurabilityOptions,
        eval_options: EvalOptions,
    ) -> Result<Engine, EngineError> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)
            .map_err(|e| EngineError::Io(format!("cannot create {}: {e}", dir.display())))?;
        // Single-writer: take the directory lock before reading anything, so a
        // concurrent opener cannot interleave with recovery.
        let lock = DirLock::acquire(dir)?;
        let mut engine = Engine::with_options(eval_options);

        // 1. The newest valid snapshot. A leftover staging file is from a crashed
        //    compaction that never renamed: the real snapshot + log supersede it.
        std::fs::remove_file(dir.join(SNAPSHOT_TMP_FILE)).ok();
        let snapshot_path = dir.join(SNAPSHOT_FILE);
        let mut report = RecoveryReport::default();
        match std::fs::read_to_string(&snapshot_path) {
            Ok(text) => {
                let snapshot = Snapshot::from_text(&text)?;
                engine.restore(&snapshot)?;
                report.snapshot_seq = parse_wal_seq(&text);
                report.snapshot_loaded = true;
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => {
                return Err(EngineError::Io(format!(
                    "cannot read {}: {e}",
                    snapshot_path.display()
                )))
            }
        }

        // 2. The log: truncate the torn tail, replay what the snapshot lacks.
        //    Replay runs through the ordinary (unlogged — durability is not
        //    attached yet) transactional path, so IDB assertion routing and exit
        //    rules are re-derived exactly as they were live. Replay is a
        //    deterministic re-execution from the same base state, so any error a
        //    record raises here is the error it raised live (e.g. a bulk load whose
        //    trailing facts failed arity validation applied its valid prefix, was
        //    logged whole, and re-applies the same prefix) — errors are therefore
        //    deliberately ignored rather than aborting recovery halfway.
        let wal_path = dir.join(WAL_FILE);
        let (scan, writer) = wal::recover_log(&wal_path, options.fsync)?;
        report.torn_bytes_truncated = scan.torn_bytes;
        let mut last_seq = report.snapshot_seq;
        for record in scan.records {
            if record.seq() <= report.snapshot_seq {
                report.records_skipped += 1;
                continue;
            }
            last_seq = record.seq();
            match record {
                WalRecord::Txn { ops, .. } => {
                    let ops = ops
                        .into_iter()
                        .map(|(op, predicate, tuple)| {
                            let op = match op {
                                WalOp::Assert => TxnOp::Assert,
                                WalOp::Retract => TxnOp::Retract,
                            };
                            (op, predicate, tuple)
                        })
                        .collect();
                    let _ = engine.apply_txn(ops);
                }
                WalRecord::Source { text, .. } => {
                    let _ = engine.load_source(&text);
                }
            }
            report.records_replayed += 1;
        }
        engine.stats.wal_replays += report.records_replayed;
        if report.torn_bytes_truncated > 0 {
            engine.stats.wal_torn_truncations += 1;
        }

        engine.durability = Some(Durability {
            dir: dir.to_path_buf(),
            writer,
            options,
            next_seq: last_seq + 1,
            recovery: report,
            compaction_fault: None,
            _lock: lock,
        });
        Ok(engine)
    }

    /// Is this session durable (opened via [`Engine::open_durable`])?
    pub fn is_durable(&self) -> bool {
        self.durability.is_some()
    }

    /// Detach the durable half of this session: drop the log writer and
    /// release the single-writer `LOCK`, keeping the in-memory state (rules,
    /// facts, model). Returns `true` when the session was durable. Subsequent
    /// mutations are no longer logged — used before re-opening the same
    /// directory from the same process (e.g. the REPL's `:open`).
    pub fn close_durable(&mut self) -> bool {
        self.durability.take().is_some()
    }

    /// Force an fsync of the transaction log now (a no-op for in-memory
    /// sessions). With fsync-per-append on (the default) every acknowledged
    /// commit is already durable and this adds nothing; with it off, this is
    /// the flush point bulk loaders and graceful server shutdown call before
    /// declaring the directory quiescent.
    pub fn sync_wal(&mut self) -> Result<(), EngineError> {
        if let Some(dur) = self.durability.as_mut() {
            dur.writer.sync()?;
        }
        Ok(())
    }

    /// The durable session's data directory, if any.
    pub fn data_dir(&self) -> Option<&Path> {
        self.durability.as_ref().map(|d| d.dir.as_path())
    }

    /// What recovery found when this durable session was opened.
    pub fn recovery_report(&self) -> Option<&RecoveryReport> {
        self.durability.as_ref().map(|d| &d.recovery)
    }

    /// Current size of the transaction log in bytes (header included), if
    /// durable. Monotonic between compactions; each committed mutation advances
    /// it by exactly one record, so consecutive values are the record boundaries
    /// crash tests cut at.
    pub fn wal_len(&self) -> Option<u64> {
        self.durability.as_ref().map(|d| d.writer.len())
    }

    /// Arm the log writer's crash-injection point (see
    /// [`FaultPoint`](crate::wal::FaultPoint)). Returns `false` when the session
    /// is not durable. Test harness only.
    pub fn set_wal_fault(&mut self, fault: Option<FaultPoint>) -> bool {
        match self.durability.as_mut() {
            Some(dur) => {
                dur.writer.set_fault(fault);
                true
            }
            None => false,
        }
    }

    /// Arm the compactor's crash-injection point. Returns `false` when the
    /// session is not durable. Test harness only.
    pub fn set_compaction_fault(&mut self, fault: Option<CompactionFault>) -> bool {
        match self.durability.as_mut() {
            Some(dur) => {
                dur.compaction_fault = fault;
                true
            }
            None => false,
        }
    }

    /// Compact now: atomically rewrite the snapshot to include everything the log
    /// holds, then reset the log. A crash (or injected fault) anywhere in the
    /// sequence leaves a directory that recovers to exactly the same session.
    /// Errors when the session is not durable.
    pub fn compact(&mut self) -> Result<CompactReport, EngineError> {
        if self.durability.is_none() {
            return Err(EngineError::Durability(
                "session is not durable (open it with open_durable)".to_string(),
            ));
        }
        self.contained(|engine| {
            engine.chaos_hit(FaultSite::Compaction)?;
            let dur = engine.durability.as_ref().expect("checked durable above");
            let snapshot_seq = dur.next_seq - 1;
            let log_bytes_before = dur.writer.len();
            let dir = dur.dir.clone();
            let fsync = dur.options.fsync;
            let fault = dur.compaction_fault;
            let start = engine.tracing.then(std::time::Instant::now);

            // Steps 1–2: stage the new snapshot and atomically cut over. After the
            // rename the snapshot includes every logged record; the (still-untruncated)
            // log's records are all stale and sequence-skipped by recovery.
            let text = snapshot_text_with_seq(&engine.snapshot(), snapshot_seq);
            persist_snapshot_atomically(&dir, &text, fsync, fault)?;

            // Step 3: reset the log.
            let writer = WalWriter::create(dir.join(WAL_FILE), fsync)?;
            let log_bytes_after = writer.len();
            let dur = engine.durability.as_mut().expect("checked durable above");
            dur.writer = writer;
            engine.stats.wal_compactions += 1;
            if let (Some(start), Some(metrics)) = (start, engine.metrics.as_deref_mut()) {
                metrics.compaction.record(start.elapsed());
            }
            Ok(CompactReport {
                log_bytes_before,
                log_bytes_after,
                snapshot_seq,
            })
        })
    }

    /// Append one committed transaction batch to the log (no-op for in-memory
    /// sessions). Called by the engine *after* validation and *before* any state
    /// mutation: an append failure aborts the commit with the session untouched.
    pub(crate) fn wal_log_txn(
        &mut self,
        ops: &[(TxnOp, Symbol, Vec<Const>)],
    ) -> Result<(), EngineError> {
        if self.durability.is_none() {
            return Ok(());
        }
        self.contained(|engine| {
            engine.chaos_hit(FaultSite::WalAppend)?;
            engine.check_wal_not_poisoned()?;
            let dur = engine.durability.as_mut().expect("checked durable above");
            let record = WalRecord::Txn {
                seq: dur.next_seq,
                ops: ops
                    .iter()
                    .map(|(op, predicate, tuple)| {
                        let op = match op {
                            TxnOp::Assert => WalOp::Assert,
                            TxnOp::Retract => WalOp::Retract,
                        };
                        (op, *predicate, tuple.clone())
                    })
                    .collect(),
            };
            let start = engine.tracing.then(std::time::Instant::now);
            let dur = engine.durability.as_mut().expect("checked durable above");
            dur.writer.append(&record)?;
            dur.next_seq += 1;
            engine.stats.wal_appends += 1;
            engine.record_wal_append(start);
            Ok(())
        })
    }

    /// Append a whole group of validated transaction batches to the log under a
    /// *single* fsync (group commit; no-op for in-memory sessions or an empty
    /// group). Each batch gets its own record and consecutive sequence number,
    /// exactly as if committed one by one — recovery cannot tell a group from
    /// a burst of singles — but the durability cost is one sync. All-or-
    /// nothing: on error no batch was acknowledged (see
    /// [`crate::wal::WalWriter::append_all`]).
    pub(crate) fn wal_log_txn_group(
        &mut self,
        batches: &[&[(TxnOp, Symbol, Vec<Const>)]],
    ) -> Result<(), EngineError> {
        if self.durability.is_none() || batches.is_empty() {
            return Ok(());
        }
        self.contained(|engine| {
            engine.chaos_hit(FaultSite::WalAppend)?;
            engine.check_wal_not_poisoned()?;
            let dur = engine.durability.as_mut().expect("checked durable above");
            let mut seq = dur.next_seq;
            let records: Vec<WalRecord> = batches
                .iter()
                .map(|ops| {
                    let record = WalRecord::Txn {
                        seq,
                        ops: ops
                            .iter()
                            .map(|(op, predicate, tuple)| {
                                let op = match op {
                                    TxnOp::Assert => WalOp::Assert,
                                    TxnOp::Retract => WalOp::Retract,
                                };
                                (op, *predicate, tuple.clone())
                            })
                            .collect(),
                    };
                    seq += 1;
                    record
                })
                .collect();
            let start = engine.tracing.then(std::time::Instant::now);
            let dur = engine.durability.as_mut().expect("checked durable above");
            dur.writer.append_all(&records)?;
            dur.next_seq = seq;
            engine.stats.wal_appends += records.len();
            engine.stats.wal_group_commits += 1;
            engine.stats.wal_group_txns += records.len();
            engine.record_wal_append(start);
            Ok(())
        })
    }

    /// Append one absorbed source text (rules and bulk facts) to the log (no-op
    /// for in-memory sessions). Same contract as [`Engine::wal_log_txn`].
    pub(crate) fn wal_log_source(&mut self, text: &str) -> Result<(), EngineError> {
        if self.durability.is_none() {
            return Ok(());
        }
        self.contained(|engine| {
            engine.chaos_hit(FaultSite::WalAppend)?;
            engine.check_wal_not_poisoned()?;
            let dur = engine.durability.as_mut().expect("checked durable above");
            let record = WalRecord::Source {
                seq: dur.next_seq,
                text: text.to_string(),
            };
            let start = engine.tracing.then(std::time::Instant::now);
            dur.writer.append(&record)?;
            dur.next_seq += 1;
            engine.stats.wal_appends += 1;
            engine.record_wal_append(start);
            Ok(())
        })
    }

    /// Last sequence number this durable session has logged: `None` for
    /// in-memory sessions, `Some(0)` before the first record. On a leader this
    /// is the publisher position followers chase; on a follower it is the
    /// replication position (the two advance in lockstep because shipped
    /// frames keep their leader sequence numbers).
    pub fn wal_last_seq(&self) -> Option<u64> {
        self.durability.as_ref().map(|d| d.next_seq - 1)
    }

    /// Apply a batch of shipped log records (replication's follower path):
    /// each record is appended to this session's own log *verbatim* — keeping
    /// the leader's sequence number, so the follower's log position mirrors the
    /// leader's — and then applied through the recovery-replay path. At-most-
    /// once: records at sequences already applied are skipped silently (poll
    /// redelivery); a sequence *gap* is an error, because applying past it
    /// would silently diverge from the leader. Returns how many records were
    /// newly applied. Errors when the session is not durable — a follower
    /// without its own log could not survive its own crash.
    pub(crate) fn apply_replicated(
        &mut self,
        records: Vec<WalRecord>,
    ) -> Result<usize, EngineError> {
        if self.durability.is_none() {
            return Err(EngineError::Durability(
                "replication requires a durable session (open it with open_durable)".to_string(),
            ));
        }
        let mut applied = 0usize;
        for record in records {
            let expected = self
                .durability
                .as_ref()
                .expect("checked durable above")
                .next_seq;
            let seq = record.seq();
            if seq < expected {
                continue;
            }
            if seq > expected {
                return Err(EngineError::Durability(format!(
                    "replication gap: expected frame {expected}, got {seq}"
                )));
            }
            self.check_wal_not_poisoned()?;
            {
                let dur = self.durability.as_mut().expect("checked durable above");
                dur.writer.append(&record)?;
                dur.next_seq = seq + 1;
            }
            self.stats.wal_appends += 1;
            // Apply with durability detached: the nested apply must not log a
            // second copy of the record it is replaying. Errors are ignored
            // exactly as recovery ignores them — a shipped record is a
            // deterministic re-execution of something the leader already
            // committed, so any error it raises here is one the leader's
            // history already includes.
            let dur = self.durability.take();
            match record {
                WalRecord::Txn { ops, .. } => {
                    let ops = ops
                        .into_iter()
                        .map(|(op, predicate, tuple)| {
                            let op = match op {
                                WalOp::Assert => TxnOp::Assert,
                                WalOp::Retract => TxnOp::Retract,
                            };
                            (op, predicate, tuple)
                        })
                        .collect();
                    let _ = self.apply_txn(ops);
                }
                WalRecord::Source { text, .. } => {
                    let _ = self.load_source(&text);
                }
            }
            self.durability = dur;
            self.stats.wal_replays += 1;
            applied += 1;
        }
        self.wal_maybe_compact()?;
        Ok(applied)
    }

    /// Replace this durable session's state with a shipped snapshot text
    /// (replication's full bootstrap: the leader compacted past the follower's
    /// position, so frames alone cannot catch it up). The snapshot's
    /// `% wal-seq` stamp becomes the session's log position — the restore
    /// persists the snapshot locally and resets the log, so a crash right
    /// after bootstrap recovers to exactly the shipped image. Returns the
    /// sequence number the snapshot includes.
    pub(crate) fn bootstrap_from_snapshot_text(&mut self, text: &str) -> Result<u64, EngineError> {
        let Some(dur) = self.durability.as_mut() else {
            return Err(EngineError::Durability(
                "replication requires a durable session (open it with open_durable)".to_string(),
            ));
        };
        let snapshot = Snapshot::from_text(text)?;
        let seq = parse_wal_seq(text);
        let prev_next_seq = dur.next_seq;
        // Stamp the position *before* the restore: `wal_persist_restore` writes
        // the local snapshot with `next_seq - 1`, which must be the shipped seq.
        dur.next_seq = seq + 1;
        if let Err(error) = self.restore(&snapshot) {
            if let Some(dur) = self.durability.as_mut() {
                dur.next_seq = prev_next_seq;
            }
            return Err(error);
        }
        Ok(seq)
    }

    /// A writer poisoned by an earlier mid-commit failure behaves like a crashed
    /// process: every further append is rejected with a message pointing at the
    /// recovery path (reopen the data directory, which truncates the torn
    /// record) instead of a confusing low-level write error.
    fn check_wal_not_poisoned(&self) -> Result<(), EngineError> {
        let poisoned = self
            .durability
            .as_ref()
            .is_some_and(|dur| dur.writer.is_poisoned());
        if poisoned {
            return Err(EngineError::Durability(
                "the transaction log failed mid-commit; reopen the data directory to \
                 recover (the torn record is discarded on replay)"
                    .to_string(),
            ));
        }
        Ok(())
    }

    /// Record one successful WAL append into the tracing layer: the whole append
    /// as a `wal_append` span and, when the append fsync'd, the fsync portion
    /// alone into the `wal_fsync` histogram. No-op when `start` is `None`
    /// (tracing was off when the append began).
    fn record_wal_append(&mut self, start: Option<std::time::Instant>) {
        let Some(start) = start else { return };
        let elapsed = start.elapsed();
        let fsync_ns = self
            .durability
            .as_ref()
            .and_then(|dur| dur.writer.last_fsync_ns());
        if let Some(metrics) = self.metrics.as_deref_mut() {
            metrics.wal_append.record(elapsed);
            if let Some(ns) = fsync_ns {
                metrics.wal_fsync.record_ns(ns);
            }
        }
    }

    /// Compact if the log has outgrown the configured threshold. Called at the
    /// end of every logged mutation; a compaction error surfaces on that commit
    /// (the commit itself is already durable — both the old and the half-compacted
    /// directory recover to it).
    pub(crate) fn wal_maybe_compact(&mut self) -> Result<(), EngineError> {
        let Some(dur) = self.durability.as_ref() else {
            return Ok(());
        };
        if dur.writer.is_empty() || dur.writer.len() <= dur.options.compact_threshold {
            return Ok(());
        }
        self.compact()?;
        Ok(())
    }

    /// Persist a full state replacement ([`Engine::restore`] on a durable
    /// session): the *staged* image becomes the on-disk snapshot and the log
    /// resets — there is no meaningful log delta against a replaced state.
    ///
    /// Called *before* the staged state is swapped into memory, so an error here
    /// (snapshot unwritable) leaves memory and disk agreeing on the old state.
    /// Once the rename lands the restore is durable; resetting the log after it is
    /// best-effort — a reset failure keeps the old writer, whose stale records are
    /// sequence-skipped by recovery while new appends replay normally.
    pub(crate) fn wal_persist_restore(&mut self, staged: &Engine) -> Result<(), EngineError> {
        let Some(dur) = self.durability.as_ref() else {
            return Ok(());
        };
        let snapshot_seq = dur.next_seq - 1;
        let dir = dur.dir.clone();
        let fsync = dur.options.fsync;
        let fault = dur.compaction_fault;
        let text = snapshot_text_with_seq(&staged.snapshot(), snapshot_seq);
        persist_snapshot_atomically(&dir, &text, fsync, fault)?;
        if let Ok(writer) = WalWriter::create(dir.join(WAL_FILE), fsync) {
            self.durability
                .as_mut()
                .expect("checked durable above")
                .writer = writer;
        }
        self.stats.wal_compactions += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use factorlog_datalog::parser::parse_query;

    fn c(i: i64) -> Const {
        Const::Int(i)
    }

    fn fresh_dir(tag: &str) -> PathBuf {
        static COUNTER: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
        let n = COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "factorlog_durability_{tag}_{}_{n}",
            std::process::id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    const TC: &str = "t(X, Y) :- e(X, Y).\nt(X, Y) :- e(X, W), t(W, Y).";

    #[test]
    fn durable_sessions_survive_reopen() {
        let dir = fresh_dir("reopen");
        let query = parse_query("t(0, Y)").unwrap();
        {
            let mut engine = Engine::open_durable(&dir).unwrap();
            assert!(engine.is_durable());
            assert_eq!(engine.data_dir(), Some(dir.as_path()));
            engine.load_source(TC).unwrap();
            for i in 0..4 {
                engine.insert("e", &[c(i), c(i + 1)]).unwrap();
            }
            let mut txn = engine.transaction();
            txn.retract("e", &[c(1), c(2)]).assert("e", &[c(1), c(9)]);
            txn.commit().unwrap();
            assert_eq!(engine.stats().wal_appends, 6);
            // Dropped without any clean-shutdown step: the log is the truth.
        }
        let mut reopened = Engine::open_durable(&dir).unwrap();
        let report = reopened.recovery_report().unwrap().clone();
        assert!(!report.snapshot_loaded);
        assert_eq!(report.records_replayed, 6);
        assert_eq!(reopened.stats().wal_replays, 6);
        let answers = reopened.query(&query).unwrap();
        assert_eq!(answers, vec![vec![c(1)], vec![c(9)]]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compaction_resets_the_log_and_preserves_the_image() {
        let dir = fresh_dir("compact");
        let query = parse_query("t(0, Y)").unwrap();
        let mut engine = Engine::open_durable(&dir).unwrap();
        engine.load_source(TC).unwrap();
        for i in 0..5 {
            engine.insert("e", &[c(i), c(i + 1)]).unwrap();
        }
        let before = engine.wal_len().unwrap();
        let report = engine.compact().unwrap();
        assert_eq!(report.log_bytes_before, before);
        assert!(report.log_bytes_after < before);
        assert_eq!(engine.stats().wal_compactions, 1);
        assert_eq!(report.snapshot_seq, 6);

        // More commits after the compaction land in the fresh log.
        engine.insert("e", &[c(5), c(6)]).unwrap();
        let answers = engine.query(&query).unwrap();
        drop(engine);

        let mut reopened = Engine::open_durable(&dir).unwrap();
        let rec = reopened.recovery_report().unwrap().clone();
        assert!(rec.snapshot_loaded);
        assert_eq!(rec.snapshot_seq, 6);
        assert_eq!(rec.records_replayed, 1);
        assert_eq!(reopened.query(&query).unwrap(), answers);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn automatic_compaction_honors_the_threshold() {
        let dir = fresh_dir("auto");
        let options = DurabilityOptions {
            fsync: false,
            compact_threshold: 64,
        };
        let mut engine = Engine::open_durable_with(&dir, options).unwrap();
        engine.load_source(TC).unwrap();
        for i in 0..12 {
            engine.insert("e", &[c(i), c(i + 1)]).unwrap();
        }
        assert!(
            engine.stats().wal_compactions > 0,
            "64-byte threshold must have compacted"
        );
        assert!(engine.wal_len().unwrap() <= 64 + 8);
        let query = parse_query("t(0, Y)").unwrap();
        assert_eq!(engine.query(&query).unwrap().len(), 12);
        drop(engine);
        let mut reopened = Engine::open_durable(&dir).unwrap();
        assert_eq!(reopened.query(&query).unwrap().len(), 12);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_seq_round_trips_through_the_comment_line() {
        let mut engine = Engine::new();
        engine.load_source("e(1, 2).").unwrap();
        let text = snapshot_text_with_seq(&engine.snapshot(), 42);
        assert!(text.starts_with(crate::engine::SNAPSHOT_HEADER));
        assert!(text.contains("% wal-seq: 42"));
        assert_eq!(parse_wal_seq(&text), 42);
        // Still a valid v1 snapshot.
        let snapshot = Snapshot::from_text(&text).unwrap();
        let restored = Engine::from_snapshot(&snapshot).unwrap();
        assert_eq!(restored.facts().count("e"), 1);
        // A hand-copied :save snapshot has no seq line: defaults to 0.
        assert_eq!(parse_wal_seq(engine.snapshot().as_str()), 0);
    }

    #[test]
    fn torn_log_append_fails_the_commit_but_keeps_history() {
        let dir = fresh_dir("torn_commit");
        let query = parse_query("t(0, Y)").unwrap();
        let mut engine = Engine::open_durable(&dir).unwrap();
        engine.load_source(TC).unwrap();
        engine.insert("e", &[c(0), c(1)]).unwrap();
        // Crash the writer 3 bytes into the next record.
        engine.set_wal_fault(Some(FaultPoint { budget: 3 }));
        let err = engine.insert("e", &[c(1), c(2)]).unwrap_err();
        assert!(matches!(err, EngineError::Durability(_)));
        // The failed commit did not apply in memory…
        assert_eq!(engine.facts().count("e"), 1);
        drop(engine);
        // …and recovery truncates the torn bytes, keeping the first commit.
        let mut reopened = Engine::open_durable(&dir).unwrap();
        let report = reopened.recovery_report().unwrap().clone();
        assert_eq!(report.torn_bytes_truncated, 3);
        assert_eq!(reopened.stats().wal_torn_truncations, 1);
        assert_eq!(reopened.query(&query).unwrap(), vec![vec![c(1)]]);
        // The reopened session appends cleanly where the tear was.
        reopened.insert("e", &[c(1), c(2)]).unwrap();
        assert_eq!(reopened.query(&query).unwrap().len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn duplicate_inserts_do_not_grow_the_log() {
        let dir = fresh_dir("dup");
        let mut engine = Engine::open_durable(&dir).unwrap();
        engine.load_source(TC).unwrap();
        assert!(engine.insert("e", &[c(1), c(2)]).unwrap());
        assert!(engine.insert("t", &[c(9), c(10)]).unwrap()); // asserted IDB fact
        let len = engine.wal_len().unwrap();
        let appends = engine.stats().wal_appends;
        // Idempotent re-inserts (EDB and IDB alike) are no-ops: no record, no fsync.
        assert!(!engine.insert("e", &[c(1), c(2)]).unwrap());
        assert!(!engine.insert("t", &[c(9), c(10)]).unwrap());
        assert_eq!(engine.wal_len().unwrap(), len);
        assert_eq!(engine.stats().wal_appends, appends);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn restore_on_a_durable_session_persists_the_new_image() {
        let dir = fresh_dir("restore");
        let query = parse_query("t(0, Y)").unwrap();
        let mut other = Engine::new();
        other.load_source(TC).unwrap();
        other.insert("e", &[c(0), c(7)]).unwrap();
        let snapshot = other.snapshot();

        let mut engine = Engine::open_durable(&dir).unwrap();
        engine.load_source("junk(1).").unwrap();
        engine.restore(&snapshot).unwrap();
        assert_eq!(engine.query(&query).unwrap(), vec![vec![c(7)]]);
        drop(engine);

        let mut reopened = Engine::open_durable(&dir).unwrap();
        assert_eq!(reopened.query(&query).unwrap(), vec![vec![c(7)]]);
        assert_eq!(reopened.facts().count("junk"), 0, "old state replaced");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn second_open_of_a_locked_directory_is_refused() {
        let dir = fresh_dir("lock");
        let mut engine = Engine::open_durable(&dir).unwrap();
        engine.insert("e", &[c(1), c(2)]).unwrap();
        assert!(dir.join(LOCK_FILE).exists(), "LOCK is on disk while open");

        // Double-open (same process) is refused with the structured error.
        let Err(err) = Engine::open_durable(&dir) else {
            panic!("double-open must be refused");
        };
        let EngineError::Locked { dir: locked, pid } = err else {
            panic!("expected Locked, got {err}");
        };
        assert_eq!(locked, dir);
        assert_eq!(pid, std::process::id());
        // The refused opener must not have clobbered the holder's lock.
        assert!(dir.join(LOCK_FILE).exists());
        engine.insert("e", &[c(2), c(3)]).unwrap();

        // Dropping the holder releases the lock; the next opener gets in and
        // sees the full history.
        drop(engine);
        assert!(!dir.join(LOCK_FILE).exists(), "drop releases the LOCK");
        let reopened = Engine::open_durable(&dir).unwrap();
        assert_eq!(reopened.facts().count("e"), 2);
        drop(reopened);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stale_lock_from_a_dead_process_is_reclaimed() {
        let dir = fresh_dir("stale_lock");
        std::fs::create_dir_all(&dir).unwrap();
        // No live process has this PID (kernel pid_max caps real PIDs well
        // below u32::MAX), so the lock must be treated as stale.
        std::fs::write(dir.join(LOCK_FILE), format!("{}\n", u32::MAX)).unwrap();
        let engine = Engine::open_durable(&dir).expect("stale lock is reclaimed");
        let text = std::fs::read_to_string(dir.join(LOCK_FILE)).unwrap();
        assert_eq!(text.trim().parse::<u32>().unwrap(), std::process::id());
        drop(engine);

        // Garbage lock contents are also reclaimed, not wedged on.
        std::fs::write(dir.join(LOCK_FILE), "not a pid").unwrap();
        let engine = Engine::open_durable(&dir).expect("garbage lock is reclaimed");
        drop(engine);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn close_durable_releases_the_lock_and_keeps_state() {
        let dir = fresh_dir("close");
        let mut engine = Engine::open_durable(&dir).unwrap();
        engine.load_source(TC).unwrap();
        engine.insert("e", &[c(0), c(1)]).unwrap();
        assert!(engine.close_durable());
        assert!(!engine.is_durable());
        assert!(!engine.close_durable(), "second close is a no-op");
        assert!(!dir.join(LOCK_FILE).exists());
        // In-memory state survives the detach; mutations are no longer logged.
        engine.insert("e", &[c(1), c(2)]).unwrap();
        let query = parse_query("t(0, Y)").unwrap();
        assert_eq!(engine.query(&query).unwrap().len(), 2);
        // The directory is re-openable while the detached session lives, and
        // only holds the logged prefix.
        let mut reopened = Engine::open_durable(&dir).unwrap();
        assert_eq!(reopened.query(&query).unwrap().len(), 1);
        drop(reopened);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compact_requires_a_durable_session() {
        let mut engine = Engine::new();
        assert!(matches!(engine.compact(), Err(EngineError::Durability(_))));
        assert!(!engine.set_wal_fault(None));
        assert!(!engine.set_compaction_fault(None));
        assert!(engine.wal_len().is_none());
        assert!(engine.recovery_report().is_none());
        assert!(engine.data_dir().is_none());
    }
}
