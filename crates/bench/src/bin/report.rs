//! Regenerate the measured tables of `EXPERIMENTS.md`.
//!
//! Usage:
//! ```text
//! cargo run --release -p factorlog-bench --bin report                  # all experiments
//! cargo run --release -p factorlog-bench --bin report -- --exp e2
//! cargo run --release -p factorlog-bench --bin report -- --json joins  # BENCH_joins.json body
//! cargo run -p factorlog-bench --bin report -- --json joins --quick   # CI smoke run
//! cargo run --release -p factorlog-bench --bin report -- --json parallel  # BENCH_parallel.json body
//! cargo run -p factorlog-bench --bin report -- --json parallel --quick   # CI smoke run
//! cargo run --release -p factorlog-bench --bin report -- --json incremental  # BENCH_incremental.json body
//! cargo run -p factorlog-bench --bin report -- --json incremental --quick   # CI smoke run
//! cargo run --release -p factorlog-bench --bin report -- --json durability  # BENCH_durability.json body
//! cargo run -p factorlog-bench --bin report -- --json durability --quick   # CI smoke run
//! cargo run --release -p factorlog-bench --bin report -- --json observability  # BENCH_observability.json body
//! cargo run -p factorlog-bench --bin report -- --json observability --quick   # CI smoke run
//! cargo run --release -p factorlog-bench --bin report -- --json concurrent  # BENCH_concurrent.json body
//! cargo run -p factorlog-bench --bin report -- --json concurrent --quick   # CI smoke run
//! cargo run --release -p factorlog-bench --bin report -- --json replication  # BENCH_replication.json body
//! cargo run -p factorlog-bench --bin report -- --json replication --quick   # CI smoke run
//! ```
//!
//! The output is Markdown; each section corresponds to one experiment of DESIGN.md §4.
//! All numbers are from the engine in this repository (inference and fact counts are
//! machine-independent; times are wall-clock on the current machine).

use factorlog_bench::{
    counting_strategy, format_table, measure_all, standard_strategies, Measurement,
};
use factorlog_workloads::layered::{
    arity3_edb, combined_rule_edb, right_linear_edb, LayeredParams,
};
use factorlog_workloads::lists::{pmem_list, LIST_ID_BASE};
use factorlog_workloads::{graphs, programs};

fn wanted(filter: &Option<String>, id: &str) -> bool {
    match filter {
        Some(f) => f.eq_ignore_ascii_case(id),
        None => true,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(flag) = args.iter().position(|a| a == "--json") {
        match args.get(flag + 1).map(String::as_str) {
            Some("joins") => {
                let quick = args.iter().any(|a| a == "--quick");
                let results = factorlog_bench::joins::run_suite(quick);
                println!("{}", factorlog_bench::joins::to_json(&results, quick));
            }
            Some("parallel") => {
                let quick = args.iter().any(|a| a == "--quick");
                let results = factorlog_bench::parallel::run_suite(quick);
                println!("{}", factorlog_bench::parallel::to_json(&results, quick));
            }
            Some("incremental") => {
                let quick = args.iter().any(|a| a == "--quick");
                let results = factorlog_bench::incremental::run_suite(quick);
                println!("{}", factorlog_bench::incremental::to_json(&results, quick));
            }
            Some("durability") => {
                let quick = args.iter().any(|a| a == "--quick");
                let results = factorlog_bench::durability::run_suite(quick);
                println!("{}", factorlog_bench::durability::to_json(&results, quick));
            }
            Some("observability") => {
                let quick = args.iter().any(|a| a == "--quick");
                let results = factorlog_bench::observability::run_suite(quick);
                println!(
                    "{}",
                    factorlog_bench::observability::to_json(&results, quick)
                );
            }
            Some("concurrent") => {
                let quick = args.iter().any(|a| a == "--quick");
                let results = factorlog_bench::concurrent::run_suite(quick);
                println!("{}", factorlog_bench::concurrent::to_json(&results, quick));
            }
            Some("replication") => {
                let quick = args.iter().any(|a| a == "--quick");
                let results = factorlog_bench::replication::run_suite(quick);
                println!("{}", factorlog_bench::replication::to_json(&results, quick));
            }
            Some(other) => {
                eprintln!(
                    "unknown --json suite `{other}` (expected: joins, parallel, incremental, durability, observability, concurrent, replication)"
                );
                std::process::exit(2);
            }
            None => {
                eprintln!(
                    "--json requires a suite name (expected: joins, parallel, incremental, durability, observability, concurrent, replication)"
                );
                std::process::exit(2);
            }
        }
        return;
    }

    let filter = std::env::args()
        .skip_while(|a| a != "--exp")
        .nth(1)
        .map(|s| s.to_lowercase());

    println!("## Measured results (generated by `factorlog-bench --bin report`)\n");

    if wanted(&filter, "e1") {
        let runs = standard_strategies(programs::THREE_RULE_TC, programs::TC_QUERY);
        let mut rows: Vec<(String, Vec<Measurement>)> = Vec::new();
        for &n in &[100usize, 200, 400] {
            let edb = graphs::chain(n);
            // Skip the cubic original beyond 200 edges.
            let selected: Vec<_> = runs
                .iter()
                .filter(|r| !(r.name == "original" && n > 200))
                .cloned()
                .collect();
            rows.push((format!("chain n={n}"), measure_all(&selected, &edb)));
        }
        println!(
            "{}",
            format_table(
                "E1 — three-rule transitive closure, query t(0, Y) (Figs. 1–2, Ex. 5.3)",
                "workload",
                &rows
            )
        );
    }

    if wanted(&filter, "e2") {
        let query = format!("pmem(X, {})", LIST_ID_BASE + 1);
        let runs = standard_strategies(programs::PMEM, &query);
        let mut rows = Vec::new();
        for &n in &[100usize, 200, 400, 800] {
            let workload = pmem_list(n, 1);
            rows.push((
                format!("list length n={n}"),
                measure_all(&runs, &workload.edb),
            ));
        }
        println!(
            "{}",
            format_table(
                "E2 — pmem list membership (Ex. 1.2/4.6): quadratic vs. linear fact counts",
                "workload",
                &rows
            )
        );
    }

    if wanted(&filter, "e4") {
        let runs = standard_strategies(programs::SELECTION_PUSHING, programs::P_QUERY);
        let mut rows = Vec::new();
        for &n in &[16usize, 32, 64] {
            let edb = combined_rule_edb(&LayeredParams::scaled(n, 7));
            rows.push((format!("nodes n={n}"), measure_all(&runs, &edb)));
        }
        println!(
            "{}",
            format_table(
                "E4 — selection-pushing program (Ex. 4.3 repaired), query p(0, Y)",
                "workload",
                &rows
            )
        );
    }

    if wanted(&filter, "e5") {
        let runs = standard_strategies(programs::SYMMETRIC, programs::P_QUERY);
        let mut rows = Vec::new();
        for &n in &[16usize, 32, 64] {
            let edb = combined_rule_edb(&LayeredParams::scaled(n, 11));
            rows.push((format!("nodes n={n}"), measure_all(&runs, &edb)));
        }
        println!(
            "{}",
            format_table(
                "E5 — symmetric program (Ex. 4.4 shape), query p(0, Y)",
                "workload",
                &rows
            )
        );
    }

    if wanted(&filter, "e6") {
        let runs = standard_strategies(programs::ANSWER_PROPAGATING, programs::P_QUERY);
        let mut rows = Vec::new();
        for &n in &[16usize, 32, 64] {
            let edb = combined_rule_edb(&LayeredParams::scaled(n, 13));
            rows.push((format!("nodes n={n}"), measure_all(&runs, &edb)));
        }
        println!(
            "{}",
            format_table(
                "E6 — answer-propagating program (Ex. 4.5 shape), query p(0, Y)",
                "workload",
                &rows
            )
        );
    }

    if wanted(&filter, "e8") {
        let mut runs = standard_strategies(programs::RIGHT_LINEAR_TWO_RULES, programs::P_QUERY);
        runs.push(counting_strategy(
            programs::RIGHT_LINEAR_TWO_RULES,
            programs::P_QUERY,
        ));
        let mut rows = Vec::new();
        for &n in &[100usize, 200, 400] {
            let edb = right_linear_edb(n, 3);
            rows.push((format!("goal chain n={n}"), measure_all(&runs, &edb)));
        }
        println!(
            "{}",
            format_table(
                "E8 — Counting vs. Magic+factoring on a right-linear program (§6.4, Thm 6.4)",
                "workload",
                &rows
            )
        );

        let runs = standard_strategies(programs::SAME_GENERATION, programs::SG_QUERY);
        let mut rows = Vec::new();
        for &depth in &[6usize, 8, 10] {
            let edb = graphs::same_generation_tree(depth);
            rows.push((format!("tree depth={depth}"), measure_all(&runs, &edb)));
        }
        println!(
            "{}",
            format_table(
                "E8 (control) — same generation: not factorable, pipeline falls back to Magic",
                "workload",
                &rows
            )
        );
    }

    if wanted(&filter, "e10") {
        let runs = standard_strategies(programs::ARITY_3_TC, "t(0, Y, Z)");
        let mut rows = Vec::new();
        for &fanout in &[2usize, 4, 8] {
            let edb = arity3_edb(100, fanout, 23);
            let selected: Vec<_> = runs
                .iter()
                .filter(|r| !(r.name == "original" && fanout > 4))
                .cloned()
                .collect();
            rows.push((
                format!("exit fanout={fanout}"),
                measure_all(&selected, &edb),
            ));
        }
        println!(
            "{}",
            format_table(
                "E10 — arity scaling: ternary recursion with and without factoring (§1 claim)",
                "workload",
                &rows
            )
        );
    }
}
