//! Shared harness for the benchmark suite: build the evaluation strategies the paper
//! compares (plain semi-naive evaluation, Magic Sets, Magic + factoring + §5, and —
//! where applicable — Counting), run them over a workload, and collect
//! machine-independent counters alongside wall-clock time.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::time::{Duration, Instant};

use factorlog_core::counting::counting;
use factorlog_core::pipeline::{optimize_query, PipelineOptions, Strategy};
use factorlog_core::{adorn, classify};
use factorlog_datalog::ast::{Const, Program, Query};
use factorlog_datalog::eval::{seminaive_evaluate, EvalOptions};
use factorlog_datalog::parser::{parse_program, parse_query};
use factorlog_datalog::storage::Database;
use factorlog_engine::Engine;

/// One program/query pair to evaluate, labelled with the strategy it embodies.
#[derive(Clone, Debug)]
pub struct StrategyRun {
    /// Label used in tables and benchmark ids.
    pub name: &'static str,
    /// The program to evaluate.
    pub program: Program,
    /// The query whose answers are extracted.
    pub query: Query,
}

/// The result of evaluating one strategy over one workload.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Strategy label.
    pub name: &'static str,
    /// Wall-clock evaluation time.
    pub duration: Duration,
    /// Number of successful rule-body instantiations.
    pub inferences: usize,
    /// Number of facts derived.
    pub facts: usize,
    /// Fixpoint iterations.
    pub iterations: usize,
    /// Number of answers to the query.
    pub answers: usize,
}

/// Build the three standard strategies for a program/query pair:
/// plain semi-naive evaluation of the original program, the Magic program, and the
/// pipeline output (Magic + factoring + §5 when factorable, otherwise optimized Magic).
pub fn standard_strategies(source: &str, query_text: &str) -> Vec<StrategyRun> {
    let program = parse_program(source)
        .expect("benchmark program parses")
        .program;
    let query = parse_query(query_text).expect("benchmark query parses");
    let optimized = optimize_query(&program, &query, &PipelineOptions::default())
        .expect("benchmark pipeline succeeds");
    let factored_name = match optimized.strategy {
        Strategy::FactoredMagic => "magic+factoring",
        Strategy::MagicOnly => "magic(optimized)",
    };
    vec![
        StrategyRun {
            name: "original",
            program,
            query,
        },
        StrategyRun {
            name: "magic",
            program: optimized.magic.program.clone(),
            query: optimized.adorned.query.clone(),
        },
        StrategyRun {
            name: factored_name,
            program: optimized.program.clone(),
            query: optimized.query.clone(),
        },
    ]
}

/// Build the Counting strategy for a right-linear program/query pair.
pub fn counting_strategy(source: &str, query_text: &str) -> StrategyRun {
    let program = parse_program(source).expect("program parses").program;
    let query = parse_query(query_text).expect("query parses");
    let adorned = adorn(&program, &query).expect("adornment succeeds");
    let classification = classify(&adorned).expect("classification succeeds");
    let cnt = counting(&adorned, &classification).expect("counting applies");
    StrategyRun {
        name: "counting",
        program: cnt.program,
        query: cnt.query,
    }
}

/// Evaluate one strategy over one workload.
pub fn measure(run: &StrategyRun, edb: &Database) -> Measurement {
    let start = Instant::now();
    let result = seminaive_evaluate(&run.program, edb, &EvalOptions::default())
        .expect("benchmark evaluation succeeds");
    let duration = start.elapsed();
    let answers = result.answers(&run.query).len();
    Measurement {
        name: run.name,
        duration,
        inferences: result.stats.inferences,
        facts: result.stats.facts_derived,
        iterations: result.stats.iterations,
        answers,
    }
}

/// Evaluate every strategy over the workload, asserting that they all agree on the
/// number of answers (a cheap cross-check that the benchmark is measuring equivalent
/// computations).
pub fn measure_all(runs: &[StrategyRun], edb: &Database) -> Vec<Measurement> {
    let measurements: Vec<Measurement> = runs.iter().map(|r| measure(r, edb)).collect();
    if let Some(first) = measurements.first() {
        for m in &measurements {
            assert_eq!(
                m.answers, first.answers,
                "strategy {} disagrees with {} on the answer count",
                m.name, first.name
            );
        }
    }
    measurements
}

/// A stream of fact insertions interleaved with queries: the workload shape of the
/// incremental-vs-batch comparison. Each element is `(predicate, tuple)`.
pub type InsertStream = Vec<(&'static str, Vec<Const>)>;

/// Play an insert/query stream against a persistent [`Engine`]: materialize once,
/// then absorb each insert with a delta-seeded resume. Returns the total answer count
/// across all queries (a checksum the batch variant must reproduce).
pub fn stream_incremental(
    program: &Program,
    base: &Database,
    stream: &InsertStream,
    query: &Query,
) -> usize {
    let mut engine = Engine::new();
    engine.add_rules(program.clone());
    for (pred, rel) in base.iter() {
        for tuple in rel.iter() {
            engine.insert(pred, tuple).expect("base fact inserts");
        }
    }
    let mut total = engine.query(query).expect("initial query").len();
    for (pred, tuple) in stream {
        engine.insert(*pred, tuple).expect("stream insert");
        total += engine.query(query).expect("stream query").len();
    }
    total
}

/// Play the same stream with from-scratch re-evaluation after every insert — the
/// baseline the incremental engine must beat.
pub fn stream_batch(
    program: &Program,
    base: &Database,
    stream: &InsertStream,
    query: &Query,
) -> usize {
    let mut edb = base.clone();
    let evaluate = |edb: &Database| {
        seminaive_evaluate(program, edb, &EvalOptions::default())
            .expect("batch evaluation")
            .answers(query)
            .len()
    };
    let mut total = evaluate(&edb);
    for (pred, tuple) in stream {
        edb.add_fact(*pred, tuple);
        total += evaluate(&edb);
    }
    total
}

/// Format a table of measurements (one row per strategy).
pub fn format_table(title: &str, parameter: &str, rows: &[(String, Vec<Measurement>)]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "### {title}\n");
    let _ = writeln!(
        out,
        "| {parameter} | strategy | time (ms) | inferences | facts | answers |"
    );
    let _ = writeln!(out, "|---|---|---:|---:|---:|---:|");
    for (param, measurements) in rows {
        for m in measurements {
            let _ = writeln!(
                out,
                "| {param} | {} | {:.3} | {} | {} | {} |",
                m.name,
                m.duration.as_secs_f64() * 1e3,
                m.inferences,
                m.facts,
                m.answers
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use factorlog_workloads::{graphs, programs};

    #[test]
    fn standard_strategies_agree_on_a_chain() {
        let runs = standard_strategies(programs::RIGHT_LINEAR_TC, programs::TC_QUERY);
        assert_eq!(runs.len(), 3);
        let edb = graphs::chain(30);
        let measurements = measure_all(&runs, &edb);
        assert!(measurements.iter().all(|m| m.answers == 30));
        // The factored strategy must not derive more facts than magic on this chain.
        let magic = measurements.iter().find(|m| m.name == "magic").unwrap();
        let factored = measurements
            .iter()
            .find(|m| m.name == "magic+factoring")
            .unwrap();
        assert!(factored.facts <= magic.facts);
    }

    #[test]
    fn counting_strategy_matches_the_others() {
        let mut runs = standard_strategies(programs::RIGHT_LINEAR_TC, programs::TC_QUERY);
        runs.push(counting_strategy(
            programs::RIGHT_LINEAR_TC,
            programs::TC_QUERY,
        ));
        let edb = graphs::chain(20);
        let measurements = measure_all(&runs, &edb);
        assert_eq!(measurements.len(), 4);
    }

    #[test]
    fn incremental_stream_matches_batch_stream() {
        let program = parse_program(programs::RIGHT_LINEAR_TC).unwrap().program;
        let query = parse_query(programs::TC_QUERY).unwrap();
        let base = graphs::chain(20);
        let stream: InsertStream = (20..30)
            .map(|i| ("e", vec![Const::Int(i), Const::Int(i + 1)]))
            .collect();
        let incremental = stream_incremental(&program, &base, &stream, &query);
        let batch = stream_batch(&program, &base, &stream, &query);
        assert_eq!(incremental, batch);
        // 20 answers initially, one more per extension edge.
        assert_eq!(batch, (20..=30).sum::<i64>() as usize);
    }

    #[test]
    fn incremental_stream_matches_batch_on_same_generation() {
        let program = parse_program(programs::SAME_GENERATION).unwrap().program;
        let query = parse_query(programs::SG_QUERY).unwrap();
        let base = graphs::same_generation_tree(3);
        let stream: InsertStream = (0..4)
            .map(|i| ("flat", vec![Const::Int(i), Const::Int(i + 3)]))
            .collect();
        let incremental = stream_incremental(&program, &base, &stream, &query);
        let batch = stream_batch(&program, &base, &stream, &query);
        assert_eq!(incremental, batch);
        assert!(batch > 0);
    }

    #[test]
    fn format_table_produces_markdown() {
        let runs = standard_strategies(programs::LEFT_LINEAR_TC, programs::TC_QUERY);
        let edb = graphs::chain(10);
        let rows = vec![("10".to_string(), measure_all(&runs, &edb))];
        let table = format_table("test", "n", &rows);
        assert!(table.contains("| n | strategy |"));
        assert!(table.contains("magic+factoring"));
    }
}
