//! Shared harness for the benchmark suite: build the evaluation strategies the paper
//! compares (plain semi-naive evaluation, Magic Sets, Magic + factoring + §5, and —
//! where applicable — Counting), run them over a workload, and collect
//! machine-independent counters alongside wall-clock time.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::time::{Duration, Instant};

use factorlog_core::counting::counting;
use factorlog_core::pipeline::{optimize_query, PipelineOptions, Strategy};
use factorlog_core::{adorn, classify};
use factorlog_datalog::ast::{Const, Program, Query};
use factorlog_datalog::eval::{seminaive_evaluate, EvalOptions};
use factorlog_datalog::parser::{parse_program, parse_query};
use factorlog_datalog::storage::Database;
use factorlog_engine::Engine;

/// One program/query pair to evaluate, labelled with the strategy it embodies.
#[derive(Clone, Debug)]
pub struct StrategyRun {
    /// Label used in tables and benchmark ids.
    pub name: &'static str,
    /// The program to evaluate.
    pub program: Program,
    /// The query whose answers are extracted.
    pub query: Query,
}

/// The result of evaluating one strategy over one workload.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Strategy label.
    pub name: &'static str,
    /// Wall-clock evaluation time.
    pub duration: Duration,
    /// Number of successful rule-body instantiations.
    pub inferences: usize,
    /// Number of facts derived.
    pub facts: usize,
    /// Fixpoint iterations.
    pub iterations: usize,
    /// Number of answers to the query.
    pub answers: usize,
}

/// Build the three standard strategies for a program/query pair:
/// plain semi-naive evaluation of the original program, the Magic program, and the
/// pipeline output (Magic + factoring + §5 when factorable, otherwise optimized Magic).
pub fn standard_strategies(source: &str, query_text: &str) -> Vec<StrategyRun> {
    let program = parse_program(source)
        .expect("benchmark program parses")
        .program;
    let query = parse_query(query_text).expect("benchmark query parses");
    let optimized = optimize_query(&program, &query, &PipelineOptions::default())
        .expect("benchmark pipeline succeeds");
    let factored_name = match optimized.strategy {
        Strategy::FactoredMagic => "magic+factoring",
        Strategy::MagicOnly => "magic(optimized)",
    };
    vec![
        StrategyRun {
            name: "original",
            program,
            query,
        },
        StrategyRun {
            name: "magic",
            program: optimized.magic.program.clone(),
            query: optimized.adorned.query.clone(),
        },
        StrategyRun {
            name: factored_name,
            program: optimized.program.clone(),
            query: optimized.query.clone(),
        },
    ]
}

/// Build the Counting strategy for a right-linear program/query pair.
pub fn counting_strategy(source: &str, query_text: &str) -> StrategyRun {
    let program = parse_program(source).expect("program parses").program;
    let query = parse_query(query_text).expect("query parses");
    let adorned = adorn(&program, &query).expect("adornment succeeds");
    let classification = classify(&adorned).expect("classification succeeds");
    let cnt = counting(&adorned, &classification).expect("counting applies");
    StrategyRun {
        name: "counting",
        program: cnt.program,
        query: cnt.query,
    }
}

/// Evaluate one strategy over one workload.
pub fn measure(run: &StrategyRun, edb: &Database) -> Measurement {
    let start = Instant::now();
    let result = seminaive_evaluate(&run.program, edb, &EvalOptions::default())
        .expect("benchmark evaluation succeeds");
    let duration = start.elapsed();
    let answers = result.answers(&run.query).len();
    Measurement {
        name: run.name,
        duration,
        inferences: result.stats.inferences,
        facts: result.stats.facts_derived,
        iterations: result.stats.iterations,
        answers,
    }
}

/// Evaluate every strategy over the workload, asserting that they all agree on the
/// number of answers (a cheap cross-check that the benchmark is measuring equivalent
/// computations).
pub fn measure_all(runs: &[StrategyRun], edb: &Database) -> Vec<Measurement> {
    let measurements: Vec<Measurement> = runs.iter().map(|r| measure(r, edb)).collect();
    if let Some(first) = measurements.first() {
        for m in &measurements {
            assert_eq!(
                m.answers, first.answers,
                "strategy {} disagrees with {} on the answer count",
                m.name, first.name
            );
        }
    }
    measurements
}

/// A stream of fact insertions interleaved with queries: the workload shape of the
/// incremental-vs-batch comparison. Each element is `(predicate, tuple)`.
pub type InsertStream = Vec<(&'static str, Vec<Const>)>;

/// Play an insert/query stream against a persistent [`Engine`]: materialize once,
/// then absorb each insert with a delta-seeded resume. Returns the total answer count
/// across all queries (a checksum the batch variant must reproduce).
pub fn stream_incremental(
    program: &Program,
    base: &Database,
    stream: &InsertStream,
    query: &Query,
) -> usize {
    let mut engine = Engine::new();
    engine
        .add_rules(program.clone())
        .expect("rule registration succeeds");
    for (pred, rel) in base.iter() {
        for tuple in rel.iter() {
            engine.insert(pred, tuple).expect("base fact inserts");
        }
    }
    let mut total = engine.query(query).expect("initial query").len();
    for (pred, tuple) in stream {
        engine.insert(*pred, tuple).expect("stream insert");
        total += engine.query(query).expect("stream query").len();
    }
    total
}

/// Play the same stream with from-scratch re-evaluation after every insert — the
/// baseline the incremental engine must beat.
pub fn stream_batch(
    program: &Program,
    base: &Database,
    stream: &InsertStream,
    query: &Query,
) -> usize {
    let mut edb = base.clone();
    let evaluate = |edb: &Database| {
        seminaive_evaluate(program, edb, &EvalOptions::default())
            .expect("batch evaluation")
            .answers(query)
            .len()
    };
    let mut total = evaluate(&edb);
    for (pred, tuple) in stream {
        edb.add_fact(*pred, tuple);
        total += evaluate(&edb);
    }
    total
}

/// JSON fragment describing the measuring host, emitted by every suite's
/// `to_json`: the machine's core count and the worker-thread setting the
/// suite's evaluations were configured with (0 = one per core).
pub fn host_json(threads_configured: usize) -> String {
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    format!("  \"host\": {{\"cores\": {cores}, \"threads_configured\": {threads_configured}}},\n")
}

/// Format a table of measurements (one row per strategy).
pub fn format_table(title: &str, parameter: &str, rows: &[(String, Vec<Measurement>)]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "### {title}\n");
    let _ = writeln!(
        out,
        "| {parameter} | strategy | time (ms) | inferences | facts | answers |"
    );
    let _ = writeln!(out, "|---|---|---:|---:|---:|---:|");
    for (param, measurements) in rows {
        for m in measurements {
            let _ = writeln!(
                out,
                "| {param} | {} | {:.3} | {} | {} | {} |",
                m.name,
                m.duration.as_secs_f64() * 1e3,
                m.inferences,
                m.facts,
                m.answers
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use factorlog_workloads::{graphs, programs};

    #[test]
    fn standard_strategies_agree_on_a_chain() {
        let runs = standard_strategies(programs::RIGHT_LINEAR_TC, programs::TC_QUERY);
        assert_eq!(runs.len(), 3);
        let edb = graphs::chain(30);
        let measurements = measure_all(&runs, &edb);
        assert!(measurements.iter().all(|m| m.answers == 30));
        // The factored strategy must not derive more facts than magic on this chain.
        let magic = measurements.iter().find(|m| m.name == "magic").unwrap();
        let factored = measurements
            .iter()
            .find(|m| m.name == "magic+factoring")
            .unwrap();
        assert!(factored.facts <= magic.facts);
    }

    #[test]
    fn counting_strategy_matches_the_others() {
        let mut runs = standard_strategies(programs::RIGHT_LINEAR_TC, programs::TC_QUERY);
        runs.push(counting_strategy(
            programs::RIGHT_LINEAR_TC,
            programs::TC_QUERY,
        ));
        let edb = graphs::chain(20);
        let measurements = measure_all(&runs, &edb);
        assert_eq!(measurements.len(), 4);
    }

    #[test]
    fn incremental_stream_matches_batch_stream() {
        let program = parse_program(programs::RIGHT_LINEAR_TC).unwrap().program;
        let query = parse_query(programs::TC_QUERY).unwrap();
        let base = graphs::chain(20);
        let stream: InsertStream = (20..30)
            .map(|i| ("e", vec![Const::Int(i), Const::Int(i + 1)]))
            .collect();
        let incremental = stream_incremental(&program, &base, &stream, &query);
        let batch = stream_batch(&program, &base, &stream, &query);
        assert_eq!(incremental, batch);
        // 20 answers initially, one more per extension edge.
        assert_eq!(batch, (20..=30).sum::<i64>() as usize);
    }

    #[test]
    fn incremental_stream_matches_batch_on_same_generation() {
        let program = parse_program(programs::SAME_GENERATION).unwrap().program;
        let query = parse_query(programs::SG_QUERY).unwrap();
        let base = graphs::same_generation_tree(3);
        let stream: InsertStream = (0..4)
            .map(|i| ("flat", vec![Const::Int(i), Const::Int(i + 3)]))
            .collect();
        let incremental = stream_incremental(&program, &base, &stream, &query);
        let batch = stream_batch(&program, &base, &stream, &query);
        assert_eq!(incremental, batch);
        assert!(batch > 0);
    }

    #[test]
    fn format_table_produces_markdown() {
        let runs = standard_strategies(programs::LEFT_LINEAR_TC, programs::TC_QUERY);
        let edb = graphs::chain(10);
        let rows = vec![("10".to_string(), measure_all(&runs, &edb))];
        let table = format_table("test", "n", &rows);
        assert!(table.contains("| n | strategy |"));
        assert!(table.contains("magic+factoring"));
    }
}

/// The `joins` measurement suite: the fixed workload set behind the checked-in
/// `BENCH_joins.json` baseline and the `report --json joins` mode. Each workload
/// exercises the compiled join pipeline differently — full batch fixpoints over wide
/// and deep graphs (index probes on the full relations *and* on the semi-naive
/// deltas), the incremental engine's resume path, and the factored list-membership
/// program of the paper.
pub mod joins {
    use std::time::Instant;

    use factorlog_datalog::ast::Const;
    use factorlog_datalog::eval::{seminaive_evaluate, EvalOptions, EvalStats};
    use factorlog_datalog::parser::{parse_program, parse_query};
    use factorlog_workloads::lists::pmem_list;
    use factorlog_workloads::{graphs, programs};

    use crate::{stream_incremental, InsertStream};

    /// One measured workload of the suite.
    #[derive(Clone, Debug)]
    pub struct JoinMeasurement {
        /// Workload id (stable across runs; keys of `BENCH_joins.json`).
        pub name: &'static str,
        /// Median wall-clock milliseconds over the samples.
        pub millis: f64,
        /// Inference count (machine-independent size of the join work; 0 for the
        /// engine-driven incremental workload, whose per-call stats stay inside the
        /// engine).
        pub inferences: usize,
        /// Facts derived.
        pub facts: usize,
        /// Index probes performed (0 on builds that predate the counter).
        pub index_probes: usize,
        /// Full relation scans performed (0 on builds that predate the counter).
        pub full_scans: usize,
        /// Machine-independent answer-total checksum of streamed workloads (0 for
        /// batch workloads) — a correctness cross-check across builds, not a cost.
        pub answer_checksum: usize,
    }

    fn median(mut samples: Vec<f64>) -> f64 {
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        samples[samples.len() / 2]
    }

    fn measure_batch(
        name: &'static str,
        source: &str,
        edb: &factorlog_datalog::storage::Database,
        samples: usize,
    ) -> JoinMeasurement {
        let program = parse_program(source).expect("suite program parses").program;
        let mut timings = Vec::with_capacity(samples);
        let mut stats = EvalStats::default();
        for _ in 0..samples {
            let start = Instant::now();
            let result = seminaive_evaluate(&program, edb, &EvalOptions::default())
                .expect("suite evaluation succeeds");
            timings.push(start.elapsed().as_secs_f64() * 1e3);
            stats = result.stats;
        }
        JoinMeasurement {
            name,
            millis: median(timings),
            inferences: stats.inferences,
            facts: stats.facts_derived,
            index_probes: stats.index_probes,
            full_scans: stats.full_scans,
            answer_checksum: 0,
        }
    }

    /// Run the whole suite. `quick` shrinks the workloads and sample counts to a smoke
    /// test (used by CI to keep the benchmark code honest without paying for a full
    /// measurement run).
    pub fn run_suite(quick: bool) -> Vec<JoinMeasurement> {
        let samples = if quick { 1 } else { 5 };
        let mut out = Vec::new();

        // Transitive closure over a 10-ary tree: 11_110 edges (the ">= 10k edges"
        // acceptance workload). Deltas are wide, so recursive-literal delta probes
        // dominate.
        let (width, depth) = if quick { (4, 3) } else { (10, 4) };
        out.push(measure_batch(
            "tc_tree_10k_edges",
            programs::RIGHT_LINEAR_TC,
            &graphs::tree(width, depth),
            samples,
        ));

        // Transitive closure of a chain: long dependency depth, small deltas.
        let n = if quick { 64 } else { 400 };
        out.push(measure_batch(
            "tc_chain_400",
            programs::RIGHT_LINEAR_TC,
            &graphs::chain(n),
            samples,
        ));

        // Same generation over a balanced binary tree (the non-factorable control).
        let depth = if quick { 4 } else { 8 };
        out.push(measure_batch(
            "sg_tree_depth_8",
            programs::SAME_GENERATION,
            &graphs::same_generation_tree(depth),
            samples,
        ));

        // List membership (Example 1.2/4.6): the original quadratic program.
        let n = if quick { 50 } else { 400 };
        out.push(measure_batch(
            "pmem_list_400",
            programs::PMEM,
            &pmem_list(n, 1).edb,
            samples,
        ));

        // Incremental engine: materialize a chain closure, then absorb a stream of
        // edge inserts with delta-seeded resumes, querying after each.
        let n = if quick { 64 } else { 1000 };
        let inserts = if quick { 4 } else { 20 };
        let program = parse_program(programs::RIGHT_LINEAR_TC)
            .expect("tc program parses")
            .program;
        let query = parse_query(programs::TC_QUERY).expect("tc query parses");
        let base = graphs::chain(n);
        let stream: InsertStream = (0..inserts)
            .map(|i| {
                let from = (n + i) as i64;
                ("e", vec![Const::Int(from), Const::Int(from + 1)])
            })
            .collect();
        let mut timings = Vec::with_capacity(samples);
        let mut checksum = 0usize;
        for _ in 0..samples {
            let start = Instant::now();
            checksum = stream_incremental(&program, &base, &stream, &query);
            timings.push(start.elapsed().as_secs_f64() * 1e3);
        }
        out.push(JoinMeasurement {
            name: "tc_chain_1000_incremental",
            millis: median(timings),
            inferences: 0,
            facts: 0,
            index_probes: 0,
            full_scans: 0,
            answer_checksum: checksum,
        });

        out
    }

    /// Render the suite results as a JSON object (manual formatting keeps the
    /// workspace dependency-free). `quick` marks smoke runs: their workload ids name
    /// the *full-size* workloads, so the marker keeps shrunken numbers from being
    /// mistaken for the checked-in baseline.
    pub fn to_json(results: &[JoinMeasurement], quick: bool) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("{\n");
        out.push_str(&crate::host_json(EvalOptions::default().threads));
        if quick {
            out.push_str(
                "  \"quick\": true,\n  \"warning\": \"smoke run on shrunken workloads — not comparable to BENCH_joins.json\",\n",
            );
        }
        for (i, m) in results.iter().enumerate() {
            let _ = write!(
                out,
                "  \"{}\": {{\"millis\": {:.3}, \"inferences\": {}, \"facts\": {}, \"index_probes\": {}, \"full_scans\": {}, \"answer_checksum\": {}}}",
                m.name,
                m.millis,
                m.inferences,
                m.facts,
                m.index_probes,
                m.full_scans,
                m.answer_checksum
            );
            out.push_str(if i + 1 == results.len() { "\n" } else { ",\n" });
        }
        out.push('}');
        out
    }
}

/// The `incremental` measurement suite: the workload set behind the checked-in
/// `BENCH_incremental.json` baseline and the `report --json incremental` mode. The
/// headline workload is *churn*: a materialized transitive closure absorbing a
/// stream of retract+assert transactions (counting-based delete propagation through
/// the maintained model), measured against from-scratch re-evaluation of every
/// post-transaction EDB. The suite asserts on every run — including the CI smoke
/// run — that the maintained answers checksum-match the from-scratch answers.
pub mod incremental {
    use std::time::Instant;

    use factorlog_datalog::ast::Const;
    use factorlog_datalog::eval::{seminaive_evaluate, EvalOptions};
    use factorlog_datalog::parser::{parse_program, parse_query};
    use factorlog_datalog::storage::Database;
    use factorlog_engine::Engine;
    use factorlog_workloads::programs;

    /// One measured workload of the suite.
    #[derive(Clone, Debug)]
    pub struct IncrementalMeasurement {
        /// Workload id (stable across runs; keys of `BENCH_incremental.json`).
        pub name: &'static str,
        /// Median wall-clock milliseconds over the samples.
        pub millis: f64,
        /// Facts removed from the model by delete propagation (0 for the
        /// from-scratch baseline, which has no model to maintain).
        pub retractions: usize,
        /// Over-deleted facts restored by the counting re-derivation pass.
        pub rederivations: usize,
        /// Negative-delta fixpoint rounds.
        pub delete_rounds: usize,
        /// Total answers across the stream's queries — the machine-independent
        /// correctness checksum the maintained and scratch runs must share.
        pub answer_checksum: usize,
    }

    fn median(mut samples: Vec<f64>) -> f64 {
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        samples[samples.len() / 2]
    }

    /// The churn workload's base EDB: a chain 0→1→…→n plus skip edges (j → j+2 for
    /// even j), so a retracted chain edge usually leaves reachability intact through
    /// the skips — maximal re-derivation work for the counting pass.
    fn churn_base(n: i64) -> Vec<(i64, i64)> {
        let mut edges: Vec<(i64, i64)> = (0..n).map(|i| (i, i + 1)).collect();
        edges.extend((0..n - 1).step_by(2).map(|j| (j, j + 2)));
        edges
    }

    /// The mutation stream: transaction `i` retracts chain edge (s_i → s_i+1) and
    /// asserts a fresh detour edge (s_i → n + i).
    fn churn_stream(n: i64, churns: usize) -> Vec<((i64, i64), (i64, i64))> {
        (0..churns as i64)
            .map(|i| {
                let cut = (i * 7 + 1) % (n - 1);
                ((cut, cut + 1), (cut, n + i))
            })
            .collect()
    }

    /// Play the churn stream against a persistent engine: materialize once, then
    /// absorb each retract+assert transaction with incremental maintenance, querying
    /// after each. Returns (total answers, mutation counters).
    fn churn_maintained(n: i64, churns: usize) -> (usize, (usize, usize, usize)) {
        let mut engine = Engine::new();
        engine
            .load_source(programs::RIGHT_LINEAR_TC)
            .expect("program loads");
        for (a, b) in churn_base(n) {
            engine
                .insert("e", &[Const::Int(a), Const::Int(b)])
                .expect("base insert");
        }
        let query = parse_query(programs::TC_QUERY).expect("query parses");
        let mut checksum = engine.query(&query).expect("initial query").len();
        for ((ra, rb), (aa, ab)) in churn_stream(n, churns) {
            let mut txn = engine.transaction();
            txn.retract("e", &[Const::Int(ra), Const::Int(rb)])
                .assert("e", &[Const::Int(aa), Const::Int(ab)]);
            txn.commit().expect("churn commit");
            checksum += engine.query(&query).expect("churn query").len();
        }
        let stats = engine.stats();
        (
            checksum,
            (stats.retractions, stats.rederivations, stats.delete_rounds),
        )
    }

    /// The baseline: the same stream with a from-scratch evaluation of the whole EDB
    /// after every transaction.
    fn churn_scratch(n: i64, churns: usize) -> usize {
        let program = parse_program(programs::RIGHT_LINEAR_TC)
            .expect("program parses")
            .program;
        let query = parse_query(programs::TC_QUERY).expect("query parses");
        let mut edb = Database::new();
        for (a, b) in churn_base(n) {
            edb.add_fact("e", &[Const::Int(a), Const::Int(b)]);
        }
        let evaluate = |edb: &Database| {
            seminaive_evaluate(&program, edb, &EvalOptions::default())
                .expect("scratch evaluation")
                .answers(&query)
                .len()
        };
        let mut checksum = evaluate(&edb);
        for ((ra, rb), (aa, ab)) in churn_stream(n, churns) {
            edb.remove_fact("e", &[Const::Int(ra), Const::Int(rb)]);
            edb.add_fact("e", &[Const::Int(aa), Const::Int(ab)]);
            checksum += evaluate(&edb);
        }
        checksum
    }

    /// Run the whole suite. `quick` shrinks the workloads and sample counts to a
    /// smoke test; the maintained-vs-scratch checksum assertion runs either way.
    pub fn run_suite(quick: bool) -> Vec<IncrementalMeasurement> {
        let samples = if quick { 1 } else { 5 };
        let (n, churns) = if quick { (60i64, 4usize) } else { (400, 20) };
        let mut out = Vec::new();

        let mut timings = Vec::with_capacity(samples);
        let mut maintained = None;
        for _ in 0..samples {
            let start = Instant::now();
            let result = churn_maintained(n, churns);
            timings.push(start.elapsed().as_secs_f64() * 1e3);
            maintained = Some(result);
        }
        let (checksum, (retractions, rederivations, delete_rounds)) =
            maintained.expect("at least one sample");
        out.push(IncrementalMeasurement {
            name: "tc_churn_400_maintained",
            millis: median(timings),
            retractions,
            rederivations,
            delete_rounds,
            answer_checksum: checksum,
        });
        assert!(
            rederivations > 0,
            "the skip edges must force counting re-derivations"
        );

        let mut timings = Vec::with_capacity(samples);
        let mut scratch_checksum = 0usize;
        for _ in 0..samples {
            let start = Instant::now();
            scratch_checksum = churn_scratch(n, churns);
            timings.push(start.elapsed().as_secs_f64() * 1e3);
        }
        assert_eq!(
            checksum, scratch_checksum,
            "maintained and from-scratch answers must agree"
        );
        out.push(IncrementalMeasurement {
            name: "tc_churn_400_scratch",
            millis: median(timings),
            retractions: 0,
            rederivations: 0,
            delete_rounds: 0,
            answer_checksum: scratch_checksum,
        });

        out
    }

    /// Render the suite results as a JSON object (manual formatting keeps the
    /// workspace dependency-free). `quick` marks smoke runs on shrunken workloads.
    pub fn to_json(results: &[IncrementalMeasurement], quick: bool) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("{\n");
        out.push_str(&crate::host_json(EvalOptions::default().threads));
        if quick {
            out.push_str(
                "  \"quick\": true,\n  \"warning\": \"smoke run on shrunken workloads — not comparable to BENCH_incremental.json\",\n",
            );
        }
        for (i, m) in results.iter().enumerate() {
            let _ = write!(
                out,
                "  \"{}\": {{\"millis\": {:.3}, \"retractions\": {}, \"rederivations\": {}, \"delete_rounds\": {}, \"answer_checksum\": {}}}",
                m.name, m.millis, m.retractions, m.rederivations, m.delete_rounds, m.answer_checksum
            );
            out.push_str(if i + 1 == results.len() { "\n" } else { ",\n" });
        }
        out.push('}');
        out
    }

    #[cfg(test)]
    mod tests {
        #[test]
        fn quick_suite_is_internally_consistent() {
            let results = super::run_suite(true);
            assert_eq!(results.len(), 2);
            assert_eq!(
                results[0].answer_checksum, results[1].answer_checksum,
                "run_suite asserts this itself; pin it here too"
            );
            assert!(results[0].retractions > 0);
            let json = super::to_json(&results, true);
            assert!(json.contains("tc_churn_400_maintained"));
            assert!(json.contains("\"quick\": true"));
        }
    }
}

/// The `durability` measurement suite: the workload set behind the checked-in
/// `BENCH_durability.json` baseline and the `report --json durability` mode. It
/// measures the write-path overhead of the transaction log (with and without
/// per-commit fsync) and the two recovery paths (log replay vs snapshot load after
/// compaction), asserting on every run — including the CI smoke run — that each
/// recovered session's base facts checksum-match the session that wrote them.
pub mod durability {
    use std::path::PathBuf;
    use std::time::Instant;

    use factorlog_datalog::ast::Const;
    use factorlog_datalog::parser::parse_query;
    use factorlog_engine::{DurabilityOptions, Engine};
    use factorlog_workloads::programs;

    use crate::parallel::database_checksum;

    /// One measured scenario of the suite.
    #[derive(Clone, Debug)]
    pub struct DurabilityMeasurement {
        /// Scenario id (stable across runs; keys of `BENCH_durability.json`).
        pub name: &'static str,
        /// Median wall-clock milliseconds over the samples.
        pub millis: f64,
        /// Log size (bytes) the scenario ends with (0 after compaction).
        pub wal_bytes: u64,
        /// Log records appended (commit scenarios) or replayed (recovery
        /// scenarios).
        pub records: usize,
        /// Order-sensitive checksum of the session's base facts — every recovery
        /// scenario must reproduce the writer's checksum exactly.
        pub answer_checksum: u64,
    }

    fn median(mut samples: Vec<f64>) -> f64 {
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        samples[samples.len() / 2]
    }

    fn scratch_dir(tag: &str) -> PathBuf {
        static COUNTER: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
        let n = COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "factorlog_bench_durability_{tag}_{}_{n}",
            std::process::id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    /// Build the churn commit stream: transaction `i` retracts a chain edge and
    /// asserts a detour plus a fresh extension edge.
    fn churn_ops(n: i64, churns: usize) -> Vec<[(bool, i64, i64); 3]> {
        (0..churns as i64)
            .map(|i| {
                let cut = (i * 11 + 1) % (n - 1);
                [
                    (false, cut, cut + 1),
                    (true, cut, n + 2 * i),
                    (true, n + 2 * i, cut + 1),
                ]
            })
            .collect()
    }

    /// Open a durable session, load the TC program and an n-edge chain, then play
    /// the churn commits. Returns the session and the appended record count.
    fn write_session(dir: &PathBuf, fsync: bool, n: i64, churns: usize) -> (Engine, usize) {
        let options = DurabilityOptions {
            fsync,
            compact_threshold: u64::MAX,
        };
        let mut engine = Engine::open_durable_with(dir, options).expect("durable open");
        let mut source = String::from(programs::RIGHT_LINEAR_TC);
        source.push('\n');
        for i in 0..n {
            use std::fmt::Write as _;
            let _ = writeln!(source, "e({i}, {}).", i + 1);
        }
        engine.load_source(&source).expect("bulk load");
        for ops in churn_ops(n, churns) {
            let mut txn = engine.transaction();
            for (assert, a, b) in ops {
                if assert {
                    txn.assert("e", &[Const::Int(a), Const::Int(b)]);
                } else {
                    txn.retract("e", &[Const::Int(a), Const::Int(b)]);
                }
            }
            txn.commit().expect("churn commit");
        }
        let records = engine.stats().wal_appends;
        (engine, records)
    }

    /// Run the whole suite. `quick` shrinks the workloads and sample counts to a
    /// smoke test; the recovered-checksum assertions run either way.
    pub fn run_suite(quick: bool) -> Vec<DurabilityMeasurement> {
        let samples = if quick { 1 } else { 5 };
        let (n, churns) = if quick { (60i64, 10usize) } else { (400, 100) };
        let query = parse_query(programs::TC_QUERY).expect("query parses");
        let mut out = Vec::new();

        // Write path, fsync on and off: the cost of one record append (+ sync) per
        // commit.
        for (name, fsync) in [
            ("commit_churn_100_fsync", true),
            ("commit_churn_100_nofsync", false),
        ] {
            let mut timings = Vec::with_capacity(samples);
            let mut measured = None;
            for _ in 0..samples {
                let dir = scratch_dir(name);
                let start = Instant::now();
                let (engine, records) = write_session(&dir, fsync, n, churns);
                timings.push(start.elapsed().as_secs_f64() * 1e3);
                measured = Some(DurabilityMeasurement {
                    name,
                    millis: 0.0,
                    wal_bytes: engine.wal_len().expect("durable"),
                    records,
                    answer_checksum: database_checksum(engine.facts()),
                });
                std::fs::remove_dir_all(&dir).ok();
            }
            let mut m = measured.expect("at least one sample");
            m.millis = median(timings);
            out.push(m);
        }

        // Recovery, replay-heavy: reopen a directory whose whole history lives in
        // the log (no snapshot).
        let dir = scratch_dir("recover_replay");
        let (writer_engine, records) = write_session(&dir, false, n, churns);
        let written_checksum = database_checksum(writer_engine.facts());
        let mut live = writer_engine;
        let live_answers = live.query(&query).expect("live query").len();
        drop(live);
        let mut timings = Vec::with_capacity(samples);
        for _ in 0..samples {
            let start = Instant::now();
            let recovered = Engine::open_durable(&dir).expect("recovery");
            timings.push(start.elapsed().as_secs_f64() * 1e3);
            assert_eq!(
                database_checksum(recovered.facts()),
                written_checksum,
                "replay recovery must reproduce the writer's facts"
            );
        }
        let mut recovered = Engine::open_durable(&dir).expect("recovery");
        assert_eq!(
            recovered.query(&query).expect("recovered query").len(),
            live_answers,
            "recovered answers must match the live session"
        );
        out.push(DurabilityMeasurement {
            name: "recover_replay_100_txns",
            millis: median(timings),
            wal_bytes: recovered.wal_len().expect("durable"),
            records,
            answer_checksum: written_checksum,
        });

        // Recovery, snapshot-heavy: compact, then reopen (replay shrinks to zero).
        recovered.compact().expect("compaction");
        drop(recovered);
        let mut timings = Vec::with_capacity(samples);
        for _ in 0..samples {
            let start = Instant::now();
            let reopened = Engine::open_durable(&dir).expect("recovery");
            timings.push(start.elapsed().as_secs_f64() * 1e3);
            assert_eq!(
                database_checksum(reopened.facts()),
                written_checksum,
                "snapshot recovery must reproduce the writer's facts"
            );
            assert_eq!(
                reopened
                    .recovery_report()
                    .expect("durable session")
                    .records_replayed,
                0,
                "a freshly compacted directory replays nothing"
            );
        }
        let reopened = Engine::open_durable(&dir).expect("recovery");
        out.push(DurabilityMeasurement {
            name: "recover_after_compaction",
            millis: median(timings),
            wal_bytes: reopened.wal_len().expect("durable"),
            records: 0,
            answer_checksum: written_checksum,
        });
        std::fs::remove_dir_all(&dir).ok();

        out
    }

    /// Render the suite results as a JSON object (manual formatting keeps the
    /// workspace dependency-free). `quick` marks smoke runs on shrunken workloads.
    pub fn to_json(results: &[DurabilityMeasurement], quick: bool) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("{\n");
        out.push_str(&crate::host_json(
            factorlog_engine::EvalOptions::default().threads,
        ));
        if quick {
            out.push_str(
                "  \"quick\": true,\n  \"warning\": \"smoke run on shrunken workloads — not comparable to BENCH_durability.json\",\n",
            );
        }
        for (i, m) in results.iter().enumerate() {
            let _ = write!(
                out,
                "  \"{}\": {{\"millis\": {:.3}, \"wal_bytes\": {}, \"records\": {}, \"answer_checksum\": {}}}",
                m.name, m.millis, m.wal_bytes, m.records, m.answer_checksum
            );
            out.push_str(if i + 1 == results.len() { "\n" } else { ",\n" });
        }
        out.push('}');
        out
    }

    #[cfg(test)]
    mod tests {
        #[test]
        fn quick_suite_recovers_checksums() {
            // run_suite asserts recovered == written internally; surviving the call
            // IS the test. Sanity-check the shape on top.
            let results = super::run_suite(true);
            assert_eq!(results.len(), 4);
            let replay = results
                .iter()
                .find(|m| m.name == "recover_replay_100_txns")
                .unwrap();
            assert!(replay.records > 0);
            let fsync = results
                .iter()
                .find(|m| m.name == "commit_churn_100_fsync")
                .unwrap();
            assert_eq!(fsync.answer_checksum, replay.answer_checksum);
            let json = super::to_json(&results, true);
            assert!(json.contains("recover_after_compaction"));
            assert!(json.contains("\"quick\": true"));
        }
    }
}

/// The `parallel` measurement suite: the workload set behind the checked-in
/// `BENCH_parallel.json` baseline and the `report --json parallel` mode. Each workload
/// is evaluated at several worker-thread counts ([`parallel::THREAD_COUNTS`]); the
/// suite itself asserts the acceptance invariant — identical inference counts and
/// answer checksums at every thread count — so any run (including the CI smoke run)
/// re-verifies that parallel evaluation is bit-identical to sequential.
pub mod parallel {
    use std::time::Instant;

    use factorlog_datalog::eval::{seminaive_evaluate, EvalOptions};
    use factorlog_datalog::fx::fx_hash_one;
    use factorlog_datalog::parser::parse_program;
    use factorlog_datalog::storage::Database;
    use factorlog_workloads::lists::pmem_list;
    use factorlog_workloads::{graphs, programs};

    /// Thread counts every workload is measured at.
    pub const THREAD_COUNTS: &[usize] = &[1, 2, 4];

    /// One workload measured at one thread count.
    #[derive(Clone, Debug)]
    pub struct ParallelMeasurement {
        /// Workload id (stable across runs; keys of `BENCH_parallel.json`).
        pub name: &'static str,
        /// Worker threads the evaluation ran with.
        pub threads: usize,
        /// Median wall-clock milliseconds over the samples.
        pub millis: f64,
        /// Inference count — must be identical at every thread count.
        pub inferences: usize,
        /// Facts derived — must be identical at every thread count.
        pub facts: usize,
        /// Rounds that actually ran hash-partitioned (0 when the deltas never
        /// reached the parallel threshold — the chain-shaped control workloads).
        pub parallel_rounds: usize,
        /// Order-sensitive checksum of the final database — identical across thread
        /// counts if and only if the fact sets AND relation insertion orders match.
        pub answer_checksum: u64,
    }

    /// Order-sensitive digest of every relation (predicates in name order, tuples in
    /// insertion order): pins both the derived fact set and the deterministic-merge
    /// guarantee.
    pub fn database_checksum(db: &Database) -> u64 {
        let mut preds: Vec<_> = db.iter().collect();
        preds.sort_by_key(|(p, _)| p.as_str());
        let mut checksum = 0u64;
        for (pred, rel) in preds {
            checksum = checksum
                .wrapping_mul(1_000_003)
                .wrapping_add(fx_hash_one(&pred.as_str()));
            for tuple in rel.iter() {
                for value in tuple {
                    checksum = checksum.wrapping_mul(31).wrapping_add(fx_hash_one(value));
                }
            }
        }
        checksum
    }

    fn median(mut samples: Vec<f64>) -> f64 {
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        samples[samples.len() / 2]
    }

    fn measure_workload(
        name: &'static str,
        source: &str,
        edb: &Database,
        samples: usize,
        parallel_threshold: usize,
        out: &mut Vec<ParallelMeasurement>,
    ) {
        let program = parse_program(source).expect("suite program parses").program;
        let mut baseline: Option<(usize, u64)> = None;
        for &threads in THREAD_COUNTS {
            let options = EvalOptions {
                threads,
                parallel_threshold,
                ..EvalOptions::default()
            };
            let mut timings = Vec::with_capacity(samples);
            let mut measurement: Option<ParallelMeasurement> = None;
            for _ in 0..samples {
                let start = Instant::now();
                let result =
                    seminaive_evaluate(&program, edb, &options).expect("suite evaluation succeeds");
                timings.push(start.elapsed().as_secs_f64() * 1e3);
                match &measurement {
                    // Counters and checksum are deterministic: capture them on the
                    // first sample, cheaply cross-check the rest against it.
                    Some(first) => assert_eq!(
                        first.inferences, result.stats.inferences,
                        "{name}: inference count varies across samples"
                    ),
                    None => {
                        measurement = Some(ParallelMeasurement {
                            name,
                            threads,
                            millis: 0.0,
                            inferences: result.stats.inferences,
                            facts: result.stats.facts_derived,
                            parallel_rounds: result.stats.parallel_rounds,
                            answer_checksum: database_checksum(&result.database),
                        });
                    }
                }
            }
            let mut m = measurement.expect("at least one sample");
            m.millis = median(timings);
            // The acceptance invariant, enforced on every run: thread count must not
            // change what is computed, only how fast.
            match baseline {
                None => baseline = Some((m.inferences, m.answer_checksum)),
                Some((inferences, checksum)) => {
                    assert_eq!(
                        inferences, m.inferences,
                        "{name}: inference count differs at {threads} threads"
                    );
                    assert_eq!(
                        checksum, m.answer_checksum,
                        "{name}: database checksum differs at {threads} threads"
                    );
                }
            }
            out.push(m);
        }
    }

    /// Run the whole suite. `quick` shrinks the workloads and sample counts to a
    /// smoke test (used by CI to keep the invariant checks honest without paying for
    /// a full measurement run).
    pub fn run_suite(quick: bool) -> Vec<ParallelMeasurement> {
        let samples = if quick { 1 } else { 5 };
        // Quick smoke runs shrink the workloads below the production partition
        // threshold; forcing the threshold down keeps the partitioned code path (and
        // its bit-identity assertions) exercised anyway.
        let threshold = if quick {
            1
        } else {
            factorlog_datalog::eval::EvalOptions::default().parallel_threshold
        };
        let mut out = Vec::new();

        // Transitive closure over a 10-ary tree: 11_110 edges, wide deltas — every
        // delta round clears the partition threshold (the acceptance workload).
        let (width, depth) = if quick { (4, 3) } else { (10, 4) };
        measure_workload(
            "tc_tree_10k_edges",
            programs::RIGHT_LINEAR_TC,
            &graphs::tree(width, depth),
            samples,
            threshold,
            &mut out,
        );

        // One order of magnitude larger (111_110 edges): partition overhead
        // amortizes further — the workload the acceptance criteria fall back to when
        // per-round overhead dominates at 10k edges.
        let (width, depth) = if quick { (4, 4) } else { (10, 5) };
        measure_workload(
            "tc_tree_100k_edges",
            programs::RIGHT_LINEAR_TC,
            &graphs::tree(width, depth),
            if quick { 1 } else { 3 },
            threshold,
            &mut out,
        );

        // List membership: a chain-shaped recursion whose per-round deltas stay far
        // below the production threshold — the control showing parallelism never
        // taxes workloads it cannot help (t4 must track t1; parallel_rounds stays 0
        // in full runs).
        let n = if quick { 50 } else { 400 };
        measure_workload(
            "pmem_list_400",
            programs::PMEM,
            &pmem_list(n, 1).edb,
            samples,
            threshold,
            &mut out,
        );

        out
    }

    /// Render the suite results as a JSON object, grouped per workload with a
    /// `speedup_t4` summary. `quick` marks smoke runs (shrunken workloads keep their
    /// full-size ids, so the marker prevents confusing them with the baseline).
    pub fn to_json(results: &[ParallelMeasurement], quick: bool) -> String {
        use std::fmt::Write as _;
        let host = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"suite\": \"parallel\",");
        let _ = writeln!(out, "  \"host_cores\": {host},");
        // Uniform host object (host_cores above predates it and is kept for
        // comparability with older BENCH_parallel.json baselines). The suite
        // sweeps THREAD_COUNTS explicitly, so threads_configured reports the
        // sweep's maximum.
        out.push_str(&crate::host_json(
            THREAD_COUNTS.iter().copied().max().unwrap_or(1),
        ));
        if quick {
            out.push_str(
                "  \"quick\": true,\n  \"warning\": \"smoke run on shrunken workloads — not comparable to BENCH_parallel.json\",\n",
            );
        }
        let mut names: Vec<&'static str> = Vec::new();
        for m in results {
            if !names.contains(&m.name) {
                names.push(m.name);
            }
        }
        for (i, name) in names.iter().enumerate() {
            let rows: Vec<&ParallelMeasurement> =
                results.iter().filter(|m| m.name == *name).collect();
            let _ = writeln!(out, "  \"{name}\": {{");
            for row in &rows {
                let _ = writeln!(
                    out,
                    "    \"t{}\": {{\"millis\": {:.3}, \"inferences\": {}, \"facts\": {}, \"parallel_rounds\": {}, \"answer_checksum\": {}}},",
                    row.threads,
                    row.millis,
                    row.inferences,
                    row.facts,
                    row.parallel_rounds,
                    row.answer_checksum
                );
            }
            let t1 = rows.iter().find(|m| m.threads == 1);
            let t4 = rows.iter().find(|m| m.threads == 4);
            let speedup = match (t1, t4) {
                (Some(a), Some(b)) if b.millis > 0.0 => {
                    format!("{:.2}x", a.millis / b.millis)
                }
                _ => "n/a".to_string(),
            };
            let _ = writeln!(out, "    \"speedup_t4\": \"{speedup}\"");
            out.push_str(if i + 1 == names.len() {
                "  }\n"
            } else {
                "  },\n"
            });
        }
        out.push('}');
        out
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use factorlog_datalog::ast::Const;

        #[test]
        fn quick_suite_upholds_the_thread_invariance_contract() {
            // run_suite asserts identical inferences/checksums internally; surviving
            // the call IS the test. Sanity-check the shape on top.
            let results = run_suite(true);
            assert_eq!(results.len(), 3 * THREAD_COUNTS.len());
            let json = to_json(&results, true);
            assert!(json.contains("\"quick\": true"));
            assert!(json.contains("\"tc_tree_10k_edges\""));
            assert!(json.contains("\"speedup_t4\""));
        }

        #[test]
        fn checksum_is_order_sensitive() {
            let mut a = Database::new();
            a.add_fact("e", &[Const::Int(1), Const::Int(2)]);
            a.add_fact("e", &[Const::Int(3), Const::Int(4)]);
            let mut b = Database::new();
            b.add_fact("e", &[Const::Int(3), Const::Int(4)]);
            b.add_fact("e", &[Const::Int(1), Const::Int(2)]);
            assert_ne!(database_checksum(&a), database_checksum(&b));
            let mut c = Database::new();
            c.add_fact("e", &[Const::Int(1), Const::Int(2)]);
            c.add_fact("e", &[Const::Int(3), Const::Int(4)]);
            assert_eq!(database_checksum(&a), database_checksum(&c));
        }
    }
}

/// The `observability` measurement suite: the workload set behind the checked-in
/// `BENCH_observability.json` baseline and the `report --json observability`
/// mode. It runs the joins suite's batch workloads twice — tracing off and
/// tracing on — and measures the overhead the instrumentation adds when
/// *enabled* (span timers around every phase, per-rule firing clocks, row
/// counters at the staging sink). Full runs assert the enabled overhead stays
/// under [`observability::OVERHEAD_BUDGET_PCT`]; every run (including the CI
/// smoke run) asserts tracing changes nothing about *what* is computed —
/// identical inference counts and database checksums with tracing off and on —
/// and that the traced run actually produced a profile.
///
/// The suite also carries the resource-governance guardrail gate: the same
/// workloads with every limit armed (deadline, derived-fact cap, memory
/// budget, cancellation token — none tripping) versus all limits off, asserted
/// under [`observability::GUARDRAIL_BUDGET_PCT`] on full runs.
pub mod observability {
    use std::time::Instant;

    use factorlog_datalog::eval::{seminaive_evaluate, EvalOptions, EvalProfile};
    use factorlog_datalog::fault::CancelToken;
    use factorlog_datalog::parser::parse_program;
    use factorlog_datalog::storage::Database;
    use factorlog_workloads::{graphs, programs};

    use crate::parallel::database_checksum;

    /// The enabled-tracing overhead budget, in percent, asserted by full runs
    /// and recorded in `BENCH_observability.json`.
    pub const OVERHEAD_BUDGET_PCT: f64 = 3.0;

    /// The armed-guardrail overhead budget, in percent: the cost of running with
    /// every governance limit armed (deadline, derived-fact cap, memory budget,
    /// cancellation token — none of them tripping) over running with all of them
    /// disabled. Asserted by full runs and recorded in
    /// `BENCH_observability.json` (this PR's acceptance gate).
    pub const GUARDRAIL_BUDGET_PCT: f64 = 2.0;

    /// One workload measured with tracing off and on.
    #[derive(Clone, Debug)]
    pub struct ObservabilityMeasurement {
        /// Workload id (stable across runs; keys of `BENCH_observability.json`).
        pub name: &'static str,
        /// Best-of-N wall-clock milliseconds with tracing off.
        pub millis_off: f64,
        /// Best-of-N wall-clock milliseconds with tracing on.
        pub millis_on: f64,
        /// Enabled-tracing overhead in percent: `(on - off) / off * 100`
        /// (negative values are measurement noise).
        pub overhead_pct: f64,
        /// Inference count — identical off and on (asserted).
        pub inferences: usize,
        /// Distinct phase spans the traced run recorded.
        pub phases_recorded: usize,
        /// Total rule firings the traced run's per-rule profile recorded.
        pub rule_firings: u64,
    }

    /// Best-of-N is the right statistic for an overhead bound: the minimum of
    /// repeated runs of deterministic CPU-bound work converges on the true cost,
    /// while medians keep scheduler noise that can dwarf a few clock reads.
    fn min_millis(samples: &[f64]) -> f64 {
        samples.iter().copied().fold(f64::INFINITY, f64::min)
    }

    fn measure_pair(
        name: &'static str,
        source: &str,
        edb: &Database,
        samples: usize,
    ) -> ObservabilityMeasurement {
        let program = parse_program(source).expect("suite program parses").program;
        let traced_options = EvalOptions {
            trace: true,
            ..EvalOptions::default()
        };
        let mut timings_off = Vec::with_capacity(samples);
        let mut timings_on = Vec::with_capacity(samples);
        let mut untraced: Option<(usize, u64)> = None;
        let mut traced: Option<(usize, u64)> = None;
        let mut profile: Option<Box<EvalProfile>> = None;
        // One untimed warmup of each configuration (first-touch page faults and
        // symbol interning land here, not in a timed sample).
        seminaive_evaluate(&program, edb, &EvalOptions::default()).expect("warmup succeeds");
        seminaive_evaluate(&program, edb, &traced_options).expect("warmup succeeds");
        // Interleave the off/on runs so thermal and frequency drift hits both
        // sides equally, and alternate which goes first within each pair so
        // neither side systematically inherits the other's warmed caches.
        for s in 0..samples {
            for on in [s % 2 == 0, s % 2 != 0] {
                if on {
                    let start = Instant::now();
                    let result = seminaive_evaluate(&program, edb, &traced_options)
                        .expect("traced evaluation succeeds");
                    timings_on.push(start.elapsed().as_secs_f64() * 1e3);
                    traced = Some((result.stats.inferences, database_checksum(&result.database)));
                    profile = result.stats.profile;
                } else {
                    let start = Instant::now();
                    let result = seminaive_evaluate(&program, edb, &EvalOptions::default())
                        .expect("untraced evaluation succeeds");
                    timings_off.push(start.elapsed().as_secs_f64() * 1e3);
                    untraced = Some((result.stats.inferences, database_checksum(&result.database)));
                }
            }
        }
        let (inferences, checksum_off) = untraced.expect("at least one sample");
        let (inferences_on, checksum_on) = traced.expect("at least one sample");
        assert_eq!(
            inferences, inferences_on,
            "{name}: tracing changed the inference count"
        );
        assert_eq!(
            checksum_off, checksum_on,
            "{name}: tracing changed the derived database"
        );
        let profile = profile.expect("traced run collects a profile");
        assert!(
            profile.phases.contains_key("eval.round"),
            "{name}: traced run recorded no eval.round span"
        );
        let rule_firings: u64 = profile.rules.iter().map(|r| r.firings).sum();
        assert!(rule_firings > 0, "{name}: no rule firings recorded");

        let millis_off = min_millis(&timings_off);
        let millis_on = min_millis(&timings_on);
        ObservabilityMeasurement {
            name,
            millis_off,
            millis_on,
            overhead_pct: (millis_on - millis_off) / millis_off * 100.0,
            inferences,
            phases_recorded: profile.phases.len(),
            rule_firings,
        }
    }

    /// Measure a workload and assert the enabled-tracing overhead budget.
    /// Shared-host scheduler noise can poison every sample on one side of a
    /// single attempt (the workloads run tens of milliseconds, well within one
    /// noisy scheduling burst), so the budget gets [`BUDGET_ATTEMPTS`] fresh
    /// measurements before failing: a real regression exceeds the budget on
    /// every attempt, a noise burst does not survive three. Quick smoke
    /// workloads finish in microseconds, where the ratio is pure noise; they
    /// skip the assertion (a single attempt, no budget check).
    fn measure_with_budget(
        name: &'static str,
        source: &str,
        edb: &Database,
        samples: usize,
        quick: bool,
    ) -> ObservabilityMeasurement {
        const BUDGET_ATTEMPTS: usize = 3;
        let mut best: Option<ObservabilityMeasurement> = None;
        for _ in 0..BUDGET_ATTEMPTS {
            let m = measure_pair(name, source, edb, samples);
            let better = best
                .as_ref()
                .is_none_or(|b| m.overhead_pct < b.overhead_pct);
            if better {
                best = Some(m);
            }
            let current = best.as_ref().expect("just set");
            if quick || current.overhead_pct <= OVERHEAD_BUDGET_PCT {
                break;
            }
        }
        let m = best.expect("at least one attempt");
        if !quick {
            assert!(
                m.overhead_pct <= OVERHEAD_BUDGET_PCT,
                "{name}: enabled tracing costs {:.2}% (> {OVERHEAD_BUDGET_PCT}% budget) across \
                 {BUDGET_ATTEMPTS} attempts; off {:.3}ms, on {:.3}ms",
                m.overhead_pct,
                m.millis_off,
                m.millis_on
            );
        }
        m
    }

    /// One workload measured with every governance guardrail disarmed and then
    /// armed (limits present but never tripping).
    #[derive(Clone, Debug)]
    pub struct GuardrailMeasurement {
        /// Workload id (stable across runs; keys of `BENCH_observability.json`).
        pub name: &'static str,
        /// Best-of-N wall-clock milliseconds with no limits set.
        pub millis_unarmed: f64,
        /// Best-of-N wall-clock milliseconds with deadline, derived-fact cap,
        /// memory budget and a cancellation token all armed (none tripping).
        pub millis_armed: f64,
        /// Armed-guardrail overhead in percent: `(armed - unarmed) / unarmed * 100`
        /// (negative values are measurement noise).
        pub overhead_pct: f64,
        /// Inference count — identical unarmed and armed (asserted).
        pub inferences: usize,
        /// Cancellation polls the armed run performed — proves the guardrails
        /// were live, not compiled away (asserted non-zero).
        pub cancel_checks: u64,
    }

    fn measure_guardrail_pair(
        name: &'static str,
        source: &str,
        edb: &Database,
        samples: usize,
    ) -> GuardrailMeasurement {
        let program = parse_program(source).expect("suite program parses").program;
        // Every guardrail armed, none remotely close to tripping: the
        // measurement isolates the polling cost, not an abort.
        let armed_options = EvalOptions {
            deadline: Some(std::time::Duration::from_secs(3600)),
            max_derived_facts: Some(usize::MAX),
            memory_budget_bytes: Some(usize::MAX),
            cancel: Some(CancelToken::new()),
            ..EvalOptions::default()
        };
        let mut timings_unarmed = Vec::with_capacity(samples);
        let mut timings_armed = Vec::with_capacity(samples);
        let mut unarmed: Option<(usize, u64)> = None;
        let mut armed: Option<(usize, u64, u64)> = None;
        seminaive_evaluate(&program, edb, &EvalOptions::default()).expect("warmup succeeds");
        seminaive_evaluate(&program, edb, &armed_options).expect("warmup succeeds");
        // Same interleaving discipline as the tracing pair: alternate sides and
        // alternate which goes first, so drift and cache warmth hit both evenly.
        for s in 0..samples {
            for on in [s % 2 == 0, s % 2 != 0] {
                if on {
                    let start = Instant::now();
                    let result = seminaive_evaluate(&program, edb, &armed_options)
                        .expect("armed evaluation succeeds");
                    timings_armed.push(start.elapsed().as_secs_f64() * 1e3);
                    armed = Some((
                        result.stats.inferences,
                        database_checksum(&result.database),
                        result.stats.cancel_checks as u64,
                    ));
                } else {
                    let start = Instant::now();
                    let result = seminaive_evaluate(&program, edb, &EvalOptions::default())
                        .expect("unarmed evaluation succeeds");
                    timings_unarmed.push(start.elapsed().as_secs_f64() * 1e3);
                    unarmed = Some((result.stats.inferences, database_checksum(&result.database)));
                }
            }
        }
        let (inferences, checksum_unarmed) = unarmed.expect("at least one sample");
        let (inferences_armed, checksum_armed, cancel_checks) = armed.expect("at least one sample");
        assert_eq!(
            inferences, inferences_armed,
            "{name}: armed guardrails changed the inference count"
        );
        assert_eq!(
            checksum_unarmed, checksum_armed,
            "{name}: armed guardrails changed the derived database"
        );
        assert!(
            cancel_checks > 0,
            "{name}: the armed run never polled its guardrails"
        );
        let millis_unarmed = min_millis(&timings_unarmed);
        let millis_armed = min_millis(&timings_armed);
        GuardrailMeasurement {
            name,
            millis_unarmed,
            millis_armed,
            overhead_pct: (millis_armed - millis_unarmed) / millis_unarmed * 100.0,
            inferences,
            cancel_checks,
        }
    }

    /// Measure a workload's armed-guardrail overhead and assert the budget,
    /// with the same noise-tolerant retry discipline as
    /// [`measure_with_budget`]: a real regression exceeds the budget on every
    /// attempt, a scheduler burst does not survive three. Quick smoke runs
    /// skip the assertion (microsecond workloads make the ratio pure noise).
    fn measure_guardrails(
        name: &'static str,
        source: &str,
        edb: &Database,
        samples: usize,
        quick: bool,
    ) -> GuardrailMeasurement {
        const BUDGET_ATTEMPTS: usize = 3;
        let mut best: Option<GuardrailMeasurement> = None;
        for _ in 0..BUDGET_ATTEMPTS {
            let m = measure_guardrail_pair(name, source, edb, samples);
            let better = best
                .as_ref()
                .is_none_or(|b| m.overhead_pct < b.overhead_pct);
            if better {
                best = Some(m);
            }
            let current = best.as_ref().expect("just set");
            if quick || current.overhead_pct <= GUARDRAIL_BUDGET_PCT {
                break;
            }
        }
        let m = best.expect("at least one attempt");
        if !quick {
            assert!(
                m.overhead_pct <= GUARDRAIL_BUDGET_PCT,
                "{name}: armed guardrails cost {:.2}% (> {GUARDRAIL_BUDGET_PCT}% budget) across \
                 {BUDGET_ATTEMPTS} attempts; unarmed {:.3}ms, armed {:.3}ms",
                m.overhead_pct,
                m.millis_unarmed,
                m.millis_armed
            );
        }
        m
    }

    /// The whole observability suite: tracing-overhead measurements plus the
    /// armed-guardrail gate, serialized together into
    /// `BENCH_observability.json` by [`to_json`].
    #[derive(Clone, Debug)]
    pub struct SuiteResults {
        /// Tracing off-vs-on measurements (the PR-6 gate).
        pub tracing: Vec<ObservabilityMeasurement>,
        /// Guardrails unarmed-vs-armed measurements (this PR's gate).
        pub guardrails: Vec<GuardrailMeasurement>,
    }

    /// Run the whole suite. `quick` shrinks workloads and sample counts to a
    /// smoke test: the identical-results and profile-shape assertions still run,
    /// the overhead budgets (meaningless at microsecond scale) do not.
    pub fn run_suite(quick: bool) -> SuiteResults {
        let samples = if quick { 3 } else { 9 };
        let mut out = Vec::new();

        // Wide deltas: many instantiations per rule firing, so per-firing clock
        // reads amortize well — the common case.
        let (width, depth) = if quick { (4, 3) } else { (10, 4) };
        out.push(measure_with_budget(
            "tc_tree_10k_edges",
            programs::RIGHT_LINEAR_TC,
            &graphs::tree(width, depth),
            samples,
            quick,
        ));

        // A long chain: hundreds of near-empty rounds, the worst case for
        // per-round span overhead (two clock reads per round against almost no
        // join work).
        let n = if quick { 64 } else { 400 };
        out.push(measure_with_budget(
            "tc_chain_400",
            programs::RIGHT_LINEAR_TC,
            &graphs::chain(n),
            samples,
            quick,
        ));

        // The guardrail gate runs the same two workload shapes: the wide-delta
        // tree amortizes the per-row join poll, the long chain is the worst
        // case for the per-round limit checks.
        let guardrails = vec![
            measure_guardrails(
                "tc_tree_10k_edges",
                programs::RIGHT_LINEAR_TC,
                &graphs::tree(width, depth),
                samples,
                quick,
            ),
            measure_guardrails(
                "tc_chain_400",
                programs::RIGHT_LINEAR_TC,
                &graphs::chain(n),
                samples,
                quick,
            ),
        ];

        SuiteResults {
            tracing: out,
            guardrails,
        }
    }

    /// Render the suite results as a JSON object (manual formatting keeps the
    /// workspace dependency-free). `quick` marks smoke runs on shrunken
    /// workloads whose overhead numbers are noise.
    pub fn to_json(results: &SuiteResults, quick: bool) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("{\n");
        out.push_str(&crate::host_json(EvalOptions::default().threads));
        let _ = writeln!(out, "  \"overhead_budget_pct\": {OVERHEAD_BUDGET_PCT},");
        let _ = writeln!(out, "  \"guardrail_budget_pct\": {GUARDRAIL_BUDGET_PCT},");
        if quick {
            out.push_str(
                "  \"quick\": true,\n  \"warning\": \"smoke run on shrunken workloads — not comparable to BENCH_observability.json\",\n",
            );
        }
        for m in &results.tracing {
            let _ = writeln!(
                out,
                "  \"{}\": {{\"millis_off\": {:.3}, \"millis_on\": {:.3}, \"overhead_pct\": {:.2}, \"inferences\": {}, \"phases_recorded\": {}, \"rule_firings\": {}}},",
                m.name,
                m.millis_off,
                m.millis_on,
                m.overhead_pct,
                m.inferences,
                m.phases_recorded,
                m.rule_firings
            );
        }
        for (i, m) in results.guardrails.iter().enumerate() {
            let _ = write!(
                out,
                "  \"guardrails_{}\": {{\"millis_unarmed\": {:.3}, \"millis_armed\": {:.3}, \"overhead_pct\": {:.2}, \"inferences\": {}, \"cancel_checks\": {}}}",
                m.name,
                m.millis_unarmed,
                m.millis_armed,
                m.overhead_pct,
                m.inferences,
                m.cancel_checks
            );
            out.push_str(if i + 1 == results.guardrails.len() {
                "\n"
            } else {
                ",\n"
            });
        }
        out.push('}');
        out
    }

    #[cfg(test)]
    mod tests {
        #[test]
        fn quick_suite_traces_without_changing_results() {
            // measure_pair / measure_guardrail_pair assert identical
            // inferences/checksums (and a populated profile, and live guardrail
            // polls) internally; surviving the call IS the test.
            let results = super::run_suite(true);
            assert_eq!(results.tracing.len(), 2);
            for m in &results.tracing {
                assert!(m.phases_recorded > 0, "{m:?}");
                assert!(m.rule_firings > 0, "{m:?}");
            }
            assert_eq!(results.guardrails.len(), 2);
            for m in &results.guardrails {
                assert!(m.cancel_checks > 0, "{m:?}");
            }
            let json = super::to_json(&results, true);
            assert!(json.contains("\"overhead_budget_pct\": 3"));
            assert!(json.contains("\"guardrail_budget_pct\": 2"));
            assert!(json.contains("\"tc_tree_10k_edges\""));
            assert!(json.contains("\"guardrails_tc_chain_400\""));
            assert!(json.contains("\"host\""));
            assert!(json.contains("\"quick\": true"));
        }
    }
}

/// The `concurrent` measurement suite: the workload behind the checked-in
/// `BENCH_concurrent.json` baseline and the `report --json concurrent` mode. A served
/// engine ([`factorlog_engine::serve`]) answers point queries from 1/4/16/64 reader
/// connections while [`concurrent::WRITERS`] writer connections sustain a mutation
/// stream of single-edge transactions; the suite itself asserts the acceptance
/// invariants — every reader observes the same full answer set on every query
/// (snapshot isolation under concurrent writes), every acknowledged transaction is
/// durable across a restart, and the group-commit pipeline shares each fsync across
/// at least two transactions under the concurrent stream.
pub mod concurrent {
    use std::net::SocketAddr;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    use factorlog_datalog::fx::fx_hash_one;
    use factorlog_engine::{serve, Client, DurabilityOptions, Engine, ServerOptions};
    use factorlog_workloads::programs;

    use crate::parallel::database_checksum;

    /// Reader connection counts measured by the suite. The 64-connection point
    /// exists to exercise the reactor well past thread-per-connection scale.
    pub const CONNECTIONS: [usize; 4] = [1, 4, 16, 64];
    /// Writer connections sustaining the mutation stream during every run.
    pub const WRITERS: usize = 4;
    /// Acceptance floor: transactions per WAL fsync under the concurrent stream.
    pub const BATCHING_FLOOR: f64 = 2.0;

    /// One measured scenario (one reader connection count, writers held constant).
    #[derive(Clone, Debug)]
    pub struct ConcurrentMeasurement {
        /// Scenario id (stable across runs; keys of `BENCH_concurrent.json`).
        pub name: String,
        /// Reader connections issuing point queries.
        pub connections: usize,
        /// Point queries answered across all readers.
        pub queries: usize,
        /// Point queries answered per second of reader wall-clock.
        pub qps: f64,
        /// Rows every reply carried — the full `t(0, Y)` answer set.
        pub rows_per_query: usize,
        /// Order-sensitive checksum of the reply rows — identical for every query
        /// of every run (the mutation stream touches a disjoint id range).
        pub row_checksum: u64,
        /// Transactions the writers streamed and the server acknowledged.
        pub txns_committed: usize,
        /// Group commits (one WAL fsync each) those transactions rode through.
        pub group_commits: u64,
        /// Transactions covered by those group commits.
        pub group_txns: u64,
        /// Batching factor `group_txns / group_commits` — asserted ≥ 2.
        pub txns_per_fsync: f64,
        /// Checksum of the engine's facts after shutdown — asserted equal to a
        /// fresh recovery of the data directory (every ack was durable).
        pub facts_checksum: u64,
    }

    fn scratch_dir(tag: &str) -> PathBuf {
        static COUNTER: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
        let n = COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "factorlog_bench_concurrent_{tag}_{}_{n}",
            std::process::id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    /// Order-sensitive digest of a reply's rendered rows.
    fn rows_checksum(rows: &[String]) -> u64 {
        let mut checksum = 0u64;
        for row in rows {
            checksum = checksum
                .wrapping_mul(1_000_003)
                .wrapping_add(fx_hash_one(&row.as_str()));
        }
        checksum
    }

    /// Serve a durable TC session over an `n`-edge chain and hammer it: `conns`
    /// readers issue `queries_per_reader` point queries each while [`WRITERS`]
    /// writer connections stream disjoint-range edge transactions (at least
    /// `min_txns` each, then until the readers finish).
    fn measure_run(
        conns: usize,
        n: i64,
        queries_per_reader: usize,
        min_txns: usize,
    ) -> ConcurrentMeasurement {
        let dir = scratch_dir(&format!("{conns}conn"));
        let options = DurabilityOptions {
            fsync: true,
            compact_threshold: u64::MAX,
        };
        let mut engine = Engine::open_durable_with(&dir, options).expect("durable open");
        let mut source = String::from(programs::RIGHT_LINEAR_TC);
        source.push('\n');
        for i in 0..n {
            use std::fmt::Write as _;
            let _ = writeln!(source, "e({i}, {}).", i + 1);
        }
        engine.load_source(&source).expect("bulk load");
        let handle = serve(
            engine,
            "127.0.0.1:0",
            ServerOptions {
                group_window: Duration::from_millis(2),
                ..ServerOptions::default()
            },
        )
        .expect("serve");
        let addr: SocketAddr = handle.addr();

        let mut control = Client::connect(addr).expect("control connect");
        let before = control.stats().expect("baseline stats");

        // The mutation stream: edges in an id range disjoint from (and unreachable
        // by) the chain, so reader answers stay byte-identical throughout.
        let stop = Arc::new(AtomicBool::new(false));
        let writers: Vec<_> = (0..WRITERS)
            .map(|w| {
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut client = Client::connect(addr).expect("writer connect");
                    let mut committed = 0usize;
                    while committed < min_txns || !stop.load(Ordering::Relaxed) {
                        let a = 1_000_000 + (w as i64) * 100_000 + committed as i64;
                        let b = a + 10_000_000;
                        client
                            .txn_with_retry(&format!("+e({a}, {b})"), 8)
                            .expect("writer txn acknowledged");
                        committed += 1;
                    }
                    client.quit();
                    committed
                })
            })
            .collect();

        let start = Instant::now();
        let readers: Vec<_> = (0..conns)
            .map(|_| {
                std::thread::spawn(move || {
                    let mut client = Client::connect(addr).expect("reader connect");
                    let mut shape: Option<(usize, u64)> = None;
                    for _ in 0..queries_per_reader {
                        let reply = client.query_with_retry("t(0, Y)", 8).expect("point query");
                        let got = (reply.rows.len(), rows_checksum(&reply.rows));
                        match shape {
                            Some(first) => assert_eq!(
                                first, got,
                                "reader answers must not vary under the mutation stream"
                            ),
                            None => shape = Some(got),
                        }
                    }
                    client.quit();
                    shape.expect("at least one query")
                })
            })
            .collect();
        let shapes: Vec<(usize, u64)> = readers
            .into_iter()
            .map(|r| r.join().expect("reader thread"))
            .collect();
        let elapsed = start.elapsed().as_secs_f64();
        stop.store(true, Ordering::Relaxed);
        let txns_committed: usize = writers
            .into_iter()
            .map(|w| w.join().expect("writer thread"))
            .sum();

        let (rows_per_query, row_checksum) = shapes[0];
        for &shape in &shapes {
            assert_eq!(shape, shapes[0], "all readers must agree on the answer set");
        }
        assert_eq!(
            rows_per_query, n as usize,
            "the full t(0, Y) answer set is served on every query"
        );

        let after = control.stats().expect("final stats");
        control.quit();
        let group_commits = after.group_commits - before.group_commits;
        let group_txns = after.group_txns - before.group_txns;
        assert_eq!(
            group_txns as usize, txns_committed,
            "every acknowledged transaction rode a group commit"
        );
        assert_eq!(
            after.epoch,
            before.epoch + txns_committed as u64,
            "each committed transaction advances the epoch exactly once"
        );
        let txns_per_fsync = group_txns as f64 / group_commits.max(1) as f64;
        assert!(
            txns_per_fsync >= BATCHING_FLOOR,
            "group commit must share fsyncs under a concurrent stream \
             ({group_txns} txns over {group_commits} fsyncs)"
        );

        let report = handle.shutdown();
        assert!(report.drained_cleanly, "all clients had already quit");
        let facts_checksum = database_checksum(report.engine.facts());
        drop(report); // releases the data-directory lock
        let recovered = Engine::open_durable(&dir).expect("recovery");
        assert_eq!(
            database_checksum(recovered.facts()),
            facts_checksum,
            "recovery must reproduce every acknowledged transaction"
        );
        drop(recovered);
        std::fs::remove_dir_all(&dir).ok();

        let queries = conns * queries_per_reader;
        ConcurrentMeasurement {
            name: format!("point_query_{conns}_conn"),
            connections: conns,
            queries,
            qps: queries as f64 / elapsed,
            rows_per_query,
            row_checksum,
            txns_committed,
            group_commits,
            group_txns,
            txns_per_fsync,
            facts_checksum,
        }
    }

    /// Run the whole suite. `quick` shrinks the chain and per-reader query counts
    /// to a smoke test; every isolation/durability/batching assertion runs either
    /// way.
    pub fn run_suite(quick: bool) -> Vec<ConcurrentMeasurement> {
        let (n, queries_per_reader, min_txns) = if quick {
            (30i64, 25usize, 5usize)
        } else {
            (200, 200, 25)
        };
        let mut out = Vec::new();
        for &conns in &CONNECTIONS {
            let m = measure_run(conns, n, queries_per_reader, min_txns);
            if let Some(first) = out.first() {
                let first: &ConcurrentMeasurement = first;
                assert_eq!(
                    m.row_checksum, first.row_checksum,
                    "the served answer set is independent of the connection count"
                );
            }
            out.push(m);
        }
        out
    }

    /// Render the suite results as a JSON object (manual formatting keeps the
    /// workspace dependency-free). `quick` marks smoke runs on shrunken workloads.
    pub fn to_json(results: &[ConcurrentMeasurement], quick: bool) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("{\n");
        out.push_str(&crate::host_json(
            factorlog_engine::EvalOptions::default().threads,
        ));
        let _ = writeln!(
            out,
            "  \"writers\": {WRITERS},\n  \"batching_floor_txns_per_fsync\": {BATCHING_FLOOR},"
        );
        if quick {
            out.push_str(
                "  \"quick\": true,\n  \"warning\": \"smoke run on shrunken workloads — not comparable to BENCH_concurrent.json\",\n",
            );
        }
        for (i, m) in results.iter().enumerate() {
            let _ = write!(
                out,
                "  \"{}\": {{\"connections\": {}, \"qps\": {:.1}, \"queries\": {}, \"rows_per_query\": {}, \"row_checksum\": {}, \"txns_committed\": {}, \"group_commits\": {}, \"group_txns\": {}, \"txns_per_fsync\": {:.2}, \"facts_checksum\": {}}}",
                m.name,
                m.connections,
                m.qps,
                m.queries,
                m.rows_per_query,
                m.row_checksum,
                m.txns_committed,
                m.group_commits,
                m.group_txns,
                m.txns_per_fsync,
                m.facts_checksum
            );
            out.push_str(if i + 1 == results.len() { "\n" } else { ",\n" });
        }
        out.push('}');
        out
    }

    #[cfg(test)]
    mod tests {
        #[test]
        fn quick_suite_batches_fsyncs_and_agrees_on_answers() {
            // measure_run asserts snapshot isolation, epoch accounting, durability
            // and the batching floor internally; surviving the call IS the test.
            let results = super::run_suite(true);
            assert_eq!(results.len(), 4);
            for m in &results {
                assert!(m.txns_per_fsync >= super::BATCHING_FLOOR, "{m:?}");
                assert!(m.qps > 0.0, "{m:?}");
                assert_eq!(m.row_checksum, results[0].row_checksum);
            }
            let json = super::to_json(&results, true);
            assert!(json.contains("point_query_16_conn"));
            assert!(json.contains("\"writers\": 4"));
            assert!(json.contains("\"quick\": true"));
        }
    }
}

/// The `replication` measurement suite: the workload behind the checked-in
/// `BENCH_replication.json` baseline and the `report --json replication` mode. A
/// durable leader with a pre-built WAL backlog is served over TCP; a follower
/// replica subscribes, and the suite measures (a) catch-up throughput — committed
/// WAL frames applied per second until the follower's lag reaches zero — and (b)
/// steady-state lag — the follower's frame lag sampled after every poll while
/// writer connections sustain a live transaction stream. The suite itself asserts
/// the acceptance invariant: after the final catch-up the follower's fact store is
/// checksum-identical to the leader's.
pub mod replication {
    use std::path::PathBuf;
    use std::time::{Duration, Instant};

    use factorlog_datalog::ast::Const;
    use factorlog_engine::{
        serve, Client, DurabilityOptions, Engine, Replica, ReplicationOptions, ServerOptions,
    };
    use factorlog_workloads::programs;

    use crate::parallel::database_checksum;

    /// Writer connections sustaining the live stream during the steady phase.
    pub const WRITERS: usize = 2;

    /// One measured scenario (one backlog size).
    #[derive(Clone, Debug)]
    pub struct ReplicationMeasurement {
        /// Scenario id (stable across runs; keys of `BENCH_replication.json`).
        pub name: String,
        /// Committed WAL frames in the leader's log before the follower starts.
        pub backlog_frames: u64,
        /// Wall-clock seconds the follower took to drain the backlog.
        pub catchup_secs: f64,
        /// Catch-up throughput: backlog frames applied per second.
        pub catchup_frames_per_sec: f64,
        /// Snapshot bootstraps during catch-up (0 when the log was intact).
        pub bootstraps: u64,
        /// Transactions the writers committed during the steady phase.
        pub steady_txns: usize,
        /// Follower lag samples taken during the steady phase (one per poll).
        pub lag_samples: usize,
        /// Maximum sampled lag, in frames.
        pub steady_lag_max: u64,
        /// Mean sampled lag, in frames.
        pub steady_lag_mean: f64,
        /// Checksum of the leader's fact store after shutdown — asserted equal
        /// to the follower's (the replica converged to an identical copy).
        pub facts_checksum: u64,
    }

    fn scratch_dir(tag: &str) -> PathBuf {
        static COUNTER: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
        let n = COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "factorlog_bench_replication_{tag}_{}_{n}",
            std::process::id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    /// Build a leader with `backlog` single-fact commits in its log, serve it,
    /// catch a fresh follower up, then sustain a live stream of `steady_txns`
    /// transactions per writer while the follower polls and its lag is sampled.
    fn measure_run(backlog: u64, steady_txns: usize) -> ReplicationMeasurement {
        let leader_dir = scratch_dir("leader");
        let follower_dir = scratch_dir("follower");
        let options = DurabilityOptions {
            fsync: false,
            compact_threshold: u64::MAX,
        };
        let mut engine = Engine::open_durable_with(&leader_dir, options).expect("durable open");
        engine
            .load_source(programs::RIGHT_LINEAR_TC)
            .expect("program loads");
        // Disjoint (non-chaining) edges: one WAL frame each, and the TC rules
        // derive only linearly many facts, so the log — not evaluation — is
        // what the catch-up phase measures.
        for i in 0..backlog as i64 {
            engine
                .insert("e", &[Const::Int(i), Const::Int(i + 100_000_000)])
                .expect("backlog insert");
        }
        let backlog_frames = engine.wal_last_seq().expect("leader is durable");
        let handle = serve(
            engine,
            "127.0.0.1:0",
            ServerOptions {
                group_window: Duration::from_millis(2),
                ..ServerOptions::default()
            },
        )
        .expect("serve");
        let addr = handle.addr();

        // Catch-up phase: a fresh follower drains the whole backlog.
        let follower_engine =
            Engine::open_durable_with(&follower_dir, options).expect("follower open");
        let mut follower = Replica::from_engine(
            follower_engine,
            addr.to_string(),
            ReplicationOptions {
                poll_interval: Duration::from_millis(1),
                ..ReplicationOptions::default()
            },
        )
        .expect("replica wraps");
        let start = Instant::now();
        while follower.applied_seq() < backlog_frames {
            let report = follower.sync_once().expect("sync");
            assert!(report.contacted, "the served leader must be reachable");
        }
        let catchup_secs = start.elapsed().as_secs_f64();
        let bootstraps = follower.status().bootstraps;

        // Steady phase: writers stream live transactions; the follower polls
        // continuously and its frame lag is sampled after every poll.
        let writers: Vec<_> = (0..WRITERS)
            .map(|w| {
                std::thread::spawn(move || {
                    let mut client = Client::connect(addr).expect("writer connect");
                    for k in 0..steady_txns {
                        let a = 10_000_000 + (w as i64) * 1_000_000 + k as i64;
                        client
                            .txn_with_retry(&format!("+e({a}, {})", a + 1), 8)
                            .expect("writer txn acknowledged");
                    }
                    client.quit();
                })
            })
            .collect();
        let mut lag_samples = Vec::new();
        let mut writers_done = false;
        loop {
            follower.sync_once().expect("steady sync");
            lag_samples.push(follower.lag_frames());
            if writers_done && follower.lag_frames() == 0 {
                break;
            }
            if !writers_done && writers.iter().all(|w| w.is_finished()) {
                writers_done = true;
            }
        }
        for w in writers {
            w.join().expect("writer thread");
        }
        assert!(follower.catch_up(200).expect("final catch-up"));
        let steady_lag_max = lag_samples.iter().copied().max().unwrap_or(0);
        let steady_lag_mean =
            lag_samples.iter().sum::<u64>() as f64 / lag_samples.len().max(1) as f64;

        // Acceptance invariant: the follower converged to a checksum-identical
        // copy of the leader's committed fact store.
        let leader_engine = handle.shutdown().engine;
        let facts_checksum = database_checksum(leader_engine.facts());
        assert_eq!(
            database_checksum(follower.engine().facts()),
            facts_checksum,
            "follower and leader must be checksum-identical after catch-up"
        );
        drop((leader_engine, follower));
        std::fs::remove_dir_all(&leader_dir).ok();
        std::fs::remove_dir_all(&follower_dir).ok();

        ReplicationMeasurement {
            name: format!("backlog_{backlog}"),
            backlog_frames,
            catchup_secs,
            catchup_frames_per_sec: backlog_frames as f64 / catchup_secs.max(1e-9),
            bootstraps,
            steady_txns: steady_txns * WRITERS,
            lag_samples: lag_samples.len(),
            steady_lag_max,
            steady_lag_mean,
            facts_checksum,
        }
    }

    /// Run the whole suite. `quick` shrinks the backlog and the live stream to
    /// a smoke test; the checksum-equality assertion runs either way.
    pub fn run_suite(quick: bool) -> Vec<ReplicationMeasurement> {
        let scenarios: &[(u64, usize)] = if quick {
            &[(100, 10), (300, 20)]
        } else {
            &[(1_000, 100), (5_000, 200)]
        };
        scenarios
            .iter()
            .map(|&(backlog, steady)| measure_run(backlog, steady))
            .collect()
    }

    /// Render the suite results as a JSON object (manual formatting keeps the
    /// workspace dependency-free). `quick` marks smoke runs on shrunken workloads.
    pub fn to_json(results: &[ReplicationMeasurement], quick: bool) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("{\n");
        out.push_str(&crate::host_json(
            factorlog_engine::EvalOptions::default().threads,
        ));
        let _ = writeln!(out, "  \"writers\": {WRITERS},");
        if quick {
            out.push_str(
                "  \"quick\": true,\n  \"warning\": \"smoke run on shrunken workloads — not comparable to BENCH_replication.json\",\n",
            );
        }
        for (i, m) in results.iter().enumerate() {
            let _ = write!(
                out,
                "  \"{}\": {{\"backlog_frames\": {}, \"catchup_secs\": {:.4}, \"catchup_frames_per_sec\": {:.1}, \"bootstraps\": {}, \"steady_txns\": {}, \"lag_samples\": {}, \"steady_lag_max\": {}, \"steady_lag_mean\": {:.2}, \"facts_checksum\": {}}}",
                m.name,
                m.backlog_frames,
                m.catchup_secs,
                m.catchup_frames_per_sec,
                m.bootstraps,
                m.steady_txns,
                m.lag_samples,
                m.steady_lag_max,
                m.steady_lag_mean,
                m.facts_checksum
            );
            out.push_str(if i + 1 == results.len() { "\n" } else { ",\n" });
        }
        out.push('}');
        out
    }

    #[cfg(test)]
    mod tests {
        #[test]
        fn quick_suite_catches_up_and_checksums_match() {
            // measure_run asserts leader/follower checksum equality internally;
            // surviving the call IS the test.
            let results = super::run_suite(true);
            assert_eq!(results.len(), 2);
            for m in &results {
                assert!(m.catchup_frames_per_sec > 0.0, "{m:?}");
                assert!(m.backlog_frames > 0, "{m:?}");
                assert!(m.lag_samples > 0, "{m:?}");
            }
            let json = super::to_json(&results, true);
            assert!(json.contains("\"backlog_100\""));
            assert!(json.contains("\"catchup_frames_per_sec\""));
            assert!(json.contains("\"quick\": true"));
        }
    }
}
