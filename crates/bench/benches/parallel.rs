//! Hash-partitioned parallel evaluation under load: the wide-delta transitive-closure
//! workloads of the `parallel` suite at several worker-thread counts, plus the
//! chain-shaped control whose deltas stay below the partition threshold. The same
//! workloads back the checked-in `BENCH_parallel.json` baseline (see
//! `report --json parallel`); this criterion group exists for quick A/B runs while
//! touching the partition/merge internals:
//!
//! ```text
//! cargo bench -p factorlog-bench --bench parallel
//! ```

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use factorlog_datalog::eval::{seminaive_evaluate, EvalOptions};
use factorlog_datalog::parser::parse_program;
use factorlog_workloads::lists::pmem_list;
use factorlog_workloads::{graphs, programs};

fn options(threads: usize) -> EvalOptions {
    EvalOptions {
        threads,
        ..EvalOptions::default()
    }
}

fn bench_tc_tree(c: &mut Criterion) {
    let program = parse_program(programs::RIGHT_LINEAR_TC).unwrap().program;
    let mut group = c.benchmark_group("parallel_tc_tree");
    group.sample_size(10);
    let tree = graphs::tree(10, 4);
    for &threads in &[1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("tree_10k_edges_threads", threads),
            &tree,
            |b, edb| b.iter(|| seminaive_evaluate(&program, edb, &options(threads)).unwrap()),
        );
    }
    group.finish();
}

fn bench_pmem_control(c: &mut Criterion) {
    // Long chains, tiny deltas: every round stays below the partition threshold, so
    // higher thread counts must cost nothing.
    let program = parse_program(programs::PMEM).unwrap().program;
    let mut group = c.benchmark_group("parallel_pmem_control");
    group.sample_size(10);
    let workload = pmem_list(400, 1);
    for &threads in &[1usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("pmem_400_threads", threads),
            &workload.edb,
            |b, edb| b.iter(|| seminaive_evaluate(&program, edb, &options(threads)).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_tc_tree, bench_pmem_control);
criterion_main!(benches);
