//! E10 (§1): the headline arity argument — the recursive relation is bounded by n^k,
//! so reducing k pays off by orders of magnitude. An arity-3 right-linear recursion is
//! evaluated with and without factoring while the exit fanout grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use factorlog_bench::{measure, standard_strategies};
use factorlog_workloads::layered::arity3_edb;
use factorlog_workloads::programs;

fn bench(c: &mut Criterion) {
    let runs = standard_strategies(programs::ARITY_3_TC, "t(0, Y, Z)");
    let mut group = c.benchmark_group("e10_arity_scaling");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(800));
    group.warm_up_time(std::time::Duration::from_millis(200));

    for &fanout in &[2usize, 4, 8] {
        let edb = arity3_edb(100, fanout, 23);
        for run in &runs {
            // The unoptimized original evaluates the whole closure; skip the largest
            // fanout to keep the suite fast.
            if run.name == "original" && fanout > 4 {
                continue;
            }
            group.bench_with_input(BenchmarkId::new(run.name, fanout), &edb, |b, edb| {
                b.iter(|| measure(run, edb).answers)
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
