//! E2 (Examples 1.2/4.6): `pmem` over an EDB-encoded list — the unfactored program is
//! quadratic in the list length, the factored program linear.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use factorlog_bench::{measure, standard_strategies};
use factorlog_workloads::lists::{pmem_list, LIST_ID_BASE};
use factorlog_workloads::programs;

fn bench(c: &mut Criterion) {
    let query = format!("pmem(X, {})", LIST_ID_BASE + 1);
    let runs = standard_strategies(programs::PMEM, &query);
    let mut group = c.benchmark_group("e2_list_membership");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(800));
    group.warm_up_time(std::time::Duration::from_millis(200));

    for &n in &[100usize, 200, 400] {
        let workload = pmem_list(n, 1);
        for run in &runs {
            group.bench_with_input(BenchmarkId::new(run.name, n), &workload.edb, |b, edb| {
                b.iter(|| measure(run, edb).answers)
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
