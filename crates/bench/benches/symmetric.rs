//! E5 (Example 4.4 shape): a symmetric program (two combined rules with a shared
//! middle conjunction), original vs Magic vs factored.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use factorlog_bench::{measure, standard_strategies};
use factorlog_workloads::layered::{combined_rule_edb, LayeredParams};
use factorlog_workloads::programs;

fn bench(c: &mut Criterion) {
    let runs = standard_strategies(programs::SYMMETRIC, programs::P_QUERY);
    let mut group = c.benchmark_group("e5_symmetric");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(800));
    group.warm_up_time(std::time::Duration::from_millis(200));

    for &n in &[16usize, 32, 64] {
        let edb = combined_rule_edb(&LayeredParams::scaled(n, 11));
        for run in &runs {
            group.bench_with_input(BenchmarkId::new(run.name, n), &edb, |b, edb| {
                b.iter(|| measure(run, edb).answers)
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
