//! E8 (§6.4, Theorem 6.4): for right-linear programs the factored Magic program equals
//! the Counting program with its index fields deleted — so the indices are pure
//! overhead. This bench compares Magic, Magic+factoring and Counting.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use factorlog_bench::{counting_strategy, measure, standard_strategies};
use factorlog_workloads::layered::right_linear_edb;
use factorlog_workloads::programs;

fn bench(c: &mut Criterion) {
    let mut runs = standard_strategies(programs::RIGHT_LINEAR_TWO_RULES, programs::P_QUERY);
    runs.push(counting_strategy(
        programs::RIGHT_LINEAR_TWO_RULES,
        programs::P_QUERY,
    ));
    let mut group = c.benchmark_group("e8_counting_vs_factoring");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(800));
    group.warm_up_time(std::time::Duration::from_millis(200));

    for &n in &[100usize, 200, 400] {
        let edb = right_linear_edb(n, 3);
        for run in &runs {
            group.bench_with_input(BenchmarkId::new(run.name, n), &edb, |b, edb| {
                b.iter(|| measure(run, edb).answers)
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
