//! The compiled join pipeline under load: batch fixpoints (index probes on full
//! relations and on semi-naive deltas), the incremental engine's resume path, and the
//! paper's list-membership workload, at several scales. The same workloads back the
//! checked-in `BENCH_joins.json` baseline (see `report --json joins`); this criterion
//! group exists for quick A/B runs while touching the join internals:
//!
//! ```text
//! cargo bench -p factorlog-bench --bench joins
//! ```

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use factorlog_bench::{stream_incremental, InsertStream};
use factorlog_datalog::ast::Const;
use factorlog_datalog::eval::{seminaive_evaluate, EvalOptions};
use factorlog_datalog::parser::{parse_program, parse_query};
use factorlog_workloads::lists::pmem_list;
use factorlog_workloads::{graphs, programs};

fn bench_tc_batch(c: &mut Criterion) {
    let program = parse_program(programs::RIGHT_LINEAR_TC).unwrap().program;
    let mut group = c.benchmark_group("joins_tc_batch");
    group.sample_size(10);

    // Wide graph: >= 10k edges, shallow recursion, wide deltas (the acceptance
    // workload of the BENCH_joins.json baseline).
    let tree = graphs::tree(10, 4);
    group.bench_with_input(
        BenchmarkId::new("tree_10k_edges", 11110),
        &tree,
        |b, edb| b.iter(|| seminaive_evaluate(&program, edb, &EvalOptions::default()).unwrap()),
    );

    // Deep graph: long chains, many small delta rounds.
    for &n in &[100usize, 400] {
        let edb = graphs::chain(n);
        group.bench_with_input(BenchmarkId::new("chain", n), &edb, |b, edb| {
            b.iter(|| seminaive_evaluate(&program, edb, &EvalOptions::default()).unwrap())
        });
    }
    group.finish();
}

fn bench_sg_batch(c: &mut Criterion) {
    let program = parse_program(programs::SAME_GENERATION).unwrap().program;
    let mut group = c.benchmark_group("joins_sg_batch");
    group.sample_size(10);
    for &depth in &[6usize, 8] {
        let edb = graphs::same_generation_tree(depth);
        group.bench_with_input(BenchmarkId::new("tree_depth", depth), &edb, |b, edb| {
            b.iter(|| seminaive_evaluate(&program, edb, &EvalOptions::default()).unwrap())
        });
    }
    group.finish();
}

fn bench_list_membership(c: &mut Criterion) {
    let program = parse_program(programs::PMEM).unwrap().program;
    let mut group = c.benchmark_group("joins_list_membership");
    group.sample_size(10);
    for &n in &[100usize, 400] {
        let workload = pmem_list(n, 1);
        group.bench_with_input(BenchmarkId::new("length", n), &workload.edb, |b, edb| {
            b.iter(|| seminaive_evaluate(&program, edb, &EvalOptions::default()).unwrap())
        });
    }
    group.finish();
}

fn bench_tc_incremental(c: &mut Criterion) {
    let program = parse_program(programs::RIGHT_LINEAR_TC).unwrap().program;
    let query = parse_query(programs::TC_QUERY).unwrap();
    let mut group = c.benchmark_group("joins_tc_incremental");
    group.sample_size(10);
    for &n in &[200usize, 1000] {
        let base = graphs::chain(n);
        let stream: InsertStream = (0..20)
            .map(|i| {
                let from = (n + i) as i64;
                ("e", vec![Const::Int(from), Const::Int(from + 1)])
            })
            .collect();
        group.bench_with_input(BenchmarkId::new("chain", n), &base, |b, base| {
            b.iter(|| stream_incremental(&program, base, &stream, &query))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_tc_batch,
    bench_sg_batch,
    bench_list_membership,
    bench_tc_incremental
);
criterion_main!(benches);
