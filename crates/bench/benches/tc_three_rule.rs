//! E1 (Figs. 1–2, Examples 1.1/4.2/5.3): the three-rule transitive closure under a
//! single-source selection, comparing plain semi-naive evaluation, the Magic program,
//! and the factored + optimized program on chains and random graphs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use factorlog_bench::{measure, standard_strategies};
use factorlog_workloads::{graphs, programs};

fn bench(c: &mut Criterion) {
    let runs = standard_strategies(programs::THREE_RULE_TC, programs::TC_QUERY);
    let mut group = c.benchmark_group("e1_three_rule_tc");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(800));
    group.warm_up_time(std::time::Duration::from_millis(200));

    for &n in &[50usize, 100, 200] {
        let edb = graphs::chain(n);
        for run in &runs {
            // The unoptimized original is cubic; skip its largest size to keep the
            // suite fast while still showing the gap.
            if run.name == "original" && n > 100 {
                continue;
            }
            group.bench_with_input(
                BenchmarkId::new(format!("chain/{}", run.name), n),
                &edb,
                |b, edb| b.iter(|| measure(run, edb).answers),
            );
        }
    }
    for &n in &[100usize, 200] {
        let edb = graphs::random_graph(n, 2 * n, 42);
        for run in &runs {
            if run.name == "original" {
                continue;
            }
            group.bench_with_input(
                BenchmarkId::new(format!("random/{}", run.name), n),
                &edb,
                |b, edb| b.iter(|| measure(run, edb).answers),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
