//! E8 (baseline): same generation — the canonical recursion that cannot be factored.
//! The pipeline falls back to Magic only; this bench records the original-vs-Magic gap
//! so the factoring benchmarks can be read against a non-factorable control.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use factorlog_bench::{measure, standard_strategies};
use factorlog_workloads::{graphs, programs};

fn bench(c: &mut Criterion) {
    let runs = standard_strategies(programs::SAME_GENERATION, programs::SG_QUERY);
    let mut group = c.benchmark_group("e8_same_generation");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(800));
    group.warm_up_time(std::time::Duration::from_millis(200));

    for &depth in &[6usize, 8, 10] {
        let edb = graphs::same_generation_tree(depth);
        for run in &runs {
            group.bench_with_input(BenchmarkId::new(run.name, depth), &edb, |b, edb| {
                b.iter(|| measure(run, edb).answers)
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
