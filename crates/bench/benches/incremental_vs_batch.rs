//! Incremental maintenance vs from-scratch re-evaluation: a stream of fact inserts,
//! each followed by a query. The persistent engine materializes the model once and
//! absorbs every insert with a delta-seeded semi-naive resume; the baseline re-runs
//! the whole fixpoint after every insert. The gap widens with the model size, since
//! the resume touches only consequences of the new fact.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use factorlog_bench::{stream_batch, stream_incremental, InsertStream};
use factorlog_datalog::ast::Const;
use factorlog_datalog::parser::{parse_program, parse_query};
use factorlog_workloads::{graphs, programs};

fn bench_transitive_closure(c: &mut Criterion) {
    let program = parse_program(programs::RIGHT_LINEAR_TC).unwrap().program;
    let query = parse_query(programs::TC_QUERY).unwrap();
    let mut group = c.benchmark_group("incremental_vs_batch_tc");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(800));
    group.warm_up_time(std::time::Duration::from_millis(200));

    for &n in &[50usize, 100, 200] {
        let base = graphs::chain(n);
        // Extend the chain by 15 edges, querying reachability from 0 after each.
        let stream: InsertStream = (0..15)
            .map(|i| {
                let from = (n + i) as i64;
                ("e", vec![Const::Int(from), Const::Int(from + 1)])
            })
            .collect();
        group.bench_with_input(BenchmarkId::new("incremental", n), &base, |b, base| {
            b.iter(|| stream_incremental(&program, base, &stream, &query))
        });
        group.bench_with_input(BenchmarkId::new("batch", n), &base, |b, base| {
            b.iter(|| stream_batch(&program, base, &stream, &query))
        });
    }
    group.finish();
}

fn bench_same_generation(c: &mut Criterion) {
    let program = parse_program(programs::SAME_GENERATION).unwrap().program;
    let query = parse_query(programs::SG_QUERY).unwrap();
    let mut group = c.benchmark_group("incremental_vs_batch_sg");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(800));
    group.warm_up_time(std::time::Duration::from_millis(200));

    for &depth in &[4usize, 6] {
        let base = graphs::same_generation_tree(depth);
        let leaves = 1i64 << depth;
        // New flat edges between non-adjacent leaves, one query after each.
        let stream: InsertStream = (0..10)
            .map(|i| {
                (
                    "flat",
                    vec![Const::Int(i % leaves), Const::Int((i + 3) % leaves)],
                )
            })
            .collect();
        group.bench_with_input(BenchmarkId::new("incremental", depth), &base, |b, base| {
            b.iter(|| stream_incremental(&program, base, &stream, &query))
        });
        group.bench_with_input(BenchmarkId::new("batch", depth), &base, |b, base| {
            b.iter(|| stream_batch(&program, base, &stream, &query))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_transitive_closure, bench_same_generation);
criterion_main!(benches);
