//! Static validation of programs: safety (range restriction) and arity consistency.
//!
//! The evaluators call [`check_program`] before compiling rules, so unsafe programs are
//! rejected with a diagnostic instead of failing mid-evaluation.

use std::collections::BTreeSet;
use std::fmt;

use crate::ast::{Program, Query, Rule};
use crate::fx::FxHashMap;
use crate::symbol::Symbol;

/// A single validation problem.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ValidationError {
    /// A head variable does not occur in the body (violates range restriction), so the
    /// rule could derive infinitely many facts.
    UnsafeRule {
        /// Display form of the offending rule.
        rule: String,
        /// The unsafe variable.
        variable: String,
    },
    /// A fact (rule with empty body) has a non-ground head.
    NonGroundFact {
        /// Display form of the offending fact.
        rule: String,
    },
    /// A predicate is used with two different arities.
    ArityMismatch {
        /// The predicate.
        predicate: String,
        /// First arity observed.
        first: usize,
        /// Conflicting arity observed.
        second: usize,
    },
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::UnsafeRule { rule, variable } => {
                write!(
                    f,
                    "unsafe rule `{rule}`: head variable {variable} does not occur in the body"
                )
            }
            ValidationError::NonGroundFact { rule } => {
                write!(f, "fact `{rule}` has variables in its head")
            }
            ValidationError::ArityMismatch {
                predicate,
                first,
                second,
            } => write!(
                f,
                "predicate {predicate} is used with arity {first} and with arity {second}"
            ),
        }
    }
}

impl std::error::Error for ValidationError {}

/// Validate a single rule for safety.
pub fn check_rule(rule: &Rule) -> Result<(), ValidationError> {
    if rule.is_fact() {
        if !rule.head.is_ground() {
            return Err(ValidationError::NonGroundFact {
                rule: rule.to_string(),
            });
        }
        return Ok(());
    }
    let body_vars: BTreeSet<Symbol> = rule.body.iter().flat_map(|a| a.variables()).collect();
    for v in rule.head.variables() {
        if !body_vars.contains(&v) {
            return Err(ValidationError::UnsafeRule {
                rule: rule.to_string(),
                variable: v.as_str().to_string(),
            });
        }
    }
    Ok(())
}

/// Validate a whole program (all rules safe, arities consistent). Returns every
/// problem found so callers can report them all at once.
pub fn check_program(program: &Program) -> Result<(), Vec<ValidationError>> {
    let mut errors = Vec::new();
    for rule in &program.rules {
        if let Err(e) = check_rule(rule) {
            errors.push(e);
        }
    }
    let mut arities: FxHashMap<Symbol, usize> = FxHashMap::default();
    for rule in &program.rules {
        for atom in std::iter::once(&rule.head).chain(rule.body.iter()) {
            match arities.get(&atom.predicate) {
                None => {
                    arities.insert(atom.predicate, atom.arity());
                }
                Some(&a) if a != atom.arity() => {
                    let err = ValidationError::ArityMismatch {
                        predicate: atom.predicate.as_str().to_string(),
                        first: a,
                        second: atom.arity(),
                    };
                    if !errors.contains(&err) {
                        errors.push(err);
                    }
                }
                _ => {}
            }
        }
    }
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

/// Validate a query against a program: the query predicate must be used with a
/// consistent arity.
pub fn check_query(program: &Program, query: &Query) -> Result<(), ValidationError> {
    if let Some(arity) = program.arity_of(query.atom.predicate) {
        if arity != query.atom.arity() {
            return Err(ValidationError::ArityMismatch {
                predicate: query.atom.predicate.as_str().to_string(),
                first: arity,
                second: query.atom.arity(),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Atom, Term};
    use crate::parser::{parse_program, parse_query, parse_rule};

    #[test]
    fn safe_rules_pass() {
        let rule = parse_rule("t(X, Y) :- e(X, W), t(W, Y).").unwrap();
        assert!(check_rule(&rule).is_ok());
        let fact = parse_rule("e(1, 2).").unwrap();
        assert!(check_rule(&fact).is_ok());
    }

    #[test]
    fn unsafe_rule_is_rejected() {
        let rule = parse_rule("t(X, Y) :- e(X, W).").unwrap();
        let err = check_rule(&rule).unwrap_err();
        match err {
            ValidationError::UnsafeRule { variable, .. } => assert_eq!(variable, "Y"),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn non_ground_fact_is_rejected() {
        let rule = Rule::fact(Atom::new("p", vec![Term::var("X")]));
        assert!(matches!(
            check_rule(&rule),
            Err(ValidationError::NonGroundFact { .. })
        ));
    }

    #[test]
    fn arity_mismatch_is_detected() {
        let program = parse_program("p(X) :- e(X, Y).\nq(X) :- e(X).")
            .unwrap()
            .program;
        let errors = check_program(&program).unwrap_err();
        assert!(errors.iter().any(
            |e| matches!(e, ValidationError::ArityMismatch { predicate, .. } if predicate == "e")
        ));
    }

    #[test]
    fn whole_program_collects_multiple_errors() {
        let program = parse_program("p(X, Y) :- e(X).\nq(Z) :- f(Z, Z), f(Z).")
            .unwrap()
            .program;
        let errors = check_program(&program).unwrap_err();
        assert!(errors.len() >= 2);
    }

    #[test]
    fn valid_program_passes() {
        let program = parse_program("t(X, Y) :- e(X, Y).\n t(X, Y) :- e(X, W), t(W, Y).\n")
            .unwrap()
            .program;
        assert!(check_program(&program).is_ok());
    }

    #[test]
    fn query_arity_checked() {
        let program = parse_program("t(X, Y) :- e(X, Y).").unwrap().program;
        let ok = parse_query("t(5, Y)").unwrap();
        assert!(check_query(&program, &ok).is_ok());
        let bad = parse_query("t(5)").unwrap();
        assert!(check_query(&program, &bad).is_err());
        // Unknown predicates are allowed (checked elsewhere).
        let unknown = parse_query("zzz(5)").unwrap();
        assert!(check_query(&program, &unknown).is_ok());
    }

    #[test]
    fn error_display_is_informative() {
        let rule = parse_rule("t(X, Y) :- e(X, W).").unwrap();
        let err = check_rule(&rule).unwrap_err();
        let text = format!("{err}");
        assert!(text.contains("unsafe rule"));
        assert!(text.contains('Y'));
    }
}
