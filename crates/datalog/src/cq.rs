//! Conjunctive queries and the Chandra–Merlin containment test.
//!
//! The factorability conditions of the paper (Definitions 4.6–4.8) are phrased as
//! containments between conjunctive queries built from rule bodies ("the conjunction
//! *free-exit* must be contained in the conjunction *free*", etc.). Containment of
//! conjunctive queries is decided by the existence of a containment mapping
//! (homomorphism) [Chandra & Merlin 1977]; the test is NP-complete in the size of the
//! queries, which the paper notes is acceptable because queries are rule bodies (small),
//! not data.
//!
//! The special EDB predicate `equal/2` introduced by standard-form conversion (§4.1) is
//! handled by [`ConjunctiveQuery::normalize_equalities`], which applies the equalities
//! as a substitution before the homomorphism search.

use std::fmt;

use crate::ast::{Atom, Substitution, Term};
use crate::fx::FxHashMap;
use crate::symbol::Symbol;

/// The interned name of the special equality predicate used by standard-form
/// conversion.
pub fn equal_symbol() -> Symbol {
    Symbol::intern("equal")
}

/// A conjunctive query: a head (tuple of distinguished terms) defined by a conjunction
/// of atoms. A query with an empty body and only variables in the head denotes the
/// universal relation of that arity (every tuple satisfies it), matching the paper's
/// usage for empty `right`/`left` conjunctions.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ConjunctiveQuery {
    /// The distinguished (head) terms.
    pub head: Vec<Term>,
    /// The body atoms.
    pub body: Vec<Atom>,
    /// Set when equality normalization discovered a contradiction (e.g. `equal(1, 2)`);
    /// an unsatisfiable query is contained in every query.
    pub unsatisfiable: bool,
}

impl ConjunctiveQuery {
    /// Construct a conjunctive query.
    pub fn new(head: Vec<Term>, body: Vec<Atom>) -> ConjunctiveQuery {
        ConjunctiveQuery {
            head,
            body,
            unsatisfiable: false,
        }
    }

    /// The arity of the query result.
    pub fn arity(&self) -> usize {
        self.head.len()
    }

    /// Is the body empty (the universal relation, if satisfiable)?
    pub fn is_universal(&self) -> bool {
        !self.unsatisfiable && self.body.is_empty()
    }

    /// Eliminate `equal/2` atoms by substitution. `equal(X, t)` binds `X := t`
    /// throughout the query; `equal(c, c)` is dropped; `equal(c1, c2)` with distinct
    /// constants marks the query unsatisfiable.
    pub fn normalize_equalities(&mut self) {
        let equal = equal_symbol();
        while let Some(pos) = self
            .body
            .iter()
            .position(|a| a.predicate == equal && a.arity() == 2)
        {
            let atom = self.body.remove(pos);
            let (a, b) = (atom.terms[0], atom.terms[1]);
            match (a, b) {
                (Term::Const(c1), Term::Const(c2)) => {
                    if c1 != c2 {
                        self.unsatisfiable = true;
                        return;
                    }
                }
                (Term::Var(v), t) | (t, Term::Var(v)) => {
                    let mut subst = Substitution::new();
                    subst.insert_term(v, t);
                    self.head = self.head.iter().map(|h| subst.apply_term(*h)).collect();
                    self.body = self.body.iter().map(|a| a.apply(&subst)).collect();
                }
            }
        }
    }

    /// Is `self` contained in `other` (`self ⊆ other`)? Both queries must have the
    /// same arity; otherwise the answer is `false`.
    ///
    /// `self ⊆ other` holds iff there is a containment mapping from the variables of
    /// `other` to the terms of `self` that (1) maps `other`'s head onto `self`'s head
    /// position-wise, and (2) maps every body atom of `other` onto some body atom of
    /// `self`.
    pub fn is_contained_in(&self, other: &ConjunctiveQuery) -> bool {
        if self.unsatisfiable {
            return true;
        }
        if other.unsatisfiable {
            return false;
        }
        if self.arity() != other.arity() {
            return false;
        }
        // Freeze `self`: treat its variables as (distinct) constants. The mapping then
        // sends `other`'s variables to frozen terms of `self`.
        let mut mapping: FxHashMap<Symbol, Term> = FxHashMap::default();
        // Head condition: other.head[i] must map to self.head[i].
        for (ot, st) in other.head.iter().zip(self.head.iter()) {
            match ot {
                Term::Const(_) => {
                    if ot != st {
                        return false;
                    }
                }
                Term::Var(v) => match mapping.get(v) {
                    Some(existing) => {
                        if existing != st {
                            return false;
                        }
                    }
                    None => {
                        mapping.insert(*v, *st);
                    }
                },
            }
        }
        // Body condition: every atom of `other` maps into some atom of `self`.
        search(&other.body, 0, &self.body, &mut mapping)
    }

    /// Are the two queries equivalent (mutual containment)?
    pub fn equivalent(&self, other: &ConjunctiveQuery) -> bool {
        self.is_contained_in(other) && other.is_contained_in(self)
    }

    /// The set of variables appearing in the query (head or body), in first-occurrence
    /// order.
    pub fn variables(&self) -> Vec<Symbol> {
        let mut seen = std::collections::BTreeSet::new();
        let mut out = Vec::new();
        let head_vars = self.head.iter().filter_map(Term::as_var);
        let body_vars = self.body.iter().flat_map(Atom::variables);
        for v in head_vars.chain(body_vars) {
            if seen.insert(v) {
                out.push(v);
            }
        }
        out
    }

    /// Do `self` and `other` share any variables? The paper's rule classes require the
    /// `left`/`center`/`right`/... conjunctions to be variable-disjoint.
    pub fn shares_variables_with(&self, other: &ConjunctiveQuery) -> bool {
        let mine: std::collections::BTreeSet<Symbol> = self.variables().into_iter().collect();
        other.variables().iter().any(|v| mine.contains(v))
    }
}

/// Backtracking search for a mapping of `atoms[from..]` (of the containing query) into
/// `targets` (the frozen body of the contained query), extending `mapping`.
fn search(
    atoms: &[Atom],
    from: usize,
    targets: &[Atom],
    mapping: &mut FxHashMap<Symbol, Term>,
) -> bool {
    if from == atoms.len() {
        return true;
    }
    let atom = &atoms[from];
    for target in targets {
        if target.predicate != atom.predicate || target.arity() != atom.arity() {
            continue;
        }
        // Try to extend the mapping so that atom ↦ target.
        let mut added: Vec<Symbol> = Vec::new();
        let mut ok = true;
        for (at, tt) in atom.terms.iter().zip(target.terms.iter()) {
            match at {
                Term::Const(_) => {
                    if at != tt {
                        ok = false;
                        break;
                    }
                }
                Term::Var(v) => match mapping.get(v) {
                    Some(existing) => {
                        if existing != tt {
                            ok = false;
                            break;
                        }
                    }
                    None => {
                        mapping.insert(*v, *tt);
                        added.push(*v);
                    }
                },
            }
        }
        if ok && search(atoms, from + 1, targets, mapping) {
            return true;
        }
        for v in added {
            mapping.remove(&v);
        }
    }
    false
}

impl fmt::Display for ConjunctiveQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, t) in self.head.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ") :- ")?;
        if self.unsatisfiable {
            return write!(f, "false");
        }
        if self.body.is_empty() {
            return write!(f, "true");
        }
        for (i, a) in self.body.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_atom;

    fn cq(head: &[&str], body: &[&str]) -> ConjunctiveQuery {
        let head_terms = head
            .iter()
            .map(|t| {
                if let Ok(i) = t.parse::<i64>() {
                    Term::int(i)
                } else if t.chars().next().unwrap().is_uppercase() {
                    Term::var(t)
                } else {
                    Term::sym(t)
                }
            })
            .collect();
        let body_atoms = body.iter().map(|a| parse_atom(a).unwrap()).collect();
        ConjunctiveQuery::new(head_terms, body_atoms)
    }

    #[test]
    fn identical_queries_are_equivalent() {
        let q1 = cq(&["X", "Y"], &["e(X, Z)", "e(Z, Y)"]);
        let q2 = cq(&["A", "B"], &["e(A, C)", "e(C, B)"]);
        assert!(q1.equivalent(&q2));
    }

    #[test]
    fn path_of_length_two_is_contained_in_path_of_length_one_projection() {
        // Q1(X,Y) :- e(X,Z), e(Z,Y)   is contained in   Q2(X,Y) :- e(X,Z'), e(Z'',Y)?
        // Q2 only requires an outgoing edge from X and an incoming edge to Y, which Q1
        // guarantees, so Q1 ⊆ Q2 but not conversely.
        let q1 = cq(&["X", "Y"], &["e(X, Z)", "e(Z, Y)"]);
        let q2 = cq(&["X", "Y"], &["e(X, U)", "e(V, Y)"]);
        assert!(q1.is_contained_in(&q2));
        assert!(!q2.is_contained_in(&q1));
        assert!(!q1.equivalent(&q2));
    }

    #[test]
    fn universal_query_contains_everything_of_same_arity() {
        let universal = cq(&["X"], &[]);
        let specific = cq(&["X"], &["p(X)", "q(X, Y)"]);
        assert!(specific.is_contained_in(&universal));
        assert!(!universal.is_contained_in(&specific));
        assert!(universal.is_universal());
    }

    #[test]
    fn arity_mismatch_is_never_contained() {
        let q1 = cq(&["X"], &["p(X)"]);
        let q2 = cq(&["X", "Y"], &["p(X)"]);
        assert!(!q1.is_contained_in(&q2));
        assert!(!q2.is_contained_in(&q1));
    }

    #[test]
    fn constants_must_match() {
        let q5 = cq(&["Y"], &["e(5, Y)"]);
        let qx = cq(&["Y"], &["e(X, Y)"]);
        // A query selecting edges from 5 is contained in the query selecting all edges.
        assert!(q5.is_contained_in(&qx));
        assert!(!qx.is_contained_in(&q5));
    }

    #[test]
    fn constant_in_head_checked() {
        let q1 = cq(&["5"], &["p(X)"]);
        let q2 = cq(&["Y"], &["p(X)"]);
        assert!(q1.is_contained_in(&q2));
        assert!(!q2.is_contained_in(&q1));
    }

    #[test]
    fn repeated_variables_restrict_containment() {
        // Q1(X) :- e(X, X) is contained in Q2(X) :- e(X, Y), but not conversely.
        let q1 = cq(&["X"], &["e(X, X)"]);
        let q2 = cq(&["X"], &["e(X, Y)"]);
        assert!(q1.is_contained_in(&q2));
        assert!(!q2.is_contained_in(&q1));
    }

    #[test]
    fn classic_redundant_atom_equivalence() {
        // Q(X,Y) :- e(X,Y), e(X,Z)  ≡  Q(X,Y) :- e(X,Y)   (Z is existential and can fold onto Y).
        let q1 = cq(&["X", "Y"], &["e(X, Y)", "e(X, Z)"]);
        let q2 = cq(&["X", "Y"], &["e(X, Y)"]);
        assert!(q1.equivalent(&q2));
    }

    #[test]
    fn equality_normalization_substitutes() {
        let mut q = cq(&["X", "Y"], &["equal(X, 5)", "e(X, Y)"]);
        q.normalize_equalities();
        assert!(!q.unsatisfiable);
        assert_eq!(q.head[0], Term::int(5));
        assert_eq!(format!("{}", q.body[0]), "e(5, Y)");

        let expected = cq(&["5", "Y"], &["e(5, Y)"]);
        assert!(q.equivalent(&expected));
    }

    #[test]
    fn contradictory_equality_makes_query_unsatisfiable() {
        let mut q = cq(&["X"], &["equal(1, 2)", "p(X)"]);
        q.normalize_equalities();
        assert!(q.unsatisfiable);
        // Unsatisfiable queries are contained in everything of any arity check aside.
        let other = cq(&["X"], &["q(X)"]);
        assert!(q.is_contained_in(&other));
        assert!(!other.is_contained_in(&q));
    }

    #[test]
    fn chained_equalities_resolve() {
        let mut q = cq(&["X"], &["equal(X, Y)", "equal(Y, 3)", "p(X)"]);
        q.normalize_equalities();
        assert_eq!(q.head[0], Term::int(3));
        assert_eq!(format!("{}", q.body[0]), "p(3)");
    }

    #[test]
    fn trivial_equal_constants_are_dropped() {
        let mut q = cq(&["X"], &["equal(7, 7)", "p(X)"]);
        q.normalize_equalities();
        assert!(!q.unsatisfiable);
        assert_eq!(q.body.len(), 1);
    }

    #[test]
    fn shares_variables_with_detects_overlap() {
        let q1 = cq(&["X"], &["p(X, Z)"]);
        let q2 = cq(&["Y"], &["q(Y, Z)"]);
        let q3 = cq(&["Y"], &["q(Y, W)"]);
        assert!(q1.shares_variables_with(&q2));
        assert!(!q1.shares_variables_with(&q3));
    }

    #[test]
    fn variables_in_first_occurrence_order() {
        let q = cq(&["B", "A"], &["p(A, C)", "q(B)"]);
        let names: Vec<&str> = q.variables().iter().map(|v| v.as_str()).collect();
        assert_eq!(names, vec!["B", "A", "C"]);
    }

    #[test]
    fn display_formats_query() {
        let q = cq(&["X"], &["p(X, Y)"]);
        assert_eq!(format!("{q}"), "(X) :- p(X, Y)");
        let u = cq(&["X"], &[]);
        assert_eq!(format!("{u}"), "(X) :- true");
        let mut bad = cq(&["X"], &["equal(1, 2)"]);
        bad.normalize_equalities();
        assert_eq!(format!("{bad}"), "(X) :- false");
    }

    #[test]
    fn free_exit_contained_in_free_example() {
        // The paper's condition from Example 4.3: free_exit(Y) :- e(X, Y) must be
        // contained in free(Y) :- r1(Y). With r1 absent from free_exit this fails;
        // with free the universal query it holds.
        let free_exit = cq(&["Y"], &["e(X, Y)"]);
        let free_restrictive = cq(&["Y"], &["r1(Y)"]);
        let free_universal = cq(&["Y"], &[]);
        assert!(!free_exit.is_contained_in(&free_restrictive));
        assert!(free_exit.is_contained_in(&free_universal));
    }
}
