//! In-memory relation (set of same-arity tuples) with duplicate elimination and lazily
//! built secondary hash indexes.
//!
//! Tuples are stored row-major in a single flat `Vec<Const>`; a hash-bucket table keyed
//! by tuple hash provides O(1) duplicate detection (verified against the flat store, so
//! hash collisions are handled correctly). Secondary indexes map the values of a column
//! subset to the row ids having those values; they are built on first use and maintained
//! incrementally on insertion, so semi-naive iterations reuse them.

use crate::ast::Const;
use crate::fx::{fx_hash_one, FxHashMap};

/// A row identifier within one [`Relation`].
pub type RowId = u32;

/// A set of tuples of fixed arity.
#[derive(Clone, Debug, Default)]
pub struct Relation {
    arity: usize,
    flat: Vec<Const>,
    /// tuple-hash → row ids with that hash (usually exactly one).
    dedup: FxHashMap<u64, Vec<RowId>>,
    /// Secondary indexes, keyed by the (sorted) column subset they cover.
    indexes: Vec<ColumnIndex>,
}

#[derive(Clone, Debug)]
struct ColumnIndex {
    columns: Vec<usize>,
    map: FxHashMap<Box<[Const]>, Vec<RowId>>,
}

impl Relation {
    /// Create an empty relation of the given arity.
    pub fn new(arity: usize) -> Relation {
        Relation {
            arity,
            flat: Vec::new(),
            dedup: FxHashMap::default(),
            indexes: Vec::new(),
        }
    }

    /// The arity of the relation.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of (distinct) tuples.
    pub fn len(&self) -> usize {
        if self.arity == 0 {
            // A zero-arity relation holds at most the empty tuple; represent presence
            // by a single marker row.
            return usize::from(!self.dedup.is_empty());
        }
        self.flat.len() / self.arity
    }

    /// Is the relation empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The tuple with the given row id.
    pub fn row(&self, id: RowId) -> &[Const] {
        let start = id as usize * self.arity;
        &self.flat[start..start + self.arity]
    }

    /// Iterate over all tuples in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &[Const]> + '_ {
        RelationIter {
            relation: self,
            next: 0,
            len: self.len() as RowId,
        }
    }

    /// A watermark capturing the current size of the relation. Tuples inserted after
    /// the watermark was taken can be iterated with [`Relation::iter_from`] — the
    /// delta-extraction primitive used by the incremental engine: take a watermark,
    /// insert, then read back exactly the new tuples. Valid as long as the relation is
    /// not [`Relation::clear`]ed.
    pub fn watermark(&self) -> RowId {
        self.len() as RowId
    }

    /// Iterate over the tuples inserted after `mark` was taken (in insertion order).
    /// Row ids are stable under insertion, so this is exactly the delta since the
    /// watermark.
    pub fn iter_from(&self, mark: RowId) -> impl Iterator<Item = &[Const]> + '_ {
        let len = self.len() as RowId;
        RelationIter {
            relation: self,
            next: mark.min(len),
            len,
        }
    }

    /// The tuples inserted after `mark`, materialized as a new relation of the same
    /// arity (convenience for seeding incremental evaluation).
    pub fn delta_since(&self, mark: RowId) -> Relation {
        let mut delta = Relation::new(self.arity);
        for tuple in self.iter_from(mark) {
            delta.insert(tuple);
        }
        delta
    }

    /// Does the relation contain `tuple`?
    pub fn contains(&self, tuple: &[Const]) -> bool {
        debug_assert_eq!(tuple.len(), self.arity);
        let hash = fx_hash_one(&tuple);
        match self.dedup.get(&hash) {
            None => false,
            Some(rows) => rows.iter().any(|&r| self.row(r) == tuple),
        }
    }

    /// Insert a tuple; returns `true` if it was new.
    pub fn insert(&mut self, tuple: &[Const]) -> bool {
        assert_eq!(
            tuple.len(),
            self.arity,
            "tuple arity {} does not match relation arity {}",
            tuple.len(),
            self.arity
        );
        let hash = fx_hash_one(&tuple);
        if let Some(rows) = self.dedup.get(&hash) {
            if rows.iter().any(|&r| self.row(r) == tuple) {
                return false;
            }
        }
        let id = self.len() as RowId;
        self.flat.extend_from_slice(tuple);
        self.dedup.entry(hash).or_default().push(id);
        for index in &mut self.indexes {
            let key: Box<[Const]> = index.columns.iter().map(|&c| tuple[c]).collect();
            index.map.entry(key).or_default().push(id);
        }
        true
    }

    /// Insert every tuple of `other` (which must have the same arity); returns the
    /// number of tuples that were new.
    pub fn merge_from(&mut self, other: &Relation) -> usize {
        assert_eq!(self.arity, other.arity);
        let mut added = 0;
        for tuple in other.iter() {
            if self.insert(tuple) {
                added += 1;
            }
        }
        added
    }

    /// Remove all tuples (keeps index definitions, drops their contents).
    pub fn clear(&mut self) {
        self.flat.clear();
        self.dedup.clear();
        for index in &mut self.indexes {
            index.map.clear();
        }
    }

    /// Ensure a secondary index exists on the given column subset. Columns must be
    /// valid positions; the set is deduplicated and sorted internally. Building the
    /// index is O(rows); subsequent inserts maintain it.
    pub fn ensure_index(&mut self, columns: &[usize]) {
        let mut cols: Vec<usize> = columns.to_vec();
        cols.sort_unstable();
        cols.dedup();
        if cols.is_empty() || cols.len() >= self.arity {
            // Full-tuple or empty "indexes" are not useful: full scans and the dedup
            // table already cover these cases.
            return;
        }
        assert!(
            cols.iter().all(|&c| c < self.arity),
            "index column out of range for arity {}",
            self.arity
        );
        if self.indexes.iter().any(|i| i.columns == cols) {
            return;
        }
        let mut map: FxHashMap<Box<[Const]>, Vec<RowId>> = FxHashMap::default();
        for id in 0..self.len() as RowId {
            let row = {
                let start = id as usize * self.arity;
                &self.flat[start..start + self.arity]
            };
            let key: Box<[Const]> = cols.iter().map(|&c| row[c]).collect();
            map.entry(key).or_default().push(id);
        }
        self.indexes.push(ColumnIndex { columns: cols, map });
    }

    /// The row ids whose values at `columns` (sorted, deduplicated) equal `key`.
    /// Requires [`Relation::ensure_index`] to have been called for `columns`; returns
    /// `None` if no such index exists.
    pub fn probe<'a>(&'a self, columns: &[usize], key: &[Const]) -> Option<&'a [RowId]> {
        let index = self.indexes.iter().find(|i| i.columns == columns)?;
        Some(index.map.get(key).map(Vec::as_slice).unwrap_or(&[]))
    }

    /// Select all rows matching a pattern of optional constants (one entry per column;
    /// `None` means "any value"). Uses an index if one covering exactly the bound
    /// columns exists, otherwise scans. Results are returned as row ids.
    pub fn select(&self, pattern: &[Option<Const>], out: &mut Vec<RowId>) {
        debug_assert_eq!(pattern.len(), self.arity);
        out.clear();
        let bound: Vec<usize> = pattern
            .iter()
            .enumerate()
            .filter_map(|(i, p)| p.is_some().then_some(i))
            .collect();
        if bound.is_empty() {
            out.extend(0..self.len() as RowId);
            return;
        }
        if bound.len() == self.arity {
            // Fully bound: membership test.
            let tuple: Vec<Const> = pattern.iter().map(|p| p.unwrap()).collect();
            if self.contains(&tuple) {
                // Find its id (rare path, used by tests and provenance).
                let hash = fx_hash_one(&tuple.as_slice());
                if let Some(rows) = self.dedup.get(&hash) {
                    for &r in rows {
                        if self.row(r) == tuple.as_slice() {
                            out.push(r);
                            return;
                        }
                    }
                }
            }
            return;
        }
        if let Some(index) = self.indexes.iter().find(|i| i.columns == bound) {
            let key: Box<[Const]> = bound.iter().map(|&c| pattern[c].unwrap()).collect();
            if let Some(rows) = index.map.get(&key) {
                out.extend_from_slice(rows);
            }
            return;
        }
        // Fallback: scan.
        for id in 0..self.len() as RowId {
            let row = self.row(id);
            if bound.iter().all(|&c| pattern[c] == Some(row[c])) {
                out.push(id);
            }
        }
    }

    /// All tuples, cloned into owned vectors (test/diagnostic convenience).
    pub fn to_vec(&self) -> Vec<Vec<Const>> {
        self.iter().map(|r| r.to_vec()).collect()
    }

    /// Sorted tuple list (test convenience, for deterministic comparison).
    pub fn to_sorted_vec(&self) -> Vec<Vec<Const>> {
        let mut v = self.to_vec();
        v.sort();
        v
    }
}

struct RelationIter<'a> {
    relation: &'a Relation,
    next: RowId,
    len: RowId,
}

impl<'a> Iterator for RelationIter<'a> {
    type Item = &'a [Const];

    fn next(&mut self) -> Option<Self::Item> {
        if self.next >= self.len {
            return None;
        }
        let row = self.relation.row(self.next);
        self.next += 1;
        Some(row)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = (self.len - self.next) as usize;
        (remaining, Some(remaining))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(i: i64) -> Const {
        Const::Int(i)
    }

    #[test]
    fn insert_and_dedup() {
        let mut r = Relation::new(2);
        assert!(r.insert(&[c(1), c(2)]));
        assert!(r.insert(&[c(2), c(3)]));
        assert!(!r.insert(&[c(1), c(2)]), "duplicate must be rejected");
        assert_eq!(r.len(), 2);
        assert!(r.contains(&[c(1), c(2)]));
        assert!(!r.contains(&[c(3), c(1)]));
    }

    #[test]
    fn iteration_preserves_insertion_order() {
        let mut r = Relation::new(1);
        for i in 0..10 {
            r.insert(&[c(i)]);
        }
        let values: Vec<i64> = r.iter().map(|row| row[0].as_int().unwrap()).collect();
        assert_eq!(values, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn select_with_and_without_index() {
        let mut r = Relation::new(2);
        for i in 0..100i64 {
            r.insert(&[c(i % 10), c(i)]);
        }
        // Unindexed scan.
        let mut out = Vec::new();
        r.select(&[Some(c(3)), None], &mut out);
        assert_eq!(out.len(), 10);
        assert!(out.iter().all(|&id| r.row(id)[0] == c(3)));

        // Indexed probe gives the same answer.
        r.ensure_index(&[0]);
        let mut out2 = Vec::new();
        r.select(&[Some(c(3)), None], &mut out2);
        let mut a = out.clone();
        let mut b = out2.clone();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);

        // Probe API directly.
        let rows = r.probe(&[0], &[c(7)]).unwrap();
        assert_eq!(rows.len(), 10);
        assert!(r.probe(&[1], &[c(7)]).is_none(), "no index on column 1");
    }

    #[test]
    fn index_is_maintained_across_inserts() {
        let mut r = Relation::new(2);
        r.insert(&[c(1), c(10)]);
        r.ensure_index(&[0]);
        r.insert(&[c(1), c(11)]);
        r.insert(&[c(2), c(20)]);
        assert_eq!(r.probe(&[0], &[c(1)]).unwrap().len(), 2);
        assert_eq!(r.probe(&[0], &[c(2)]).unwrap().len(), 1);
        assert_eq!(r.probe(&[0], &[c(9)]).unwrap().len(), 0);
    }

    #[test]
    fn fully_bound_select_is_membership() {
        let mut r = Relation::new(2);
        r.insert(&[c(1), c(2)]);
        let mut out = Vec::new();
        r.select(&[Some(c(1)), Some(c(2))], &mut out);
        assert_eq!(out.len(), 1);
        r.select(&[Some(c(2)), Some(c(1))], &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn empty_pattern_selects_everything() {
        let mut r = Relation::new(3);
        r.insert(&[c(1), c(2), c(3)]);
        r.insert(&[c(4), c(5), c(6)]);
        let mut out = Vec::new();
        r.select(&[None, None, None], &mut out);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn merge_from_counts_new_tuples() {
        let mut a = Relation::new(1);
        a.insert(&[c(1)]);
        a.insert(&[c(2)]);
        let mut b = Relation::new(1);
        b.insert(&[c(2)]);
        b.insert(&[c(3)]);
        assert_eq!(a.merge_from(&b), 1);
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn clear_preserves_index_definitions() {
        let mut r = Relation::new(2);
        r.insert(&[c(1), c(2)]);
        r.ensure_index(&[0]);
        r.clear();
        assert!(r.is_empty());
        r.insert(&[c(5), c(6)]);
        assert_eq!(r.probe(&[0], &[c(5)]).unwrap().len(), 1);
    }

    #[test]
    fn watermark_tracks_deltas() {
        let mut r = Relation::new(2);
        r.insert(&[c(1), c(2)]);
        let mark = r.watermark();
        assert!(r.iter_from(mark).next().is_none());
        r.insert(&[c(2), c(3)]);
        r.insert(&[c(1), c(2)]); // duplicate: not part of the delta
        r.insert(&[c(3), c(4)]);
        let delta: Vec<Vec<Const>> = r.iter_from(mark).map(|t| t.to_vec()).collect();
        assert_eq!(delta, vec![vec![c(2), c(3)], vec![c(3), c(4)]]);
        let rel = r.delta_since(mark);
        assert_eq!(rel.arity(), 2);
        assert_eq!(
            rel.to_sorted_vec(),
            vec![vec![c(2), c(3)], vec![c(3), c(4)]]
        );
        // A stale mark beyond the length yields an empty delta rather than panicking.
        assert!(r.iter_from(100).next().is_none());
    }

    #[test]
    fn zero_arity_relation() {
        let mut r = Relation::new(0);
        assert!(r.is_empty());
        assert!(r.insert(&[]));
        assert!(!r.insert(&[]));
        assert_eq!(r.len(), 1);
        assert!(r.contains(&[]));
    }

    #[test]
    fn to_sorted_vec_is_deterministic() {
        let mut r = Relation::new(2);
        r.insert(&[c(3), c(1)]);
        r.insert(&[c(1), c(2)]);
        assert_eq!(r.to_sorted_vec(), vec![vec![c(1), c(2)], vec![c(3), c(1)]]);
    }

    #[test]
    #[should_panic(expected = "does not match relation arity")]
    fn arity_mismatch_panics() {
        let mut r = Relation::new(2);
        r.insert(&[c(1)]);
    }
}
