//! In-memory relation (set of same-arity tuples) with duplicate elimination and lazily
//! built secondary hash indexes.
//!
//! Tuples are stored row-major in a single flat `Vec<Const>`; a hash-bucket table keyed
//! by tuple hash provides O(1) duplicate detection (verified against the flat store, so
//! hash collisions are handled correctly). Secondary indexes use the same trick: they
//! map the *hash* of a column-subset key to the row ids whose key columns produce that
//! hash, so neither insertion nor probing ever materializes a boxed key tuple. Callers
//! that need exact row sets verify candidates against the flat store ([`Relation::probe`]
//! does this; the join pipeline folds the verification into its binding loop, which
//! compares every row against the pattern anyway). Indexes are built on first use and
//! maintained incrementally on insertion, so semi-naive iterations reuse them.
//!
//! [`Relation::ensure_index`] returns a stable [`IndexId`] handle; resolving a column
//! subset to its handle once (at plan-resolution time) lets the evaluator probe with
//! [`Relation::probe_candidates`] without ever searching the index list again.

use crate::ast::Const;
use crate::fx::{fx_hash_one, FxHashMap, FxHasher};
use std::hash::Hasher as _;

/// A row identifier within one [`Relation`].
pub type RowId = u32;

/// A stable handle for a secondary index of one [`Relation`].
///
/// Handles are positions in the relation's index list; they stay valid across
/// insertions and [`Relation::clear`] (which keeps index definitions). They are only
/// meaningful for the relation that returned them.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IndexId(u32);

/// A set of tuples of fixed arity.
#[derive(Clone, Debug, Default)]
pub struct Relation {
    arity: usize,
    flat: Vec<Const>,
    /// tuple-hash → row ids with that hash (usually exactly one).
    dedup: FxHashMap<u64, Vec<RowId>>,
    /// Secondary indexes, keyed by the (sorted) column subset they cover.
    indexes: Vec<ColumnIndex>,
    /// Per-row support counts, when counting is enabled (see
    /// [`Relation::enable_counts`]). `None` = plain set semantics.
    counts: Option<Vec<u32>>,
}

#[derive(Clone, Debug)]
struct ColumnIndex {
    columns: Vec<usize>,
    /// key-hash → candidate row ids (collisions possible; callers verify).
    map: FxHashMap<u64, Vec<RowId>>,
}

/// THE index-key hashing scheme: element-wise over the key constants, in index column
/// order, no length prefix. Every producer and consumer of index key hashes (index
/// maintenance, probes, the join pipeline's inline probe hashing) must go through
/// this builder — a divergent copy would silently desynchronize probing from
/// maintenance and drop answers without a panic.
#[derive(Default)]
pub struct KeyHasher(FxHasher);

impl KeyHasher {
    /// Start hashing a key.
    pub fn new() -> KeyHasher {
        KeyHasher::default()
    }

    /// Feed the next key value (values must arrive in index column order).
    ///
    /// Integer constants — the overwhelmingly common case for the generated graph
    /// workloads — take a raw-u64 fast path: one hasher round for the payload instead
    /// of the derived `Hash` impl's discriminant + payload rounds. The scheme stays
    /// internally consistent because every producer and consumer goes through this
    /// builder; a raw-int hash colliding with a symbolic key's hash is harmless, since
    /// all probe candidates are collision-verified against the flat store.
    #[inline]
    pub fn push(&mut self, value: &Const) {
        match value {
            Const::Int(i) => self.0.write_u64(*i as u64),
            other => std::hash::Hash::hash(other, &mut self.0),
        }
    }

    /// The hash of the values fed so far.
    #[inline]
    pub fn finish(&self) -> u64 {
        self.0.finish()
    }
}

/// Hash a sequence of key values with the canonical scheme (see [`KeyHasher`]).
#[inline]
pub fn hash_values<'a>(values: impl IntoIterator<Item = &'a Const>) -> u64 {
    let mut hasher = KeyHasher::new();
    for value in values {
        hasher.push(value);
    }
    hasher.finish()
}

/// Hash the values of `row` at `columns` (in the given column order).
#[inline]
fn hash_columns(row: &[Const], columns: &[usize]) -> u64 {
    hash_values(columns.iter().map(|&c| &row[c]))
}

/// Hash an already-projected key (values in index column order).
#[inline]
pub fn hash_key(key: &[Const]) -> u64 {
    hash_values(key)
}

/// Which of `of` shards owns `row` when hash-partitioning a relation.
///
/// `columns` names the partition key (normally the join-key columns an index plan
/// already probes, so tuples that join together land on the same worker); `None`
/// falls back to hashing the whole row — the full-scan case, where no key is
/// distinguished. The shard function is THE partitioning scheme of the parallel
/// evaluator: both the per-worker row filters and any materialized shard views must
/// agree on it, or partitioned firings would drop or duplicate rows.
#[inline]
pub fn shard_of_row(row: &[Const], columns: Option<&[usize]>, of: usize) -> usize {
    debug_assert!(of > 0, "shard count must be positive");
    let hash = match columns {
        Some(cols) => hash_columns(row, cols),
        None => hash_values(row.iter()),
    };
    (hash % of as u64) as usize
}

impl Relation {
    /// Create an empty relation of the given arity.
    pub fn new(arity: usize) -> Relation {
        Relation {
            arity,
            flat: Vec::new(),
            dedup: FxHashMap::default(),
            indexes: Vec::new(),
            counts: None,
        }
    }

    /// The arity of the relation.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of (distinct) tuples.
    pub fn len(&self) -> usize {
        if self.arity == 0 {
            // A zero-arity relation holds at most the empty tuple; represent presence
            // by a single marker row.
            return usize::from(!self.dedup.is_empty());
        }
        self.flat.len() / self.arity
    }

    /// Is the relation empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The tuple with the given row id.
    pub fn row(&self, id: RowId) -> &[Const] {
        let start = id as usize * self.arity;
        &self.flat[start..start + self.arity]
    }

    /// Iterate over all tuples in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &[Const]> + '_ {
        RelationIter {
            relation: self,
            next: 0,
            len: self.len() as RowId,
        }
    }

    /// A watermark capturing the current size of the relation. Tuples inserted after
    /// the watermark was taken can be iterated with [`Relation::iter_from`] — the
    /// delta-extraction primitive used by the incremental engine: take a watermark,
    /// insert, then read back exactly the new tuples. Valid as long as the relation is
    /// not [`Relation::clear`]ed.
    pub fn watermark(&self) -> RowId {
        self.len() as RowId
    }

    /// Iterate over the tuples inserted after `mark` was taken (in insertion order).
    /// Row ids are stable under insertion, so this is exactly the delta since the
    /// watermark.
    pub fn iter_from(&self, mark: RowId) -> impl Iterator<Item = &[Const]> + '_ {
        let len = self.len() as RowId;
        RelationIter {
            relation: self,
            next: mark.min(len),
            len,
        }
    }

    /// The tuples inserted after `mark`, materialized as a new relation of the same
    /// arity (convenience for seeding incremental evaluation).
    pub fn delta_since(&self, mark: RowId) -> Relation {
        let mut delta = Relation::new(self.arity);
        for tuple in self.iter_from(mark) {
            delta.insert(tuple);
        }
        delta
    }

    /// Does the relation contain `tuple`?
    pub fn contains(&self, tuple: &[Const]) -> bool {
        debug_assert_eq!(tuple.len(), self.arity);
        let hash = fx_hash_one(&tuple);
        match self.dedup.get(&hash) {
            None => false,
            Some(rows) => rows.iter().any(|&r| self.row(r) == tuple),
        }
    }

    /// Insert a tuple; returns `true` if it was new.
    pub fn insert(&mut self, tuple: &[Const]) -> bool {
        assert_eq!(
            tuple.len(),
            self.arity,
            "tuple arity {} does not match relation arity {}",
            tuple.len(),
            self.arity
        );
        let hash = fx_hash_one(&tuple);
        if let Some(rows) = self.dedup.get(&hash) {
            if rows.iter().any(|&r| self.row(r) == tuple) {
                return false;
            }
        }
        let id = self.len() as RowId;
        self.flat.extend_from_slice(tuple);
        self.dedup.entry(hash).or_default().push(id);
        for index in &mut self.indexes {
            let key_hash = hash_columns(tuple, &index.columns);
            index.map.entry(key_hash).or_default().push(id);
        }
        if let Some(counts) = &mut self.counts {
            counts.push(1);
        }
        true
    }

    /// Enable per-row support counts. Existing rows are backfilled with a count of 1;
    /// from here on [`Relation::insert`] records new rows with count 1 and
    /// [`Relation::insert_counted`] bumps the count of already-present tuples instead
    /// of discarding the duplicate. Counting is the bookkeeping behind the
    /// retraction engine's re-derivation phase: the count of a staged fact is the
    /// number of (enumerated) derivations supporting it.
    pub fn enable_counts(&mut self) {
        if self.counts.is_none() {
            self.counts = Some(vec![1; self.len()]);
        }
    }

    /// Are per-row support counts enabled?
    pub fn counting(&self) -> bool {
        self.counts.is_some()
    }

    /// Insert a tuple under counting semantics: a new tuple is stored with count 1
    /// (and `true` is returned); a duplicate bumps the existing row's count instead
    /// of being dropped. Requires [`Relation::enable_counts`].
    pub fn insert_counted(&mut self, tuple: &[Const]) -> bool {
        debug_assert!(self.counting(), "insert_counted requires enabled counts");
        let hash = fx_hash_one(&tuple);
        if let Some(rows) = self.dedup.get(&hash) {
            if let Some(&id) = rows.iter().find(|&&r| self.row(r) == tuple) {
                if let Some(counts) = &mut self.counts {
                    counts[id as usize] = counts[id as usize].saturating_add(1);
                }
                return false;
            }
        }
        self.insert(tuple)
    }

    /// The support count of `tuple`: 0 if absent, the recorded count when counting is
    /// enabled, and 1 for any present tuple of a non-counting relation.
    pub fn count_of(&self, tuple: &[Const]) -> u32 {
        let hash = fx_hash_one(&tuple);
        let Some(rows) = self.dedup.get(&hash) else {
            return 0;
        };
        match rows.iter().find(|&&r| self.row(r) == tuple) {
            None => 0,
            Some(&id) => match &self.counts {
                Some(counts) => counts[id as usize],
                None => 1,
            },
        }
    }

    /// Remove one tuple; returns `true` if it was present. Removal compacts the flat
    /// store (O(rows)), preserving the insertion order of the survivors and the
    /// stability of [`IndexId`] handles; batch callers should prefer
    /// [`Relation::remove_all`], which pays the compaction once for any number of
    /// tuples. Row ids and watermarks taken before a removal are invalidated.
    pub fn remove(&mut self, tuple: &[Const]) -> bool {
        debug_assert_eq!(tuple.len(), self.arity);
        if self.arity == 0 {
            let present = !self.dedup.is_empty();
            self.clear();
            return present;
        }
        if !self.contains(tuple) {
            return false;
        }
        let mut keep = vec![true; self.len()];
        for id in 0..self.len() as RowId {
            if self.row(id) == tuple {
                keep[id as usize] = false;
            }
        }
        self.compact(&keep);
        true
    }

    /// Remove every tuple of `other` (same arity) that is present in `self`; returns
    /// the number of tuples removed. One O(rows) compaction regardless of how many
    /// tuples are removed — the batch-retraction primitive. Survivor insertion order
    /// and [`IndexId`] handles are preserved; prior row ids and watermarks are
    /// invalidated.
    pub fn remove_all(&mut self, other: &Relation) -> usize {
        assert_eq!(self.arity, other.arity);
        if self.arity == 0 {
            if other.is_empty() || self.is_empty() {
                return 0;
            }
            self.clear();
            return 1;
        }
        let mut keep = vec![true; self.len()];
        let mut removed = 0usize;
        for id in 0..self.len() as RowId {
            if other.contains(self.row(id)) {
                keep[id as usize] = false;
                removed += 1;
            }
        }
        if removed > 0 {
            self.compact(&keep);
        }
        removed
    }

    /// Rebuild the flat store, dedup table, counts, and every index map, keeping only
    /// the rows marked in `keep` (in their original order). Index *definitions* are
    /// untouched, so [`IndexId`] handles stay valid across removals, exactly as they
    /// do across [`Relation::clear`].
    fn compact(&mut self, keep: &[bool]) {
        debug_assert_eq!(keep.len(), self.len());
        let arity = self.arity;
        let old_flat = std::mem::take(&mut self.flat);
        let old_counts = self.counts.take();
        self.dedup.clear();
        for index in &mut self.indexes {
            index.map.clear();
        }
        if old_counts.is_some() {
            self.counts = Some(Vec::new());
        }
        for (old_id, &kept) in keep.iter().enumerate() {
            if !kept {
                continue;
            }
            let row = &old_flat[old_id * arity..(old_id + 1) * arity];
            let id = self.len() as RowId;
            self.flat.extend_from_slice(row);
            self.dedup.entry(fx_hash_one(&row)).or_default().push(id);
            for index in &mut self.indexes {
                let key_hash = hash_columns(row, &index.columns);
                index.map.entry(key_hash).or_default().push(id);
            }
            if let (Some(counts), Some(old)) = (&mut self.counts, &old_counts) {
                counts.push(old[old_id]);
            }
        }
    }

    /// Insert every tuple of `other` (which must have the same arity); returns the
    /// number of tuples that were new.
    pub fn merge_from(&mut self, other: &Relation) -> usize {
        assert_eq!(self.arity, other.arity);
        let mut added = 0;
        for tuple in other.iter() {
            if self.insert(tuple) {
                added += 1;
            }
        }
        added
    }

    /// Remove all tuples (keeps index definitions, drops their contents).
    pub fn clear(&mut self) {
        self.flat.clear();
        self.dedup.clear();
        for index in &mut self.indexes {
            index.map.clear();
        }
        if let Some(counts) = &mut self.counts {
            counts.clear();
        }
    }

    /// Ensure a secondary index exists on the given column subset and return its
    /// stable handle. Columns must be valid positions; the set is deduplicated and
    /// sorted internally. Building the index is O(rows); subsequent inserts maintain
    /// it. Returns `None` for empty or full-tuple column sets (full scans and the
    /// dedup table already cover those).
    pub fn ensure_index(&mut self, columns: &[usize]) -> Option<IndexId> {
        let mut cols: Vec<usize> = columns.to_vec();
        cols.sort_unstable();
        cols.dedup();
        if cols.is_empty() || cols.len() >= self.arity {
            return None;
        }
        assert!(
            cols.iter().all(|&c| c < self.arity),
            "index column out of range for arity {}",
            self.arity
        );
        if let Some(existing) = self.index_on(&cols) {
            return Some(existing);
        }
        let mut map: FxHashMap<u64, Vec<RowId>> = FxHashMap::default();
        for id in 0..self.len() as RowId {
            let row = {
                let start = id as usize * self.arity;
                &self.flat[start..start + self.arity]
            };
            map.entry(hash_columns(row, &cols)).or_default().push(id);
        }
        self.indexes.push(ColumnIndex { columns: cols, map });
        Some(IndexId(self.indexes.len() as u32 - 1))
    }

    /// The handle of the existing index on exactly `columns` (sorted, deduplicated),
    /// if one has been built.
    pub fn index_on(&self, columns: &[usize]) -> Option<IndexId> {
        self.indexes
            .iter()
            .position(|i| i.columns == columns)
            .map(|p| IndexId(p as u32))
    }

    /// The *candidate* row ids whose key columns hash to `key_hash` — the raw hash
    /// bucket of the index, without collision verification. The join pipeline verifies
    /// candidates in its binding loop; other callers should compare the rows' key
    /// columns against the probe key (or use [`Relation::probe`]).
    #[inline]
    pub fn probe_candidates(&self, index: IndexId, key_hash: u64) -> &[RowId] {
        self.indexes[index.0 as usize]
            .map
            .get(&key_hash)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// The columns covered by `index` (sorted ascending).
    pub fn index_columns(&self, index: IndexId) -> &[usize] {
        &self.indexes[index.0 as usize].columns
    }

    /// The row ids whose values at `columns` (sorted, deduplicated) equal `key`,
    /// collision-verified against the flat store. Requires [`Relation::ensure_index`]
    /// to have been called for `columns`; returns `None` if no such index exists.
    pub fn probe(&self, columns: &[usize], key: &[Const]) -> Option<Vec<RowId>> {
        let index = self.index_on(columns)?;
        let mut rows = Vec::new();
        for &id in self.probe_candidates(index, hash_key(key)) {
            let row = self.row(id);
            if columns.iter().zip(key).all(|(&c, k)| row[c] == *k) {
                rows.push(id);
            }
        }
        Some(rows)
    }

    /// Select all rows matching a pattern of optional constants (one entry per column;
    /// `None` means "any value"). Uses an index if one covering exactly the bound
    /// columns exists, otherwise scans. Results are returned as row ids.
    pub fn select(&self, pattern: &[Option<Const>], out: &mut Vec<RowId>) {
        debug_assert_eq!(pattern.len(), self.arity);
        out.clear();
        let bound: Vec<usize> = pattern
            .iter()
            .enumerate()
            .filter_map(|(i, p)| p.is_some().then_some(i))
            .collect();
        if bound.is_empty() {
            out.extend(0..self.len() as RowId);
            return;
        }
        if bound.len() == self.arity {
            // Fully bound: membership test.
            let tuple: Vec<Const> = pattern.iter().map(|p| p.unwrap()).collect();
            if self.contains(&tuple) {
                // Find its id (rare path, used by tests and provenance).
                let hash = fx_hash_one(&tuple.as_slice());
                if let Some(rows) = self.dedup.get(&hash) {
                    for &r in rows {
                        if self.row(r) == tuple.as_slice() {
                            out.push(r);
                            return;
                        }
                    }
                }
            }
            return;
        }
        if let Some(index) = self.index_on(&bound) {
            let key_hash = hash_values(bound.iter().map(|&c| pattern[c].as_ref().unwrap()));
            for &id in self.probe_candidates(index, key_hash) {
                let row = self.row(id);
                if bound.iter().all(|&c| pattern[c] == Some(row[c])) {
                    out.push(id);
                }
            }
            return;
        }
        // Fallback: scan.
        for id in 0..self.len() as RowId {
            let row = self.row(id);
            if bound.iter().all(|&c| pattern[c] == Some(row[c])) {
                out.push(id);
            }
        }
    }

    /// All tuples, cloned into owned vectors (test/diagnostic convenience).
    pub fn to_vec(&self) -> Vec<Vec<Const>> {
        self.iter().map(|r| r.to_vec()).collect()
    }

    /// Sorted tuple list (test convenience, for deterministic comparison).
    pub fn to_sorted_vec(&self) -> Vec<Vec<Const>> {
        let mut v = self.to_vec();
        v.sort();
        v
    }
}

struct RelationIter<'a> {
    relation: &'a Relation,
    next: RowId,
    len: RowId,
}

impl<'a> Iterator for RelationIter<'a> {
    type Item = &'a [Const];

    fn next(&mut self) -> Option<Self::Item> {
        if self.next >= self.len {
            return None;
        }
        let row = self.relation.row(self.next);
        self.next += 1;
        Some(row)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = (self.len - self.next) as usize;
        (remaining, Some(remaining))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(i: i64) -> Const {
        Const::Int(i)
    }

    #[test]
    fn insert_and_dedup() {
        let mut r = Relation::new(2);
        assert!(r.insert(&[c(1), c(2)]));
        assert!(r.insert(&[c(2), c(3)]));
        assert!(!r.insert(&[c(1), c(2)]), "duplicate must be rejected");
        assert_eq!(r.len(), 2);
        assert!(r.contains(&[c(1), c(2)]));
        assert!(!r.contains(&[c(3), c(1)]));
    }

    #[test]
    fn iteration_preserves_insertion_order() {
        let mut r = Relation::new(1);
        for i in 0..10 {
            r.insert(&[c(i)]);
        }
        let values: Vec<i64> = r.iter().map(|row| row[0].as_int().unwrap()).collect();
        assert_eq!(values, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn select_with_and_without_index() {
        let mut r = Relation::new(2);
        for i in 0..100i64 {
            r.insert(&[c(i % 10), c(i)]);
        }
        // Unindexed scan.
        let mut out = Vec::new();
        r.select(&[Some(c(3)), None], &mut out);
        assert_eq!(out.len(), 10);
        assert!(out.iter().all(|&id| r.row(id)[0] == c(3)));

        // Indexed probe gives the same answer.
        r.ensure_index(&[0]);
        let mut out2 = Vec::new();
        r.select(&[Some(c(3)), None], &mut out2);
        let mut a = out.clone();
        let mut b = out2.clone();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);

        // Probe API directly.
        let rows = r.probe(&[0], &[c(7)]).unwrap();
        assert_eq!(rows.len(), 10);
        assert!(r.probe(&[1], &[c(7)]).is_none(), "no index on column 1");
    }

    #[test]
    fn index_is_maintained_across_inserts() {
        let mut r = Relation::new(2);
        r.insert(&[c(1), c(10)]);
        r.ensure_index(&[0]);
        r.insert(&[c(1), c(11)]);
        r.insert(&[c(2), c(20)]);
        assert_eq!(r.probe(&[0], &[c(1)]).unwrap().len(), 2);
        assert_eq!(r.probe(&[0], &[c(2)]).unwrap().len(), 1);
        assert_eq!(r.probe(&[0], &[c(9)]).unwrap().len(), 0);
    }

    #[test]
    fn index_ids_are_stable_handles() {
        let mut r = Relation::new(3);
        let id0 = r.ensure_index(&[0]).unwrap();
        let id1 = r.ensure_index(&[1, 2]).unwrap();
        assert_ne!(id0, id1);
        // Re-ensuring returns the same handle; column order is normalized.
        assert_eq!(r.ensure_index(&[2, 1]), Some(id1));
        assert_eq!(r.index_on(&[0]), Some(id0));
        assert_eq!(r.index_on(&[1, 2]), Some(id1));
        assert_eq!(r.index_on(&[1]), None);
        assert_eq!(r.index_columns(id1), &[1, 2]);
        // Handles survive inserts and clears.
        r.insert(&[c(1), c(2), c(3)]);
        r.clear();
        r.insert(&[c(4), c(5), c(6)]);
        assert_eq!(r.probe_candidates(id0, hash_key(&[c(4)])).len(), 1);
        // Trivial column sets are refused.
        assert_eq!(r.ensure_index(&[]), None);
        assert_eq!(r.ensure_index(&[0, 1, 2]), None);
    }

    #[test]
    fn probe_candidates_verification_matches_probe() {
        let mut r = Relation::new(2);
        for i in 0..50i64 {
            r.insert(&[c(i % 5), c(i)]);
        }
        let id = r.ensure_index(&[0]).unwrap();
        let verified = r.probe(&[0], &[c(2)]).unwrap();
        let candidates: Vec<RowId> = r
            .probe_candidates(id, hash_key(&[c(2)]))
            .iter()
            .copied()
            .filter(|&row| r.row(row)[0] == c(2))
            .collect();
        assert_eq!(verified, candidates);
        assert_eq!(verified.len(), 10);
    }

    #[test]
    fn fully_bound_select_is_membership() {
        let mut r = Relation::new(2);
        r.insert(&[c(1), c(2)]);
        let mut out = Vec::new();
        r.select(&[Some(c(1)), Some(c(2))], &mut out);
        assert_eq!(out.len(), 1);
        r.select(&[Some(c(2)), Some(c(1))], &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn empty_pattern_selects_everything() {
        let mut r = Relation::new(3);
        r.insert(&[c(1), c(2), c(3)]);
        r.insert(&[c(4), c(5), c(6)]);
        let mut out = Vec::new();
        r.select(&[None, None, None], &mut out);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn merge_from_counts_new_tuples() {
        let mut a = Relation::new(1);
        a.insert(&[c(1)]);
        a.insert(&[c(2)]);
        let mut b = Relation::new(1);
        b.insert(&[c(2)]);
        b.insert(&[c(3)]);
        assert_eq!(a.merge_from(&b), 1);
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn clear_preserves_index_definitions() {
        let mut r = Relation::new(2);
        r.insert(&[c(1), c(2)]);
        r.ensure_index(&[0]);
        r.clear();
        assert!(r.is_empty());
        r.insert(&[c(5), c(6)]);
        assert_eq!(r.probe(&[0], &[c(5)]).unwrap().len(), 1);
    }

    #[test]
    fn watermark_tracks_deltas() {
        let mut r = Relation::new(2);
        r.insert(&[c(1), c(2)]);
        let mark = r.watermark();
        assert!(r.iter_from(mark).next().is_none());
        r.insert(&[c(2), c(3)]);
        r.insert(&[c(1), c(2)]); // duplicate: not part of the delta
        r.insert(&[c(3), c(4)]);
        let delta: Vec<Vec<Const>> = r.iter_from(mark).map(|t| t.to_vec()).collect();
        assert_eq!(delta, vec![vec![c(2), c(3)], vec![c(3), c(4)]]);
        let rel = r.delta_since(mark);
        assert_eq!(rel.arity(), 2);
        assert_eq!(
            rel.to_sorted_vec(),
            vec![vec![c(2), c(3)], vec![c(3), c(4)]]
        );
        // A stale mark beyond the length yields an empty delta rather than panicking.
        assert!(r.iter_from(100).next().is_none());
    }

    #[test]
    fn remove_compacts_and_keeps_indexes_probeable() {
        let mut r = Relation::new(2);
        for i in 0..20i64 {
            r.insert(&[c(i % 4), c(i)]);
        }
        let id = r.ensure_index(&[0]).unwrap();
        assert!(r.remove(&[c(1), c(5)]));
        assert!(!r.remove(&[c(1), c(5)]), "already removed");
        assert_eq!(r.len(), 19);
        assert!(!r.contains(&[c(1), c(5)]));
        // Survivors keep their insertion order.
        let firsts: Vec<i64> = r.iter().map(|row| row[1].as_int().unwrap()).collect();
        assert_eq!(firsts.iter().filter(|&&v| v == 5).count(), 0);
        assert!(firsts.windows(2).all(|w| w[0] < w[1]));
        // The old IndexId handle still probes correctly after compaction.
        assert_eq!(r.probe_candidates(id, hash_key(&[c(1)])).len(), 4);
        assert_eq!(r.probe(&[0], &[c(1)]).unwrap().len(), 4);
        // Re-inserting works and is indexed.
        assert!(r.insert(&[c(1), c(5)]));
        assert_eq!(r.probe(&[0], &[c(1)]).unwrap().len(), 5);
    }

    #[test]
    fn remove_all_batches_one_compaction() {
        let mut r = Relation::new(2);
        for i in 0..10i64 {
            r.insert(&[c(i), c(i + 1)]);
        }
        let mut gone = Relation::new(2);
        gone.insert(&[c(2), c(3)]);
        gone.insert(&[c(7), c(8)]);
        gone.insert(&[c(99), c(100)]); // absent: not counted
        assert_eq!(r.remove_all(&gone), 2);
        assert_eq!(r.len(), 8);
        assert!(!r.contains(&[c(2), c(3)]));
        assert!(!r.contains(&[c(7), c(8)]));
        assert_eq!(r.remove_all(&gone), 0);
    }

    #[test]
    fn counted_inserts_track_support() {
        let mut r = Relation::new(1);
        r.insert(&[c(1)]);
        r.enable_counts();
        assert!(r.counting());
        assert_eq!(r.count_of(&[c(1)]), 1, "existing rows backfill to 1");
        assert!(r.insert_counted(&[c(2)]));
        assert!(!r.insert_counted(&[c(2)]));
        assert!(!r.insert_counted(&[c(2)]));
        assert_eq!(r.count_of(&[c(2)]), 3);
        assert_eq!(r.count_of(&[c(9)]), 0);
        // Plain inserts of new tuples record count 1 under counting.
        assert!(r.insert(&[c(3)]));
        assert_eq!(r.count_of(&[c(3)]), 1);
        // Counts survive compaction.
        assert!(r.remove(&[c(1)]));
        assert_eq!(r.count_of(&[c(2)]), 3);
        assert_eq!(r.count_of(&[c(1)]), 0);
        // Non-counting relations report presence as 1.
        let mut plain = Relation::new(1);
        plain.insert(&[c(5)]);
        assert_eq!(plain.count_of(&[c(5)]), 1);
        assert_eq!(plain.count_of(&[c(6)]), 0);
    }

    #[test]
    fn zero_arity_removal() {
        let mut r = Relation::new(0);
        r.insert(&[]);
        assert!(r.remove(&[]));
        assert!(r.is_empty());
        assert!(!r.remove(&[]));
        r.insert(&[]);
        let mut gone = Relation::new(0);
        gone.insert(&[]);
        assert_eq!(r.remove_all(&gone), 1);
        assert!(r.is_empty());
    }

    #[test]
    fn zero_arity_relation() {
        let mut r = Relation::new(0);
        assert!(r.is_empty());
        assert!(r.insert(&[]));
        assert!(!r.insert(&[]));
        assert_eq!(r.len(), 1);
        assert!(r.contains(&[]));
    }

    #[test]
    fn to_sorted_vec_is_deterministic() {
        let mut r = Relation::new(2);
        r.insert(&[c(3), c(1)]);
        r.insert(&[c(1), c(2)]);
        assert_eq!(r.to_sorted_vec(), vec![vec![c(1), c(2)], vec![c(3), c(1)]]);
    }

    #[test]
    #[should_panic(expected = "does not match relation arity")]
    fn arity_mismatch_panics() {
        let mut r = Relation::new(2);
        r.insert(&[c(1)]);
    }

    #[test]
    fn int_fast_path_agrees_with_builder_everywhere() {
        // The raw-u64 path is only sound if index maintenance and probing both go
        // through it: an indexed relation of integer keys must keep answering probes.
        let mut r = Relation::new(2);
        for i in 0..20i64 {
            r.insert(&[c(i % 4), c(i)]);
        }
        r.ensure_index(&[0]);
        for k in 0..4i64 {
            assert_eq!(r.probe(&[0], &[c(k)]).unwrap().len(), 5);
        }
        // hash_key and an incremental KeyHasher agree on integer keys.
        let mut h = KeyHasher::new();
        h.push(&c(7));
        h.push(&c(9));
        assert_eq!(h.finish(), hash_key(&[c(7), c(9)]));
        // Mixed symbolic/integer keys still probe correctly through the generic path.
        let mut m = Relation::new(2);
        m.insert(&[Const::sym("a"), c(1)]);
        m.insert(&[Const::sym("b"), c(2)]);
        m.ensure_index(&[0]);
        assert_eq!(m.probe(&[0], &[Const::sym("a")]).unwrap().len(), 1);
    }

    #[test]
    fn shards_partition_the_relation_exactly() {
        let mut r = Relation::new(2);
        for i in 0..50i64 {
            r.insert(&[c(i % 7), c(i)]);
        }
        for &of in &[1usize, 2, 3, 8] {
            for columns in [None, Some(&[0usize][..]), Some(&[1usize][..])] {
                // Every row lands in exactly one valid shard, deterministically.
                for id in 0..r.len() as RowId {
                    let shard = shard_of_row(r.row(id), columns, of);
                    assert!(shard < of);
                    assert_eq!(shard, shard_of_row(r.row(id), columns, of));
                }
            }
        }
        // Key-column partitioning keeps equal join keys on one shard.
        r.ensure_index(&[0]);
        let rows = r.probe(&[0], &[c(3)]).unwrap();
        let shards: std::collections::BTreeSet<usize> = rows
            .iter()
            .map(|&id| shard_of_row(r.row(id), Some(&[0]), 4))
            .collect();
        assert_eq!(shards.len(), 1);
    }
}
