//! Fact storage: relations (tuple sets with indexes) and the database (a named
//! collection of relations).

pub mod database;
pub mod relation;

pub use database::Database;
pub use relation::{hash_key, shard_of_row, IndexId, KeyHasher, Relation, RowId};
