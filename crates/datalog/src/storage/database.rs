//! The fact store: a mapping from predicate names to [`Relation`]s.
//!
//! A [`Database`] holds both EDB facts (loaded before evaluation) and IDB facts (derived
//! during evaluation). The paper's distinction between EDB and IDB is a property of the
//! *program* (which predicates have rules), not of the store.

use std::fmt;

use crate::ast::{Atom, Const, Query};
use crate::fx::FxHashMap;
use crate::symbol::Symbol;

use super::relation::Relation;

/// A collection of named relations.
#[derive(Clone, Debug, Default)]
pub struct Database {
    relations: FxHashMap<Symbol, Relation>,
}

impl Database {
    /// An empty database.
    pub fn new() -> Database {
        Database {
            relations: FxHashMap::default(),
        }
    }

    /// Build a database from ground atoms.
    pub fn from_facts<I: IntoIterator<Item = Atom>>(facts: I) -> Database {
        let mut db = Database::new();
        for atom in facts {
            db.add_atom(&atom);
        }
        db
    }

    /// Get the relation for `predicate`, creating it (with the given arity) if absent.
    pub fn ensure_relation(&mut self, predicate: Symbol, arity: usize) -> &mut Relation {
        self.relations
            .entry(predicate)
            .or_insert_with(|| Relation::new(arity))
    }

    /// The relation for `predicate`, if it has any tuples or was explicitly created.
    pub fn relation(&self, predicate: Symbol) -> Option<&Relation> {
        self.relations.get(&predicate)
    }

    /// Mutable access to the relation for `predicate`.
    pub fn relation_mut(&mut self, predicate: Symbol) -> Option<&mut Relation> {
        self.relations.get_mut(&predicate)
    }

    /// Insert a fact given as predicate name plus tuple; returns `true` if new.
    pub fn add_fact(&mut self, predicate: impl Into<Symbol>, tuple: &[Const]) -> bool {
        let predicate = predicate.into();
        self.ensure_relation(predicate, tuple.len()).insert(tuple)
    }

    /// Insert a ground atom as a fact. Panics if the atom is not ground.
    pub fn add_atom(&mut self, atom: &Atom) -> bool {
        let tuple = atom
            .as_fact()
            .unwrap_or_else(|| panic!("cannot add non-ground atom {atom} as a fact"));
        self.add_fact(atom.predicate, &tuple)
    }

    /// Remove a fact; returns `true` if it was present. Removal compacts the
    /// relation (see [`Relation::remove`]); batch retraction paths should collect the
    /// doomed tuples per predicate and use [`Relation::remove_all`] instead.
    pub fn remove_fact(&mut self, predicate: impl Into<Symbol>, tuple: &[Const]) -> bool {
        match self.relations.get_mut(&predicate.into()) {
            Some(rel) if rel.arity() == tuple.len() => rel.remove(tuple),
            _ => false,
        }
    }

    /// Remove a ground atom. Panics if the atom is not ground.
    pub fn remove_atom(&mut self, atom: &Atom) -> bool {
        let tuple = atom
            .as_fact()
            .unwrap_or_else(|| panic!("cannot remove non-ground atom {atom} as a fact"));
        self.remove_fact(atom.predicate, &tuple)
    }

    /// Does the database contain this ground atom?
    pub fn contains_atom(&self, atom: &Atom) -> bool {
        match (atom.as_fact(), self.relation(atom.predicate)) {
            (Some(tuple), Some(rel)) => rel.contains(&tuple),
            _ => false,
        }
    }

    /// The number of tuples of `predicate` (0 if the relation does not exist).
    pub fn count(&self, predicate: impl Into<Symbol>) -> usize {
        self.relation(predicate.into()).map_or(0, Relation::len)
    }

    /// Total number of tuples across all relations.
    pub fn total_facts(&self) -> usize {
        self.relations.values().map(Relation::len).sum()
    }

    /// The predicates present in the database, sorted by name for determinism.
    pub fn predicates(&self) -> Vec<Symbol> {
        let mut preds: Vec<Symbol> = self.relations.keys().copied().collect();
        preds.sort_by_key(|s| s.as_str());
        preds
    }

    /// The tuples of the query predicate that match the query literal (same constants
    /// in the bound positions), sorted for deterministic comparison. This is the
    /// paper's notion of the *answers* to a query over the computed least model.
    pub fn matching(&self, query: &Query) -> Vec<Vec<Const>> {
        let Some(rel) = self.relation(query.atom.predicate) else {
            return Vec::new();
        };
        if rel.arity() != query.atom.arity() {
            return Vec::new();
        }
        let mut out = Vec::new();
        for row in rel.iter() {
            let matches = query
                .atom
                .terms
                .iter()
                .enumerate()
                .all(|(i, t)| match t.as_const() {
                    Some(c) => row[i] == c,
                    None => true,
                });
            if matches {
                out.push(row.to_vec());
            }
        }
        out.sort();
        out.dedup();
        out
    }

    /// The answers to a query projected onto its free (variable) positions, sorted.
    /// Repeated variables in the query are respected (both positions must agree).
    pub fn answers(&self, query: &Query) -> Vec<Vec<Const>> {
        let free = query.free_positions();
        // Handle repeated query variables: group positions by variable.
        let mut var_first: FxHashMap<Symbol, usize> = FxHashMap::default();
        let mut keep: Vec<usize> = Vec::new();
        let mut equal_to: Vec<(usize, usize)> = Vec::new();
        for &pos in &free {
            let var = query.atom.terms[pos]
                .as_var()
                .expect("free position is a variable");
            match var_first.get(&var) {
                Some(&first) => equal_to.push((first, pos)),
                None => {
                    var_first.insert(var, pos);
                    keep.push(pos);
                }
            }
        }
        let mut out: Vec<Vec<Const>> = self
            .matching(query)
            .into_iter()
            .filter(|row| equal_to.iter().all(|&(a, b)| row[a] == row[b]))
            .map(|row| keep.iter().map(|&i| row[i]).collect())
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// Merge all tuples from `other` into `self`.
    pub fn merge_from(&mut self, other: &Database) {
        for (&pred, rel) in &other.relations {
            self.ensure_relation(pred, rel.arity()).merge_from(rel);
        }
    }

    /// Remove a relation entirely (used by evaluators to reset IDB predicates).
    pub fn remove_relation(&mut self, predicate: Symbol) -> Option<Relation> {
        self.relations.remove(&predicate)
    }

    /// Iterate over `(predicate, relation)` pairs (unordered).
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, &Relation)> + '_ {
        self.relations.iter().map(|(k, v)| (*k, v))
    }
}

impl fmt::Display for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for pred in self.predicates() {
            let rel = &self.relations[&pred];
            for row in rel.iter() {
                write!(f, "{pred}(")?;
                for (i, c) in row.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{c}")?;
                }
                writeln!(f, ").")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Term;
    use crate::parser::parse_atom;

    fn c(i: i64) -> Const {
        Const::Int(i)
    }

    #[test]
    fn add_and_query_facts() {
        let mut db = Database::new();
        assert!(db.add_fact("e", &[c(1), c(2)]));
        assert!(db.add_fact("e", &[c(2), c(3)]));
        assert!(!db.add_fact("e", &[c(1), c(2)]));
        assert_eq!(db.count("e"), 2);
        assert_eq!(db.count("missing"), 0);
        assert_eq!(db.total_facts(), 2);
    }

    #[test]
    fn from_ground_atoms() {
        let facts = vec![
            parse_atom("e(1, 2)").unwrap(),
            parse_atom("e(2, 3)").unwrap(),
            parse_atom("p(a)").unwrap(),
        ];
        let db = Database::from_facts(facts);
        assert_eq!(db.count("e"), 2);
        assert_eq!(db.count("p"), 1);
        assert!(db.contains_atom(&parse_atom("p(a)").unwrap()));
        assert!(!db.contains_atom(&parse_atom("p(b)").unwrap()));
    }

    #[test]
    #[should_panic(expected = "non-ground atom")]
    fn adding_non_ground_atom_panics() {
        let mut db = Database::new();
        db.add_atom(&Atom::new("p", vec![Term::var("X")]));
    }

    #[test]
    fn matching_and_answers_respect_bound_positions() {
        let mut db = Database::new();
        db.add_fact("t", &[c(5), c(1)]);
        db.add_fact("t", &[c(5), c(2)]);
        db.add_fact("t", &[c(6), c(3)]);
        let q = Query::new(Atom::new("t", vec![Term::int(5), Term::var("Y")]));
        assert_eq!(db.matching(&q), vec![vec![c(5), c(1)], vec![c(5), c(2)]]);
        assert_eq!(db.answers(&q), vec![vec![c(1)], vec![c(2)]]);

        let all = Query::new(Atom::new("t", vec![Term::var("X"), Term::var("Y")]));
        assert_eq!(db.answers(&all).len(), 3);
    }

    #[test]
    fn answers_with_repeated_query_variable() {
        let mut db = Database::new();
        db.add_fact("t", &[c(1), c(1)]);
        db.add_fact("t", &[c(1), c(2)]);
        let q = Query::new(Atom::new("t", vec![Term::var("X"), Term::var("X")]));
        assert_eq!(db.answers(&q), vec![vec![c(1)]]);
    }

    #[test]
    fn answers_for_missing_predicate_are_empty() {
        let db = Database::new();
        let q = Query::new(Atom::new("nothing", vec![Term::var("X")]));
        assert!(db.answers(&q).is_empty());
        assert!(db.matching(&q).is_empty());
    }

    #[test]
    fn remove_fact_and_atom() {
        let mut db = Database::new();
        db.add_fact("e", &[c(1), c(2)]);
        db.add_fact("e", &[c(2), c(3)]);
        assert!(db.remove_fact("e", &[c(1), c(2)]));
        assert!(!db.remove_fact("e", &[c(1), c(2)]), "already gone");
        assert!(!db.remove_fact("missing", &[c(1)]));
        assert!(!db.remove_fact("e", &[c(1)]), "arity mismatch is a no-op");
        assert_eq!(db.count("e"), 1);
        assert!(db.remove_atom(&parse_atom("e(2, 3)").unwrap()));
        assert_eq!(db.count("e"), 0);
    }

    #[test]
    fn merge_from_combines_databases() {
        let mut a = Database::new();
        a.add_fact("e", &[c(1), c(2)]);
        let mut b = Database::new();
        b.add_fact("e", &[c(2), c(3)]);
        b.add_fact("p", &[c(7)]);
        a.merge_from(&b);
        assert_eq!(a.count("e"), 2);
        assert_eq!(a.count("p"), 1);
    }

    #[test]
    fn display_lists_facts_sorted_by_predicate() {
        let mut db = Database::new();
        db.add_fact("e", &[c(1), c(2)]);
        db.add_fact("a", &[c(9)]);
        let text = format!("{db}");
        let a_pos = text.find("a(9).").unwrap();
        let e_pos = text.find("e(1, 2).").unwrap();
        assert!(a_pos < e_pos);
    }

    #[test]
    fn predicates_are_sorted() {
        let mut db = Database::new();
        db.add_fact("zebra", &[c(1)]);
        db.add_fact("ant", &[c(1)]);
        let names: Vec<&str> = db.predicates().iter().map(|s| s.as_str()).collect();
        assert_eq!(names, vec!["ant", "zebra"]);
    }
}
