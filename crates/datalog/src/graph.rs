//! Predicate dependency graph: which predicates are recursive, which rules are
//! recursive, strongly connected components, and reachability from the query predicate.
//!
//! The factoring analysis (crate `factorlog-core`) only applies to *unit programs*
//! — programs with a single recursive IDB predicate (§4.1) — and this module supplies
//! the classification it needs.

use std::collections::BTreeSet;

use crate::ast::Program;
use crate::fx::FxHashMap;
use crate::symbol::Symbol;

/// The predicate dependency graph of a program.
#[derive(Clone, Debug)]
pub struct DependencyGraph {
    /// All predicates, in deterministic (name) order.
    predicates: Vec<Symbol>,
    index: FxHashMap<Symbol, usize>,
    /// `edges[i]` lists the predicates that predicate `i` depends on (its rules' body
    /// predicates).
    edges: Vec<BTreeSet<usize>>,
    /// IDB predicates (appear in some head).
    idb: BTreeSet<Symbol>,
    /// Strongly connected components, each a sorted list of predicates, in reverse
    /// topological order (dependencies before dependents).
    sccs: Vec<Vec<Symbol>>,
}

impl DependencyGraph {
    /// Build the dependency graph of `program`.
    pub fn new(program: &Program) -> DependencyGraph {
        let mut predicates: Vec<Symbol> = program.all_predicates().into_iter().collect();
        predicates.sort_by_key(|s| s.as_str());
        let index: FxHashMap<Symbol, usize> = predicates
            .iter()
            .enumerate()
            .map(|(i, &p)| (p, i))
            .collect();
        let mut edges: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); predicates.len()];
        for rule in &program.rules {
            let head = index[&rule.head.predicate];
            for atom in &rule.body {
                edges[head].insert(index[&atom.predicate]);
            }
        }
        let idb = program.idb_predicates();
        let sccs = tarjan_sccs(&edges)
            .into_iter()
            .map(|component| {
                let mut names: Vec<Symbol> = component.into_iter().map(|i| predicates[i]).collect();
                names.sort_by_key(|s| s.as_str());
                names
            })
            .collect();
        DependencyGraph {
            predicates,
            index,
            edges,
            idb,
            sccs,
        }
    }

    /// All predicates, sorted by name.
    pub fn predicates(&self) -> &[Symbol] {
        &self.predicates
    }

    /// Is `p` an IDB predicate (appears in a rule head)?
    pub fn is_idb(&self, p: Symbol) -> bool {
        self.idb.contains(&p)
    }

    /// Does `from` depend (directly) on `to`?
    pub fn depends_on(&self, from: Symbol, to: Symbol) -> bool {
        match (self.index.get(&from), self.index.get(&to)) {
            (Some(&f), Some(&t)) => self.edges[f].contains(&t),
            _ => false,
        }
    }

    /// The strongly connected components in dependency order (a component appears
    /// after the components it depends on).
    pub fn sccs(&self) -> &[Vec<Symbol>] {
        &self.sccs
    }

    /// Is predicate `p` recursive — i.e. does it (transitively) depend on itself?
    pub fn is_recursive(&self, p: Symbol) -> bool {
        let Some(&i) = self.index.get(&p) else {
            return false;
        };
        // p is recursive iff its SCC has more than one member, or it has a self-loop.
        if self.edges[i].contains(&i) {
            return true;
        }
        self.sccs
            .iter()
            .any(|component| component.len() > 1 && component.contains(&p))
    }

    /// All recursive IDB predicates, sorted by name.
    pub fn recursive_predicates(&self) -> Vec<Symbol> {
        self.predicates
            .iter()
            .copied()
            .filter(|&p| self.idb.contains(&p) && self.is_recursive(p))
            .collect()
    }

    /// The set of predicates reachable from `start` (including `start` itself if it is
    /// a known predicate).
    pub fn reachable_from(&self, start: Symbol) -> BTreeSet<Symbol> {
        let mut reached = BTreeSet::new();
        let Some(&s) = self.index.get(&start) else {
            return reached;
        };
        let mut stack = vec![s];
        let mut seen = vec![false; self.predicates.len()];
        seen[s] = true;
        while let Some(node) = stack.pop() {
            reached.insert(self.predicates[node]);
            for &next in &self.edges[node] {
                if !seen[next] {
                    seen[next] = true;
                    stack.push(next);
                }
            }
        }
        reached
    }
}

/// Classification of a program's rules with respect to recursion.
#[derive(Clone, Debug)]
pub struct RecursionInfo {
    /// Recursive IDB predicates.
    pub recursive_predicates: Vec<Symbol>,
    /// Indices of rules whose body mentions a predicate in the head's SCC
    /// (the recursive rules).
    pub recursive_rules: Vec<usize>,
    /// Indices of rules for recursive predicates whose body contains no predicate
    /// mutually recursive with the head (the exit rules).
    pub exit_rules: Vec<usize>,
    /// Is this a *unit program*: exactly one recursive IDB predicate and no other IDB
    /// predicate is mutually recursive with it?
    pub single_recursive_predicate: Option<Symbol>,
    /// Is every recursive rule linear (at most one body literal of the recursive
    /// predicate's SCC)?
    pub linear: bool,
}

/// Analyse the recursion structure of a program.
pub fn recursion_info(program: &Program) -> RecursionInfo {
    let graph = DependencyGraph::new(program);
    let recursive = graph.recursive_predicates();
    let mut recursive_rules = Vec::new();
    let mut exit_rules = Vec::new();
    let mut linear = true;
    for (i, rule) in program.rules.iter().enumerate() {
        let head = rule.head.predicate;
        if !recursive.contains(&head) {
            continue;
        }
        // Mutually-recursive body literals: those in the same SCC as the head.
        let scc: &Vec<Symbol> = graph
            .sccs()
            .iter()
            .find(|c| c.contains(&head))
            .expect("head predicate is in some SCC");
        let rec_literals = rule
            .body
            .iter()
            .filter(|a| scc.contains(&a.predicate))
            .count();
        if rec_literals == 0 {
            exit_rules.push(i);
        } else {
            recursive_rules.push(i);
            if rec_literals > 1 {
                linear = false;
            }
        }
    }
    let single_recursive_predicate = if recursive.len() == 1 {
        Some(recursive[0])
    } else {
        None
    };
    RecursionInfo {
        recursive_predicates: recursive,
        recursive_rules,
        exit_rules,
        single_recursive_predicate,
        linear,
    }
}

/// Tarjan's strongly-connected-components algorithm (iterative), returning components
/// in reverse topological order.
fn tarjan_sccs(edges: &[BTreeSet<usize>]) -> Vec<Vec<usize>> {
    let n = edges.len();
    let mut index_counter = 0usize;
    let mut indices: Vec<Option<usize>> = vec![None; n];
    let mut lowlink: Vec<usize> = vec![0; n];
    let mut on_stack: Vec<bool> = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut result: Vec<Vec<usize>> = Vec::new();

    // Iterative DFS with an explicit call stack of (node, neighbour-iterator position).
    enum Frame {
        Enter(usize),
        Continue(usize, Vec<usize>, usize),
    }

    for start in 0..n {
        if indices[start].is_some() {
            continue;
        }
        let mut call_stack = vec![Frame::Enter(start)];
        while let Some(frame) = call_stack.pop() {
            match frame {
                Frame::Enter(v) => {
                    indices[v] = Some(index_counter);
                    lowlink[v] = index_counter;
                    index_counter += 1;
                    stack.push(v);
                    on_stack[v] = true;
                    let neighbours: Vec<usize> = edges[v].iter().copied().collect();
                    call_stack.push(Frame::Continue(v, neighbours, 0));
                }
                Frame::Continue(v, neighbours, mut i) => {
                    let mut descended = false;
                    while i < neighbours.len() {
                        let w = neighbours[i];
                        i += 1;
                        match indices[w] {
                            None => {
                                call_stack.push(Frame::Continue(v, neighbours.clone(), i));
                                call_stack.push(Frame::Enter(w));
                                descended = true;
                                break;
                            }
                            Some(w_index) => {
                                if on_stack[w] {
                                    lowlink[v] = lowlink[v].min(w_index);
                                }
                            }
                        }
                    }
                    if descended {
                        continue;
                    }
                    // All neighbours processed.
                    if lowlink[v] == indices[v].expect("visited") {
                        let mut component = Vec::new();
                        loop {
                            let w = stack.pop().expect("stack nonempty");
                            on_stack[w] = false;
                            component.push(w);
                            if w == v {
                                break;
                            }
                        }
                        result.push(component);
                    }
                    // Propagate lowlink to parent if any.
                    if let Some(Frame::Continue(parent, _, _)) = call_stack.last() {
                        let parent = *parent;
                        lowlink[parent] = lowlink[parent].min(lowlink[v]);
                    }
                }
            }
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn program(src: &str) -> Program {
        parse_program(src).unwrap().program
    }

    #[test]
    fn transitive_closure_has_one_recursive_predicate() {
        let p = program("t(X, Y) :- e(X, Y).\nt(X, Y) :- e(X, W), t(W, Y).\nquery(Y) :- t(5, Y).");
        let g = DependencyGraph::new(&p);
        let t = Symbol::intern("t");
        let e = Symbol::intern("e");
        let q = Symbol::intern("query");
        assert!(g.is_recursive(t));
        assert!(!g.is_recursive(e));
        assert!(!g.is_recursive(q));
        assert!(g.is_idb(t));
        assert!(g.is_idb(q));
        assert!(!g.is_idb(e));
        assert!(g.depends_on(q, t));
        assert!(!g.depends_on(t, q));
        assert_eq!(g.recursive_predicates(), vec![t]);
    }

    #[test]
    fn mutual_recursion_forms_one_scc() {
        let p = program(
            "even(X) :- zero(X).\n\
             even(X) :- pred(X, Y), odd(Y).\n\
             odd(X) :- pred(X, Y), even(Y).",
        );
        let g = DependencyGraph::new(&p);
        let even = Symbol::intern("even");
        let odd = Symbol::intern("odd");
        assert!(g.is_recursive(even));
        assert!(g.is_recursive(odd));
        let scc = g
            .sccs()
            .iter()
            .find(|c| c.contains(&even))
            .expect("even is in some SCC");
        assert!(scc.contains(&odd));
    }

    #[test]
    fn sccs_are_in_dependency_order() {
        let p = program("a(X) :- b(X).\nb(X) :- c(X).\nc(X) :- d(X).");
        let g = DependencyGraph::new(&p);
        let order: Vec<&str> = g.sccs().iter().map(|c| c[0].as_str()).collect();
        let pos = |name: &str| order.iter().position(|&p| p == name).unwrap();
        assert!(pos("d") < pos("c"));
        assert!(pos("c") < pos("b"));
        assert!(pos("b") < pos("a"));
    }

    #[test]
    fn reachability_from_query() {
        let p = program(
            "query(Y) :- t(5, Y).\n\
             t(X, Y) :- e(X, Y).\n\
             t(X, Y) :- e(X, W), t(W, Y).\n\
             unrelated(X) :- f(X).",
        );
        let g = DependencyGraph::new(&p);
        let reached = g.reachable_from(Symbol::intern("query"));
        assert!(reached.contains(&Symbol::intern("t")));
        assert!(reached.contains(&Symbol::intern("e")));
        assert!(!reached.contains(&Symbol::intern("unrelated")));
        assert!(g.reachable_from(Symbol::intern("no_such_pred")).is_empty());
    }

    #[test]
    fn recursion_info_classifies_rules() {
        let p = program(
            "t(X, Y) :- t(X, W), t(W, Y).\n\
             t(X, Y) :- e(X, W), t(W, Y).\n\
             t(X, Y) :- e(X, Y).\n\
             query(Y) :- t(5, Y).",
        );
        let info = recursion_info(&p);
        assert_eq!(info.single_recursive_predicate, Some(Symbol::intern("t")));
        assert_eq!(info.recursive_rules, vec![0, 1]);
        assert_eq!(info.exit_rules, vec![2]);
        assert!(!info.linear, "the first rule has two recursive literals");
    }

    #[test]
    fn recursion_info_linear_program() {
        let p = program("t(X, Y) :- e(X, W), t(W, Y).\nt(X, Y) :- e(X, Y).");
        let info = recursion_info(&p);
        assert!(info.linear);
        assert_eq!(info.recursive_rules, vec![0]);
        assert_eq!(info.exit_rules, vec![1]);
    }

    #[test]
    fn non_recursive_program_has_no_recursive_predicates() {
        let p =
            program("ancestor(X, Y) :- parent(X, Y).\ngrand(X, Z) :- parent(X, Y), parent(Y, Z).");
        let info = recursion_info(&p);
        assert!(info.recursive_predicates.is_empty());
        assert!(info.recursive_rules.is_empty());
        assert!(info.exit_rules.is_empty());
        assert_eq!(info.single_recursive_predicate, None);
    }

    #[test]
    fn self_loop_detected_as_recursive() {
        let p = program("p(X) :- p(X).");
        let g = DependencyGraph::new(&p);
        assert!(g.is_recursive(Symbol::intern("p")));
    }

    #[test]
    fn two_separate_recursions_are_not_a_unit_program() {
        let p = program(
            "t(X, Y) :- e(X, W), t(W, Y).\nt(X, Y) :- e(X, Y).\n\
             s(X, Y) :- f(X, W), s(W, Y).\ns(X, Y) :- f(X, Y).",
        );
        let info = recursion_info(&p);
        assert_eq!(info.recursive_predicates.len(), 2);
        assert_eq!(info.single_recursive_predicate, None);
    }
}
