//! `factorlog-datalog`: a bottom-up Datalog engine.
//!
//! This crate is the substrate for the reproduction of *Argument Reduction by
//! Factoring* (Naughton, Ramakrishnan, Sagiv, Ullman; VLDB 1989 / TCS 146, 1995). It
//! provides everything the paper assumes of its deductive-database setting:
//!
//! * an AST and parser for positive Datalog ([`ast`], [`parser`]),
//! * relations with duplicate elimination and secondary indexes ([`storage`]),
//! * naive and semi-naive bottom-up evaluation with inference statistics ([`eval`]),
//! * predicate dependency / recursion analysis ([`graph`]),
//! * conjunctive-query containment, the decision procedure behind the paper's
//!   factorability conditions ([`cq`]),
//! * derivation trees, Definition 2.1 ([`derivation`]),
//! * static validation ([`validate`]).
//!
//! The program transformations themselves (adornment, Magic Sets, factoring, the §5
//! optimizations, Counting, separable/one-sided analysis) live in `factorlog-core`.
//!
//! # Quick example
//!
//! ```
//! use factorlog_datalog::parser::{parse_program, parse_query};
//! use factorlog_datalog::storage::Database;
//! use factorlog_datalog::ast::Const;
//! use factorlog_datalog::eval::evaluate_default;
//!
//! let program = parse_program(
//!     "t(X, Y) :- e(X, Y).\n\
//!      t(X, Y) :- e(X, W), t(W, Y).",
//! ).unwrap().program;
//!
//! let mut edb = Database::new();
//! for i in 0..4i64 {
//!     edb.add_fact("e", &[Const::Int(i), Const::Int(i + 1)]);
//! }
//!
//! let result = evaluate_default(&program, &edb).unwrap();
//! let query = parse_query("t(0, Y)").unwrap();
//! assert_eq!(result.answers(&query).len(), 4);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod ast;
pub mod cq;
pub mod derivation;
pub mod eval;
pub mod fault;
pub mod fx;
pub mod graph;
pub mod parser;
pub mod storage;
pub mod symbol;
pub mod validate;

pub use ast::{Atom, Const, Program, Query, Rule, Substitution, Term};
pub use eval::{
    evaluate, evaluate_default, seminaive_resume, CompiledProgram, EvalError, EvalOptions,
    EvalResult, EvalStats, LimitReason, Strategy,
};
pub use fault::{CancelToken, FaultAction, FaultInjector, FaultPoint, FaultSite};
pub use parser::{parse_atom, parse_program, parse_query, parse_rule};
pub use storage::{Database, Relation};
pub use symbol::Symbol;
