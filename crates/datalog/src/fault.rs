//! Fault injection and cooperative cancellation, shared by the evaluator, the
//! session engine, and the durability layer.
//!
//! PR 5 proved byte-budget crash injection for the WAL ([`FaultPoint`]); this
//! module generalizes the discipline to the whole engine. A [`FaultInjector`]
//! names the [`FaultSite`]s a test wants to break — a join inner loop, a round
//! merge, a delete-propagation phase, a WAL append, a compaction — and fires
//! exactly once, either as a structured error or as a panic, so the chaos
//! harness (`tests/engine_chaos_props.rs`) can assert that *any* failure leaves
//! the session recoverable with the fact store as source of truth.
//!
//! [`CancelToken`] is the cooperative-cancellation half: a shareable flag the
//! evaluator polls every bounded number of rows, letting a front end (e.g. the
//! REPL's Ctrl-C handler) abort a running evaluation without killing the
//! process.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::Arc;

/// A byte-budget crash-injection point for append-style writers (the WAL): after
/// `budget` more bytes reach the file, every further byte is dropped and the
/// write reports a torn-write error — exactly what a process killed
/// mid-`write(2)` leaves on disk. Budgets at record boundaries simulate kills
/// between commits; budgets inside a record simulate torn writes.
#[derive(Clone, Copy, Debug)]
pub struct FaultPoint {
    /// Bytes the writer is still allowed to persist before "crashing".
    pub budget: u64,
}

/// Named locations where a [`FaultInjector`] can fire. Each site corresponds to
/// one call of [`FaultInjector::hit`] threaded through the evaluator or engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultSite {
    /// Inside the compiled join loop, once per governance poll (i.e. while a
    /// rule is mid-firing, with partially staged output).
    JoinOuterLoop,
    /// At a semi-naive round boundary, after worker results were merged.
    RoundMerge,
    /// During the over-delete fixpoint of delete propagation.
    DeleteOverdelete,
    /// During the counting re-derivation pass of delete propagation.
    DeleteRederive,
    /// Before a WAL record append (the commit fails, the log is untouched).
    WalAppend,
    /// At the start of a snapshot compaction.
    Compaction,
}

impl fmt::Display for FaultSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            FaultSite::JoinOuterLoop => "join-outer-loop",
            FaultSite::RoundMerge => "round-merge",
            FaultSite::DeleteOverdelete => "delete-overdelete",
            FaultSite::DeleteRederive => "delete-rederive",
            FaultSite::WalAppend => "wal-append",
            FaultSite::Compaction => "compaction",
        };
        f.write_str(name)
    }
}

/// How an armed fault manifests when its site is reached.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// Return a structured injected-fault error from the site.
    Error,
    /// Panic at the site (exercises the panic-isolation path).
    Panic,
}

struct InjectorInner {
    site: FaultSite,
    action: FaultAction,
    /// Site hits remaining before the fault fires (0 = fire on the next hit).
    countdown: AtomicI64,
    /// Set once the fault has fired; it never fires twice.
    fired: AtomicBool,
}

/// A one-shot fault injector: armed with a [`FaultSite`], a [`FaultAction`],
/// and a hit countdown; fires exactly once when its site has been reached
/// `countdown + 1` times. Clones share the armed state, so the engine can hand
/// copies to the evaluator and the durability layer. Test harness only — the
/// production path carries `None` and pays one branch per site.
#[derive(Clone, Default)]
pub struct FaultInjector {
    inner: Option<Arc<InjectorInner>>,
}

impl fmt::Debug for FaultInjector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.inner {
            None => f.write_str("FaultInjector(disarmed)"),
            Some(inner) => write!(
                f,
                "FaultInjector({} {:?}, fired: {})",
                inner.site,
                inner.action,
                inner.fired.load(Ordering::Relaxed)
            ),
        }
    }
}

impl FaultInjector {
    /// An injector armed to fire `action` at the `countdown + 1`-th hit of `site`.
    pub fn armed(site: FaultSite, action: FaultAction, countdown: u32) -> FaultInjector {
        FaultInjector {
            inner: Some(Arc::new(InjectorInner {
                site,
                action,
                countdown: AtomicI64::new(countdown as i64),
                fired: AtomicBool::new(false),
            })),
        }
    }

    /// Report reaching `site`. Returns the action to take if the armed fault
    /// fires here and now (at most once over the injector's lifetime).
    pub fn hit(&self, site: FaultSite) -> Option<FaultAction> {
        let inner = self.inner.as_ref()?;
        if inner.site != site || inner.fired.load(Ordering::Relaxed) {
            return None;
        }
        if inner.countdown.fetch_sub(1, Ordering::Relaxed) > 0 {
            return None;
        }
        // Several workers may pass the countdown concurrently; exactly one wins.
        if inner.fired.swap(true, Ordering::Relaxed) {
            return None;
        }
        Some(inner.action)
    }

    /// Has the armed fault fired?
    pub fn fired(&self) -> bool {
        self.inner
            .as_ref()
            .is_some_and(|inner| inner.fired.load(Ordering::Relaxed))
    }

    /// The site and action of the fault, if it has fired.
    pub fn fired_at(&self) -> Option<(FaultSite, FaultAction)> {
        let inner = self.inner.as_ref()?;
        inner
            .fired
            .load(Ordering::Relaxed)
            .then_some((inner.site, inner.action))
    }

    /// The armed site, if any.
    pub fn site(&self) -> Option<FaultSite> {
        self.inner.as_ref().map(|inner| inner.site)
    }
}

/// A shareable cooperative-cancellation flag (`Arc<AtomicBool>` underneath).
/// Clones observe the same flag; the evaluator polls it every bounded number of
/// rows (see the `EvalOptions` docs for the granularity bound) and aborts with a
/// structured error when it is set. Cancelling an idle token is harmless — the
/// next evaluation that starts under it aborts at its first poll, so front ends
/// typically [`reset`](CancelToken::reset) the token before each run.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Request cancellation. Safe from any thread, including a signal handler
    /// (a relaxed atomic store — no locks, no allocation).
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Has cancellation been requested?
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }

    /// Clear the flag so the token can govern another run.
    pub fn reset(&self) {
        self.flag.store(false, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cancel_token_clones_share_the_flag() {
        let token = CancelToken::new();
        let clone = token.clone();
        assert!(!token.is_cancelled());
        clone.cancel();
        assert!(token.is_cancelled() && clone.is_cancelled());
        token.reset();
        assert!(!clone.is_cancelled());
    }

    #[test]
    fn injector_fires_exactly_once_at_its_site() {
        let inj = FaultInjector::armed(FaultSite::RoundMerge, FaultAction::Error, 2);
        assert_eq!(inj.site(), Some(FaultSite::RoundMerge));
        // Wrong site: never fires.
        assert_eq!(inj.hit(FaultSite::WalAppend), None);
        // Countdown of 2: third hit fires.
        assert_eq!(inj.hit(FaultSite::RoundMerge), None);
        assert_eq!(inj.hit(FaultSite::RoundMerge), None);
        assert!(!inj.fired());
        assert_eq!(inj.hit(FaultSite::RoundMerge), Some(FaultAction::Error));
        assert!(inj.fired());
        // One-shot: never again, even at the same site.
        assert_eq!(inj.hit(FaultSite::RoundMerge), None);
    }

    #[test]
    fn clones_share_the_fired_state() {
        let inj = FaultInjector::armed(FaultSite::WalAppend, FaultAction::Panic, 0);
        let clone = inj.clone();
        assert_eq!(clone.hit(FaultSite::WalAppend), Some(FaultAction::Panic));
        assert!(inj.fired());
        assert_eq!(inj.hit(FaultSite::WalAppend), None);
    }

    #[test]
    fn disarmed_injector_is_inert() {
        let inj = FaultInjector::default();
        assert_eq!(inj.hit(FaultSite::JoinOuterLoop), None);
        assert!(!inj.fired());
        assert_eq!(inj.site(), None);
        assert_eq!(format!("{inj:?}"), "FaultInjector(disarmed)");
    }
}
