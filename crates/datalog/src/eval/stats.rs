//! Evaluation statistics.
//!
//! Wall-clock time depends on the machine; the paper's arguments are about the *number
//! of facts and inferences* a strategy performs (e.g. the O(n²) `pmem` facts of
//! Example 1.2 versus the O(n) facts after factoring). The evaluator therefore counts
//! inferences, derived facts and duplicates, and reports them per predicate, so
//! benchmarks can present machine-independent results alongside timings.

use std::fmt;

use crate::fx::FxHashMap;
use crate::symbol::Symbol;

use super::trace::EvalProfile;

/// Counters collected during one evaluation run.
#[derive(Clone, Debug, Default)]
pub struct EvalStats {
    /// Number of fixpoint iterations (semi-naive rounds or naive passes).
    pub iterations: usize,
    /// Number of successful rule-body instantiations (each is one inference).
    pub inferences: usize,
    /// Number of inferences whose head fact was already known.
    pub duplicates: usize,
    /// Number of new facts added to the IDB.
    pub facts_derived: usize,
    /// New facts per predicate.
    pub facts_per_predicate: FxHashMap<Symbol, usize>,
    /// Inferences per rule (indexed by rule position in the program).
    pub inferences_per_rule: Vec<usize>,
    /// Prepared-plan cache hits (queries answered by replaying a cached compiled
    /// plan). Recorded by the session engine; zero for one-shot evaluations.
    pub plan_cache_hits: usize,
    /// Prepared-plan cache misses (queries that ran the full optimization pipeline).
    pub plan_cache_misses: usize,
    /// Prepared plans evicted from the engine's bounded cache.
    pub plan_cache_evictions: usize,
    /// Hash-index probes performed by the join pipeline (each replaces a scan of the
    /// probed relation).
    pub index_probes: usize,
    /// Full relation scans performed by the join pipeline (literals with no usable
    /// index, or with no bound position).
    pub full_scans: usize,
    /// Fully-bound literal instantiations answered by a membership check against the
    /// relation's dedup table.
    pub membership_checks: usize,
    /// Join scratch-buffer constructions. The evaluators allocate one scratch per rule
    /// per evaluation and reuse it across every `fire` call, so this stays equal to
    /// the rule count for sequential evaluations no matter how many rows flow through
    /// the join; the first parallel round of an evaluation adds one scratch per rule
    /// per worker (the scratch pool), also reused for the rest of the evaluation.
    pub scratch_allocs: usize,
    /// Rules whose body-literal order was changed by the selectivity heuristic
    /// (bound-position count, then relation size) at plan time.
    pub literal_reorders: usize,
    /// Semi-naive rounds executed hash-partitioned across the worker pool (rounds
    /// below the parallel threshold run sequentially and are not counted).
    pub parallel_rounds: usize,
    /// Rule firings executed as partitioned jobs within parallel rounds.
    pub parallel_firings: usize,
    /// Largest worker count any parallel round of this run used (0 when every round
    /// ran sequentially).
    pub threads_used: usize,
    /// Facts removed from the model by delete propagation: retracted base facts plus
    /// every derived fact the over-delete phase scheduled (some of which the
    /// re-derivation phase restores — see `rederivations`).
    pub retractions: usize,
    /// Over-deleted facts restored because the counting re-derivation pass found at
    /// least one surviving derivation.
    pub rederivations: usize,
    /// Fixpoint rounds of the over-delete (negative-delta) phase.
    pub delete_rounds: usize,
    /// Records appended to the durable session's transaction log (one per
    /// committed mutation). Zero for in-memory sessions and one-shot evaluations.
    pub wal_appends: usize,
    /// Log records replayed through the transactional path when the session was
    /// recovered at startup.
    pub wal_replays: usize,
    /// Torn/corrupt log tails truncated during recovery (at most one per open:
    /// the bytes a crashed writer left behind).
    pub wal_torn_truncations: usize,
    /// Snapshot compactions performed (explicit `compact` calls plus automatic
    /// threshold-triggered ones).
    pub wal_compactions: usize,
    /// Group commits performed: log appends that made a whole batch of
    /// concurrently submitted transactions durable under a single fsync.
    pub wal_group_commits: usize,
    /// Transactions committed through group commits (the per-group batch sizes
    /// summed; `wal_group_txns / wal_group_commits` is the mean batching
    /// factor an fsync amortized over).
    pub wal_group_txns: usize,
    /// Cooperative governance polls performed (join-loop countdown expiries plus
    /// round-boundary checks). Zero when no limit, deadline, or cancel token is
    /// armed — the guardrails cost nothing until someone asks for them.
    pub cancel_checks: usize,
    /// Evaluations aborted by a resource limit (deadline, derived-fact cap,
    /// memory budget) or an explicit cancellation.
    pub limit_aborts: usize,
    /// Worker panics caught and converted into structured errors (parallel
    /// workers or the engine's sequential containment boundary).
    pub worker_panics: usize,
    /// Phase spans and per-rule profiles, collected when
    /// [`EvalOptions::trace`](super::EvalOptions) is on; `None` otherwise (the
    /// disabled-tracing fast path is a branch on this option).
    pub profile: Option<Box<EvalProfile>>,
}

impl EvalStats {
    /// Create statistics for a program with `rule_count` rules.
    pub fn new(rule_count: usize) -> EvalStats {
        EvalStats {
            inferences_per_rule: vec![0; rule_count],
            ..EvalStats::default()
        }
    }

    /// Record one successful inference of `predicate` by rule `rule_index`; `is_new`
    /// says whether the derived fact was new.
    pub fn record_inference(&mut self, rule_index: usize, predicate: Symbol, is_new: bool) {
        self.inferences += 1;
        if let Some(slot) = self.inferences_per_rule.get_mut(rule_index) {
            *slot += 1;
        }
        if is_new {
            self.facts_derived += 1;
            *self.facts_per_predicate.entry(predicate).or_insert(0) += 1;
        } else {
            self.duplicates += 1;
        }
    }

    /// Number of facts derived for one predicate.
    pub fn facts_for(&self, predicate: Symbol) -> usize {
        self.facts_per_predicate
            .get(&predicate)
            .copied()
            .unwrap_or(0)
    }

    /// Drain one rule's join counters into these statistics (shared by the naive and
    /// semi-naive evaluators so a future counter cannot be absorbed in one but
    /// silently dropped in the other).
    pub fn absorb_join_counters(&mut self, counters: crate::eval::join::JoinCounters) {
        self.index_probes += counters.index_probes;
        self.full_scans += counters.full_scans;
        self.membership_checks += counters.membership_checks;
        self.cancel_checks += counters.cancel_checks;
    }

    /// Record one enumeration of a dying derivation by rule `rule_index` during the
    /// over-delete phase; `is_new` says whether the head fact was newly scheduled for
    /// deletion (as opposed to already scheduled this batch).
    pub fn record_retraction(&mut self, rule_index: usize, is_new: bool) {
        self.inferences += 1;
        if let Some(slot) = self.inferences_per_rule.get_mut(rule_index) {
            *slot += 1;
        }
        if is_new {
            self.retractions += 1;
        } else {
            self.duplicates += 1;
        }
    }

    /// Record one surviving derivation enumerated by the re-derivation pass;
    /// `is_new` says whether it restored a fact (first surviving derivation) rather
    /// than bumping an already-restored fact's support count.
    pub fn record_rederivation(&mut self, rule_index: usize, is_new: bool) {
        self.inferences += 1;
        if let Some(slot) = self.inferences_per_rule.get_mut(rule_index) {
            *slot += 1;
        }
        if is_new {
            self.rederivations += 1;
        }
    }

    /// Record a prepared-plan cache lookup.
    pub fn record_plan_lookup(&mut self, hit: bool) {
        if hit {
            self.plan_cache_hits += 1;
        } else {
            self.plan_cache_misses += 1;
        }
    }

    /// Merge another statistics object into this one (summing counters, taking the max
    /// of iteration counts). Session engines use this to accumulate per-call results
    /// into cumulative per-session counters.
    ///
    /// The source is exhaustively destructured: adding a field to [`EvalStats`]
    /// without deciding its merge policy here is a compile error, not a counter
    /// that silently stops accumulating.
    pub fn merge(&mut self, other: &EvalStats) {
        let EvalStats {
            iterations,
            inferences,
            duplicates,
            facts_derived,
            facts_per_predicate,
            inferences_per_rule,
            plan_cache_hits,
            plan_cache_misses,
            plan_cache_evictions,
            index_probes,
            full_scans,
            membership_checks,
            scratch_allocs,
            literal_reorders,
            parallel_rounds,
            parallel_firings,
            threads_used,
            retractions,
            rederivations,
            delete_rounds,
            wal_appends,
            wal_replays,
            wal_torn_truncations,
            wal_compactions,
            wal_group_commits,
            wal_group_txns,
            cancel_checks,
            limit_aborts,
            worker_panics,
            profile,
        } = other;
        self.iterations = self.iterations.max(*iterations);
        self.inferences += inferences;
        self.duplicates += duplicates;
        self.facts_derived += facts_derived;
        self.plan_cache_hits += plan_cache_hits;
        self.plan_cache_misses += plan_cache_misses;
        self.plan_cache_evictions += plan_cache_evictions;
        self.index_probes += index_probes;
        self.full_scans += full_scans;
        self.membership_checks += membership_checks;
        self.scratch_allocs += scratch_allocs;
        self.literal_reorders += literal_reorders;
        self.parallel_rounds += parallel_rounds;
        self.parallel_firings += parallel_firings;
        self.threads_used = self.threads_used.max(*threads_used);
        self.retractions += retractions;
        self.rederivations += rederivations;
        self.delete_rounds += delete_rounds;
        self.wal_appends += wal_appends;
        self.wal_replays += wal_replays;
        self.wal_torn_truncations += wal_torn_truncations;
        self.wal_compactions += wal_compactions;
        self.wal_group_commits += wal_group_commits;
        self.wal_group_txns += wal_group_txns;
        self.cancel_checks += cancel_checks;
        self.limit_aborts += limit_aborts;
        self.worker_panics += worker_panics;
        for (&p, &n) in facts_per_predicate {
            *self.facts_per_predicate.entry(p).or_insert(0) += n;
        }
        if self.inferences_per_rule.len() < inferences_per_rule.len() {
            self.inferences_per_rule
                .resize(inferences_per_rule.len(), 0);
        }
        for (i, n) in inferences_per_rule.iter().enumerate() {
            self.inferences_per_rule[i] += n;
        }
        if let Some(theirs) = profile {
            self.profile.get_or_insert_with(Box::default).merge(theirs);
        }
    }
}

impl fmt::Display for EvalStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "iterations: {}, inferences: {}, facts derived: {}, duplicates: {}",
            self.iterations, self.inferences, self.facts_derived, self.duplicates
        )?;
        if self.plan_cache_hits + self.plan_cache_misses > 0 {
            writeln!(
                f,
                "plan cache: {} hits, {} misses, {} evicted",
                self.plan_cache_hits, self.plan_cache_misses, self.plan_cache_evictions
            )?;
        }
        if self.index_probes + self.full_scans + self.membership_checks > 0 {
            writeln!(
                f,
                "joins: {} index probes, {} full scans, {} membership checks, {} scratch allocations",
                self.index_probes, self.full_scans, self.membership_checks, self.scratch_allocs
            )?;
        }
        if self.literal_reorders > 0 {
            writeln!(f, "plan: {} body literal reorder(s)", self.literal_reorders)?;
        }
        if self.parallel_rounds > 0 {
            writeln!(
                f,
                "parallel: {} partitioned rounds ({} firings) on {} threads",
                self.parallel_rounds, self.parallel_firings, self.threads_used
            )?;
        }
        if self.retractions + self.rederivations + self.delete_rounds > 0 {
            writeln!(
                f,
                "mutations: {} retractions, {} rederivations, {} delete rounds",
                self.retractions, self.rederivations, self.delete_rounds
            )?;
        }
        if self.wal_appends + self.wal_replays + self.wal_torn_truncations + self.wal_compactions
            > 0
        {
            writeln!(
                f,
                "durability: {} wal appends, {} replays, {} torn-tail truncations, {} compactions",
                self.wal_appends, self.wal_replays, self.wal_torn_truncations, self.wal_compactions
            )?;
        }
        if self.wal_group_commits > 0 {
            writeln!(
                f,
                "group commit: {} group(s) covering {} txn(s) ({:.1} txns/fsync)",
                self.wal_group_commits,
                self.wal_group_txns,
                self.wal_group_txns as f64 / self.wal_group_commits as f64
            )?;
        }
        if self.cancel_checks + self.limit_aborts + self.worker_panics > 0 {
            writeln!(
                f,
                "governance: {} cancel checks, {} limit aborts, {} worker panics",
                self.cancel_checks, self.limit_aborts, self.worker_panics
            )?;
        }
        let mut preds: Vec<_> = self.facts_per_predicate.iter().collect();
        preds.sort_by_key(|(p, _)| p.as_str());
        for (p, n) in preds {
            writeln!(f, "  {p}: {n} facts")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_inference_updates_counters() {
        let mut s = EvalStats::new(2);
        let p = Symbol::intern("t");
        s.record_inference(0, p, true);
        s.record_inference(0, p, true);
        s.record_inference(1, p, false);
        assert_eq!(s.inferences, 3);
        assert_eq!(s.facts_derived, 2);
        assert_eq!(s.duplicates, 1);
        assert_eq!(s.facts_for(p), 2);
        assert_eq!(s.inferences_per_rule, vec![2, 1]);
    }

    #[test]
    fn merge_sums_counters() {
        let p = Symbol::intern("q");
        let mut a = EvalStats::new(1);
        a.iterations = 3;
        a.record_inference(0, p, true);
        let mut b = EvalStats::new(2);
        b.iterations = 5;
        b.record_inference(1, p, true);
        b.record_inference(1, p, false);
        a.merge(&b);
        assert_eq!(a.iterations, 5);
        assert_eq!(a.inferences, 3);
        assert_eq!(a.facts_derived, 2);
        assert_eq!(a.duplicates, 1);
        assert_eq!(a.inferences_per_rule, vec![1, 2]);
    }

    #[test]
    fn plan_cache_counters_record_and_merge() {
        let mut a = EvalStats::new(0);
        a.record_plan_lookup(false);
        a.record_plan_lookup(true);
        a.record_plan_lookup(true);
        assert_eq!(a.plan_cache_hits, 2);
        assert_eq!(a.plan_cache_misses, 1);
        let mut b = EvalStats::new(0);
        b.record_plan_lookup(true);
        a.merge(&b);
        assert_eq!(a.plan_cache_hits, 3);
        assert_eq!(a.plan_cache_misses, 1);
        let text = format!("{a}");
        assert!(text.contains("plan cache: 3 hits, 1 misses"));
    }

    #[test]
    fn mutation_counters_record_merge_and_display() {
        let mut a = EvalStats::new(2);
        a.record_retraction(0, true);
        a.record_retraction(0, false);
        a.record_rederivation(1, true);
        a.record_rederivation(1, false);
        a.delete_rounds = 2;
        assert_eq!(a.retractions, 1);
        assert_eq!(a.rederivations, 1);
        assert_eq!(a.duplicates, 1);
        assert_eq!(a.inferences, 4);
        assert_eq!(a.inferences_per_rule, vec![2, 2]);
        let mut b = EvalStats::new(0);
        b.retractions = 3;
        b.rederivations = 2;
        b.delete_rounds = 1;
        a.merge(&b);
        assert_eq!(a.retractions, 4);
        assert_eq!(a.rederivations, 3);
        assert_eq!(a.delete_rounds, 3);
        let text = format!("{a}");
        assert!(text.contains("mutations: 4 retractions, 3 rederivations, 3 delete rounds"));
    }

    #[test]
    fn durability_counters_merge_and_display() {
        let mut a = EvalStats::new(0);
        a.wal_appends = 5;
        a.wal_compactions = 1;
        let mut b = EvalStats::new(0);
        b.wal_replays = 3;
        b.wal_torn_truncations = 1;
        a.merge(&b);
        assert_eq!(a.wal_appends, 5);
        assert_eq!(a.wal_replays, 3);
        assert_eq!(a.wal_torn_truncations, 1);
        assert_eq!(a.wal_compactions, 1);
        let text = format!("{a}");
        assert!(
            text.contains(
                "durability: 5 wal appends, 3 replays, 1 torn-tail truncations, 1 compactions"
            ),
            "{text}"
        );
        // In-memory runs show no durability line.
        assert!(!format!("{}", EvalStats::new(0)).contains("durability"));
    }

    #[test]
    fn governance_counters_merge_and_display() {
        let mut a = EvalStats::new(0);
        a.cancel_checks = 4;
        a.limit_aborts = 1;
        let mut b = EvalStats::new(0);
        b.cancel_checks = 6;
        b.worker_panics = 2;
        a.merge(&b);
        assert_eq!(a.cancel_checks, 10);
        assert_eq!(a.limit_aborts, 1);
        assert_eq!(a.worker_panics, 2);
        let text = format!("{a}");
        assert!(
            text.contains("governance: 10 cancel checks, 1 limit aborts, 2 worker panics"),
            "{text}"
        );
        // Runs with no guardrails armed show no governance line.
        assert!(!format!("{}", EvalStats::new(0)).contains("governance"));
    }

    #[test]
    fn merge_covers_every_field() {
        // Build a stats value with EVERY field populated, via a full struct
        // literal (no `..Default`): adding a field to `EvalStats` breaks this
        // constructor — and `merge`'s exhaustive destructuring — at compile
        // time, so a new counter cannot silently miss merging.
        fn populated(seed: usize) -> EvalStats {
            let mut profile = EvalProfile::new(2);
            profile.record_rule_firing(0, seed as u64);
            profile.record_rule_row(0, true);
            profile.record_phase("eval.round", std::time::Duration::from_nanos(seed as u64));
            EvalStats {
                iterations: seed + 1,
                inferences: seed + 2,
                duplicates: seed + 3,
                facts_derived: seed + 4,
                facts_per_predicate: FxHashMap::from_iter([(Symbol::intern("t"), seed + 5)]),
                inferences_per_rule: vec![seed + 6, seed + 7],
                plan_cache_hits: seed + 8,
                plan_cache_misses: seed + 9,
                plan_cache_evictions: seed + 10,
                index_probes: seed + 11,
                full_scans: seed + 12,
                membership_checks: seed + 13,
                scratch_allocs: seed + 14,
                literal_reorders: seed + 15,
                parallel_rounds: seed + 16,
                parallel_firings: seed + 17,
                threads_used: seed + 18,
                retractions: seed + 19,
                rederivations: seed + 20,
                delete_rounds: seed + 21,
                wal_appends: seed + 22,
                wal_replays: seed + 23,
                wal_torn_truncations: seed + 24,
                wal_compactions: seed + 25,
                wal_group_commits: seed + 29,
                wal_group_txns: seed + 30,
                cancel_checks: seed + 26,
                limit_aborts: seed + 27,
                worker_panics: seed + 28,
                profile: Some(Box::new(profile)),
            }
        }
        let mut merged = populated(100);
        merged.merge(&populated(1000));
        // Destructure the result so this assertion block, too, must be updated
        // when a field is added.
        let EvalStats {
            iterations,
            inferences,
            duplicates,
            facts_derived,
            facts_per_predicate,
            inferences_per_rule,
            plan_cache_hits,
            plan_cache_misses,
            plan_cache_evictions,
            index_probes,
            full_scans,
            membership_checks,
            scratch_allocs,
            literal_reorders,
            parallel_rounds,
            parallel_firings,
            threads_used,
            retractions,
            rederivations,
            delete_rounds,
            wal_appends,
            wal_replays,
            wal_torn_truncations,
            wal_compactions,
            wal_group_commits,
            wal_group_txns,
            cancel_checks,
            limit_aborts,
            worker_panics,
            profile,
        } = merged;
        assert_eq!(iterations, 1001, "iterations merge by max");
        assert_eq!(inferences, 102 + 1002);
        assert_eq!(duplicates, 103 + 1003);
        assert_eq!(facts_derived, 104 + 1004);
        assert_eq!(facts_per_predicate[&Symbol::intern("t")], 105 + 1005);
        assert_eq!(inferences_per_rule, vec![106 + 1006, 107 + 1007]);
        assert_eq!(plan_cache_hits, 108 + 1008);
        assert_eq!(plan_cache_misses, 109 + 1009);
        assert_eq!(plan_cache_evictions, 110 + 1010);
        assert_eq!(index_probes, 111 + 1011);
        assert_eq!(full_scans, 112 + 1012);
        assert_eq!(membership_checks, 113 + 1013);
        assert_eq!(scratch_allocs, 114 + 1014);
        assert_eq!(literal_reorders, 115 + 1015);
        assert_eq!(parallel_rounds, 116 + 1016);
        assert_eq!(parallel_firings, 117 + 1017);
        assert_eq!(threads_used, 1018, "threads_used merges by max");
        assert_eq!(retractions, 119 + 1019);
        assert_eq!(rederivations, 120 + 1020);
        assert_eq!(delete_rounds, 121 + 1021);
        assert_eq!(wal_appends, 122 + 1022);
        assert_eq!(wal_replays, 123 + 1023);
        assert_eq!(wal_torn_truncations, 124 + 1024);
        assert_eq!(wal_compactions, 125 + 1025);
        assert_eq!(wal_group_commits, 129 + 1029);
        assert_eq!(wal_group_txns, 130 + 1030);
        assert_eq!(cancel_checks, 126 + 1026);
        assert_eq!(limit_aborts, 127 + 1027);
        assert_eq!(worker_panics, 128 + 1028);
        let profile = profile.expect("profiles merge rather than drop");
        assert_eq!(profile.rules[0].firings, 2);
        assert_eq!(profile.rules[0].time_ns, 100 + 1000);
        assert_eq!(profile.phases["eval.round"].count, 2);
    }

    #[test]
    fn merge_creates_a_profile_when_only_the_source_has_one() {
        let mut a = EvalStats::new(0);
        let mut b = EvalStats::new(1);
        let mut profile = EvalProfile::new(1);
        profile.record_rule_firing(0, 7);
        b.profile = Some(Box::new(profile));
        a.merge(&b);
        assert_eq!(a.profile.expect("profile carried over").rules[0].firings, 1);
    }

    #[test]
    fn display_mentions_all_counts() {
        let mut s = EvalStats::new(1);
        s.iterations = 2;
        s.record_inference(0, Symbol::intern("t"), true);
        let text = format!("{s}");
        assert!(text.contains("iterations: 2"));
        assert!(text.contains("t: 1 facts"));
    }
}
