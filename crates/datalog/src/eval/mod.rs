//! Bottom-up evaluation of Datalog programs: naive and semi-naive fixpoint strategies,
//! join machinery, and evaluation statistics.

pub mod join;
pub mod naive;
pub mod seminaive;
pub mod stats;
pub mod trace;

use std::fmt;

use crate::ast::{Program, Query};
use crate::fx::FxHashMap;
use crate::storage::Database;
use crate::symbol::Symbol;
use crate::validate::ValidationError;

pub use join::{EvalOptions, Governor};
pub use naive::naive_evaluate;
pub use seminaive::{
    seminaive_evaluate, seminaive_evaluate_compiled, seminaive_evaluate_owned, seminaive_resume,
    seminaive_retract, CompiledProgram,
};
pub use stats::EvalStats;
pub use trace::{EvalProfile, Histogram, ProfileShape, RuleProfile, SpanStats};

/// Which fixpoint strategy to use.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum Strategy {
    /// Re-apply every rule to the whole database each round.
    Naive,
    /// Delta-driven evaluation (the default).
    #[default]
    SemiNaive,
}

/// The outcome of an evaluation: the least model restricted to the materialized
/// predicates, plus statistics.
#[derive(Clone, Debug)]
pub struct EvalResult {
    /// EDB facts plus all derived IDB facts.
    pub database: Database,
    /// Evaluation counters.
    pub stats: EvalStats,
}

impl EvalResult {
    /// The answers to `query` over the computed model, projected onto the query's free
    /// positions and sorted (see [`Database::answers`]).
    pub fn answers(&self, query: &Query) -> Vec<Vec<crate::ast::Const>> {
        self.database.answers(query)
    }
}

/// Errors produced by evaluation.
#[derive(Clone, Debug)]
pub enum EvalError {
    /// The program failed static validation.
    Invalid(Vec<ValidationError>),
    /// The fixpoint did not converge within the configured iteration limit.
    IterationLimit {
        /// The limit that was exceeded.
        limit: usize,
    },
    /// A resource guardrail fired: the evaluation was abandoned before the
    /// fixpoint, and its partial output was discarded (the engine drops the
    /// materialized view; the fact store stays the source of truth).
    LimitExceeded {
        /// Which guardrail fired.
        reason: LimitReason,
        /// Wall time from the start of the evaluation to the abort, so callers
        /// (server responses, `:stats`) can report it without re-timing.
        elapsed: std::time::Duration,
        /// Counters collected up to the abort (boxed: errors stay small).
        partial_stats: Box<EvalStats>,
    },
    /// A worker panicked during a parallel round; the panic was caught, its
    /// siblings were cancelled, and the evaluation's output was discarded.
    WorkerPanic {
        /// The panic payload, when it was a string (`"<non-string panic>"`
        /// otherwise).
        message: String,
        /// Counters collected up to the abort.
        partial_stats: Box<EvalStats>,
    },
    /// An injected fault fired (chaos-test harness only — see
    /// [`FaultInjector`](crate::fault::FaultInjector)).
    Injected {
        /// The site the fault fired at.
        site: crate::fault::FaultSite,
    },
}

/// Which resource guardrail aborted an evaluation (see
/// [`EvalError::LimitExceeded`]).
#[derive(Clone, Debug)]
pub enum LimitReason {
    /// The shared [`CancelToken`](crate::fault::CancelToken) was set.
    Cancelled,
    /// The wall-clock deadline passed.
    Deadline {
        /// The configured budget.
        budget: std::time::Duration,
        /// Wall time actually elapsed when the abort was detected.
        elapsed: std::time::Duration,
    },
    /// More facts were derived (or scheduled for deletion) than allowed.
    DerivedFacts {
        /// The configured cap.
        limit: usize,
        /// Facts counted when the abort was detected.
        derived: usize,
    },
    /// The estimated memory footprint exceeded the budget.
    MemoryBudget {
        /// The configured budget in bytes.
        budget_bytes: usize,
        /// The row-count-based estimate (documented within 2x) at the abort.
        estimated_bytes: usize,
    },
}

impl fmt::Display for LimitReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LimitReason::Cancelled => write!(f, "cancelled"),
            LimitReason::Deadline { budget, elapsed } => write!(
                f,
                "deadline of {:.1?} exceeded ({:.1?} elapsed)",
                budget, elapsed
            ),
            LimitReason::DerivedFacts { limit, derived } => {
                write!(
                    f,
                    "derived-fact limit of {limit} exceeded ({derived} derived)"
                )
            }
            LimitReason::MemoryBudget {
                budget_bytes,
                estimated_bytes,
            } => write!(
                f,
                "memory budget of {budget_bytes} byte(s) exceeded (~{estimated_bytes} estimated)"
            ),
        }
    }
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::Invalid(errors) => {
                write!(f, "program is invalid:")?;
                for e in errors {
                    write!(f, "\n  {e}")?;
                }
                Ok(())
            }
            EvalError::IterationLimit { limit } => {
                write!(f, "evaluation did not converge within {limit} iterations")
            }
            EvalError::LimitExceeded {
                reason, elapsed, ..
            } => {
                write!(f, "evaluation aborted after {elapsed:.1?}: {reason}")
            }
            EvalError::WorkerPanic { message, .. } => {
                write!(f, "evaluation worker panicked: {message}")
            }
            EvalError::Injected { site } => {
                write!(f, "injected fault fired at {site}")
            }
        }
    }
}

impl std::error::Error for EvalError {}

/// Evaluate with the chosen strategy.
pub fn evaluate(
    program: &Program,
    edb: &Database,
    strategy: Strategy,
    options: &EvalOptions,
) -> Result<EvalResult, EvalError> {
    match strategy {
        Strategy::Naive => naive_evaluate(program, edb, options),
        Strategy::SemiNaive => seminaive_evaluate(program, edb, options),
    }
}

/// Evaluate with the default strategy (semi-naive) and default options.
pub fn evaluate_default(program: &Program, edb: &Database) -> Result<EvalResult, EvalError> {
    seminaive_evaluate(program, edb, &EvalOptions::default())
}

/// Collect the arity of every predicate mentioned in the program or present in the
/// database. Program occurrences win (they are validated for consistency).
pub(crate) fn arity_map(program: &Program, edb: &Database) -> FxHashMap<Symbol, usize> {
    let mut arities: FxHashMap<Symbol, usize> = FxHashMap::default();
    for (pred, rel) in edb.iter() {
        arities.insert(pred, rel.arity());
    }
    for rule in &program.rules {
        for atom in std::iter::once(&rule.head).chain(rule.body.iter()) {
            arities.insert(atom.predicate, atom.arity());
        }
    }
    arities
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Const;
    use crate::parser::{parse_program, parse_query};

    fn c(i: i64) -> Const {
        Const::Int(i)
    }

    #[test]
    fn evaluate_dispatches_on_strategy() {
        let program = parse_program("t(X, Y) :- e(X, Y).\nt(X, Y) :- e(X, W), t(W, Y).")
            .unwrap()
            .program;
        let mut edb = Database::new();
        for i in 0..5i64 {
            edb.add_fact("e", &[c(i), c(i + 1)]);
        }
        let options = EvalOptions::default();
        let naive = evaluate(&program, &edb, Strategy::Naive, &options).unwrap();
        let semi = evaluate(&program, &edb, Strategy::SemiNaive, &options).unwrap();
        assert_eq!(naive.database.count("t"), semi.database.count("t"));
        let q = parse_query("t(0, Y)").unwrap();
        assert_eq!(naive.answers(&q), semi.answers(&q));
    }

    #[test]
    fn evaluate_default_uses_seminaive() {
        let program = parse_program("p(X) :- e(X, Y).").unwrap().program;
        let mut edb = Database::new();
        edb.add_fact("e", &[c(1), c(2)]);
        let result = evaluate_default(&program, &edb).unwrap();
        assert_eq!(result.database.count("p"), 1);
    }

    #[test]
    fn error_display() {
        let err = EvalError::IterationLimit { limit: 7 };
        assert!(format!("{err}").contains('7'));
        let program = parse_program("p(X, Y) :- e(X).").unwrap().program;
        let err = evaluate_default(&program, &Database::new()).unwrap_err();
        assert!(format!("{err}").contains("invalid"));
    }

    #[test]
    fn arity_map_covers_program_and_edb() {
        let program = parse_program("p(X) :- e(X, Y).").unwrap().program;
        let mut edb = Database::new();
        edb.add_fact("r", &[c(1), c(2), c(3)]);
        let map = arity_map(&program, &edb);
        assert_eq!(map[&Symbol::intern("p")], 1);
        assert_eq!(map[&Symbol::intern("e")], 2);
        assert_eq!(map[&Symbol::intern("r")], 3);
    }
}
